"""Routing policies under stale digests, forwarding, SLO accounting."""

import pytest

from repro.errors import ConfigurationError
from repro.serve import (
    PoissonArrivals,
    ServeConfig,
    ShardedServer,
    SloTargets,
    TenantSpec,
)
from repro.serve.sharded.routing import (
    ROUTING_POLICIES,
    LeastLoaded,
    ResidencyAffinity,
    ShardSnapshot,
    ThresholdLocal,
    make_routing_policy,
)
from repro.schedulers.bounds import ReuseBounds
from repro.schedulers.micco import MiccoScheduler
from repro.workloads import WorkloadParams
from tests.conftest import make_vector
from tests.test_serve_sharded import make_vectors, run_sharded, sharded_config


def snap(node, depth=0, inflight=0, linkless=False, residency=None, pending=0):
    return ShardSnapshot(
        node=node, alive=4, queue_depth=depth, inflight=inflight,
        linkless=linkless, residency=residency or {}, pending=pending,
    )


class TestLeastLoaded:
    def test_picks_smallest_backlog(self):
        chosen = LeastLoaded().choose(
            make_vector(), [snap(0, depth=3), snap(1, depth=1), snap(2, depth=2)]
        )
        assert chosen == 1

    def test_pending_corrects_stale_digests(self):
        # Shard 1's digest says empty, but the router already sent it 5
        # tickets since the sync: the correction outweighs the digest.
        chosen = LeastLoaded().choose(
            make_vector(), [snap(0, depth=2), snap(1, depth=0, pending=5)]
        )
        assert chosen == 0

    def test_ties_break_on_lowest_node(self):
        assert LeastLoaded().choose(make_vector(), [snap(2), snap(0), snap(1)]) == 0

    def test_linkless_loses_ties(self):
        chosen = LeastLoaded().choose(
            make_vector(), [snap(0, linkless=True), snap(1, depth=0)]
        )
        assert chosen == 1

    def test_healthy_beats_linkless_even_when_busier(self):
        chosen = LeastLoaded().choose(
            make_vector(), [snap(0, linkless=True, depth=0), snap(1, depth=9)]
        )
        assert chosen == 1

    def test_all_linkless_falls_back_to_backlog_order(self):
        chosen = LeastLoaded().choose(
            make_vector(),
            [snap(0, linkless=True, depth=3), snap(1, linkless=True, depth=1)],
        )
        assert chosen == 1


class TestResidencyAffinity:
    def test_routes_to_the_shard_holding_the_bytes(self):
        v = make_vector(n_pairs=2)
        uids = {s.uid: s.nbytes for p in v.pairs for s in p.inputs}
        some_uid = next(iter(uids))
        chosen = ResidencyAffinity().choose(
            v, [snap(0), snap(1, residency={some_uid: uids[some_uid]})]
        )
        assert chosen == 1

    def test_stale_residency_is_merely_suboptimal(self):
        # A digest advertising since-evicted tensors still yields a valid
        # (alive) shard choice — staleness can't break correctness.
        v = make_vector(n_pairs=2)
        ghost = {10**9: 1}  # uid the vector never references
        chosen = ResidencyAffinity().choose(v, [snap(0, residency=ghost), snap(1)])
        assert chosen in (0, 1)

    def test_zero_overlap_falls_back_to_least_loaded(self):
        v = make_vector(n_pairs=2)
        chosen = ResidencyAffinity().choose(v, [snap(0, depth=4), snap(1, depth=1)])
        assert chosen == 1

    def test_more_bytes_beats_less(self):
        v = make_vector(n_pairs=2)
        uids = {s.uid: s.nbytes for p in v.pairs for s in p.inputs}
        items = sorted(uids.items())
        small = dict(items[:1])
        chosen = ResidencyAffinity().choose(
            v, [snap(0, residency=small), snap(1, residency=dict(items))]
        )
        assert chosen == 1


class TestThresholdLocal:
    def test_home_shard_hashes_by_vector_id(self):
        snaps = [snap(0), snap(1), snap(2)]
        policy = ThresholdLocal(threshold=4)
        assert policy.choose(make_vector(vector_id=0), snaps) == 0
        assert policy.choose(make_vector(vector_id=1), snaps) == 1
        assert policy.choose(make_vector(vector_id=5), snaps) == 2

    def test_overloaded_home_falls_back_to_least_loaded(self):
        snaps = [snap(0, depth=9), snap(1, depth=1), snap(2, depth=5)]
        assert ThresholdLocal(threshold=4).choose(make_vector(vector_id=0), snaps) == 1

    def test_linkless_home_is_avoided(self):
        snaps = [snap(0, linkless=True), snap(1)]
        assert ThresholdLocal(threshold=4).choose(make_vector(vector_id=0), snaps) == 1

    def test_threshold_validates(self):
        with pytest.raises(ConfigurationError):
            ThresholdLocal(threshold=-1)


class TestRegistry:
    def test_make_routing_policy_covers_the_registry(self):
        for name in ROUTING_POLICIES:
            assert make_routing_policy(name).name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            make_routing_policy("hash-ring")


class TestStaleness:
    def test_very_stale_digests_still_complete_everything(self):
        # One sync per ~minute of simulated time: the router flies blind
        # on its own corrections, yet every ticket lands and completes.
        serve = ServeConfig(sharded=True, sync_interval_s=60.0)
        _, result = run_sharded(serve=serve, n=24)
        s = result.summary()
        assert s["completed"] == s["offered"] == 24
        assert result.sharding["syncs"] <= 2  # initial + at most one more

    def test_stale_routing_is_suboptimal_not_invalid(self):
        # Fine vs coarse sync: tail latency may differ (stale = worse
        # decisions) but both conserve and complete every ticket.
        fine = run_sharded(
            serve=ServeConfig(sharded=True, sync_interval_s=0.001), n=24
        )[1]
        coarse = run_sharded(
            serve=ServeConfig(sharded=True, sync_interval_s=60.0), n=24
        )[1]
        for result in (fine, coarse):
            s = result.summary()
            assert s["completed"] + s["dropped"] == s["offered"]
        assert fine.sharding["syncs"] > coarse.sharding["syncs"]


class TestForwardingSlo:
    def test_full_shards_forward_and_keep_tenant_accounting_exact(self):
        # Tiny per-shard queues force full-queue forwards; per-tenant
        # offered/completed/dropped must still add up exactly.
        tenants = (
            TenantSpec(
                "a", PoissonArrivals(2000.0),
                WorkloadParams(num_vectors=16, vector_size=8, tensor_size=64,
                               batch=2),
                weight=2.0, slo=SloTargets(p99_s=1.0),
            ),
            TenantSpec(
                "b", PoissonArrivals(2000.0),
                WorkloadParams(num_vectors=16, vector_size=8, tensor_size=64,
                               batch=2),
            ),
        )
        serve = ServeConfig(
            sharded=True, tenants=tenants, queue_capacity=2,
            schedule_latency_per_pair_s=2e-3,
        )
        server = ShardedServer(
            MiccoScheduler(ReuseBounds(0, 4, 0)), sharded_config(), serve
        )
        result = server.run(seed=0)
        sh = result.sharding
        assert sh["forwards"] > 0
        for name in ("a", "b"):
            rep = result.tenant_report(name)
            assert len(rep.completed) + len(rep.dropped) == rep.offered == 16
        # Global conservation across forwards and shards.
        s = result.summary()
        assert s["completed"] + s["dropped"] == s["offered"] == 32
        assert sum(x["forwarded_in"] for x in sh["shards"]) <= sh["forwards"]

    def test_forwarded_tickets_keep_arrival_timestamps(self):
        # Forwarding must never reset the latency clock: every completed
        # record's latency spans arrival -> completion.
        serve = ServeConfig(
            sharded=True, queue_capacity=1, schedule_latency_per_pair_s=2e-3
        )
        _, result = run_sharded(
            serve=serve, n=24, arrivals=[i * 1e-4 for i in range(24)]
        )
        for rec in result.report.completed:
            assert rec.latency_s == pytest.approx(rec.complete_s - rec.arrival_s)
