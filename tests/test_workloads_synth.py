"""Unit tests for the synthetic workload generator."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.synth import SyntheticWorkload, WorkloadParams, generate_stream


class TestWorkloadParams:
    def test_defaults_valid(self):
        WorkloadParams()

    def test_odd_vector_size_rejected(self):
        with pytest.raises(WorkloadError):
            WorkloadParams(vector_size=7)

    def test_bad_rate_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            WorkloadParams(repeated_rate=1.5)

    def test_bad_distribution_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            WorkloadParams(distribution="zipf")

    def test_with_overrides(self):
        p = WorkloadParams().with_(tensor_size=128)
        assert p.tensor_size == 128
        assert p.vector_size == WorkloadParams().vector_size


class TestGeneration:
    def test_vector_shape(self):
        wl = SyntheticWorkload(WorkloadParams(vector_size=16, num_vectors=3), seed=0)
        vecs = wl.vectors()
        assert len(vecs) == 3
        assert all(len(v.pairs) == 8 for v in vecs)
        assert all(v.num_tensors == 16 for v in vecs)

    def test_first_vector_all_new(self):
        wl = SyntheticWorkload(WorkloadParams(vector_size=8, repeated_rate=1.0), seed=0)
        v = wl.next_vector()
        assert v.meta["measured_repeated_rate"] == 0.0

    def test_measured_rate_close_to_declared(self):
        params = WorkloadParams(vector_size=64, repeated_rate=0.5, num_vectors=6)
        vecs = SyntheticWorkload(params, seed=1).vectors()
        for v in vecs[1:]:
            assert v.meta["measured_repeated_rate"] == pytest.approx(0.5, abs=0.01)

    def test_zero_rate_all_unique(self):
        params = WorkloadParams(vector_size=16, repeated_rate=0.0, num_vectors=4)
        vecs = SyntheticWorkload(params, seed=1).vectors()
        uids = set()
        for v in vecs:
            new = v.unique_input_uids()
            assert not (uids & new)
            uids |= new

    def test_full_rate_reuses_pool_only(self):
        params = WorkloadParams(vector_size=16, repeated_rate=1.0, num_vectors=4)
        wl = SyntheticWorkload(params, seed=1)
        vecs = wl.vectors()
        pool_uids = {t.uid for t in wl.pool}
        assert len(pool_uids) == 16  # only the first vector created tensors
        for v in vecs[1:]:
            assert v.unique_input_uids() <= pool_uids

    def test_deterministic_given_seed(self):
        from repro.tensor.spec import reset_uid_counter

        params = WorkloadParams(vector_size=8, num_vectors=3)
        reset_uid_counter()
        a = [v.unique_input_uids() for v in SyntheticWorkload(params, seed=9).vectors()]
        reset_uid_counter()
        b = [v.unique_input_uids() for v in SyntheticWorkload(params, seed=9).vectors()]
        assert a == b

    def test_meta_fields(self):
        v = SyntheticWorkload(WorkloadParams(), seed=0).next_vector()
        for key in ("declared_repeated_rate", "measured_repeated_rate", "distribution", "tensor_size", "vector_size"):
            assert key in v.meta

    def test_vector_ids_sequential(self):
        vecs = generate_stream(WorkloadParams(num_vectors=4), seed=0)
        assert [v.vector_id for v in vecs] == [0, 1, 2, 3]

    def test_iter_protocol(self):
        wl = SyntheticWorkload(WorkloadParams(num_vectors=5), seed=0)
        assert len(list(wl)) == 5

    def test_tensor_properties_propagate(self):
        params = WorkloadParams(tensor_size=48, batch=4, rank=3)
        v = SyntheticWorkload(params, seed=0).next_vector()
        t = v.pairs[0].left
        assert (t.size, t.batch, t.rank) == (48, 4, 3)
