"""Unit tests for the run-session driver and the Micco facade."""

import pytest

from repro.core.config import MiccoConfig
from repro.core.framework import Micco
from repro.core.session import run_stream
from repro.gpusim.costmodel import CostModel
from repro.gpusim.engine import ExecutionEngine
from repro.schedulers.bounds import ReuseBounds
from repro.schedulers.groute import GrouteScheduler
from repro.schedulers.micco import MiccoScheduler
from repro.schedulers.roundrobin import RoundRobinScheduler
from repro.workloads.synth import SyntheticWorkload, WorkloadParams
from tests.conftest import MIB, make_cluster, make_vector


def small_stream(n=4):
    params = WorkloadParams(vector_size=8, tensor_size=16, batch=2, num_vectors=n, repeated_rate=0.5)
    return SyntheticWorkload(params, seed=0).vectors()


class TestRunStream:
    def test_executes_all_pairs(self):
        cl = make_cluster()
        engine = ExecutionEngine(cl, CostModel())
        vectors = small_stream()
        result = run_stream(vectors, MiccoScheduler(), cl, engine)
        assert result.metrics.pairs_executed == sum(len(v.pairs) for v in vectors)

    def test_per_vector_records(self):
        cl = make_cluster()
        engine = ExecutionEngine(cl, CostModel())
        vectors = small_stream(3)
        result = run_stream(vectors, GrouteScheduler(), cl, engine)
        assert len(result.per_vector) == 3
        for rec in result.per_vector:
            assert len(rec["assignment"]) == 4
            assert "characteristics" in rec

    def test_schedule_overhead_measured(self):
        cl = make_cluster()
        engine = ExecutionEngine(cl, CostModel())
        result = run_stream(small_stream(), MiccoScheduler(), cl, engine)
        assert result.schedule_overhead_s > 0
        assert result.inference_overhead_s == 0  # no predictor attached

    def test_predictor_applied_per_vector(self):
        calls = []

        class StubPredictor:
            def predict_bounds(self, chars):
                calls.append(chars)
                return ReuseBounds(2, 2, 2)

        cl = make_cluster()
        engine = ExecutionEngine(cl, CostModel())
        sched = MiccoScheduler()
        vectors = small_stream(3)
        result = run_stream(vectors, sched, cl, engine, predictor=StubPredictor())
        assert len(calls) == 3
        assert sched.bounds.as_tuple() == (2.0, 2.0, 2.0)
        assert result.inference_overhead_s > 0
        assert result.per_vector[0]["bounds"] == (2.0, 2.0, 2.0)

    def test_predictor_ignored_for_boundless_scheduler(self):
        class ExplodingPredictor:
            def predict_bounds(self, chars):  # pragma: no cover
                raise AssertionError("must not be called")

        cl = make_cluster()
        engine = ExecutionEngine(cl, CostModel())
        run_stream(small_stream(1), GrouteScheduler(), cl, engine, predictor=ExplodingPredictor())

    def test_reset_cluster_flag(self):
        cl = make_cluster()
        engine = ExecutionEngine(cl, CostModel())
        run_stream(small_stream(1), GrouteScheduler(), cl, engine)
        resident_before = cl.total_resident_tensors()
        assert resident_before > 0
        run_stream(small_stream(1), GrouteScheduler(), cl, engine, reset_cluster=False)
        assert cl.total_resident_tensors() >= resident_before


class TestMiccoFacade:
    def test_naive_has_zero_bounds(self):
        m = Micco.naive(MiccoConfig(num_devices=2))
        assert m.scheduler.bounds.as_tuple() == (0.0, 0.0, 0.0)

    def test_with_bounds(self):
        m = Micco.with_bounds(ReuseBounds(1, 2, 3), MiccoConfig(num_devices=2))
        assert m.scheduler.bounds.as_tuple() == (1.0, 2.0, 3.0)

    def test_baseline_default_is_groute(self):
        m = Micco.baseline(config=MiccoConfig(num_devices=2))
        assert isinstance(m.scheduler, GrouteScheduler)

    def test_custom_baseline(self):
        m = Micco.baseline(RoundRobinScheduler(), MiccoConfig(num_devices=2))
        assert isinstance(m.scheduler, RoundRobinScheduler)

    def test_run_returns_result(self):
        m = Micco.naive(MiccoConfig(num_devices=2))
        result = m.run(small_stream(2))
        assert result.gflops > 0
        assert result.makespan_s > 0

    def test_run_resets_by_default(self):
        m = Micco.naive(MiccoConfig(num_devices=2))
        a = m.run(small_stream(2)).gflops
        b = m.run(small_stream(2)).gflops
        assert a == pytest.approx(b)

    def test_config_validation(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            MiccoConfig(num_devices=0)

    def test_config_with_override(self):
        cfg = MiccoConfig().with_(num_devices=3)
        assert cfg.num_devices == 3
