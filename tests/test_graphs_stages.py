"""Unit tests for dependency-analysis stage partitioning."""

import pytest

from repro.errors import GraphError
from repro.graphs.contraction_graph import ContractionGraph, InternTable, contract_graph
from repro.graphs.stages import StagePlan, build_stage_plan, stages_to_vectors
from tests.conftest import make_tensor


def chain_steps(n_nodes=6):
    """Steps from contracting a path graph (chain): depths grow."""
    nodes = {f"h{i}": make_tensor(label=f"h{i}") for i in range(n_nodes)}
    names = list(nodes)
    edges = [(names[i], names[i + 1]) for i in range(n_nodes - 1)]
    g = ContractionGraph(nodes=nodes, edges=edges)
    return contract_graph(g, InternTable())


class TestBuildStagePlan:
    def test_groups_by_depth(self):
        steps = chain_steps()
        plan = build_stage_plan(steps)
        assert plan.total_steps == len(steps)
        for k, stage in enumerate(plan.stages):
            assert stage  # no empty stages

    def test_dedups_interned_outputs(self):
        steps = chain_steps()
        plan = build_stage_plan(steps + steps)  # duplicated stream
        assert plan.total_steps == len(steps)

    def test_validate_catches_inversion(self):
        steps = chain_steps()
        plan = build_stage_plan(steps)
        # Manually break the invariant: move a late step to stage 0.
        if len(plan.stages) > 1:
            bad = StagePlan(stages=[plan.stages[-1], plan.stages[0]])
            with pytest.raises(GraphError):
                bad.validate()

    def test_stage_inputs_precede_outputs(self):
        plan = build_stage_plan(chain_steps(8))
        plan.validate()  # must not raise


class TestStagesToVectors:
    def test_chunking_respects_max_size(self):
        steps = chain_steps(10)
        plan = build_stage_plan(steps)
        vectors = stages_to_vectors(plan, max_vector_size=4)  # 2 pairs per vector
        assert all(len(v.pairs) <= 2 for v in vectors)
        assert sum(len(v.pairs) for v in vectors) == plan.total_steps

    def test_stage_annotation(self):
        plan = build_stage_plan(chain_steps(6))
        vectors = stages_to_vectors(plan, max_vector_size=64)
        assert all("stage" in v.meta for v in vectors)
        stages = [v.meta["stage"] for v in vectors]
        assert stages == sorted(stages)

    def test_vector_ids_offset(self):
        plan = build_stage_plan(chain_steps(6))
        vectors = stages_to_vectors(plan, max_vector_size=2, start_id=100)
        assert vectors[0].vector_id == 100
        assert [v.vector_id for v in vectors] == list(range(100, 100 + len(vectors)))

    def test_minimum_one_pair_per_vector(self):
        plan = build_stage_plan(chain_steps(4))
        vectors = stages_to_vectors(plan, max_vector_size=1)
        assert all(len(v.pairs) == 1 for v in vectors)
