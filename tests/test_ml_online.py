"""SlidingWindowRegressor: incremental refits over a bounded window."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.ml import SlidingWindowRegressor


def feed_line(model, n, slope=2.0, intercept=1.0, start=0):
    """Feed n samples of y = slope*x + intercept."""
    for i in range(start, start + n):
        x = float(i)
        model.observe([x], slope * x + intercept)


class TestValidation:
    def test_window_too_small(self):
        with pytest.raises(ModelError, match="window"):
            SlidingWindowRegressor(window=1)

    def test_refit_interval_too_small(self):
        with pytest.raises(ModelError, match="refit_interval"):
            SlidingWindowRegressor(refit_interval=0)

    def test_min_samples_too_small(self):
        with pytest.raises(ModelError, match="min_samples"):
            SlidingWindowRegressor(min_samples=1)

    def test_min_samples_cannot_exceed_window(self):
        with pytest.raises(ModelError, match="cannot exceed"):
            SlidingWindowRegressor(window=4, min_samples=8)


class TestColdStart:
    def test_predicts_none_until_min_samples(self):
        m = SlidingWindowRegressor(min_samples=4)
        assert m.predict_one([0.0]) is None
        feed_line(m, 3)
        assert not m.fitted
        assert m.predict_one([0.0]) is None

    def test_first_fit_at_min_samples(self):
        m = SlidingWindowRegressor(min_samples=4, refit_interval=16)
        feed_line(m, 3)
        assert m.refits == 0
        m.observe([3.0], 7.0)  # 4th sample of y = 2x + 1
        assert m.fitted and m.refits == 1
        assert m.predict_one([10.0]) == pytest.approx(21.0)


class TestRefitCadence:
    def test_refits_every_interval_once_warm(self):
        m = SlidingWindowRegressor(min_samples=2, refit_interval=4)
        refit_at = [i for i in range(20) if (m.observe([float(i)], float(i)))]
        # First fit at sample index 1 (min_samples reached), then every
        # 4th observation after it.
        assert refit_at == [1, 5, 9, 13, 17]
        assert m.refits == 5
        assert m.samples == 20

    def test_observe_reports_refits(self):
        m = SlidingWindowRegressor(min_samples=2, refit_interval=2)
        assert m.observe([0.0], 0.0) is False
        assert m.observe([1.0], 1.0) is True
        assert m.observe([2.0], 2.0) is False
        assert m.observe([3.0], 3.0) is True


class TestWindow:
    def test_old_samples_fall_off_and_drift_is_tracked(self):
        # First regime y = x; second regime y = x + 100.  After the
        # window fills with regime-2 samples, predictions must follow
        # the new line with no memory of the old one.
        m = SlidingWindowRegressor(window=8, min_samples=2, refit_interval=1)
        for i in range(8):
            m.observe([float(i)], float(i))
        for i in range(8):
            m.observe([float(i)], float(i) + 100.0)
        assert m.predict_one([4.0]) == pytest.approx(104.0)

    def test_window_bounds_retained_samples(self):
        m = SlidingWindowRegressor(window=4, min_samples=2, refit_interval=1)
        feed_line(m, 100)
        assert m.samples == 100
        assert len(m._window) == 4


class TestDeterminism:
    def test_same_feed_same_predictions(self):
        a = SlidingWindowRegressor(min_samples=3, refit_interval=2)
        b = SlidingWindowRegressor(min_samples=3, refit_interval=2)
        rng = np.random.default_rng(7)
        xs = rng.normal(size=(32, 2))
        ys = xs @ [1.5, -0.5] + rng.normal(scale=0.1, size=32)
        for x, y in zip(xs, ys):
            a.observe(x, y)
            b.observe(x, y)
        probe = [0.3, -0.2]
        assert a.predict_one(probe) == b.predict_one(probe)
        assert a.refits == b.refits
