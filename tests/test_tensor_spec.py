"""Unit tests for repro.tensor.spec."""

import pytest

from repro.errors import ConfigurationError
from repro.tensor.spec import (
    COMPLEX64_BYTES,
    TensorPair,
    TensorSpec,
    VectorSpec,
    next_uid,
)
from tests.conftest import make_pair, make_tensor, make_vector


class TestNextUid:
    def test_monotonic(self):
        a, b, c = next_uid(), next_uid(), next_uid()
        assert a < b < c

    def test_unique_across_many(self):
        uids = [next_uid() for _ in range(1000)]
        assert len(set(uids)) == 1000


class TestTensorSpec:
    def test_meson_shape(self):
        t = TensorSpec(uid=next_uid(), size=384, batch=32, rank=2)
        assert t.shape == (32, 384, 384)

    def test_baryon_shape(self):
        t = TensorSpec(uid=next_uid(), size=64, batch=4, rank=3)
        assert t.shape == (4, 64, 64, 64)

    def test_nbytes_meson(self):
        t = TensorSpec(uid=next_uid(), size=100, batch=2, rank=2)
        assert t.nbytes == 2 * 100 * 100 * COMPLEX64_BYTES

    def test_nbytes_scales_with_dtype(self):
        a = TensorSpec(uid=next_uid(), size=10, batch=1, rank=2, dtype_bytes=8)
        b = TensorSpec(uid=next_uid(), size=10, batch=1, rank=2, dtype_bytes=16)
        assert b.nbytes == 2 * a.nbytes

    def test_elements(self):
        t = TensorSpec(uid=next_uid(), size=8, batch=3, rank=3)
        assert t.elements == 3 * 8**3

    @pytest.mark.parametrize("bad", [0, -1])
    def test_rejects_nonpositive_size(self, bad):
        with pytest.raises(ConfigurationError):
            TensorSpec(uid=next_uid(), size=bad, batch=1)

    def test_rejects_bad_rank(self):
        with pytest.raises(ConfigurationError):
            TensorSpec(uid=next_uid(), size=4, batch=1, rank=4)

    def test_rejects_nonpositive_batch(self):
        with pytest.raises(ConfigurationError):
            TensorSpec(uid=next_uid(), size=4, batch=0)

    def test_derived_gets_fresh_uid(self):
        t = make_tensor()
        d = t.derived()
        assert d.uid != t.uid
        assert d.size == t.size and d.batch == t.batch

    def test_frozen(self):
        t = make_tensor()
        with pytest.raises(AttributeError):
            t.size = 99


class TestTensorPair:
    def test_make_derives_output(self):
        p = make_pair(size=8)
        assert p.out.size == 8
        assert p.out.uid not in (p.left.uid, p.right.uid)

    def test_input_uids(self):
        p = make_pair()
        assert p.input_uids == (p.left.uid, p.right.uid)

    def test_rejects_size_mismatch(self):
        with pytest.raises(ConfigurationError):
            TensorPair.make(make_tensor(size=8), make_tensor(size=16))

    def test_rejects_batch_mismatch(self):
        with pytest.raises(ConfigurationError):
            TensorPair.make(make_tensor(batch=2), make_tensor(batch=4))

    def test_self_pair_allowed(self):
        t = make_tensor()
        p = TensorPair.make(t, t)
        assert p.left.uid == p.right.uid


class TestVectorSpec:
    def test_num_tensors_counts_slots(self):
        v = make_vector(n_pairs=5)
        assert v.num_tensors == 10

    def test_len_and_iter(self):
        v = make_vector(n_pairs=3)
        assert len(v) == 3
        assert list(v) == v.pairs

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            VectorSpec(pairs=[])

    def test_unique_input_uids_dedups(self):
        t = make_tensor()
        p1 = TensorPair.make(t, make_tensor())
        p2 = TensorPair.make(t, make_tensor())
        v = VectorSpec(pairs=[p1, p2])
        assert len(v.unique_input_uids()) == 3

    def test_input_bytes_unique_counts_shared_once(self):
        t = make_tensor(size=8)
        other = make_tensor(size=8)
        v = VectorSpec(pairs=[TensorPair.make(t, other), TensorPair.make(t, make_tensor(size=8))])
        assert v.input_bytes_unique() == 3 * t.nbytes

    def test_output_bytes(self):
        v = make_vector(n_pairs=2, size=8)
        assert v.output_bytes() == sum(p.out.nbytes for p in v.pairs)

    def test_tensor_size(self):
        v = make_vector(size=24)
        assert v.tensor_size == 24
