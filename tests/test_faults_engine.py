"""Engine-level fault handling: retries, backoff, refetches, stragglers."""

import pytest

from repro.errors import DeviceLostError, TransientFaultError
from repro.faults import FaultEvent, FaultInjector, FaultKind, FaultPlan, RetryPolicy
from repro.gpusim.costmodel import CostModel
from repro.gpusim.engine import ExecutionEngine
from repro.gpusim.metrics import ExecutionMetrics
from repro.tensor.spec import VectorSpec
from tests.conftest import make_cluster, make_pair


def armed_injector(*events: FaultEvent) -> FaultInjector:
    """Injector with every event already armed (polled past all of them)."""
    inj = FaultInjector(FaultPlan(tuple(events)))
    inj.poll(max(e.time_s for e in events))
    return inj


class TestTransientRetry:
    def test_recovered_kernel_charges_wasted_time(self):
        cluster = make_cluster()
        pair = make_pair()
        clean = ExecutionEngine(make_cluster(), CostModel())
        m_clean = ExecutionMetrics(num_devices=2)
        clean.execute_pair(pair, 0, m_clean)
        kt = m_clean.compute_s[0]

        retry = RetryPolicy(max_attempts=4, backoff_base_s=1e-3)
        inj = armed_injector(FaultEvent(FaultKind.TRANSIENT, 0.0, 0, count=2))
        engine = ExecutionEngine(cluster, CostModel(), injector=inj, retry=retry)
        m = ExecutionMetrics(num_devices=2)
        engine.execute_pair(pair, 0, m)

        # 2 wasted attempts + their backoffs + the successful kernel.
        waste = 2 * kt + retry.backoff_s(1) + retry.backoff_s(2)
        assert m.compute_s[0] == pytest.approx(kt + waste)
        assert inj.stats.transient_failures == 2
        assert inj.stats.transient_recovered == 1
        assert inj.stats.recovery_latency_s["transient"] == [pytest.approx(waste)]
        assert m.pairs_executed == 1

    def test_budget_exhaustion_raises_and_accounts(self):
        cluster = make_cluster()
        retry = RetryPolicy(max_attempts=2)
        inj = armed_injector(FaultEvent(FaultKind.TRANSIENT, 0.0, 0, count=10))
        engine = ExecutionEngine(cluster, CostModel(), injector=inj, retry=retry)
        m = ExecutionMetrics(num_devices=2)
        with pytest.raises(TransientFaultError):
            engine.execute_pair(make_pair(), 0, m)
        assert inj.stats.transient_abandoned == 1
        assert inj.stats.transient_recovered == 0
        # Exactly max_attempts failures were consumed, and the wasted
        # device time is visible in the metrics.
        assert inj.stats.transient_failures == 2
        assert m.compute_s[0] > 0
        assert m.pairs_executed == 0

    def test_fault_events_logged_for_replay(self):
        inj = armed_injector(FaultEvent(FaultKind.TRANSIENT, 0.0, 0, count=1))
        engine = ExecutionEngine(make_cluster(), CostModel(), injector=inj)
        engine.execute_pair(make_pair(), 0, ExecutionMetrics(num_devices=2))
        kinds = [e["kind"] for e in inj.stats.events]
        assert kinds == ["fault", "retry"]


class TestTransferFault:
    def test_failed_d2d_refetches_from_host(self):
        cluster = make_cluster()
        cm = CostModel()
        pair = make_pair()
        # Seat the left input on device 1 so device 0 would D2D it.
        cluster.register(pair.left, 1)
        inj = armed_injector(FaultEvent(FaultKind.TRANSFER, 0.0, 0, count=1))
        engine = ExecutionEngine(cluster, cm, injector=inj)
        m = ExecutionMetrics(num_devices=2)
        engine.execute_pair(pair, 0, m)
        # The recovered fetch is an H2D, and the source kept its copy
        # (the failed move never completed).
        assert m.counts.d2d_transfers == 0
        assert m.counts.h2d_transfers == 2  # left (refetch) + right
        assert cluster.is_resident(pair.left.uid, 1)
        assert inj.stats.transfer_refetches == 1
        wasted = cm.d2d_time(pair.left.nbytes, src=1, dst=0)
        refetch = cm.h2d_time(pair.left.nbytes)
        assert inj.stats.recovery_latency_s["transfer"] == [pytest.approx(wasted + refetch)]

    def test_memop_time_includes_wasted_copy(self):
        pair = make_pair()
        clean_cl, faulty_cl = make_cluster(), make_cluster()
        clean_cl.register(pair.left, 1)
        faulty_cl.register(pair.left, 1)
        m_clean = ExecutionMetrics(num_devices=2)
        ExecutionEngine(clean_cl, CostModel()).execute_pair(pair, 0, m_clean)
        inj = armed_injector(FaultEvent(FaultKind.TRANSFER, 0.0, 0))
        m_faulty = ExecutionMetrics(num_devices=2)
        ExecutionEngine(faulty_cl, CostModel(), injector=inj).execute_pair(pair, 0, m_faulty)
        assert m_faulty.memop_s[0] >= m_clean.memop_s[0]


class TestStraggler:
    def test_kernel_time_scales_inside_window(self):
        pair = make_pair()
        m_clean = ExecutionMetrics(num_devices=2)
        ExecutionEngine(make_cluster(), CostModel()).execute_pair(pair, 0, m_clean)
        inj = armed_injector(
            FaultEvent(FaultKind.STRAGGLER, 0.0, 0, duration_s=100.0, slow_factor=4.0)
        )
        m_slow = ExecutionMetrics(num_devices=2)
        ExecutionEngine(make_cluster(), CostModel(), injector=inj).execute_pair(pair, 0, m_slow)
        assert m_slow.compute_s[0] == pytest.approx(4.0 * m_clean.compute_s[0])

    def test_other_devices_unaffected(self):
        pair = make_pair()
        inj = armed_injector(
            FaultEvent(FaultKind.STRAGGLER, 0.0, 0, duration_s=100.0, slow_factor=4.0)
        )
        m_clean = ExecutionMetrics(num_devices=2)
        ExecutionEngine(make_cluster(), CostModel()).execute_pair(pair, 1, m_clean)
        m = ExecutionMetrics(num_devices=2)
        ExecutionEngine(make_cluster(), CostModel(), injector=inj).execute_pair(pair, 1, m)
        assert m.compute_s[1] == pytest.approx(m_clean.compute_s[1])


class TestDeviceLoss:
    def test_execute_pair_on_dead_device_raises(self):
        cluster = make_cluster()
        cluster.fail_device(1)
        engine = ExecutionEngine(cluster, CostModel())
        with pytest.raises(DeviceLostError) as exc:
            engine.execute_pair(make_pair(), 1, ExecutionMetrics(num_devices=2))
        assert exc.value.device_id == 1
        assert exc.value.pair_index is None

    def test_execute_vector_reports_pair_index(self):
        cluster = make_cluster()
        cluster.fail_device(1)
        engine = ExecutionEngine(cluster, CostModel())
        v = VectorSpec(pairs=[make_pair() for _ in range(3)])
        with pytest.raises(DeviceLostError) as exc:
            engine.execute_vector(v, [0, 0, 1])
        assert exc.value.device_id == 1
        assert exc.value.pair_index == 2
        assert "device 1" in str(exc.value) and "pair index 2" in str(exc.value)
