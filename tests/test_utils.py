"""Unit tests for utility modules."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.utils.rng import as_generator, spawn_generators
from repro.utils.timing import Stopwatch
from repro.utils.validation import check_fraction, check_in, check_non_negative, check_positive


class TestRng:
    def test_int_seed_deterministic(self):
        a = as_generator(42).integers(0, 100, 10)
        b = as_generator(42).integers(0, 100, 10)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert as_generator(g) is g

    def test_spawn_independent_streams(self):
        gens = spawn_generators(7, 3)
        draws = [g.integers(0, 10**9) for g in gens]
        assert len(set(draws)) == 3

    def test_spawn_deterministic(self):
        a = [g.integers(0, 10**6) for g in spawn_generators(5, 4)]
        b = [g.integers(0, 10**6) for g in spawn_generators(5, 4)]
        assert a == b

    def test_spawn_from_generator(self):
        gens = spawn_generators(np.random.default_rng(0), 2)
        assert len(gens) == 2

    def test_spawn_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)


class TestStopwatch:
    def test_measure_accumulates(self):
        sw = Stopwatch()
        with sw.measure("x"):
            pass
        with sw.measure("x"):
            pass
        assert sw.total("x") >= 0
        assert sw.count("x") == 2

    def test_unknown_bucket_zero(self):
        assert Stopwatch().total("missing") == 0.0

    def test_add_direct(self):
        sw = Stopwatch()
        sw.add("y", 1.5)
        sw.add("y", 0.5)
        assert sw.total("y") == pytest.approx(2.0)

    def test_reset(self):
        sw = Stopwatch()
        sw.add("z", 1.0)
        sw.reset()
        assert sw.total("z") == 0.0

    def test_exception_still_recorded(self):
        sw = Stopwatch()
        with pytest.raises(RuntimeError):
            with sw.measure("boom"):
                raise RuntimeError
        assert sw.count("boom") == 1


class TestValidation:
    def test_check_positive(self):
        check_positive("x", 1)
        with pytest.raises(ConfigurationError):
            check_positive("x", 0)

    def test_check_non_negative(self):
        check_non_negative("x", 0)
        with pytest.raises(ConfigurationError):
            check_non_negative("x", -1)

    def test_check_fraction(self):
        check_fraction("x", 0.5)
        check_fraction("x", 0.0)
        with pytest.raises(ConfigurationError):
            check_fraction("x", 1.01)
        with pytest.raises(ConfigurationError):
            check_fraction("x", 0.0, inclusive=False)

    def test_check_in(self):
        check_in("x", "a", ("a", "b"))
        with pytest.raises(ConfigurationError):
            check_in("x", "c", ("a", "b"))
