"""Unit tests for the fault-injection layer: plans, injector, stats."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.faults import FaultEvent, FaultInjector, FaultKind, FaultPlan, FaultStats, RetryPolicy


class TestFaultEvent:
    def test_kind_coerced_from_string(self):
        ev = FaultEvent("transient", 1.0, 0)
        assert ev.kind is FaultKind.TRANSIENT

    def test_rejects_negative_time(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(FaultKind.TRANSIENT, -1.0, 0)

    def test_rejects_negative_device(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(FaultKind.TRANSIENT, 0.0, -1)

    def test_rejects_zero_count(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(FaultKind.TRANSIENT, 0.0, 0, count=0)

    def test_straggler_needs_window_and_slowdown(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(FaultKind.STRAGGLER, 0.0, 0)  # no duration
        with pytest.raises(ConfigurationError):
            FaultEvent(FaultKind.STRAGGLER, 0.0, 0, duration_s=1.0, slow_factor=1.0)
        ev = FaultEvent(FaultKind.STRAGGLER, 0.0, 0, duration_s=1.0, slow_factor=2.0)
        assert ev.slow_factor == 2.0

    def test_to_dict_serialises_kind_as_string(self):
        d = FaultEvent(FaultKind.TRANSFER, 0.5, 2, count=3).to_dict()
        assert d["kind"] == "transfer"
        assert d["count"] == 3


class TestFaultPlan:
    def test_events_sorted_by_time(self):
        plan = FaultPlan((
            FaultEvent(FaultKind.TRANSIENT, 2.0, 0),
            FaultEvent(FaultKind.TRANSFER, 1.0, 1),
        ))
        assert [e.time_s for e in plan] == [1.0, 2.0]

    def test_generate_is_deterministic(self):
        a = FaultPlan.generate(42, num_devices=4, horizon_s=1.0)
        b = FaultPlan.generate(42, num_devices=4, horizon_s=1.0)
        assert a == b
        c = FaultPlan.generate(43, num_devices=4, horizon_s=1.0)
        assert a != c

    def test_generate_never_kills_whole_pool(self):
        plan = FaultPlan.generate(0, num_devices=3, horizon_s=1.0, n_device_lost=10)
        losses = plan.of_kind("device_lost")
        assert len(losses) == 2
        assert len({e.device for e in losses}) == 2  # distinct victims

    def test_generate_single_device_pool_loses_nothing(self):
        plan = FaultPlan.generate(0, num_devices=1, horizon_s=1.0, n_device_lost=5)
        assert plan.of_kind(FaultKind.DEVICE_LOST) == []

    def test_generate_rejects_bad_args(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.generate(0, num_devices=0, horizon_s=1.0)
        with pytest.raises(ConfigurationError):
            FaultPlan.generate(0, num_devices=2, horizon_s=0.0)
        with pytest.raises(ConfigurationError):
            FaultPlan.generate(0, num_devices=2, horizon_s=1.0, n_transient=-1)

    def test_json_round_trip(self, tmp_path):
        plan = FaultPlan.generate(7, num_devices=4, horizon_s=2.0)
        path = tmp_path / "plan.json"
        plan.to_json(path)
        assert FaultPlan.from_json(path) == plan
        # The payload is plain JSON with string kinds.
        payload = json.loads(path.read_text())
        assert all(isinstance(r["kind"], str) for r in payload["faults"])

    def test_from_json_accepts_bare_list(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps([{"kind": "transient", "time_s": 0.1, "device": 0}]))
        plan = FaultPlan.from_json(path)
        assert len(plan) == 1 and plan.events[0].kind is FaultKind.TRANSIENT

    def test_generate_node_losses(self):
        plan = FaultPlan.generate(
            3, num_devices=8, horizon_s=1.0, n_device_lost=0, n_node_lost=2
        )
        losses = plan.of_kind(FaultKind.NODE_LOST)
        assert len(losses) == 2
        assert all(0 <= e.device < 8 for e in losses)
        assert plan == FaultPlan.generate(
            3, num_devices=8, horizon_s=1.0, n_device_lost=0, n_node_lost=2
        )

    def test_node_lost_round_trips_through_json(self, tmp_path):
        plan = FaultPlan((FaultEvent(FaultKind.NODE_LOST, 0.5, 3),))
        path = tmp_path / "plan.json"
        plan.to_json(path)
        loaded = FaultPlan.from_json(path)
        assert loaded == plan
        assert loaded.events[0].kind is FaultKind.NODE_LOST

    def test_validate_devices_accepts_in_range(self):
        plan = FaultPlan((FaultEvent(FaultKind.TRANSIENT, 0.0, 3),))
        plan.validate_devices(4)  # no raise

    def test_validate_devices_names_offending_event(self):
        plan = FaultPlan((
            FaultEvent(FaultKind.TRANSIENT, 0.0, 0),
            FaultEvent(FaultKind.DEVICE_LOST, 1.0, 12),
        ))
        with pytest.raises(ConfigurationError, match="device 12"):
            plan.validate_devices(8)
        with pytest.raises(ConfigurationError):
            plan.validate_devices(0)


class TestFromJsonErrorPaths:
    """Malformed plan files must raise ConfigurationError, not trace back."""

    def write(self, tmp_path, payload) -> str:
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(payload))
        return path

    def test_unknown_kind(self, tmp_path):
        path = self.write(tmp_path, [{"kind": "meteor", "time_s": 0.1, "device": 0}])
        with pytest.raises(ConfigurationError, match="unknown fault kind"):
            FaultPlan.from_json(path)

    def test_negative_time(self, tmp_path):
        path = self.write(tmp_path, [{"kind": "transient", "time_s": -1.0, "device": 0}])
        with pytest.raises(ConfigurationError, match="time_s"):
            FaultPlan.from_json(path)

    def test_extra_keys_rejected_with_index(self, tmp_path):
        path = self.write(
            tmp_path,
            [
                {"kind": "transient", "time_s": 0.0, "device": 0},
                {"kind": "transfer", "time_s": 0.1, "device": 1, "blast_radius": 3},
            ],
        )
        with pytest.raises(ConfigurationError, match="event 1.*blast_radius"):
            FaultPlan.from_json(path)

    def test_top_level_object_needs_faults_key(self, tmp_path):
        path = self.write(tmp_path, {"events": []})
        with pytest.raises(ConfigurationError, match="'faults'"):
            FaultPlan.from_json(path)

    def test_non_dict_record(self, tmp_path):
        path = self.write(tmp_path, ["transient"])
        with pytest.raises(ConfigurationError, match="event 0"):
            FaultPlan.from_json(path)

    def test_non_list_records_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.from_dicts("not-a-list")
        with pytest.raises(ConfigurationError):
            FaultPlan.from_dicts(42)


class TestFaultInjector:
    def test_poll_arms_due_faults_only(self):
        plan = FaultPlan((
            FaultEvent(FaultKind.TRANSIENT, 1.0, 0, count=2),
            FaultEvent(FaultKind.TRANSFER, 5.0, 0),
        ))
        inj = FaultInjector(plan)
        assert inj.poll(0.5) == []
        assert not inj.take_kernel_fault(0)
        inj.poll(1.0)
        assert inj.stats.injected["transient"] == 1
        assert inj.take_kernel_fault(0)
        assert inj.take_kernel_fault(0)
        assert not inj.take_kernel_fault(0)  # count exhausted
        assert not inj.take_transfer_fault(0)  # not yet due

    def test_poll_returns_device_losses_for_driver(self):
        plan = FaultPlan((FaultEvent(FaultKind.DEVICE_LOST, 1.0, 2),))
        inj = FaultInjector(plan)
        losses = inj.poll(2.0)
        assert [e.device for e in losses] == [2]
        # The injector records nothing until the driver applies it.
        assert inj.stats.device_losses == 0
        inj.note_device_lost(2, 1.0, orphans=3)
        assert inj.stats.device_losses == 1
        assert inj.stats.orphaned_tensors == 3
        assert inj.stats.lost_at == {2: 1.0}

    def test_straggler_window_scales_compute(self):
        plan = FaultPlan((
            FaultEvent(FaultKind.STRAGGLER, 1.0, 0, duration_s=2.0, slow_factor=3.0),
        ))
        inj = FaultInjector(plan)
        inj.poll(1.5)
        assert inj.compute_factor(0) == pytest.approx(3.0)
        assert inj.compute_factor(1) == 1.0  # other device unaffected
        inj.poll(4.0)  # window [1, 3) is over
        assert inj.compute_factor(0) == 1.0

    def test_overlapping_windows_compound(self):
        plan = FaultPlan((
            FaultEvent(FaultKind.STRAGGLER, 0.0, 0, duration_s=2.0, slow_factor=2.0),
            FaultEvent(FaultKind.STRAGGLER, 1.0, 0, duration_s=2.0, slow_factor=3.0),
        ))
        inj = FaultInjector(plan)
        inj.poll(1.5)
        assert inj.compute_factor(0) == pytest.approx(6.0)

    def test_dead_device_stops_faulting(self):
        plan = FaultPlan((
            FaultEvent(FaultKind.TRANSIENT, 0.0, 1, count=5),
            FaultEvent(FaultKind.STRAGGLER, 0.0, 1, duration_s=10.0, slow_factor=2.0),
        ))
        inj = FaultInjector(plan)
        inj.poll(1.0)
        inj.note_device_lost(1, 1.0, orphans=0)
        assert not inj.take_kernel_fault(1)
        assert inj.compute_factor(1) == 1.0

    def test_drain_flushes_remaining(self):
        plan = FaultPlan((FaultEvent(FaultKind.TRANSFER, 99.0, 0),))
        inj = FaultInjector(plan)
        inj.poll(1.0)
        assert inj.drain() == []
        assert inj.take_transfer_fault(0)
        assert inj.drain() == []  # idempotent once empty

    def test_arming_validates_devices_against_cluster(self):
        plan = FaultPlan((FaultEvent(FaultKind.DEVICE_LOST, 1.0, 12),))
        with pytest.raises(ConfigurationError, match="device 12"):
            FaultInjector(plan, num_devices=8)
        FaultInjector(plan)  # without a cluster size, no validation
        FaultInjector(plan, num_devices=16)  # in range: fine

    def test_poll_returns_node_losses_for_driver(self):
        plan = FaultPlan((FaultEvent(FaultKind.NODE_LOST, 1.0, 2),))
        inj = FaultInjector(plan)
        losses = inj.poll(2.0)
        assert [e.kind for e in losses] == [FaultKind.NODE_LOST]
        assert inj.stats.injected["node_lost"] == 1


class TestRetryPolicy:
    def test_backoff_is_exponential(self):
        p = RetryPolicy(max_attempts=5, backoff_base_s=0.1, backoff_factor=2.0)
        assert p.backoff_s(1) == pytest.approx(0.1)
        assert p.backoff_s(3) == pytest.approx(0.4)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy().backoff_s(0)


class TestFaultStats:
    def test_availability_charges_dead_tail(self):
        stats = FaultStats()
        stats.lost_at[0] = 2.0
        # 4 devices over 10 s = 40 device-s; device 0 dead for 8 s.
        assert stats.availability(10.0, 4) == pytest.approx(100.0 * (1 - 8 / 40))

    def test_availability_empty_run_is_full(self):
        assert FaultStats().availability(0.0, 4) == 100.0

    def test_degraded_seconds_clip_to_makespan(self):
        stats = FaultStats()
        stats.straggler_windows.append((0, 1.0, 100.0, 2.0))
        assert stats.degraded_device_s(5.0) == pytest.approx(4.0)

    def test_degraded_seconds_merge_overlaps_per_device(self):
        # Regression: two overlapping windows on one device used to be
        # summed independently, double-counting the shared second.
        stats = FaultStats()
        stats.straggler_windows.append((0, 1.0, 3.0, 2.0))
        stats.straggler_windows.append((0, 2.0, 4.0, 3.0))
        assert stats.degraded_device_s(10.0) == pytest.approx(3.0)  # [1,4), not 4.0

    def test_degraded_seconds_distinct_devices_still_add(self):
        stats = FaultStats()
        stats.straggler_windows.append((0, 1.0, 3.0, 2.0))
        stats.straggler_windows.append((1, 2.0, 4.0, 3.0))
        assert stats.degraded_device_s(10.0) == pytest.approx(4.0)

    def test_degraded_seconds_disjoint_same_device(self):
        stats = FaultStats()
        stats.straggler_windows.append((0, 0.0, 1.0, 2.0))
        stats.straggler_windows.append((0, 5.0, 6.0, 2.0))
        assert stats.degraded_device_s(10.0) == pytest.approx(2.0)

    def test_summary_is_json_ready_and_sorted(self):
        stats = FaultStats()
        stats.record_recovery("transient", 0.25)
        out = stats.summary(makespan_s=1.0, num_devices=2)
        assert list(out["injected"]) == sorted(out["injected"])
        assert out["recovery_latency_s"]["transient"] == [0.25]
        json.dumps(out)  # must serialise without a custom encoder
