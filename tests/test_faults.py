"""Unit tests for the fault-injection layer: plans, injector, stats."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.faults import FaultEvent, FaultInjector, FaultKind, FaultPlan, FaultStats, RetryPolicy


class TestFaultEvent:
    def test_kind_coerced_from_string(self):
        ev = FaultEvent("transient", 1.0, 0)
        assert ev.kind is FaultKind.TRANSIENT

    def test_rejects_negative_time(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(FaultKind.TRANSIENT, -1.0, 0)

    def test_rejects_negative_device(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(FaultKind.TRANSIENT, 0.0, -1)

    def test_rejects_zero_count(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(FaultKind.TRANSIENT, 0.0, 0, count=0)

    def test_straggler_needs_window_and_slowdown(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(FaultKind.STRAGGLER, 0.0, 0)  # no duration
        with pytest.raises(ConfigurationError):
            FaultEvent(FaultKind.STRAGGLER, 0.0, 0, duration_s=1.0, slow_factor=1.0)
        ev = FaultEvent(FaultKind.STRAGGLER, 0.0, 0, duration_s=1.0, slow_factor=2.0)
        assert ev.slow_factor == 2.0

    def test_to_dict_serialises_kind_as_string(self):
        d = FaultEvent(FaultKind.TRANSFER, 0.5, 2, count=3).to_dict()
        assert d["kind"] == "transfer"
        assert d["count"] == 3


class TestFaultPlan:
    def test_events_sorted_by_time(self):
        plan = FaultPlan((
            FaultEvent(FaultKind.TRANSIENT, 2.0, 0),
            FaultEvent(FaultKind.TRANSFER, 1.0, 1),
        ))
        assert [e.time_s for e in plan] == [1.0, 2.0]

    def test_generate_is_deterministic(self):
        a = FaultPlan.generate(42, num_devices=4, horizon_s=1.0)
        b = FaultPlan.generate(42, num_devices=4, horizon_s=1.0)
        assert a == b
        c = FaultPlan.generate(43, num_devices=4, horizon_s=1.0)
        assert a != c

    def test_generate_never_kills_whole_pool(self):
        plan = FaultPlan.generate(0, num_devices=3, horizon_s=1.0, n_device_lost=10)
        losses = plan.of_kind("device_lost")
        assert len(losses) == 2
        assert len({e.device for e in losses}) == 2  # distinct victims

    def test_generate_single_device_pool_loses_nothing(self):
        plan = FaultPlan.generate(0, num_devices=1, horizon_s=1.0, n_device_lost=5)
        assert plan.of_kind(FaultKind.DEVICE_LOST) == []

    def test_generate_rejects_bad_args(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.generate(0, num_devices=0, horizon_s=1.0)
        with pytest.raises(ConfigurationError):
            FaultPlan.generate(0, num_devices=2, horizon_s=0.0)
        with pytest.raises(ConfigurationError):
            FaultPlan.generate(0, num_devices=2, horizon_s=1.0, n_transient=-1)

    def test_json_round_trip(self, tmp_path):
        plan = FaultPlan.generate(7, num_devices=4, horizon_s=2.0)
        path = tmp_path / "plan.json"
        plan.to_json(path)
        assert FaultPlan.from_json(path) == plan
        # The payload is plain JSON with string kinds.
        payload = json.loads(path.read_text())
        assert all(isinstance(r["kind"], str) for r in payload["faults"])

    def test_from_json_accepts_bare_list(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps([{"kind": "transient", "time_s": 0.1, "device": 0}]))
        plan = FaultPlan.from_json(path)
        assert len(plan) == 1 and plan.events[0].kind is FaultKind.TRANSIENT


class TestFaultInjector:
    def test_poll_arms_due_faults_only(self):
        plan = FaultPlan((
            FaultEvent(FaultKind.TRANSIENT, 1.0, 0, count=2),
            FaultEvent(FaultKind.TRANSFER, 5.0, 0),
        ))
        inj = FaultInjector(plan)
        assert inj.poll(0.5) == []
        assert not inj.take_kernel_fault(0)
        inj.poll(1.0)
        assert inj.stats.injected["transient"] == 1
        assert inj.take_kernel_fault(0)
        assert inj.take_kernel_fault(0)
        assert not inj.take_kernel_fault(0)  # count exhausted
        assert not inj.take_transfer_fault(0)  # not yet due

    def test_poll_returns_device_losses_for_driver(self):
        plan = FaultPlan((FaultEvent(FaultKind.DEVICE_LOST, 1.0, 2),))
        inj = FaultInjector(plan)
        losses = inj.poll(2.0)
        assert [e.device for e in losses] == [2]
        # The injector records nothing until the driver applies it.
        assert inj.stats.device_losses == 0
        inj.note_device_lost(2, 1.0, orphans=3)
        assert inj.stats.device_losses == 1
        assert inj.stats.orphaned_tensors == 3
        assert inj.stats.lost_at == {2: 1.0}

    def test_straggler_window_scales_compute(self):
        plan = FaultPlan((
            FaultEvent(FaultKind.STRAGGLER, 1.0, 0, duration_s=2.0, slow_factor=3.0),
        ))
        inj = FaultInjector(plan)
        inj.poll(1.5)
        assert inj.compute_factor(0) == pytest.approx(3.0)
        assert inj.compute_factor(1) == 1.0  # other device unaffected
        inj.poll(4.0)  # window [1, 3) is over
        assert inj.compute_factor(0) == 1.0

    def test_overlapping_windows_compound(self):
        plan = FaultPlan((
            FaultEvent(FaultKind.STRAGGLER, 0.0, 0, duration_s=2.0, slow_factor=2.0),
            FaultEvent(FaultKind.STRAGGLER, 1.0, 0, duration_s=2.0, slow_factor=3.0),
        ))
        inj = FaultInjector(plan)
        inj.poll(1.5)
        assert inj.compute_factor(0) == pytest.approx(6.0)

    def test_dead_device_stops_faulting(self):
        plan = FaultPlan((
            FaultEvent(FaultKind.TRANSIENT, 0.0, 1, count=5),
            FaultEvent(FaultKind.STRAGGLER, 0.0, 1, duration_s=10.0, slow_factor=2.0),
        ))
        inj = FaultInjector(plan)
        inj.poll(1.0)
        inj.note_device_lost(1, 1.0, orphans=0)
        assert not inj.take_kernel_fault(1)
        assert inj.compute_factor(1) == 1.0

    def test_drain_flushes_remaining(self):
        plan = FaultPlan((FaultEvent(FaultKind.TRANSFER, 99.0, 0),))
        inj = FaultInjector(plan)
        inj.poll(1.0)
        assert inj.drain() == []
        assert inj.take_transfer_fault(0)
        assert inj.drain() == []  # idempotent once empty


class TestRetryPolicy:
    def test_backoff_is_exponential(self):
        p = RetryPolicy(max_attempts=5, backoff_base_s=0.1, backoff_factor=2.0)
        assert p.backoff_s(1) == pytest.approx(0.1)
        assert p.backoff_s(3) == pytest.approx(0.4)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy().backoff_s(0)


class TestFaultStats:
    def test_availability_charges_dead_tail(self):
        stats = FaultStats()
        stats.lost_at[0] = 2.0
        # 4 devices over 10 s = 40 device-s; device 0 dead for 8 s.
        assert stats.availability(10.0, 4) == pytest.approx(100.0 * (1 - 8 / 40))

    def test_availability_empty_run_is_full(self):
        assert FaultStats().availability(0.0, 4) == 100.0

    def test_degraded_seconds_clip_to_makespan(self):
        stats = FaultStats()
        stats.straggler_windows.append((0, 1.0, 100.0, 2.0))
        assert stats.degraded_device_s(5.0) == pytest.approx(4.0)

    def test_summary_is_json_ready_and_sorted(self):
        stats = FaultStats()
        stats.record_recovery("transient", 0.25)
        out = stats.summary(makespan_s=1.0, num_devices=2)
        assert list(out["injected"]) == sorted(out["injected"])
        assert out["recovery_latency_s"]["transient"] == [0.25]
        json.dumps(out)  # must serialise without a custom encoder
