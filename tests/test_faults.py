"""Unit tests for the fault-injection layer: plans, injector, stats."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.faults import FaultEvent, FaultInjector, FaultKind, FaultPlan, FaultStats, RetryPolicy


class TestFaultEvent:
    def test_kind_coerced_from_string(self):
        ev = FaultEvent("transient", 1.0, 0)
        assert ev.kind is FaultKind.TRANSIENT

    def test_rejects_negative_time(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(FaultKind.TRANSIENT, -1.0, 0)

    def test_rejects_negative_device(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(FaultKind.TRANSIENT, 0.0, -1)

    def test_rejects_zero_count(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(FaultKind.TRANSIENT, 0.0, 0, count=0)

    def test_straggler_needs_window_and_slowdown(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(FaultKind.STRAGGLER, 0.0, 0)  # no duration
        with pytest.raises(ConfigurationError):
            FaultEvent(FaultKind.STRAGGLER, 0.0, 0, duration_s=1.0, slow_factor=1.0)
        ev = FaultEvent(FaultKind.STRAGGLER, 0.0, 0, duration_s=1.0, slow_factor=2.0)
        assert ev.slow_factor == 2.0

    def test_to_dict_serialises_kind_as_string(self):
        d = FaultEvent(FaultKind.TRANSFER, 0.5, 2, count=3).to_dict()
        assert d["kind"] == "transfer"
        assert d["count"] == 3


class TestFaultPlan:
    def test_events_sorted_by_time(self):
        plan = FaultPlan((
            FaultEvent(FaultKind.TRANSIENT, 2.0, 0),
            FaultEvent(FaultKind.TRANSFER, 1.0, 1),
        ))
        assert [e.time_s for e in plan] == [1.0, 2.0]

    def test_generate_is_deterministic(self):
        a = FaultPlan.generate(42, num_devices=4, horizon_s=1.0)
        b = FaultPlan.generate(42, num_devices=4, horizon_s=1.0)
        assert a == b
        c = FaultPlan.generate(43, num_devices=4, horizon_s=1.0)
        assert a != c

    def test_generate_never_kills_whole_pool(self):
        plan = FaultPlan.generate(0, num_devices=3, horizon_s=1.0, n_device_lost=10)
        losses = plan.of_kind("device_lost")
        assert len(losses) == 2
        assert len({e.device for e in losses}) == 2  # distinct victims

    def test_generate_single_device_pool_loses_nothing(self):
        plan = FaultPlan.generate(0, num_devices=1, horizon_s=1.0, n_device_lost=5)
        assert plan.of_kind(FaultKind.DEVICE_LOST) == []

    def test_generate_rejects_bad_args(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.generate(0, num_devices=0, horizon_s=1.0)
        with pytest.raises(ConfigurationError):
            FaultPlan.generate(0, num_devices=2, horizon_s=0.0)
        with pytest.raises(ConfigurationError):
            FaultPlan.generate(0, num_devices=2, horizon_s=1.0, n_transient=-1)

    def test_json_round_trip(self, tmp_path):
        plan = FaultPlan.generate(7, num_devices=4, horizon_s=2.0)
        path = tmp_path / "plan.json"
        plan.to_json(path)
        assert FaultPlan.from_json(path) == plan
        # The payload is plain JSON with string kinds.
        payload = json.loads(path.read_text())
        assert all(isinstance(r["kind"], str) for r in payload["faults"])

    def test_from_json_accepts_bare_list(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps([{"kind": "transient", "time_s": 0.1, "device": 0}]))
        plan = FaultPlan.from_json(path)
        assert len(plan) == 1 and plan.events[0].kind is FaultKind.TRANSIENT

    def test_generate_node_losses(self):
        plan = FaultPlan.generate(
            3, num_devices=8, horizon_s=1.0, n_device_lost=0, n_node_lost=2
        )
        losses = plan.of_kind(FaultKind.NODE_LOST)
        assert len(losses) == 2
        assert all(0 <= e.device < 8 for e in losses)
        assert plan == FaultPlan.generate(
            3, num_devices=8, horizon_s=1.0, n_device_lost=0, n_node_lost=2
        )

    def test_node_lost_round_trips_through_json(self, tmp_path):
        plan = FaultPlan((FaultEvent(FaultKind.NODE_LOST, 0.5, 3),))
        path = tmp_path / "plan.json"
        plan.to_json(path)
        loaded = FaultPlan.from_json(path)
        assert loaded == plan
        assert loaded.events[0].kind is FaultKind.NODE_LOST

    def test_validate_devices_accepts_in_range(self):
        plan = FaultPlan((FaultEvent(FaultKind.TRANSIENT, 0.0, 3),))
        plan.validate_devices(4)  # no raise

    def test_validate_devices_names_offending_event(self):
        plan = FaultPlan((
            FaultEvent(FaultKind.TRANSIENT, 0.0, 0),
            FaultEvent(FaultKind.DEVICE_LOST, 1.0, 12),
        ))
        with pytest.raises(ConfigurationError, match="device 12"):
            plan.validate_devices(8)
        with pytest.raises(ConfigurationError):
            plan.validate_devices(0)


class TestFromJsonErrorPaths:
    """Malformed plan files must raise ConfigurationError, not trace back."""

    def write(self, tmp_path, payload) -> str:
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(payload))
        return path

    def test_unknown_kind(self, tmp_path):
        path = self.write(tmp_path, [{"kind": "meteor", "time_s": 0.1, "device": 0}])
        with pytest.raises(ConfigurationError, match="unknown fault kind"):
            FaultPlan.from_json(path)

    def test_negative_time(self, tmp_path):
        path = self.write(tmp_path, [{"kind": "transient", "time_s": -1.0, "device": 0}])
        with pytest.raises(ConfigurationError, match="time_s"):
            FaultPlan.from_json(path)

    def test_extra_keys_rejected_with_index(self, tmp_path):
        path = self.write(
            tmp_path,
            [
                {"kind": "transient", "time_s": 0.0, "device": 0},
                {"kind": "transfer", "time_s": 0.1, "device": 1, "blast_radius": 3},
            ],
        )
        with pytest.raises(ConfigurationError, match="event 1.*blast_radius"):
            FaultPlan.from_json(path)

    def test_top_level_object_needs_faults_key(self, tmp_path):
        path = self.write(tmp_path, {"events": []})
        with pytest.raises(ConfigurationError, match="'faults'"):
            FaultPlan.from_json(path)

    def test_non_dict_record(self, tmp_path):
        path = self.write(tmp_path, ["transient"])
        with pytest.raises(ConfigurationError, match="event 0"):
            FaultPlan.from_json(path)

    def test_non_list_records_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.from_dicts("not-a-list")
        with pytest.raises(ConfigurationError):
            FaultPlan.from_dicts(42)


class TestFaultInjector:
    def test_poll_arms_due_faults_only(self):
        plan = FaultPlan((
            FaultEvent(FaultKind.TRANSIENT, 1.0, 0, count=2),
            FaultEvent(FaultKind.TRANSFER, 5.0, 0),
        ))
        inj = FaultInjector(plan)
        assert inj.poll(0.5) == []
        assert not inj.take_kernel_fault(0)
        inj.poll(1.0)
        assert inj.stats.injected["transient"] == 1
        assert inj.take_kernel_fault(0)
        assert inj.take_kernel_fault(0)
        assert not inj.take_kernel_fault(0)  # count exhausted
        assert not inj.take_transfer_fault(0)  # not yet due

    def test_poll_returns_device_losses_for_driver(self):
        plan = FaultPlan((FaultEvent(FaultKind.DEVICE_LOST, 1.0, 2),))
        inj = FaultInjector(plan)
        losses = inj.poll(2.0)
        assert [e.device for e in losses] == [2]
        # The injector records nothing until the driver applies it.
        assert inj.stats.device_losses == 0
        inj.note_device_lost(2, 1.0, orphans=3)
        assert inj.stats.device_losses == 1
        assert inj.stats.orphaned_tensors == 3
        assert inj.stats.lost_at == {2: 1.0}

    def test_straggler_window_scales_compute(self):
        plan = FaultPlan((
            FaultEvent(FaultKind.STRAGGLER, 1.0, 0, duration_s=2.0, slow_factor=3.0),
        ))
        inj = FaultInjector(plan)
        inj.poll(1.5)
        assert inj.compute_factor(0) == pytest.approx(3.0)
        assert inj.compute_factor(1) == 1.0  # other device unaffected
        inj.poll(4.0)  # window [1, 3) is over
        assert inj.compute_factor(0) == 1.0

    def test_overlapping_windows_compound(self):
        plan = FaultPlan((
            FaultEvent(FaultKind.STRAGGLER, 0.0, 0, duration_s=2.0, slow_factor=2.0),
            FaultEvent(FaultKind.STRAGGLER, 1.0, 0, duration_s=2.0, slow_factor=3.0),
        ))
        inj = FaultInjector(plan)
        inj.poll(1.5)
        assert inj.compute_factor(0) == pytest.approx(6.0)

    def test_dead_device_stops_faulting(self):
        plan = FaultPlan((
            FaultEvent(FaultKind.TRANSIENT, 0.0, 1, count=5),
            FaultEvent(FaultKind.STRAGGLER, 0.0, 1, duration_s=10.0, slow_factor=2.0),
        ))
        inj = FaultInjector(plan)
        inj.poll(1.0)
        inj.note_device_lost(1, 1.0, orphans=0)
        assert not inj.take_kernel_fault(1)
        assert inj.compute_factor(1) == 1.0

    def test_drain_flushes_remaining(self):
        plan = FaultPlan((FaultEvent(FaultKind.TRANSFER, 99.0, 0),))
        inj = FaultInjector(plan)
        inj.poll(1.0)
        assert inj.drain() == []
        assert inj.take_transfer_fault(0)
        assert inj.drain() == []  # idempotent once empty

    def test_arming_validates_devices_against_cluster(self):
        plan = FaultPlan((FaultEvent(FaultKind.DEVICE_LOST, 1.0, 12),))
        with pytest.raises(ConfigurationError, match="device 12"):
            FaultInjector(plan, num_devices=8)
        FaultInjector(plan)  # without a cluster size, no validation
        FaultInjector(plan, num_devices=16)  # in range: fine

    def test_poll_returns_node_losses_for_driver(self):
        plan = FaultPlan((FaultEvent(FaultKind.NODE_LOST, 1.0, 2),))
        inj = FaultInjector(plan)
        losses = inj.poll(2.0)
        assert [e.kind for e in losses] == [FaultKind.NODE_LOST]
        assert inj.stats.injected["node_lost"] == 1


class TestRetryPolicy:
    def test_backoff_is_exponential(self):
        p = RetryPolicy(max_attempts=5, backoff_base_s=0.1, backoff_factor=2.0)
        assert p.backoff_s(1) == pytest.approx(0.1)
        assert p.backoff_s(3) == pytest.approx(0.4)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy().backoff_s(0)


class TestFaultStats:
    def test_availability_charges_dead_tail(self):
        stats = FaultStats()
        stats.lost_at[0] = 2.0
        # 4 devices over 10 s = 40 device-s; device 0 dead for 8 s.
        assert stats.availability(10.0, 4) == pytest.approx(100.0 * (1 - 8 / 40))

    def test_availability_empty_run_is_full(self):
        assert FaultStats().availability(0.0, 4) == 100.0

    def test_degraded_seconds_clip_to_makespan(self):
        stats = FaultStats()
        stats.straggler_windows.append((0, 1.0, 100.0, 2.0))
        assert stats.degraded_device_s(5.0) == pytest.approx(4.0)

    def test_degraded_seconds_merge_overlaps_per_device(self):
        # Regression: two overlapping windows on one device used to be
        # summed independently, double-counting the shared second.
        stats = FaultStats()
        stats.straggler_windows.append((0, 1.0, 3.0, 2.0))
        stats.straggler_windows.append((0, 2.0, 4.0, 3.0))
        assert stats.degraded_device_s(10.0) == pytest.approx(3.0)  # [1,4), not 4.0

    def test_degraded_seconds_distinct_devices_still_add(self):
        stats = FaultStats()
        stats.straggler_windows.append((0, 1.0, 3.0, 2.0))
        stats.straggler_windows.append((1, 2.0, 4.0, 3.0))
        assert stats.degraded_device_s(10.0) == pytest.approx(4.0)

    def test_degraded_seconds_disjoint_same_device(self):
        stats = FaultStats()
        stats.straggler_windows.append((0, 0.0, 1.0, 2.0))
        stats.straggler_windows.append((0, 5.0, 6.0, 2.0))
        assert stats.degraded_device_s(10.0) == pytest.approx(2.0)

    def test_summary_is_json_ready_and_sorted(self):
        stats = FaultStats()
        stats.record_recovery("transient", 0.25)
        out = stats.summary(makespan_s=1.0, num_devices=2)
        assert list(out["injected"]) == sorted(out["injected"])
        assert out["recovery_latency_s"]["transient"] == [0.25]
        json.dumps(out)  # must serialise without a custom encoder


class TestGrayFaultEvents:
    def test_heartbeat_loss_needs_a_window(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(FaultKind.HEARTBEAT_LOSS, 0.0, 0)
        ev = FaultEvent(FaultKind.HEARTBEAT_LOSS, 0.0, 0, duration_s=0.5)
        assert ev.duration_s == 0.5

    def test_node_flap_validates_period_against_duration(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(FaultKind.NODE_FLAP, 0.0, 0)  # no down time
        with pytest.raises(ConfigurationError):
            FaultEvent(FaultKind.NODE_FLAP, 0.0, 0, duration_s=1.0, period_s=0.5)
        # period 0 means the 2x-duration default; explicit >= duration is fine.
        FaultEvent(FaultKind.NODE_FLAP, 0.0, 0, duration_s=1.0)
        FaultEvent(FaultKind.NODE_FLAP, 0.0, 0, duration_s=1.0, period_s=3.0)

    def test_gray_json_round_trip_keeps_period(self, tmp_path):
        plan = FaultPlan((
            FaultEvent(FaultKind.NODE_FLAP, 1.0, 2, duration_s=0.25,
                       count=3, period_s=1.5),
            FaultEvent(FaultKind.HEARTBEAT_LOSS, 2.0, 5, duration_s=0.75),
        ))
        path = tmp_path / "plan.json"
        plan.to_json(path)
        loaded = FaultPlan.from_json(path)
        assert loaded == plan
        flap = loaded.of_kind(FaultKind.NODE_FLAP)[0]
        assert (flap.period_s, flap.count) == (1.5, 3)

    def test_of_kind_accepts_enum_and_string(self):
        plan = FaultPlan((
            FaultEvent(FaultKind.NODE_FLAP, 1.0, 2, duration_s=0.25),
            FaultEvent(FaultKind.HEARTBEAT_LOSS, 2.0, 5, duration_s=0.75),
        ))
        assert plan.of_kind(FaultKind.NODE_FLAP) == plan.of_kind("node_flap")
        assert len(plan.of_kind("heartbeat_loss")) == 1

    def test_validate_devices_names_the_gray_offender(self):
        plan = FaultPlan((
            FaultEvent(FaultKind.HEARTBEAT_LOSS, 1.0, 12, duration_s=0.5),
        ))
        with pytest.raises(ConfigurationError, match="device 12"):
            plan.validate_devices(8)

    def test_generate_draws_gray_faults(self):
        plan = FaultPlan.generate(
            7, num_devices=8, horizon_s=1.0,
            n_transient=0, n_transfer=0, n_straggler=0, n_device_lost=0,
            n_heartbeat_loss=2, n_node_flap=1, flap_cycles=3,
        )
        silences = plan.of_kind("heartbeat_loss")
        flaps = plan.of_kind("node_flap")
        assert len(silences) == 2 and len(flaps) == 1
        assert all(e.duration_s > 0 for e in plan)
        assert flaps[0].count == 3
        assert flaps[0].period_s == pytest.approx(2 * flaps[0].duration_s)
        assert plan == FaultPlan.generate(
            7, num_devices=8, horizon_s=1.0,
            n_transient=0, n_transfer=0, n_straggler=0, n_device_lost=0,
            n_heartbeat_loss=2, n_node_flap=1, flap_cycles=3,
        )


class TestGrayInjector:
    def test_flap_expands_into_cycles(self):
        plan = FaultPlan((
            FaultEvent(FaultKind.NODE_FLAP, 1.0, 0, duration_s=0.5,
                       count=3, period_s=2.0),
        ))
        inj = FaultInjector(plan)
        times = []
        for t in (1.0, 3.0, 5.0):
            for e in inj.poll(t):
                assert e.kind is FaultKind.NODE_FLAP
                assert e.count == 1  # each expansion is one cycle
                times.append(e.time_s)
        assert times == [1.0, 3.0, 5.0]
        assert inj.stats.injected["node_flap"] == 3

    def test_silence_windows_report_silent_devices(self):
        inj = FaultInjector(FaultPlan())
        inj.note_heartbeat_loss([2, 3], 1.0, 2.0)
        assert inj.silent_devices(0.5) == frozenset()
        assert inj.silent_devices(1.0) == frozenset({2, 3})
        assert inj.silent_devices(1.9) == frozenset({2, 3})
        assert inj.silent_devices(2.0) == frozenset()  # window is [start, end)
        assert inj.stats.heartbeat_losses == 1

    def test_restore_closes_the_down_window(self):
        inj = FaultInjector(FaultPlan())
        inj.note_device_lost(1, 1.0, orphans=0)
        inj.note_device_restored(1, 3.0)
        assert inj.stats.device_restores == 1
        assert inj.stats.down_windows == [[1, 1.0, 3.0]]


class TestAvailabilityWindows:
    def test_disjoint_flap_windows_sum_without_double_count(self):
        stats = FaultStats()
        # One device flaps twice: down [1, 2) and [5, 6) of a 10 s run.
        stats.open_down_window(0, 1.0)
        stats.close_down_window(0, 2.0)
        stats.open_down_window(0, 5.0)
        stats.close_down_window(0, 6.0)
        # 2 dead device-seconds of 40: 95%.
        assert stats.availability(10.0, 4) == pytest.approx(95.0)

    def test_open_window_clips_to_makespan(self):
        stats = FaultStats()
        stats.open_down_window(0, 8.0)
        assert stats.availability(10.0, 4) == pytest.approx(95.0)

    def test_reopen_while_open_is_idempotent(self):
        stats = FaultStats()
        stats.open_down_window(0, 1.0)
        stats.open_down_window(0, 1.5)  # duplicate down event: ignored
        stats.close_down_window(0, 2.0)
        assert stats.availability(10.0, 1) == pytest.approx(90.0)

    def test_legacy_lost_at_still_charges_devices_without_windows(self):
        stats = FaultStats()
        stats.lost_at[0] = 2.0  # permanent loss recorded the old way
        stats.open_down_window(1, 4.0)
        stats.close_down_window(1, 5.0)
        # dev 0: [2, 10) = 8 s; dev 1: [4, 5) = 1 s; of 20 device-s.
        assert stats.availability(10.0, 2) == pytest.approx(100 * (1 - 9 / 20))


@st.composite
def loss_restore_timelines(draw):
    """Per-device alternating loss/restore times inside a 10 s run."""
    num_devices = draw(st.integers(1, 4))
    timelines = {}
    for dev in range(num_devices):
        k = draw(st.integers(0, 3))
        times = sorted(
            draw(
                st.lists(
                    st.floats(0.0, 10.0, allow_nan=False, allow_infinity=False),
                    min_size=2 * k, max_size=2 * k, unique=True,
                )
            )
        )
        timelines[dev] = times
    return num_devices, timelines


class TestAvailabilityProperties:
    """Property: availability equals brute-force dead-time integration."""

    @given(loss_restore_timelines())
    @settings(max_examples=60, deadline=None)
    def test_availability_matches_brute_force(self, case):
        num_devices, timelines = case
        makespan = 10.0
        stats = FaultStats()
        dead = 0.0
        for dev, times in timelines.items():
            for i, t in enumerate(times):
                if i % 2 == 0:
                    stats.open_down_window(dev, t)
                else:
                    stats.close_down_window(dev, t)
            # Brute-force: pair the alternating times, clip open tails.
            for i in range(0, len(times), 2):
                start = times[i]
                end = times[i + 1] if i + 1 < len(times) else makespan
                dead += max(0.0, min(end, makespan) - min(start, makespan))
        expected = 100.0 * (1.0 - dead / (makespan * num_devices))
        assert stats.availability(makespan, num_devices) == pytest.approx(expected)
        assert 0.0 <= stats.availability(makespan, num_devices) <= 100.0

    @given(st.lists(st.tuples(st.floats(0, 5), st.floats(0, 5)), max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_repeated_loss_restore_never_exceeds_full_downtime(self, cycles):
        """Flapping one device repeatedly can never double-charge time."""
        stats = FaultStats()
        for a, b in cycles:
            start, end = min(a, b), max(a, b)
            stats.open_down_window(0, start)
            stats.close_down_window(0, max(end, start))
        avail = stats.availability(10.0, 1)
        assert 50.0 <= avail <= 100.0  # windows live in [0, 5] of 10 s


class TestCorruptionFaultEvents:
    def test_data_corruption_needs_window_and_probability(self):
        with pytest.raises(ConfigurationError, match="data_corruption duration_s"):
            FaultEvent(FaultKind.DATA_CORRUPTION, 0.0, 0, probability=0.5)
        with pytest.raises(ConfigurationError, match="data_corruption probability"):
            FaultEvent(FaultKind.DATA_CORRUPTION, 0.0, 0, duration_s=1.0)
        with pytest.raises(ConfigurationError, match="data_corruption probability"):
            FaultEvent(
                FaultKind.DATA_CORRUPTION, 0.0, 0, duration_s=1.0, probability=1.5
            )
        ev = FaultEvent(
            FaultKind.DATA_CORRUPTION, 0.0, 0, duration_s=1.0, probability=0.5
        )
        assert ev.probability == 0.5

    def test_probability_rejected_on_other_kinds(self):
        with pytest.raises(ConfigurationError, match="only meaningful"):
            FaultEvent(FaultKind.TRANSIENT, 0.0, 0, probability=0.5)
        with pytest.raises(ConfigurationError, match="only meaningful"):
            FaultEvent(FaultKind.TENSOR_BITFLIP, 0.0, 0, probability=0.5)

    def test_bitflip_is_a_point_event(self):
        ev = FaultEvent(FaultKind.TENSOR_BITFLIP, 2.0, 3)
        assert ev.duration_s == 0.0 and ev.probability == 0.0

    def test_corruption_json_round_trip_keeps_probability(self, tmp_path):
        plan = FaultPlan((
            FaultEvent(FaultKind.DATA_CORRUPTION, 1.0, 2, duration_s=0.25,
                       probability=0.7),
            FaultEvent(FaultKind.TENSOR_BITFLIP, 2.0, 5),
        ))
        path = tmp_path / "plan.json"
        plan.to_json(path)
        loaded = FaultPlan.from_json(path)
        assert loaded == plan
        corrupt = loaded.of_kind(FaultKind.DATA_CORRUPTION)[0]
        assert (corrupt.probability, corrupt.duration_s) == (0.7, 0.25)

    def test_validate_devices_names_the_corruption_offender(self):
        plan = FaultPlan((
            FaultEvent(FaultKind.DATA_CORRUPTION, 1.0, 12, duration_s=0.5,
                       probability=0.5),
        ))
        with pytest.raises(ConfigurationError, match="data_corruption.*device 12"):
            plan.validate_devices(8)

    def test_generate_draws_corruption_faults(self):
        plan = FaultPlan.generate(
            7, num_devices=8, horizon_s=1.0,
            n_transient=0, n_transfer=0, n_straggler=0, n_device_lost=0,
            n_data_corruption=2, n_tensor_bitflip=3,
            corruption_prob=0.7, corruption_window_frac=0.5,
        )
        corruptions = plan.of_kind("data_corruption")
        bitflips = plan.of_kind("tensor_bitflip")
        assert len(corruptions) == 2 and len(bitflips) == 3
        for e in corruptions:
            assert e.probability == 0.7
            assert e.duration_s == pytest.approx(0.5)
        assert plan == FaultPlan.generate(
            7, num_devices=8, horizon_s=1.0,
            n_transient=0, n_transfer=0, n_straggler=0, n_device_lost=0,
            n_data_corruption=2, n_tensor_bitflip=3,
            corruption_prob=0.7, corruption_window_frac=0.5,
        )

    def test_generate_rejects_bad_corruption_prob(self):
        with pytest.raises(ConfigurationError, match="corruption_prob"):
            FaultPlan.generate(
                0, num_devices=4, horizon_s=1.0,
                n_transient=0, n_transfer=0, n_straggler=0, n_device_lost=0,
                n_data_corruption=1, corruption_prob=0.0,
            )


class TestCorruptionInjector:
    def plan(self, prob=1.0):
        return FaultPlan((
            FaultEvent(FaultKind.DATA_CORRUPTION, 1.0, 0, duration_s=1.0,
                       probability=prob),
        ))

    def test_no_draws_outside_windows(self):
        inj = FaultInjector(self.plan())
        inj.poll(0.0)
        assert inj.take_corruption(0) is False  # window not yet open
        inj.poll(1.5)
        assert inj.take_corruption(0) is True  # p = 1 inside the window
        assert inj.take_corruption(1) is False  # other devices untouched
        inj.poll(2.5)
        assert inj.take_corruption(0) is False  # window closed

    def test_draw_sequence_is_plan_deterministic(self):
        """Kernels outside the window consume no draws: two runs that
        differ only in pre-window activity corrupt the same kernels."""
        a = FaultInjector(self.plan(prob=0.5))
        b = FaultInjector(self.plan(prob=0.5))
        a.poll(0.5)
        for _ in range(100):  # pre-window kernels draw nothing
            assert a.take_corruption(0) is False
        a.poll(1.2)
        b.poll(1.2)
        draws_a = [a.take_corruption(0) for _ in range(50)]
        draws_b = [b.take_corruption(0) for _ in range(50)]
        assert draws_a == draws_b
        assert any(draws_a) and not all(draws_a)  # p = 0.5 mixes

    def test_device_loss_clears_corruption_windows(self):
        inj = FaultInjector(self.plan())
        inj.poll(1.5)
        assert inj.take_corruption(0) is True
        inj.note_device_lost(0, 1.6, orphans=0)
        assert inj.take_corruption(0) is False

    def test_stats_count_corruption_injections(self):
        plan = FaultPlan((
            FaultEvent(FaultKind.DATA_CORRUPTION, 0.0, 0, duration_s=1.0,
                       probability=0.5),
            FaultEvent(FaultKind.TENSOR_BITFLIP, 0.5, 1),
        ))
        inj = FaultInjector(plan)
        losses = inj.poll(1.0)
        assert inj.stats.injected["data_corruption"] == 1
        assert inj.stats.injected["tensor_bitflip"] == 1
        assert [e.kind for e in losses] == [FaultKind.TENSOR_BITFLIP]

    def test_bitflip_returned_to_driver(self):
        """Bitflips need cluster cooperation (a resident tensor to hit),
        so the injector hands them back rather than arming them."""
        inj = FaultInjector(FaultPlan((
            FaultEvent(FaultKind.TENSOR_BITFLIP, 1.0, 2),
        )))
        assert inj.poll(0.5) == []
        (ev,) = inj.poll(1.5)
        assert ev.kind is FaultKind.TENSOR_BITFLIP and ev.device == 2
