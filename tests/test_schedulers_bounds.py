"""Unit tests for ReuseBounds and bound grids."""

import pytest

from repro.errors import ConfigurationError
from repro.schedulers.bounds import (
    THIRTEEN_SETTINGS,
    ReuseBounds,
    bounds_grid,
    enumerate_bounds,
)


class TestReuseBounds:
    def test_indexing_matches_fields(self):
        b = ReuseBounds(1.0, 2.0, 3.0)
        assert (b[0], b[1], b[2]) == (1.0, 2.0, 3.0)

    def test_index_out_of_range(self):
        with pytest.raises(IndexError):
            ReuseBounds()[3]

    def test_zeros(self):
        assert ReuseBounds.zeros().as_tuple() == (0.0, 0.0, 0.0)

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            ReuseBounds(-1.0, 0.0, 0.0)

    def test_from_sequence(self):
        assert ReuseBounds.from_sequence([1, 2, 3]).as_tuple() == (1.0, 2.0, 3.0)

    def test_from_sequence_wrong_length(self):
        with pytest.raises(ConfigurationError):
            ReuseBounds.from_sequence([1, 2])

    def test_str_compact(self):
        assert str(ReuseBounds(0, 2, 0)) == "(0,2,0)"
        assert str(ReuseBounds(0.5, 0, 0)) == "(0.5,0,0)"

    def test_frozen_and_hashable(self):
        assert len({ReuseBounds(0, 0, 0), ReuseBounds(0, 0, 0), ReuseBounds(1, 0, 0)}) == 2


class TestGrids:
    def test_enumerate_bounds_size(self):
        assert len(enumerate_bounds(2)) == 27

    def test_enumerate_bounds_zero(self):
        assert enumerate_bounds(0) == [ReuseBounds.zeros()]

    def test_enumerate_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            enumerate_bounds(-1)

    def test_bounds_grid_dedups_values(self):
        grid = bounds_grid((0, 2, 2.0))
        assert len(grid) == 8  # {0, 2}^3

    def test_bounds_grid_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            bounds_grid(())

    def test_thirteen_settings(self):
        assert len(THIRTEEN_SETTINGS) == 13
        assert len(set(THIRTEEN_SETTINGS)) == 13
        assert ReuseBounds(0, 0, 0) in THIRTEEN_SETTINGS
        for b in THIRTEEN_SETTINGS:
            assert all(0 <= v <= 2 for v in b.as_tuple())


class TestConstructionValidation:
    def test_negative_is_a_value_error(self):
        """ConfigurationError doubles as ValueError for generic callers."""
        with pytest.raises(ValueError):
            ReuseBounds(0.0, -2.0, 0.0)
        with pytest.raises(ValueError):
            ReuseBounds.from_sequence([0, 0, -1])

    def test_nan_rejected(self):
        with pytest.raises(ConfigurationError):
            ReuseBounds(float("nan"), 0.0, 0.0)

    def test_infinity_rejected(self):
        with pytest.raises(ConfigurationError):
            ReuseBounds(0.0, float("inf"), 0.0)


class TestScaled:
    def test_scaled_multiplies_componentwise(self):
        from repro.schedulers.bounds import ReuseBounds

        b = ReuseBounds(1, 4, 2).scaled(1.5)
        assert b.as_tuple() == (1.5, 6.0, 3.0)

    def test_scaled_rejects_bad_factor(self):
        import math

        import pytest

        from repro.errors import ConfigurationError
        from repro.schedulers.bounds import ReuseBounds

        with pytest.raises(ConfigurationError):
            ReuseBounds(1, 4, 2).scaled(-1.0)
        with pytest.raises(ConfigurationError):
            ReuseBounds(1, 4, 2).scaled(math.inf)
