"""Tests for the unified ``repro.serve.api.serve()`` entry point."""

import warnings

import pytest

from repro.core.config import MiccoConfig
from repro.errors import ConfigurationError
from repro.gpusim import CostModel, Topology
from repro.gpusim.device import GIB
from repro.schedulers.micco import MiccoScheduler
from repro.serve import (
    MiccoServer,
    MultiTenantServer,
    PoissonArrivals,
    ServeConfig,
    ShardedServer,
    TenantSpec,
    make_server,
    serve,
)
from repro.workloads import SyntheticWorkload, WorkloadParams

CONFIG = MiccoConfig(num_devices=2, memory_bytes=2 * GIB)


def stream(num_vectors=8):
    params = WorkloadParams(
        vector_size=8, tensor_size=64, repeated_rate=0.5,
        num_vectors=num_vectors, batch=2,
    )
    return SyntheticWorkload(params, seed=3).vectors()


def tenant_cfg(**kwargs):
    spec = WorkloadParams(vector_size=8, tensor_size=64, num_vectors=6, batch=2)
    return ServeConfig(
        tenants=(
            TenantSpec("a", PoissonArrivals(500.0), spec, weight=2.0),
            TenantSpec("b", PoissonArrivals(500.0), spec, weight=1.0),
        ),
        **kwargs,
    )


def sharded_cluster(num_devices=4, per_node=2):
    topo = Topology(num_devices=num_devices, devices_per_node=per_node)
    return MiccoConfig(num_devices=num_devices, cost_model=CostModel(topology=topo))


class TestDispatch:
    def test_default_config_uses_single_loop(self):
        server = make_server(cluster=CONFIG)
        assert type(server) is MiccoServer

    def test_tenants_select_multi_tenant(self):
        server = make_server(tenant_cfg(), cluster=CONFIG)
        assert type(server) is MultiTenantServer

    def test_sharded_selects_sharded(self):
        server = make_server(ServeConfig(sharded=True), cluster=sharded_cluster())
        assert type(server) is ShardedServer

    def test_sharded_wins_over_tenants(self):
        server = make_server(tenant_cfg(sharded=True), cluster=sharded_cluster())
        assert type(server) is ShardedServer


class TestServe:
    def test_single_stream_matches_direct_construction(self):
        vectors = stream()
        via_api = serve(
            ServeConfig(queue_capacity=4),
            cluster=CONFIG,
            vectors=vectors,
            arrivals=PoissonArrivals(500.0),
            seed=11,
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            direct = MiccoServer(
                MiccoScheduler(), CONFIG, ServeConfig(queue_capacity=4)
            ).run(vectors, PoissonArrivals(500.0), seed=11)
        assert via_api.summary() == direct.summary()

    def test_tenant_run(self):
        result = serve(tenant_cfg(), cluster=CONFIG, seed=5)
        assert result.tenants is not None
        assert set(result.tenants) == {"a", "b"}

    def test_sharded_run(self):
        result = serve(
            ServeConfig(sharded=True),
            cluster=sharded_cluster(),
            vectors=stream(),
            arrivals=PoissonArrivals(500.0),
            seed=2,
        )
        assert result.sharding is not None
        assert result.sharding["num_shards"] == 2

    def test_sharded_tenant_run(self):
        result = serve(tenant_cfg(sharded=True), cluster=sharded_cluster(), seed=2)
        assert result.sharding is not None
        assert result.tenants is not None

    def test_explicit_timestamps_accepted(self):
        vectors = stream(num_vectors=3)
        result = serve(
            cluster=CONFIG, vectors=vectors, arrivals=[0.0, 0.1, 0.2], seed=0
        )
        assert result.arrival_s == [0.0, 0.1, 0.2]

    def test_tenants_reject_explicit_stream(self):
        with pytest.raises(ConfigurationError):
            serve(tenant_cfg(), cluster=CONFIG, vectors=stream(), arrivals=[0.0])

    def test_single_stream_requires_vectors_and_arrivals(self):
        with pytest.raises(ConfigurationError):
            serve(ServeConfig(), cluster=CONFIG)
        with pytest.raises(ConfigurationError):
            serve(ServeConfig(), cluster=CONFIG, vectors=stream())


class TestDeprecation:
    def test_direct_construction_warns(self):
        with pytest.warns(DeprecationWarning, match="MiccoServer"):
            MiccoServer(config=CONFIG)
        with pytest.warns(DeprecationWarning, match="MultiTenantServer"):
            MultiTenantServer(config=CONFIG, serve=tenant_cfg())
        with pytest.warns(DeprecationWarning, match="ShardedServer"):
            ShardedServer(
                config=sharded_cluster(), serve=ServeConfig(sharded=True)
            )

    def test_api_paths_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            make_server(cluster=CONFIG)
            serve(
                cluster=CONFIG,
                vectors=stream(num_vectors=2),
                arrivals=[0.0, 0.1],
                seed=0,
            )
