"""Unit tests for the serving timeline (heap event loop)."""

import pytest

from repro.errors import ConfigurationError
from repro.serve.timeline import (
    SchedulingDone,
    Ticket,
    Timeline,
    VectorArrival,
    VectorCompletion,
)
from tests.conftest import make_vector


def ticket(vector_id=0):
    return Ticket(vector=make_vector(n_pairs=2, vector_id=vector_id), arrival_s=0.0)


class TestTimeline:
    def test_pops_in_time_order(self):
        tl = Timeline()
        tl.push(VectorArrival(3.0, ticket(0)))
        tl.push(VectorArrival(1.0, ticket(1)))
        tl.push(VectorArrival(2.0, ticket(2)))
        order = [tl.pop().time_s for _ in range(3)]
        assert order == [1.0, 2.0, 3.0]

    def test_ties_resolve_in_push_order(self):
        tl = Timeline()
        a, b = ticket(0), ticket(1)
        tl.push(VectorCompletion(1.0, a))
        tl.push(VectorArrival(1.0, b))
        assert tl.pop().ticket is a
        assert tl.pop().ticket is b

    def test_pop_advances_now(self):
        tl = Timeline()
        tl.push(VectorArrival(2.5, ticket()))
        assert tl.now == 0.0
        tl.pop()
        assert tl.now == 2.5

    def test_push_into_past_rejected(self):
        tl = Timeline()
        tl.push(VectorArrival(2.0, ticket()))
        tl.pop()
        with pytest.raises(ConfigurationError):
            tl.push(SchedulingDone(1.0, ticket()))

    def test_negative_event_time_rejected(self):
        with pytest.raises(ConfigurationError):
            VectorArrival(-1.0, ticket())

    def test_len_and_bool(self):
        tl = Timeline()
        assert not tl and len(tl) == 0
        tl.push(VectorArrival(1.0, ticket()))
        assert tl and len(tl) == 1

    def test_empty_pop_and_peek_raise(self):
        tl = Timeline()
        with pytest.raises(IndexError):
            tl.pop()
        with pytest.raises(IndexError):
            tl.peek_time()

    def test_peek_does_not_advance(self):
        tl = Timeline()
        tl.push(VectorArrival(4.0, ticket()))
        assert tl.peek_time() == 4.0
        assert tl.now == 0.0
        assert len(tl) == 1
