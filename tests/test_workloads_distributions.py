"""Unit tests for repeated-tensor selection distributions."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.distributions import (
    GaussianPicker,
    UniformPicker,
    make_picker,
    sample_multiplicities,
)


class TestUniformPicker:
    def test_indices_in_range(self, rng):
        idx = UniformPicker().pick(100, 1000, rng)
        assert idx.min() >= 0 and idx.max() < 100

    def test_covers_pool_roughly_evenly(self, rng):
        counts = np.bincount(UniformPicker().pick(10, 10_000, rng), minlength=10)
        assert counts.min() > 800  # expectation 1000 each

    def test_empty_pool_rejected(self, rng):
        with pytest.raises(WorkloadError):
            UniformPicker().pick(0, 5, rng)


class TestGaussianPicker:
    def test_indices_in_range(self, rng):
        idx = GaussianPicker(0.05).pick(100, 1000, rng)
        assert idx.min() >= 0 and idx.max() < 100

    def test_more_concentrated_than_uniform(self):
        """Top-decile mass of gaussian picks far exceeds uniform's."""
        pool, n = 200, 4000
        cu = np.sort(sample_multiplicities(UniformPicker(), pool, n, seed=7))[::-1]
        cg = np.sort(sample_multiplicities(GaussianPicker(0.03), pool, n, seed=7))[::-1]
        top = pool // 10
        assert cg[:top].sum() > 2 * cu[:top].sum()

    def test_smaller_sigma_is_more_biased(self):
        pool, n = 200, 4000
        tight = np.sort(sample_multiplicities(GaussianPicker(0.01), pool, n, seed=3))[::-1]
        loose = np.sort(sample_multiplicities(GaussianPicker(0.2), pool, n, seed=3))[::-1]
        assert tight[:10].sum() > loose[:10].sum()

    def test_center_varies_between_calls(self):
        """Per-call random centers: two draws cluster in different places."""
        rng = np.random.default_rng(0)
        p = GaussianPicker(0.02)
        means = [p.pick(1000, 50, rng).mean() for _ in range(8)]
        assert np.std(means) > 50

    def test_sigma_frac_validated(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            GaussianPicker(0.0)

    def test_empty_pool_rejected(self, rng):
        with pytest.raises(WorkloadError):
            GaussianPicker().pick(0, 5, rng)


class TestFactory:
    def test_uniform(self):
        assert isinstance(make_picker("uniform"), UniformPicker)

    def test_gaussian_passes_sigma(self):
        p = make_picker("gaussian", sigma_frac=0.1)
        assert isinstance(p, GaussianPicker)
        assert p.sigma_frac == 0.1

    def test_unknown_rejected(self):
        with pytest.raises(WorkloadError):
            make_picker("zipf")
