"""Unit tests for the CLI entry point."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_experiment_positional(self):
        args = build_parser().parse_args(["fig7"])
        assert args.experiment == "fig7"
        assert not args.full

    def test_full_flag(self):
        args = build_parser().parse_args(["tab4", "--full"])
        assert args.full


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig5", "fig7", "tab6"):
            assert name in out

    def test_unknown_experiment(self, capsys):
        assert main(["nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_runs_experiment(self, capsys, monkeypatch):
        import repro.experiments as ex

        monkeypatch.setitem(ex.EXPERIMENTS, "fig7", type("M", (), {"main": staticmethod(lambda quick: f"ran quick={quick}")}))
        assert main(["fig7"]) == 0
        assert "ran quick=True" in capsys.readouterr().out

    def test_full_propagates(self, capsys, monkeypatch):
        import repro.experiments as ex

        monkeypatch.setitem(ex.EXPERIMENTS, "fig7", type("M", (), {"main": staticmethod(lambda quick: f"ran quick={quick}")}))
        assert main(["fig7", "--full"]) == 0
        assert "ran quick=False" in capsys.readouterr().out

    def test_all_with_json(self, capsys, monkeypatch, tmp_path):
        import repro.experiments as ex
        from repro.experiments.report import Table

        class FakeResult:
            rows = [{"v": 2}]

            def table(self):
                t = Table("fake-table", ["v"])
                t.add_row(2)
                return t

        fake = type("M", (), {"run": staticmethod(lambda quick: FakeResult())})
        monkeypatch.setattr(ex, "EXPERIMENTS", {"fig7": fake})
        out_path = tmp_path / "results.json"
        assert main(["all", "--json", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "===== fig7 =====" in out
        assert "fake-table" in out
        assert out_path.exists()


class TestServe:
    def test_serve_parser_defaults(self):
        from repro.cli import build_serve_parser

        args = build_serve_parser().parse_args([])
        assert args.rate == 100.0
        assert args.scheduler == "micco"
        assert args.arrivals == "poisson"
        assert args.json == "serve_report.json"

    def test_serve_end_to_end(self, capsys, tmp_path):
        report = tmp_path / "report.json"
        rc = main([
            "serve", "--rate", "200", "--scheduler", "micco",
            "--num-vectors", "6", "--vector-size", "8", "--tensor-size", "64",
            "--batch", "2", "--num-devices", "2", "--json", str(report),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "p50" in out and "latency report written" in out
        import json

        payload = json.loads(report.read_text())
        assert payload["summary"]["completed"] == 6
        assert payload["config"]["scheduler"] == "micco"

    def test_serve_groute_and_trace_export(self, capsys, tmp_path):
        report = tmp_path / "report.json"
        trace = tmp_path / "trace.json"
        rc = main([
            "serve", "--scheduler", "groute", "--num-vectors", "4",
            "--vector-size", "8", "--tensor-size", "64", "--batch", "2",
            "--num-devices", "2", "--json", str(report), "--trace", str(trace),
        ])
        assert rc == 0
        import json

        assert json.loads(trace.read_text())["traceEvents"]

    def test_serve_trace_arrivals_from_json(self, capsys, tmp_path):
        from repro.serve import TraceArrivals

        arrivals = tmp_path / "arrivals.json"
        TraceArrivals([0.0, 0.01, 0.02, 0.03]).to_json(arrivals)
        report = tmp_path / "report.json"
        rc = main([
            "serve", "--arrivals", str(arrivals), "--num-vectors", "4",
            "--vector-size", "8", "--tensor-size", "64", "--batch", "2",
            "--num-devices", "2", "--json", str(report),
        ])
        assert rc == 0

    def test_serve_unknown_arrivals(self, capsys, tmp_path):
        rc = main(["serve", "--arrivals", "fractal", "--json", str(tmp_path / "r.json")])
        assert rc == 2
        assert "unknown arrival process" in capsys.readouterr().err

    def test_list_mentions_serve(self, capsys):
        assert main(["list"]) == 0
        assert "serve" in capsys.readouterr().out


class TestChaos:
    def test_chaos_parser_inherits_serve_knobs(self):
        from repro.cli import build_chaos_parser

        args = build_chaos_parser().parse_args([])
        assert args.rate == 100.0  # serve knob present
        assert args.kill == 1
        assert args.json == "chaos_report.json"  # chaos-specific default

    def test_chaos_end_to_end_and_deterministic(self, capsys, tmp_path):
        import json

        def run(tag):
            report = tmp_path / f"{tag}.json"
            trace = tmp_path / f"{tag}.trace.json"
            rc = main([
                "chaos", "--seed", "0", "--num-vectors", "8",
                "--vector-size", "8", "--tensor-size", "64", "--batch", "2",
                "--num-devices", "4", "--json", str(report), "--trace", str(trace),
            ])
            assert rc == 0
            return report.read_text(), trace.read_text()

        r1, t1 = run("a")
        r2, t2 = run("b")
        assert r1 == r2  # byte-identical report
        assert t1 == t2  # byte-identical Chrome trace
        payload = json.loads(r1)
        assert payload["faults"]["device_losses"] == 1
        assert "availability_pct" in payload["faults"]
        assert payload["fault_plan"]
        out = capsys.readouterr().out
        assert "availability" in out and "recovery" in out

    def test_chaos_save_plan_feeds_serve_faults(self, capsys, tmp_path):
        import json

        plan = tmp_path / "plan.json"
        rc = main([
            "chaos", "--seed", "3", "--num-vectors", "6", "--vector-size", "8",
            "--tensor-size", "64", "--batch", "2", "--num-devices", "2",
            "--json", str(tmp_path / "c.json"), "--save-plan", str(plan),
        ])
        assert rc == 0 and plan.exists()
        report = tmp_path / "s.json"
        rc = main([
            "serve", "--faults", str(plan), "--num-vectors", "6",
            "--vector-size", "8", "--tensor-size", "64", "--batch", "2",
            "--num-devices", "2", "--json", str(report),
        ])
        assert rc == 0
        assert "faults" in json.loads(report.read_text())

    def test_serve_missing_fault_plan(self, capsys, tmp_path):
        rc = main([
            "serve", "--faults", str(tmp_path / "absent.json"),
            "--json", str(tmp_path / "r.json"),
        ])
        assert rc == 2
        assert "does not exist" in capsys.readouterr().err

    def test_chaos_no_recovery_flag(self, capsys, tmp_path):
        rc = main([
            "chaos", "--seed", "1", "--no-recovery", "--num-vectors", "6",
            "--vector-size", "8", "--tensor-size", "64", "--batch", "2",
            "--num-devices", "2", "--json", str(tmp_path / "r.json"),
        ])
        assert rc == 0

    def test_list_mentions_chaos(self, capsys):
        assert main(["list"]) == 0
        assert "chaos" in capsys.readouterr().out


class TestServeConfigFile:
    def make_config(self, tmp_path, **overrides):
        from repro.serve import AutoscalerConfig, PoissonArrivals, ServeConfig, TenantSpec
        from repro.workloads import WorkloadParams

        cfg = ServeConfig(
            tenants=(
                TenantSpec(
                    "heavy",
                    PoissonArrivals(200.0),
                    WorkloadParams(num_vectors=5, vector_size=8, tensor_size=64, batch=2),
                    weight=3.0,
                ),
                TenantSpec(
                    "light",
                    PoissonArrivals(200.0),
                    WorkloadParams(num_vectors=5, vector_size=8, tensor_size=64, batch=2),
                ),
            ),
            autoscaler=AutoscalerConfig(max_devices=4),
            **overrides,
        )
        path = tmp_path / "serve.json"
        cfg.to_json(path)
        return path

    def test_config_end_to_end_multi_tenant(self, capsys, tmp_path):
        import json

        cfg = self.make_config(tmp_path)
        report = tmp_path / "report.json"
        rc = main(["serve", "--config", str(cfg), "--num-devices", "4", "--json", str(report)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "tenant" in out and "heavy" in out and "autoscale" in out
        payload = json.loads(report.read_text())
        assert set(payload["tenants"]) == {"heavy", "light"}
        assert payload["summary"]["queue"]["policy"] == "weighted"
        assert "autoscale" in payload
        assert payload["config"]["serve"]["tenants"]

    def test_config_runs_are_byte_identical(self, capsys, tmp_path):
        cfg = self.make_config(tmp_path)

        def run(tag):
            report = tmp_path / f"{tag}.json"
            assert main(["serve", "--config", str(cfg), "--json", str(report)]) == 0
            return report.read_text()

        assert run("a") == run("b")

    def test_flags_override_config(self, capsys, tmp_path):
        import json

        cfg = self.make_config(tmp_path, queue_capacity=7)
        report = tmp_path / "report.json"
        rc = main([
            "serve", "--config", str(cfg), "--queue-capacity", "3",
            "--queue-policy", "fifo", "--json", str(report),
        ])
        assert rc == 0
        payload = json.loads(report.read_text())
        assert payload["summary"]["queue"]["capacity"] == 3
        assert payload["summary"]["queue"]["policy"] == "fifo"

    def test_missing_config_errors(self, capsys, tmp_path):
        rc = main(["serve", "--config", str(tmp_path / "absent.json"), "--json", str(tmp_path / "r.json")])
        assert rc == 2
        assert "does not exist" in capsys.readouterr().err

    def test_bad_config_reports_cleanly(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"queue_capcity": 3}')
        rc = main(["serve", "--config", str(bad), "--json", str(tmp_path / "r.json")])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_corrupt_json_reports_cleanly(self, capsys, tmp_path):
        corrupt = tmp_path / "corrupt.json"
        corrupt.write_text("not json at all")
        for flag in ("--config", "--arrivals", "--faults"):
            rc = main(["serve", flag, str(corrupt), "--json", str(tmp_path / "r.json")])
            assert rc == 2
            assert "malformed JSON" in capsys.readouterr().err

    def test_example_tenants_config_parses(self):
        from pathlib import Path

        from repro.serve import ServeConfig

        example = Path(__file__).resolve().parent.parent / "examples" / "tenants.json"
        cfg = ServeConfig.from_json(example)
        assert len(cfg.tenants) == 2 and cfg.autoscaler is not None


class TestFailureDomainsCli:
    def test_new_flags_parse_with_defaults(self):
        from repro.cli import build_chaos_parser, build_serve_parser

        args = build_serve_parser().parse_args([])
        assert args.devices_per_node is None
        assert args.warm_restore is False
        assert args.fault_aware is False
        cargs = build_chaos_parser().parse_args([])
        assert cargs.kill_nodes == 0

    def test_node_loss_end_to_end(self, capsys, tmp_path):
        import json

        report = tmp_path / "r.json"
        rc = main([
            "chaos", "--seed", "0", "--num-vectors", "8", "--vector-size", "8",
            "--tensor-size", "64", "--batch", "2", "--num-devices", "8",
            "--devices-per-node", "4", "--kill", "0", "--kill-nodes", "1",
            "--json", str(report),
        ])
        assert rc == 0
        payload = json.loads(report.read_text())
        assert payload["faults"]["node_losses"] == 1
        assert payload["faults"]["device_losses"] == 4  # whole node
        out = capsys.readouterr().out
        assert "node loss" in out

    def test_warm_restore_and_fault_aware_flags(self, capsys, tmp_path):
        import json

        report = tmp_path / "r.json"
        rc = main([
            "chaos", "--seed", "0", "--num-vectors", "8", "--vector-size", "8",
            "--tensor-size", "64", "--batch", "2", "--num-devices", "4",
            "--warm-restore", "--fault-aware", "--json", str(report),
        ])
        assert rc == 0
        payload = json.loads(report.read_text())
        assert payload["config"]["serve"]["warm_restore"] is True
        assert payload["config"]["serve"]["fault_aware_admission"] is True
        assert payload["queue"]["policy"] == "fault-aware(fifo)"
        assert "journal" in payload

    def test_node_loss_runs_are_byte_identical(self, tmp_path):
        def run(tag):
            report = tmp_path / f"{tag}.json"
            trace = tmp_path / f"{tag}.trace.json"
            rc = main([
                "chaos", "--seed", "7", "--num-vectors", "8", "--vector-size", "8",
                "--tensor-size", "64", "--batch", "2", "--num-devices", "8",
                "--devices-per-node", "4", "--kill-nodes", "1",
                "--json", str(report), "--trace", str(trace),
            ])
            assert rc == 0
            return report.read_text(), trace.read_text()

        assert run("a") == run("b")
