"""Unit tests for the CLI entry point."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_experiment_positional(self):
        args = build_parser().parse_args(["fig7"])
        assert args.experiment == "fig7"
        assert not args.full

    def test_full_flag(self):
        args = build_parser().parse_args(["tab4", "--full"])
        assert args.full


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig5", "fig7", "tab6"):
            assert name in out

    def test_unknown_experiment(self, capsys):
        assert main(["nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_runs_experiment(self, capsys, monkeypatch):
        import repro.experiments as ex

        monkeypatch.setitem(ex.EXPERIMENTS, "fig7", type("M", (), {"main": staticmethod(lambda quick: f"ran quick={quick}")}))
        assert main(["fig7"]) == 0
        assert "ran quick=True" in capsys.readouterr().out

    def test_full_propagates(self, capsys, monkeypatch):
        import repro.experiments as ex

        monkeypatch.setitem(ex.EXPERIMENTS, "fig7", type("M", (), {"main": staticmethod(lambda quick: f"ran quick={quick}")}))
        assert main(["fig7", "--full"]) == 0
        assert "ran quick=False" in capsys.readouterr().out

    def test_all_with_json(self, capsys, monkeypatch, tmp_path):
        import repro.experiments as ex
        from repro.experiments.report import Table

        class FakeResult:
            rows = [{"v": 2}]

            def table(self):
                t = Table("fake-table", ["v"])
                t.add_row(2)
                return t

        fake = type("M", (), {"run": staticmethod(lambda quick: FakeResult())})
        monkeypatch.setattr(ex, "EXPERIMENTS", {"fig7": fake})
        out_path = tmp_path / "results.json"
        assert main(["all", "--json", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "===== fig7 =====" in out
        assert "fake-table" in out
        assert out_path.exists()
