"""Unit tests for the CLI entry point."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_experiment_positional(self):
        args = build_parser().parse_args(["fig7"])
        assert args.experiment == "fig7"
        assert not args.full

    def test_full_flag(self):
        args = build_parser().parse_args(["tab4", "--full"])
        assert args.full


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig5", "fig7", "tab6"):
            assert name in out

    def test_unknown_experiment(self, capsys):
        assert main(["nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_runs_experiment(self, capsys, monkeypatch):
        import repro.experiments as ex

        monkeypatch.setitem(ex.EXPERIMENTS, "fig7", type("M", (), {"main": staticmethod(lambda quick: f"ran quick={quick}")}))
        assert main(["fig7"]) == 0
        assert "ran quick=True" in capsys.readouterr().out

    def test_full_propagates(self, capsys, monkeypatch):
        import repro.experiments as ex

        monkeypatch.setitem(ex.EXPERIMENTS, "fig7", type("M", (), {"main": staticmethod(lambda quick: f"ran quick={quick}")}))
        assert main(["fig7", "--full"]) == 0
        assert "ran quick=False" in capsys.readouterr().out

    def test_all_with_json(self, capsys, monkeypatch, tmp_path):
        import repro.experiments as ex
        from repro.experiments.report import Table

        class FakeResult:
            rows = [{"v": 2}]

            def table(self):
                t = Table("fake-table", ["v"])
                t.add_row(2)
                return t

        fake = type("M", (), {"run": staticmethod(lambda quick: FakeResult())})
        monkeypatch.setattr(ex, "EXPERIMENTS", {"fig7": fake})
        out_path = tmp_path / "results.json"
        assert main(["all", "--json", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "===== fig7 =====" in out
        assert "fake-table" in out
        assert out_path.exists()


class TestServe:
    def test_serve_parser_defaults(self):
        from repro.cli import build_serve_parser

        args = build_serve_parser().parse_args([])
        assert args.rate == 100.0
        assert args.scheduler == "micco"
        assert args.arrivals == "poisson"
        assert args.json == "serve_report.json"

    def test_serve_end_to_end(self, capsys, tmp_path):
        report = tmp_path / "report.json"
        rc = main([
            "serve", "--rate", "200", "--scheduler", "micco",
            "--num-vectors", "6", "--vector-size", "8", "--tensor-size", "64",
            "--batch", "2", "--num-devices", "2", "--json", str(report),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "p50" in out and "latency report written" in out
        import json

        payload = json.loads(report.read_text())
        assert payload["summary"]["completed"] == 6
        assert payload["config"]["scheduler"] == "micco"

    def test_serve_groute_and_trace_export(self, capsys, tmp_path):
        report = tmp_path / "report.json"
        trace = tmp_path / "trace.json"
        rc = main([
            "serve", "--scheduler", "groute", "--num-vectors", "4",
            "--vector-size", "8", "--tensor-size", "64", "--batch", "2",
            "--num-devices", "2", "--json", str(report), "--trace", str(trace),
        ])
        assert rc == 0
        import json

        assert json.loads(trace.read_text())["traceEvents"]

    def test_serve_trace_arrivals_from_json(self, capsys, tmp_path):
        from repro.serve import TraceArrivals

        arrivals = tmp_path / "arrivals.json"
        TraceArrivals([0.0, 0.01, 0.02, 0.03]).to_json(arrivals)
        report = tmp_path / "report.json"
        rc = main([
            "serve", "--arrivals", str(arrivals), "--num-vectors", "4",
            "--vector-size", "8", "--tensor-size", "64", "--batch", "2",
            "--num-devices", "2", "--json", str(report),
        ])
        assert rc == 0

    def test_serve_unknown_arrivals(self, capsys, tmp_path):
        rc = main(["serve", "--arrivals", "fractal", "--json", str(tmp_path / "r.json")])
        assert rc == 2
        assert "unknown arrival process" in capsys.readouterr().err

    def test_list_mentions_serve(self, capsys):
        assert main(["list"]) == 0
        assert "serve" in capsys.readouterr().out
