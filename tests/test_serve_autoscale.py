"""Unit and integration tests for the p99-driven pool autoscaler."""

import pytest

from repro.core.config import MiccoConfig
from repro.errors import ConfigurationError
from repro.serve import (
    Autoscaler,
    AutoscalerConfig,
    BurstyArrivals,
    MiccoServer,
    MultiTenantServer,
    PoissonArrivals,
    ServeConfig,
    TenantSpec,
)
from repro.workloads import SyntheticWorkload, WorkloadParams


class TestAutoscalerConfig:
    def test_defaults_valid(self):
        AutoscalerConfig()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AutoscalerConfig(min_devices=0)
        with pytest.raises(ConfigurationError):
            AutoscalerConfig(min_devices=4, max_devices=2)
        with pytest.raises(ConfigurationError):
            AutoscalerConfig(initial_devices=9, max_devices=8)
        with pytest.raises(ConfigurationError):
            AutoscalerConfig(up_queue_depth=2, down_queue_depth=2)
        with pytest.raises(ConfigurationError):
            AutoscalerConfig(p99_target_s=-1.0)
        with pytest.raises(ConfigurationError):
            AutoscalerConfig(down_latency_frac=0.0)

    def test_dict_round_trip(self):
        cfg = AutoscalerConfig(max_devices=6, p99_target_s=0.2, warmup_s=0.1)
        assert AutoscalerConfig.from_dict(cfg.to_dict()) == cfg

    def test_with_override(self):
        assert AutoscalerConfig().with_(max_devices=2).max_devices == 2


class TestAutoscalerDecisions:
    def test_queue_depth_triggers_up(self):
        a = Autoscaler(AutoscalerConfig(up_queue_depth=4, max_devices=4))
        assert a.decide(1.0, queue_depth=4, num_alive=1) == "up"

    def test_up_capped_at_max(self):
        a = Autoscaler(AutoscalerConfig(up_queue_depth=4, max_devices=2))
        assert a.decide(1.0, queue_depth=10, num_alive=2) is None

    def test_p99_over_target_triggers_up(self):
        a = Autoscaler(AutoscalerConfig(p99_target_s=0.1, max_devices=4))
        a.observe_completion(1.0, 0.5)
        assert a.decide(1.0, queue_depth=0, num_alive=1) == "up"

    def test_down_when_idle(self):
        a = Autoscaler(AutoscalerConfig(min_devices=1))
        assert a.decide(1.0, queue_depth=0, num_alive=3) == "down"

    def test_down_blocked_by_hot_window(self):
        a = Autoscaler(AutoscalerConfig(p99_target_s=0.1, down_latency_frac=0.5))
        a.observe_completion(1.0, 0.08)  # under target but above 0.5×target
        assert a.decide(1.0, queue_depth=0, num_alive=3) is None

    def test_down_blocked_at_min(self):
        a = Autoscaler(AutoscalerConfig(min_devices=2))
        assert a.decide(1.0, queue_depth=0, num_alive=2) is None

    def test_cooldown_suppresses_decisions(self):
        a = Autoscaler(AutoscalerConfig(cooldown_s=1.0, max_devices=4))
        assert a.decide(0.0, queue_depth=8, num_alive=1) == "up"
        a.log(0.0, "up", 1, 1)
        assert a.decide(0.5, queue_depth=8, num_alive=1) is None
        assert a.decide(1.5, queue_depth=8, num_alive=1) == "up"

    def test_online_log_does_not_arm_cooldown(self):
        a = Autoscaler(AutoscalerConfig(cooldown_s=1.0, max_devices=4))
        a.log(0.0, "online", 1, 2, starts_cooldown=False)
        assert a.decide(0.1, queue_depth=8, num_alive=1) == "up"

    def test_window_prunes_old_latencies(self):
        a = Autoscaler(AutoscalerConfig(window_s=1.0, p99_target_s=0.1))
        a.observe_completion(0.0, 5.0)
        assert a.windowed_p99(0.5) == pytest.approx(5.0)
        assert a.windowed_p99(2.0) != a.windowed_p99(2.0)  # NaN after pruning

    def test_summary_counts_actions(self):
        a = Autoscaler(AutoscalerConfig())
        a.log(0.0, "up", 1, 1)
        a.log(0.1, "online", 1, 2, starts_cooldown=False)
        a.log(1.0, "down", 1, 1)
        s = a.summary()
        assert s["scale_ups"] == 1 and s["scale_downs"] == 1
        assert len(s["actions"]) == 3


def burst_config(**kw):
    defaults = dict(
        min_devices=1,
        max_devices=4,
        p99_target_s=0.05,
        window_s=0.5,
        up_queue_depth=3,
        warmup_s=0.02,
        cooldown_s=0.05,
    )
    defaults.update(kw)
    return AutoscalerConfig(**defaults)


class TestAutoscaledServing:
    def run_single(self, scaler_cfg, seed=0, rate=10_000.0, num_vectors=24):
        params = WorkloadParams(num_vectors=num_vectors, vector_size=8, tensor_size=64, batch=2)
        vectors = SyntheticWorkload(params, seed=seed).vectors()
        server = MiccoServer(
            config=MiccoConfig(num_devices=4),
            serve=ServeConfig(autoscaler=scaler_cfg),
        )
        result = server.run(vectors, PoissonArrivals(rate), seed=seed)
        return server, result

    def test_scales_up_under_load(self):
        server, result = self.run_single(burst_config())
        assert result.autoscale["scale_ups"] >= 1
        assert result.summary()["completed"] == 24

    def test_initial_devices_shrinks_pool_at_start(self):
        server, result = self.run_single(
            burst_config(initial_devices=2, p99_target_s=None), rate=50.0, num_vectors=4
        )
        # With light traffic the pool never needs to grow past its start.
        assert all(a["alive_after"] <= 2 for a in result.autoscale["actions"])

    def test_invariants_hold_after_run(self):
        server, result = self.run_single(burst_config())
        server.cluster.check_invariants()
        assert 1 <= server.cluster.num_alive <= 4

    def test_trace_renders_scale_events_on_negative_lanes(self):
        _, result = self.run_single(burst_config())
        trace = result.to_trace()
        scale = [e for e in trace.events if e.kind.startswith("scale-")]
        assert len(scale) == len(result.autoscale["actions"])
        assert scale and all(e.device < 0 for e in scale)

    def test_deterministic_per_seed(self):
        _, r1 = self.run_single(burst_config(), seed=7)
        _, r2 = self.run_single(burst_config(), seed=7)
        assert r1.summary() == r2.summary()
        assert r1.autoscale["actions"] == r2.autoscale["actions"]

    def test_multi_tenant_autoscaled_deterministic(self):
        tenants = (
            TenantSpec(
                "bursty",
                BurstyArrivals(600.0, 10.0, mean_on_s=0.05, mean_off_s=0.1),
                WorkloadParams(num_vectors=12, vector_size=8, tensor_size=64, batch=2),
                weight=2.0,
            ),
            TenantSpec(
                "steady",
                PoissonArrivals(100.0),
                WorkloadParams(num_vectors=12, vector_size=8, tensor_size=64, batch=2),
            ),
        )
        cfg = ServeConfig(tenants=tenants, autoscaler=burst_config())
        server = MultiTenantServer(config=MiccoConfig(num_devices=4), serve=cfg)
        r1 = server.run(seed=1)
        r2 = server.run(seed=1)
        assert r1.summary() == r2.summary()
        server.cluster.check_invariants()

    def test_scale_down_drains_and_recovers(self):
        # Saturate briefly, then go quiet: the pool should grow and then
        # shrink back toward min_devices, with every vector accounted for.
        server, result = self.run_single(
            burst_config(down_queue_depth=0, cooldown_s=0.02), rate=10_000.0
        )
        s = result.summary()
        assert s["completed"] + s["dropped"] == s["offered"] == 24
        if result.autoscale["scale_downs"]:
            downs = [a for a in result.autoscale["actions"] if a["action"] == "down"]
            assert all(a["alive_after"] >= 1 for a in downs)

    def test_faults_and_autoscaler_compose(self):
        from repro.faults import FaultEvent, FaultPlan

        params = WorkloadParams(num_vectors=16, vector_size=8, tensor_size=64, batch=2)
        vectors = SyntheticWorkload(params, seed=0).vectors()
        server = MiccoServer(
            config=MiccoConfig(num_devices=4),
            serve=ServeConfig(autoscaler=burst_config()),
        )
        # Kill device 0 mid-run: it starts alive (the autoscaler retires
        # high ids first) so the loss is observed, not absorbed offline.
        plan = FaultPlan((FaultEvent("device_lost", 0.001, 0),))
        result = server.run(vectors, PoissonArrivals(10_000.0), seed=0, faults=plan)
        server.cluster.check_invariants()
        s = result.summary()
        assert s["completed"] + s["dropped"] == s["offered"] == 16
        assert result.faults["device_losses"] == 1
        # The failed device must never be resurrected by a scale-up.
        for a in result.autoscale["actions"]:
            if a["action"] in ("up", "online"):
                assert a["device"] != 0

    def test_device_loss_on_retired_device_is_absorbed(self):
        from repro.faults import FaultEvent, FaultPlan

        params = WorkloadParams(num_vectors=6, vector_size=8, tensor_size=64, batch=2)
        vectors = SyntheticWorkload(params, seed=0).vectors()
        server = MiccoServer(
            config=MiccoConfig(num_devices=4),
            serve=ServeConfig(autoscaler=burst_config(p99_target_s=None)),
        )
        # Device 3 is retired at t=0 (initial pool = min_devices = 1), so
        # losing it has no serving impact but pins it dead for scale-up.
        plan = FaultPlan((FaultEvent("device_lost", 0.001, 3),))
        result = server.run(vectors, PoissonArrivals(100.0), seed=0, faults=plan)
        assert result.summary()["completed"] == 6
        assert result.faults["device_losses"] == 0
        assert server.cluster.is_failed(3)
