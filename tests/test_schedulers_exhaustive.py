"""Unit tests for the exhaustive oracle scheduler."""

import pytest

from repro.core.session import run_stream
from repro.errors import SchedulingError
from repro.gpusim.costmodel import CostModel
from repro.gpusim.engine import ExecutionEngine
from repro.schedulers.bounds import ReuseBounds
from repro.schedulers.exhaustive import ExhaustiveScheduler
from repro.schedulers.micco import MiccoScheduler
from tests.conftest import make_cluster, make_pair, make_vector
from repro.tensor.spec import TensorPair, VectorSpec
from tests.conftest import make_tensor


class TestSearch:
    def test_plan_length_matches_pairs(self):
        cl = make_cluster()
        sched = ExhaustiveScheduler()
        v = make_vector(n_pairs=3)
        plan = sched.search(v, cl)
        assert len(plan) == 3
        assert all(0 <= g < 2 for g in plan)

    def test_single_device_trivial(self):
        cl = make_cluster(num_devices=1)
        v = make_vector(n_pairs=2)
        assert ExhaustiveScheduler().search(v, cl) == [0, 0]

    def test_refuses_huge_space(self):
        cl = make_cluster(num_devices=8)
        v = make_vector(n_pairs=10)  # 8**10 assignments
        with pytest.raises(SchedulingError):
            ExhaustiveScheduler().search(v, cl)

    def test_choose_without_begin_raises(self):
        cl = make_cluster()
        with pytest.raises(SchedulingError):
            ExhaustiveScheduler().choose(make_pair(), cl)

    def test_oracle_spreads_independent_pairs(self):
        """With identical independent pairs, the optimum is balanced."""
        cl = make_cluster(num_devices=2)
        v = make_vector(n_pairs=4)
        plan = ExhaustiveScheduler().search(v, cl)
        assert sorted([plan.count(0), plan.count(1)]) == [2, 2]

    def test_oracle_not_worse_than_manual_plans(self):
        """The oracle's makespan is <= every hand-written assignment."""
        t1, t2 = make_tensor(), make_tensor()
        v = VectorSpec(pairs=[TensorPair.make(t1, t2), TensorPair.make(t1, t2)])
        oracle_cl = make_cluster(num_devices=2)
        oracle = ExhaustiveScheduler()
        oracle.search(v, oracle_cl)
        best = oracle.best_metrics.makespan_s
        for manual in ([0, 0], [0, 1], [1, 0], [1, 1]):
            cl = make_cluster(num_devices=2)
            m = ExecutionEngine(cl, CostModel()).execute_vector(v, manual)
            assert best <= m.makespan_s + 1e-12


class TestHeuristicVsOracle:
    @pytest.mark.parametrize("n_pairs", [2, 3, 4])
    def test_micco_within_factor_of_optimal(self, n_pairs):
        """The heuristic's makespan stays close to the brute-force optimum
        on tiny fresh-cluster instances."""
        v = make_vector(n_pairs=n_pairs)

        oracle_cl = make_cluster(num_devices=2)
        oracle = ExhaustiveScheduler()
        plan = oracle.search(v, oracle_cl)
        engine = ExecutionEngine(oracle_cl, CostModel())
        best = engine.execute_vector(v, plan)

        micco_cl = make_cluster(num_devices=2)
        micco_engine = ExecutionEngine(micco_cl, CostModel())
        result = run_stream([v], MiccoScheduler(ReuseBounds(2, 2, 2)), micco_cl, micco_engine)

        assert result.metrics.makespan_s <= 1.3 * best.makespan_s
