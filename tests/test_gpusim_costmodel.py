"""Unit tests for Interconnect and CostModel."""

import pytest

from repro.errors import ConfigurationError
from repro.gpusim.costmodel import CostModel
from repro.gpusim.device import DeviceSpec, mi100_like
from repro.gpusim.interconnect import Interconnect
from repro.tensor.flops import pair_flops
from tests.conftest import make_pair


class TestInterconnect:
    def test_h2d_alpha_beta(self):
        ic = Interconnect(h2d_bandwidth=1e9, latency_s=1e-6)
        assert ic.h2d_time(1e9) == pytest.approx(1.0 + 1e-6)

    def test_d2d_uses_d2d_bandwidth(self):
        ic = Interconnect(h2d_bandwidth=1e9, d2d_bandwidth=2e9, latency_s=0.0)
        assert ic.d2d_time(2e9) == pytest.approx(1.0)

    def test_d2h_symmetric_with_h2d(self):
        ic = Interconnect()
        assert ic.d2h_time(12345) == ic.h2d_time(12345)

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ConfigurationError):
            Interconnect(h2d_bandwidth=0)


class TestDeviceSpec:
    def test_mi100_like_builds_homogeneous(self):
        devs = mi100_like(4)
        assert [d.device_id for d in devs] == [0, 1, 2, 3]
        assert len({d.memory_bytes for d in devs}) == 1

    def test_rejects_negative_id(self):
        with pytest.raises(ValueError):
            DeviceSpec(device_id=-1)


class TestKernelTime:
    def test_efficiency_monotone_in_size(self):
        cm = CostModel()
        effs = [cm.kernel_efficiency(n) for n in (64, 128, 384, 768)]
        assert effs == sorted(effs)
        assert all(0 < e < 1 for e in effs)

    def test_half_size_gives_half_peak(self):
        cm = CostModel(efficiency_half_size=256)
        assert cm.kernel_efficiency(256) == pytest.approx(0.5)

    def test_kernel_time_includes_launch_overhead(self):
        cm = CostModel(kernel_launch_s=1.0)
        dev = DeviceSpec(device_id=0, peak_gflops=1e6)
        assert cm.kernel_time(make_pair(), dev) > 1.0

    def test_kernel_time_scales_with_flops(self):
        cm = CostModel(kernel_launch_s=0.0)
        dev = DeviceSpec(device_id=0)
        small, big = make_pair(size=16, batch=2), make_pair(size=16, batch=4)
        t_small = cm.kernel_time(small, dev)
        t_big = cm.kernel_time(big, dev)
        # Same size -> same efficiency -> time proportional to flops.
        assert t_big / t_small == pytest.approx(pair_flops(big) / pair_flops(small))

    def test_faster_device_is_faster(self):
        cm = CostModel(kernel_launch_s=0.0)
        slow = DeviceSpec(device_id=0, peak_gflops=1000.0)
        fast = DeviceSpec(device_id=0, peak_gflops=2000.0)
        p = make_pair()
        assert cm.kernel_time(p, fast) == pytest.approx(cm.kernel_time(p, slow) / 2)


class TestMemoryOps:
    def test_alloc_time_alpha_beta(self):
        cm = CostModel(alloc_latency_s=1e-3, alloc_bandwidth=1e9)
        assert cm.alloc_time(1e9) == pytest.approx(1.0 + 1e-3)

    def test_eviction_writeback_toggle(self):
        with_wb = CostModel(eviction_writeback=True)
        without = CostModel(eviction_writeback=False)
        assert with_wb.eviction_time(10**6) > without.eviction_time(10**6)

    def test_fetch_time_prefers_fast_link(self):
        ic = Interconnect(h2d_bandwidth=1e9, d2d_bandwidth=4e9)
        cm = CostModel(interconnect=ic)
        spec = make_pair().left
        assert cm.fetch_time(spec, from_device=True) < cm.fetch_time(spec, from_device=False)

    def test_rejects_negative_latency(self):
        with pytest.raises(ConfigurationError):
            CostModel(kernel_launch_s=-1.0)
