"""Golden-report equivalence: vectorized core vs the reference core.

The vectorized simulator core (numpy batch scoring, fused candidate
scans, lazy eviction bookkeeping, columnar traces) must produce
*byte-identical* results to the original object-at-a-time code paths
kept behind ``repro.compat.REFERENCE_CORE``.  Each test here runs the
same fixed-seed workload through both cores and diffs the fully
serialized artifacts — the latency-report JSON and the rendered Chrome
trace — across every serving mode.
"""

import json

import pytest

from repro import compat
from repro.core.config import MiccoConfig
from repro.gpusim import CostModel, Topology
from repro.gpusim.device import GIB
from repro.faults import FaultPlan
from repro.schedulers.bounds import ReuseBounds
from repro.schedulers.micco import MiccoScheduler
from repro.serve import IntegrityConfig, PoissonArrivals, ServeConfig, TenantSpec, serve
from repro.workloads import SyntheticWorkload, WorkloadParams

MIB = 1024**2
SEED = 11


def stream(n=24, seed=3):
    params = WorkloadParams(
        vector_size=8, tensor_size=64, repeated_rate=0.6, num_vectors=n, batch=2
    )
    return SyntheticWorkload(params, seed=seed).vectors()


#: The integrity mode's fault-event labels carry tensor uids, which are
#: drawn from a process-global counter — so the fast and reference runs
#: must share ONE materialized stream for their artifacts to be
#: byte-comparable (every other mode's artifacts are uid-free).
_INTEGRITY_VECTORS: list | None = None


def integrity_stream():
    global _INTEGRITY_VECTORS
    if _INTEGRITY_VECTORS is None:
        _INTEGRITY_VECTORS = stream()
    return _INTEGRITY_VECTORS


def tenant_roster():
    spec = WorkloadParams(vector_size=8, tensor_size=64, num_vectors=12, batch=2)
    return (
        TenantSpec("heavy", PoissonArrivals(8_000.0), spec, weight=3.0),
        TenantSpec("light", PoissonArrivals(4_000.0), spec, weight=1.0),
    )


def run_mode(mode: str):
    """One fixed-seed serving run in ``mode`` under the active core."""
    if mode == "single":
        cfg = ServeConfig(queue_capacity=16)
        cluster = MiccoConfig(num_devices=4, memory_bytes=64 * MIB)
        return serve(
            cfg, cluster=cluster,
            scheduler=MiccoScheduler(ReuseBounds(0, 4, 0)),
            vectors=stream(), arrivals=PoissonArrivals(4_000.0), seed=SEED,
        )
    if mode == "tenants":
        cfg = ServeConfig(queue_capacity=32, tenants=tenant_roster())
        cluster = MiccoConfig(num_devices=4, memory_bytes=2 * GIB)
        return serve(cfg, cluster=cluster, seed=SEED)
    if mode == "batched":
        cfg = ServeConfig(
            queue_capacity=32, tenants=tenant_roster(),
            max_batch_vectors=4, schedule_latency_per_pair_s=1e-4,
        )
        cluster = MiccoConfig(num_devices=4, memory_bytes=2 * GIB)
        return serve(cfg, cluster=cluster, seed=SEED)
    if mode == "integrity":
        # Spot-audit chaos run: silent corruption + bitflips, detection,
        # audit recomputation and blame must replay identically through
        # both cores (the integrity layer draws no RNG state — every
        # decision is a counter hash).
        plan = FaultPlan.generate(
            SEED, num_devices=4, horizon_s=0.01,
            n_transient=1, n_data_corruption=1, n_tensor_bitflip=1,
            corruption_prob=0.6,
        )
        cfg = ServeConfig(
            queue_capacity=16, faults=plan,
            integrity=IntegrityConfig(mode="spot", audit_fraction=0.3),
        )
        cluster = MiccoConfig(num_devices=4, memory_bytes=64 * MIB)
        return serve(
            cfg, cluster=cluster,
            scheduler=MiccoScheduler(ReuseBounds(0, 4, 0)),
            vectors=integrity_stream(), arrivals=PoissonArrivals(4_000.0),
            seed=SEED,
        )
    if mode == "sharded":
        topo = Topology(num_devices=8, devices_per_node=4)
        cluster = MiccoConfig(
            num_devices=8, memory_bytes=64 * MIB,
            cost_model=CostModel(topology=topo),
        )
        cfg = ServeConfig(sharded=True, routing="residency-affinity")
        return serve(
            cfg, cluster=cluster,
            scheduler=MiccoScheduler(ReuseBounds(0, 4, 0)),
            vectors=stream(), arrivals=PoissonArrivals(4_000.0), seed=SEED,
        )
    if mode == "learned":
        # Learned routing adds an RNG stream (the exploration draws) and
        # online regression on completion latencies; both must replay
        # byte-identically through the reference core.  Low knobs so the
        # predictor warms up inside a 24-vector run.
        from repro.serve import HealthConfig

        topo = Topology(num_devices=8, devices_per_node=4)
        cluster = MiccoConfig(
            num_devices=8, memory_bytes=64 * MIB,
            cost_model=CostModel(topology=topo),
        )
        cfg = ServeConfig(
            sharded=True, routing="learned", sync_interval_s=0.01,
            explore_floor=0.1, min_samples=6, refit_interval=4,
            health=HealthConfig(),
        )
        return serve(
            cfg, cluster=cluster,
            scheduler=MiccoScheduler(ReuseBounds(0, 4, 0)),
            vectors=stream(), arrivals=PoissonArrivals(4_000.0), seed=SEED,
        )
    raise AssertionError(mode)


def artifacts(result, tmp_path, tag):
    """The two serialized artifacts the equivalence is defined over."""
    report_path = tmp_path / f"{tag}_report.json"
    result.to_json(report_path)
    trace_path = tmp_path / f"{tag}_trace.json"
    result.to_trace().save_chrome_trace(trace_path)
    return report_path.read_bytes(), trace_path.read_bytes()


MODES = ("single", "tenants", "batched", "sharded", "learned", "integrity")


@pytest.mark.parametrize("mode", MODES)
def test_reports_and_traces_byte_identical(mode, tmp_path):
    fast = run_mode(mode)
    with compat.reference_core():
        ref = run_mode(mode)
    assert not compat.REFERENCE_CORE  # context restored

    fast_report, fast_trace = artifacts(fast, tmp_path, f"{mode}_fast")
    ref_report, ref_trace = artifacts(ref, tmp_path, f"{mode}_ref")
    assert fast_report == ref_report
    assert fast_trace == ref_trace


@pytest.mark.parametrize("mode", MODES)
def test_summaries_identical(mode):
    fast = run_mode(mode)
    with compat.reference_core():
        ref = run_mode(mode)
    assert json.dumps(fast.summary(), sort_keys=True) == json.dumps(
        ref.summary(), sort_keys=True
    )


def test_reference_core_flag_actually_switches_paths():
    """Guard against the switch silently becoming a no-op."""
    scheduler = MiccoScheduler(ReuseBounds(0, 4, 0))
    assert type(scheduler).choose is not None
    with compat.reference_core():
        assert compat.REFERENCE_CORE
    assert not compat.REFERENCE_CORE
