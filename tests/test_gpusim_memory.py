"""Unit tests for the LRU MemoryPool."""

import pytest

from repro.errors import CapacityError
from repro.gpusim.memory import MemoryPool


class TestAllocate:
    def test_basic_accounting(self):
        pool = MemoryPool(100)
        pool.allocate(1, 40)
        assert pool.used_bytes == 40
        assert pool.free_bytes == 60
        assert 1 in pool

    def test_idempotent_allocate(self):
        pool = MemoryPool(100)
        pool.allocate(1, 40)
        evicted = pool.allocate(1, 40)
        assert evicted == []
        assert pool.used_bytes == 40

    def test_evicts_lru_first(self):
        pool = MemoryPool(100)
        pool.allocate(1, 40)
        pool.allocate(2, 40)
        evicted = pool.allocate(3, 40)
        assert [r.uid for r in evicted] == [1]
        assert 1 not in pool and 2 in pool and 3 in pool

    def test_touch_refreshes_recency(self):
        pool = MemoryPool(100)
        pool.allocate(1, 40)
        pool.allocate(2, 40)
        pool.touch(1)
        evicted = pool.allocate(3, 40)
        assert [r.uid for r in evicted] == [2]

    def test_protect_skips_victims(self):
        pool = MemoryPool(100)
        pool.allocate(1, 40)
        pool.allocate(2, 40)
        evicted = pool.allocate(3, 40, protect={1})
        assert [r.uid for r in evicted] == [2]
        assert 1 in pool

    def test_multiple_evictions_for_large_alloc(self):
        pool = MemoryPool(100)
        pool.allocate(1, 30)
        pool.allocate(2, 30)
        pool.allocate(3, 30)
        evicted = pool.allocate(4, 80)
        assert [r.uid for r in evicted] == [1, 2, 3]

    def test_oversized_tensor_raises(self):
        pool = MemoryPool(100)
        with pytest.raises(CapacityError):
            pool.allocate(1, 101)

    def test_all_protected_raises(self):
        pool = MemoryPool(100)
        pool.allocate(1, 60)
        with pytest.raises(CapacityError):
            pool.allocate(2, 60, protect={1})

    def test_eviction_reports_bytes(self):
        pool = MemoryPool(100)
        pool.allocate(1, 70)
        (evicted,) = pool.allocate(2, 70)
        assert evicted.nbytes == 70


class TestQueries:
    def test_resident_uids_lru_order(self):
        pool = MemoryPool(100)
        pool.allocate(1, 10)
        pool.allocate(2, 10)
        pool.touch(1)
        assert pool.resident_uids() == [2, 1]

    def test_fits(self):
        pool = MemoryPool(100)
        pool.allocate(1, 60)
        assert pool.fits(40)
        assert not pool.fits(41)

    def test_would_evict(self):
        pool = MemoryPool(100)
        pool.allocate(1, 60)
        assert pool.would_evict(50)
        assert not pool.would_evict(50, protect={1})  # nothing evictable
        assert not pool.would_evict(40)

    def test_nbytes_of(self):
        pool = MemoryPool(100)
        pool.allocate(7, 33)
        assert pool.nbytes_of(7) == 33


class TestFreeClear:
    def test_free_returns_size(self):
        pool = MemoryPool(100)
        pool.allocate(1, 25)
        assert pool.free(1) == 25
        assert pool.used_bytes == 0

    def test_free_missing_returns_zero(self):
        assert MemoryPool(100).free(42) == 0

    def test_clear(self):
        pool = MemoryPool(100)
        pool.allocate(1, 25)
        pool.clear()
        assert len(pool) == 0 and pool.used_bytes == 0

    def test_rejects_nonpositive_capacity(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            MemoryPool(0)


class TestInvariants:
    """Property-style sweep: accounting stays airtight under any
    alloc/evict/free interleaving, for every eviction policy."""

    @pytest.mark.parametrize("policy", ("lru", "fifo", "largest"))
    def test_random_op_sequence_preserves_invariants(self, policy):
        import numpy as np

        rng = np.random.default_rng(99)
        pool = MemoryPool(1000, policy=policy)
        live: list[int] = []
        for uid in range(300):
            op = rng.integers(3)
            if op == 0 or not live:  # allocate (sometimes oversubscribing)
                nbytes = int(rng.integers(1, 400))
                for r in pool.allocate(uid, nbytes):
                    live.remove(r.uid)
                live.append(uid)
            elif op == 1:  # free a random live tensor
                victim = live.pop(int(rng.integers(len(live))))
                assert pool.free(victim) > 0
            else:  # touch (reuse hit)
                pool.touch(live[int(rng.integers(len(live)))])
            pool.check_invariants()
        pool.clear()
        pool.check_invariants()
        assert pool.used_bytes == 0

    def test_check_invariants_catches_corruption(self):
        pool = MemoryPool(100)
        pool.allocate(1, 40)
        pool._used = 7  # simulate an accounting bug
        with pytest.raises(AssertionError):
            pool.check_invariants()
