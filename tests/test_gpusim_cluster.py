"""Unit tests for ClusterState (the scheduler-visible maps)."""

import pytest

from repro.errors import SchedulingError
from repro.gpusim.cluster import ClusterState
from repro.gpusim.device import DeviceSpec
from tests.conftest import MIB, make_cluster, make_tensor


class TestConstruction:
    def test_requires_devices(self):
        with pytest.raises(SchedulingError):
            ClusterState([])

    def test_requires_ordered_ids(self):
        with pytest.raises(SchedulingError):
            ClusterState([DeviceSpec(device_id=1), DeviceSpec(device_id=0)])

    def test_homogeneous_factory(self):
        cl = ClusterState.homogeneous(3, memory_bytes=MIB)
        assert cl.num_devices == 3
        assert all(p.capacity_bytes == MIB for p in cl.pools)


class TestResidency:
    def test_register_and_find(self):
        cl = make_cluster()
        t = make_tensor()
        cl.register(t, 0)
        assert cl.devices_holding(t.uid) == {0}
        assert cl.is_resident(t.uid, 0)
        assert not cl.is_resident(t.uid, 1)

    def test_multi_device_copies(self):
        cl = make_cluster()
        t = make_tensor()
        cl.register(t, 0)
        cl.register(t, 1)
        assert cl.devices_holding(t.uid) == {0, 1}

    def test_drop_one_copy(self):
        cl = make_cluster()
        t = make_tensor()
        cl.register(t, 0)
        cl.register(t, 1)
        freed = cl.drop(t.uid, 0)
        assert freed == t.nbytes
        assert cl.devices_holding(t.uid) == {1}

    def test_drop_everywhere(self):
        cl = make_cluster()
        t = make_tensor()
        cl.register(t, 0)
        cl.register(t, 1)
        assert cl.drop_everywhere(t.uid) == 2 * t.nbytes
        assert cl.devices_holding(t.uid) == frozenset()

    def test_eviction_updates_holders(self):
        cl = make_cluster(memory_bytes=2 * make_tensor(size=64, batch=8).nbytes)
        big = [make_tensor(size=64, batch=8) for _ in range(3)]
        cl.register(big[0], 0)
        cl.register(big[1], 0)
        cl.register(big[2], 0)  # evicts big[0]
        assert cl.devices_holding(big[0].uid) == frozenset()
        assert cl.resident_count(0) == 2

    def test_used_and_free_bytes(self):
        cl = make_cluster(memory_bytes=MIB)
        t = make_tensor(size=16, batch=1)
        cl.register(t, 1)
        assert cl.used_bytes(1) == t.nbytes
        assert cl.free_bytes(1) == MIB - t.nbytes
        assert cl.used_bytes(0) == 0


class TestVectorCounters:
    def test_begin_vector_sets_balance(self):
        cl = make_cluster(num_devices=4)
        cl.begin_vector(64)
        assert cl.balance_num == 16.0
        assert cl.assigned_slots.sum() == 0

    def test_record_assignment(self):
        cl = make_cluster()
        cl.begin_vector(8)
        cl.record_assignment(1)
        cl.record_assignment(1)
        assert cl.assigned_slots[1] == 4

    def test_begin_vector_rejects_zero(self):
        with pytest.raises(SchedulingError):
            make_cluster().begin_vector(0)


class TestBusyAndClone:
    def test_busy_is_compute_plus_memop(self):
        cl = make_cluster()
        cl.add_compute(0, 1.0)
        cl.add_memop(0, 0.5)
        assert cl.busy_s[0] == pytest.approx(1.5)

    def test_reset(self):
        cl = make_cluster()
        cl.register(make_tensor(), 0)
        cl.add_compute(0, 1.0)
        cl.reset()
        assert cl.total_resident_tensors() == 0
        assert cl.busy_s.sum() == 0

    def test_clone_is_independent(self):
        cl = make_cluster()
        t = make_tensor()
        cl.register(t, 0)
        cl.add_compute(0, 2.0)
        other = cl.clone()
        other.drop(t.uid, 0)
        other.add_compute(0, 5.0)
        assert cl.is_resident(t.uid, 0)
        assert cl.compute_s[0] == pytest.approx(2.0)

    def test_clone_preserves_state(self):
        cl = make_cluster()
        t = make_tensor()
        cl.register(t, 1)
        cl.begin_vector(10)
        cl.record_assignment(1)
        other = cl.clone()
        assert other.is_resident(t.uid, 1)
        assert other.balance_num == cl.balance_num
        assert other.assigned_slots[1] == 2


class TestDevicePoolShrink:
    def test_fail_device_orphans_and_frees(self):
        cl = make_cluster()
        t1, t2 = make_tensor(), make_tensor()
        cl.register(t1, 0)
        cl.register(t2, 0)
        cl.register(t2, 1)  # second copy survives
        orphans = cl.fail_device(0)
        assert sorted(orphans) == sorted([t1.uid, t2.uid])
        assert cl.used_bytes(0) == 0
        assert cl.devices_holding(t1.uid) == set()
        assert cl.devices_holding(t2.uid) == {1}
        assert not cl.is_alive(0) and cl.is_alive(1)
        assert cl.alive_ids() == [1]
        assert cl.num_alive == 1
        cl.check_invariants()

    def test_fail_device_is_idempotent(self):
        cl = make_cluster()
        cl.register(make_tensor(), 1)
        assert cl.fail_device(1)
        assert cl.fail_device(1) == []

    def test_fail_device_out_of_range(self):
        with pytest.raises(SchedulingError):
            make_cluster().fail_device(99)

    def test_begin_vector_balances_over_survivors(self):
        cl = make_cluster(num_devices=4)
        cl.fail_device(3)
        cl.begin_vector(12)
        assert cl.balance_num == pytest.approx(12 / 3)

    def test_begin_vector_with_no_survivors_raises(self):
        cl = make_cluster()
        cl.fail_device(0)
        cl.fail_device(1)
        with pytest.raises(SchedulingError):
            cl.begin_vector(4)

    def test_reset_revives_the_pool(self):
        cl = make_cluster()
        cl.fail_device(0)
        cl.reset()
        assert cl.num_alive == 2

    def test_clone_copies_liveness(self):
        cl = make_cluster()
        cl.fail_device(0)
        other = cl.clone()
        assert not other.is_alive(0)
        other.reset()
        assert not cl.is_alive(0) or cl.num_alive == 2  # clone is independent
        assert cl.num_alive == 1


class TestElasticPool:
    def test_retire_then_activate_round_trip(self):
        cl = make_cluster(num_devices=4)
        t = make_tensor()
        cl.register(t, 3)
        orphans = cl.retire_device(3)
        assert orphans == [t.uid]
        assert cl.alive_ids() == [0, 1, 2]
        assert cl.offline_ids() == [3]
        assert not cl.is_failed(3)
        cl.activate_device(3)
        assert cl.alive_ids() == [0, 1, 2, 3]
        assert cl.resident_count(3) == 0  # comes back cold
        cl.check_invariants()

    def test_retire_offline_device_is_noop(self):
        cl = make_cluster()
        cl.retire_device(0)
        assert cl.retire_device(0) == []

    def test_activate_alive_device_is_noop(self):
        cl = make_cluster()
        t = make_tensor()
        cl.register(t, 0)
        cl.activate_device(0)
        assert cl.resident_count(0) == 1  # no accidental pool clear

    def test_activate_failed_device_raises(self):
        cl = make_cluster()
        cl.fail_device(0)
        assert cl.offline_ids() == []  # failed, not retirable stock
        with pytest.raises(SchedulingError):
            cl.activate_device(0)

    def test_retired_device_that_fails_stays_dead(self):
        cl = make_cluster(num_devices=3)
        cl.retire_device(2)
        cl.fail_device(2)
        assert cl.is_failed(2)
        with pytest.raises(SchedulingError):
            cl.activate_device(2)

    def test_activate_out_of_range(self):
        with pytest.raises(SchedulingError):
            make_cluster().activate_device(7)

    def test_reset_clears_failures(self):
        cl = make_cluster()
        cl.fail_device(0)
        cl.reset()
        assert not cl.is_failed(0)
        cl.activate_device(0)  # allowed again after reset

    def test_clone_copies_failed_set(self):
        cl = make_cluster(num_devices=3)
        cl.fail_device(1)
        cl.retire_device(2)
        other = cl.clone()
        assert other.is_failed(1)
        assert other.offline_ids() == [2]


class TestFailureDomains:
    def test_fail_node_kills_every_member(self):
        cl = make_cluster(num_devices=4)
        a, b = make_tensor(), make_tensor()
        cl.register(a, 0)
        cl.register(b, 1)
        orphaned = cl.fail_node([0, 1])
        assert set(orphaned) == {0, 1}
        assert orphaned[0] == [a.uid] and orphaned[1] == [b.uid]
        assert cl.alive_ids() == [2, 3]
        assert cl.is_failed(0) and cl.is_failed(1)
        cl.check_invariants()

    def test_fail_node_skips_already_dead_members(self):
        cl = make_cluster(num_devices=4)
        cl.fail_device(1)
        orphaned = cl.fail_node([0, 1])
        assert set(orphaned) == {0}  # 1 was already gone

    def test_fail_node_atomic_before_recovery(self):
        # After fail_node returns, no member is alive: recovery code
        # consulting alive_ids can never pick a doomed sibling.
        cl = make_cluster(num_devices=4)
        orphaned = cl.fail_node([2, 3])
        assert set(orphaned) == {2, 3}
        assert all(not cl.is_alive(d) for d in (2, 3))


class TestPrewarm:
    def test_prewarm_places_tensor_in_free_space(self):
        cl = make_cluster(num_devices=2)
        assert cl.prewarm(uid=99, nbytes=MIB, device_id=0)
        assert cl.is_resident(99, 0)
        assert cl.used_bytes(0) == MIB
        cl.check_invariants()

    def test_prewarm_never_evicts(self):
        cl = make_cluster(num_devices=1, memory_bytes=2 * MIB)
        t = make_tensor(size=256, batch=4)  # 256*256*4 floats = 1 MiB
        cl.register(t, 0)
        assert not cl.prewarm(uid=98, nbytes=2 * MIB, device_id=0)
        assert cl.is_resident(t.uid, 0)  # existing residency untouched

    def test_prewarm_rejects_offline_and_duplicate(self):
        cl = make_cluster(num_devices=2)
        cl.retire_device(1)
        assert not cl.prewarm(uid=1, nbytes=64, device_id=1)
        assert cl.prewarm(uid=1, nbytes=64, device_id=0)
        assert not cl.prewarm(uid=1, nbytes=64, device_id=0)  # already there


class TestJournalHooks:
    def test_register_drop_and_offline_notify_journal(self):
        from repro.faults import ResidencyJournal

        cl = make_cluster(num_devices=2)
        cl.journal = ResidencyJournal()
        t = make_tensor()
        cl.register(t, 0)
        cl.drop(t.uid, 0)
        cl.register(t, 1)
        cl.fail_device(1)
        ops = [e["op"] for e in cl.journal.entries()]
        assert ops == ["put", "drop", "put", "drop"]

    def test_clone_does_not_share_journal(self):
        from repro.faults import ResidencyJournal

        cl = make_cluster(num_devices=2)
        cl.journal = ResidencyJournal()
        assert cl.clone().journal is None
