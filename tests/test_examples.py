"""Smoke tests: every example script runs to completion.

``reuse_bound_tuning`` is exercised at reduced scale elsewhere
(integration tests); running its 60-sample tuning here would dominate
the suite, so it only gets an import/compile check.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "meson_spectroscopy.py",
    "oversubscription_study.py",
    "multinode_cluster.py",
    "baryon_workload_replay.py",
    "online_serving.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script, capsys):
    runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"


def test_examples_all_present():
    found = {p.name for p in EXAMPLES.glob("*.py")}
    assert set(FAST_EXAMPLES) <= found
    assert "reuse_bound_tuning.py" in found


def test_tuning_example_compiles():
    src = (EXAMPLES / "reuse_bound_tuning.py").read_text()
    compile(src, "reuse_bound_tuning.py", "exec")


def test_quickstart_output_shape(capsys):
    runpy.run_path(str(EXAMPLES / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "groute" in out and "micco" in out
    assert "GFLOPS" in out
