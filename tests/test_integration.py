"""Integration tests: full stacks wired together end-to-end."""

import numpy as np
import pytest

from repro.core.config import MiccoConfig
from repro.core.framework import Micco
from repro.gpusim.costmodel import CostModel
from repro.gpusim.engine import ExecutionEngine
from repro.ml.predictor import ReuseBoundPredictor, train_default_predictor
from repro.redstar.pipeline import RedstarPipeline
from repro.schedulers.bounds import ReuseBounds
from repro.schedulers.groute import GrouteScheduler
from repro.tensor.storage import TensorStore
from repro.workloads.oversub import capacity_for_oversubscription
from repro.workloads.synth import SyntheticWorkload, WorkloadParams
from tests.conftest import make_cluster
from tests.test_redstar_pipeline import tiny_spec

QUICK_CFG = MiccoConfig(num_devices=4)


def quick_stream(rate=0.75, dist="uniform", n=6):
    params = WorkloadParams(
        vector_size=16, tensor_size=64, batch=4, repeated_rate=rate,
        distribution=dist, num_vectors=n,
    )
    return SyntheticWorkload(params, seed=11).vectors()


class TestSchedulerOrdering:
    """The paper's headline: MICCO beats reuse-blind balancing."""

    @pytest.mark.parametrize("dist", ["uniform", "gaussian"])
    def test_micco_not_slower_than_groute_at_high_reuse(self, dist):
        vectors = quick_stream(rate=0.75, dist=dist)
        naive = Micco.naive(QUICK_CFG).run(vectors)
        groute = Micco.baseline(GrouteScheduler(), QUICK_CFG).run(vectors)
        assert naive.gflops >= 0.98 * groute.gflops

    def test_micco_reuses_more_than_groute(self):
        vectors = quick_stream(rate=0.75)
        naive = Micco.naive(QUICK_CFG).run(vectors)
        groute = Micco.baseline(GrouteScheduler(), QUICK_CFG).run(vectors)
        assert naive.metrics.counts.reuse_hits > groute.metrics.counts.reuse_hits

    def test_higher_rate_means_more_reuse(self):
        lo = Micco.naive(QUICK_CFG).run(quick_stream(rate=0.25))
        hi = Micco.naive(QUICK_CFG).run(quick_stream(rate=1.0))
        assert hi.metrics.counts.reuse_hits > lo.metrics.counts.reuse_hits


class TestOversubscriptionBehaviour:
    def test_pressure_causes_evictions_and_slowdown(self):
        vectors = quick_stream(rate=0.5)
        roomy = Micco.naive(QUICK_CFG).run(vectors)
        cap = capacity_for_oversubscription(vectors, 4, 2.0)
        tight_cfg = QUICK_CFG.with_(memory_bytes=cap)
        tight = Micco.naive(tight_cfg).run(vectors)
        assert roomy.metrics.counts.evictions == 0
        assert tight.metrics.counts.evictions > 0
        assert tight.gflops < roomy.gflops


class TestTrainedPredictorEndToEnd:
    def test_quick_training_and_inference(self):
        predictor, ts = train_default_predictor(
            MiccoConfig(num_devices=2),
            n_samples=6, seed=0, n_seeds=1, num_vectors=3, batch=2,
            n_estimators=4,
        )
        assert isinstance(predictor, ReuseBoundPredictor)
        vectors = quick_stream(n=3)
        result = Micco.optimal(predictor, QUICK_CFG).run(vectors)
        assert result.gflops > 0
        assert all(rec["bounds"] is not None for rec in result.per_vector)


class TestRedstarEndToEnd:
    def test_pipeline_through_scheduler(self):
        spec = tiny_spec(time_slices=2)
        vectors = RedstarPipeline(spec, seed=0).vectors()
        cfg = MiccoConfig(num_devices=2, keep_outputs=True)
        naive = Micco.naive(cfg).run(vectors)
        groute = Micco.baseline(GrouteScheduler(), cfg).run(vectors)
        assert naive.metrics.pairs_executed == groute.metrics.pairs_executed
        assert naive.metrics.counts.reuse_hits >= groute.metrics.counts.reuse_hits

    def test_numeric_execution_of_pipeline(self):
        """Real NumPy contractions through the scheduled pipeline:
        stage outputs exist and have the expected shapes."""
        spec = tiny_spec(time_slices=1)
        vectors = RedstarPipeline(spec, seed=0).vectors()
        store = TensorStore(seed=0)
        cluster = make_cluster(num_devices=2, memory_bytes=1024**3)
        engine = ExecutionEngine(cluster, CostModel(), store=store)
        from repro.core.session import run_stream
        from repro.schedulers.micco import MiccoScheduler

        run_stream(vectors, MiccoScheduler(ReuseBounds(2, 2, 2)), cluster, engine, keep_outputs=True)
        for v in vectors:
            for p in v.pairs:
                out = store.get(p.out.uid)
                assert out.shape == p.out.shape
                assert np.isfinite(out).all()


class TestDeterminism:
    def test_identical_runs_identical_metrics(self):
        vectors = quick_stream()
        a = Micco.naive(QUICK_CFG).run(vectors)
        b = Micco.naive(QUICK_CFG).run(vectors)
        assert a.metrics.summary() == b.metrics.summary()

    def test_gflops_independent_of_wallclock(self):
        """Simulated metrics contain no real-time component."""
        vectors = quick_stream(n=2)
        r = Micco.naive(QUICK_CFG).run(vectors)
        assert r.metrics.makespan_s == pytest.approx(float(r.metrics.device_time_s.max()))
