"""Unit tests for forest, GBM, and linear regressors."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.ml.forest import RandomForestRegressor
from repro.ml.gbm import GradientBoostingRegressor
from repro.ml.linear import LinearRegression
from repro.ml.metrics import r2_score


def nonlinear_data(rng, n=250):
    X = rng.uniform(-2, 2, size=(n, 3))
    Y = np.stack(
        [np.sin(X[:, 0]) * X[:, 1], np.abs(X[:, 2])],
        axis=1,
    ) + 0.01 * rng.standard_normal((n, 2))
    return X, Y


class TestLinearRegression:
    def test_recovers_exact_linear_map(self, rng):
        X = rng.standard_normal((100, 3))
        W = np.array([[1.0, -2.0], [0.5, 0.0], [3.0, 1.0]])
        b = np.array([0.3, -0.7])
        Y = X @ W + b
        m = LinearRegression().fit(X, Y)
        np.testing.assert_allclose(m.coef_, W, atol=1e-8)
        np.testing.assert_allclose(m.intercept_, b, atol=1e-8)
        np.testing.assert_allclose(m.predict(X), Y, atol=1e-8)

    def test_constant_feature_handled(self, rng):
        X = np.hstack([rng.standard_normal((50, 1)), np.ones((50, 1))])
        y = 2 * X[:, 0] + 1
        m = LinearRegression().fit(X, y)
        assert r2_score(y, m.predict(X)[:, 0]) > 0.999

    def test_single_output_1d_target(self, rng):
        X = rng.standard_normal((30, 2))
        m = LinearRegression().fit(X, X[:, 0])
        assert m.predict(X).shape == (30, 1)

    def test_too_few_samples_rejected(self):
        with pytest.raises(ModelError):
            LinearRegression().fit(np.zeros((1, 2)), np.zeros(1))

    def test_predict_before_fit(self):
        with pytest.raises(ModelError):
            LinearRegression().predict(np.zeros((1, 2)))


class TestRandomForest:
    def test_beats_linear_on_nonlinear_target(self, rng):
        X, Y = nonlinear_data(rng)
        Xtr, Ytr, Xte, Yte = X[:200], Y[:200], X[200:], Y[200:]
        rf = RandomForestRegressor(n_estimators=30, seed=0).fit(Xtr, Ytr)
        lr = LinearRegression().fit(Xtr, Ytr)
        assert r2_score(Yte, rf.predict(Xte)) > r2_score(Yte, lr.predict(Xte))

    def test_deterministic_given_seed(self, rng):
        X, Y = nonlinear_data(rng, n=80)
        a = RandomForestRegressor(n_estimators=5, seed=3).fit(X, Y).predict(X)
        b = RandomForestRegressor(n_estimators=5, seed=3).fit(X, Y).predict(X)
        np.testing.assert_array_equal(a, b)

    def test_seed_changes_model(self, rng):
        X, Y = nonlinear_data(rng, n=80)
        a = RandomForestRegressor(n_estimators=5, seed=1).fit(X, Y).predict(X)
        b = RandomForestRegressor(n_estimators=5, seed=2).fit(X, Y).predict(X)
        assert not np.array_equal(a, b)

    def test_n_estimators_validated(self):
        with pytest.raises(ModelError):
            RandomForestRegressor(n_estimators=0)

    def test_predict_before_fit(self):
        with pytest.raises(ModelError):
            RandomForestRegressor().predict(np.zeros((1, 2)))

    def test_multi_output_shape(self, rng):
        X, Y = nonlinear_data(rng, n=60)
        rf = RandomForestRegressor(n_estimators=4, seed=0).fit(X, Y)
        assert rf.predict(X).shape == Y.shape


class TestGradientBoosting:
    def test_improves_with_stages(self, rng):
        X, Y = nonlinear_data(rng)
        few = GradientBoostingRegressor(n_estimators=2, seed=0).fit(X, Y)
        many = GradientBoostingRegressor(n_estimators=80, seed=0).fit(X, Y)
        assert r2_score(Y, many.predict(X)) > r2_score(Y, few.predict(X))

    def test_beats_linear_on_nonlinear_target(self, rng):
        X, Y = nonlinear_data(rng)
        Xtr, Ytr, Xte, Yte = X[:200], Y[:200], X[200:], Y[200:]
        gbm = GradientBoostingRegressor(n_estimators=60, seed=0).fit(Xtr, Ytr)
        lr = LinearRegression().fit(Xtr, Ytr)
        assert r2_score(Yte, gbm.predict(Xte)) > r2_score(Yte, lr.predict(Xte))

    def test_zero_stages_rejected(self):
        with pytest.raises(ModelError):
            GradientBoostingRegressor(n_estimators=0)

    def test_learning_rate_validated(self):
        with pytest.raises(ModelError):
            GradientBoostingRegressor(learning_rate=0.0)

    def test_subsample_validated(self):
        with pytest.raises(ModelError):
            GradientBoostingRegressor(subsample=1.5)

    def test_stochastic_subsample_works(self, rng):
        X, Y = nonlinear_data(rng, n=100)
        m = GradientBoostingRegressor(n_estimators=10, subsample=0.5, seed=0).fit(X, Y)
        assert m.predict(X).shape == Y.shape

    def test_predict_before_fit(self):
        with pytest.raises(ModelError):
            GradientBoostingRegressor().predict(np.zeros((1, 2)))
