"""Unit tests for workload serialization."""

import json

import pytest

from repro.errors import WorkloadError
from repro.workloads.serialize import (
    load_stream,
    save_stream,
    stream_from_dict,
    stream_to_dict,
)
from repro.workloads.synth import SyntheticWorkload, WorkloadParams


def sample_stream(n=4, rate=0.5):
    params = WorkloadParams(vector_size=8, tensor_size=16, batch=2, num_vectors=n, repeated_rate=rate)
    return SyntheticWorkload(params, seed=0).vectors()


class TestRoundtrip:
    def test_structure_preserved(self):
        vectors = sample_stream()
        loaded = stream_from_dict(stream_to_dict(vectors))
        assert len(loaded) == len(vectors)
        for a, b in zip(vectors, loaded):
            assert a.vector_id == b.vector_id
            assert [p.input_uids for p in a.pairs] == [p.input_uids for p in b.pairs]
            assert [p.out.uid for p in a.pairs] == [p.out.uid for p in b.pairs]

    def test_reuse_structure_preserved(self):
        """Shared tensors stay shared — the whole point of the format."""
        vectors = sample_stream(rate=1.0)
        loaded = stream_from_dict(stream_to_dict(vectors))
        orig_shared = set(vectors[0].unique_input_uids()) & set(vectors[1].unique_input_uids())
        new_shared = set(loaded[0].unique_input_uids()) & set(loaded[1].unique_input_uids())
        assert orig_shared == new_shared
        assert orig_shared  # rate 1.0 must share something

    def test_tensor_geometry_preserved(self):
        vectors = sample_stream()
        loaded = stream_from_dict(stream_to_dict(vectors))
        t0, t1 = vectors[0].pairs[0].left, loaded[0].pairs[0].left
        assert (t0.size, t0.batch, t0.rank, t0.dtype_bytes) == (t1.size, t1.batch, t1.rank, t1.dtype_bytes)

    def test_meta_scalars_preserved(self):
        vectors = sample_stream()
        loaded = stream_from_dict(stream_to_dict(vectors))
        assert loaded[1].meta["measured_repeated_rate"] == vectors[1].meta["measured_repeated_rate"]

    def test_file_roundtrip(self, tmp_path):
        vectors = sample_stream()
        path = tmp_path / "workload.json"
        save_stream(vectors, path)
        loaded = load_stream(path)
        assert len(loaded) == len(vectors)
        json.loads(path.read_text())  # valid JSON on disk

    def test_tensors_stored_once(self):
        vectors = sample_stream(rate=1.0)
        payload = stream_to_dict(vectors)
        uids = [t["uid"] for t in payload["tensors"]]
        assert len(uids) == len(set(uids))


class TestErrors:
    def test_version_checked(self):
        payload = stream_to_dict(sample_stream())
        payload["version"] = 99
        with pytest.raises(WorkloadError):
            stream_from_dict(payload)

    def test_dangling_reference(self):
        payload = stream_to_dict(sample_stream())
        payload["vectors"][0]["pairs"][0]["left"] = 10**9
        with pytest.raises(WorkloadError):
            stream_from_dict(payload)


class TestReplayEquivalence:
    def test_scheduler_sees_identical_stream(self, tmp_path):
        """A replayed stream produces identical metrics."""
        from repro.core.config import MiccoConfig
        from repro.core.framework import Micco

        vectors = sample_stream()
        path = tmp_path / "w.json"
        save_stream(vectors, path)
        loaded = load_stream(path)
        cfg = MiccoConfig(num_devices=2)
        a = Micco.naive(cfg).run(vectors)
        b = Micco.naive(cfg).run(loaded)
        assert a.metrics.summary() == b.metrics.summary()
