"""Unit tests for the MICCO heuristic (Alg. 1 + Alg. 2)."""

import pytest

from repro.errors import SchedulingError
from repro.gpusim.costmodel import CostModel
from repro.gpusim.engine import ExecutionEngine
from repro.gpusim.metrics import ExecutionMetrics
from repro.schedulers.bounds import ReuseBounds
from repro.schedulers.micco import MiccoScheduler, incoming_bytes, would_evict
from repro.schedulers.reuse_patterns import ReusePattern
from repro.tensor.spec import TensorPair, VectorSpec
from tests.conftest import MIB, make_cluster, make_pair, make_tensor, make_vector


class TestIncomingBytes:
    def test_counts_non_resident_inputs_and_output(self):
        cl = make_cluster()
        p = make_pair()
        assert incoming_bytes(p, 0, cl) == p.left.nbytes + p.right.nbytes + p.out.nbytes

    def test_resident_inputs_excluded(self):
        cl = make_cluster()
        p = make_pair()
        cl.register(p.left, 0)
        assert incoming_bytes(p, 0, cl) == p.right.nbytes + p.out.nbytes

    def test_duplicate_input_counted_once(self):
        cl = make_cluster()
        t = make_tensor()
        p = TensorPair.make(t, t)
        assert incoming_bytes(p, 0, cl) == t.nbytes + p.out.nbytes

    def test_would_evict_tracks_free_bytes(self):
        p = make_pair(size=64, batch=8)
        tight = make_cluster(memory_bytes=2 * p.left.nbytes)
        roomy = make_cluster(memory_bytes=64 * MIB)
        assert would_evict(p, 0, tight)
        assert not would_evict(p, 0, roomy)


class TestCandidateQueue:
    """Alg. 1 steps I-III over explicit residency layouts."""

    def setup_method(self):
        self.cl = make_cluster(num_devices=4)
        self.cl.begin_vector(16)  # balance 4 slots/device

    def test_two_repeated_same_yields_holder(self):
        sched = MiccoScheduler()
        p = make_pair()
        self.cl.register(p.left, 2)
        self.cl.register(p.right, 2)
        assert sched.build_candidates(p, self.cl) == [2]

    def test_two_repeated_diff_yields_both_holders(self):
        sched = MiccoScheduler()
        p = make_pair()
        self.cl.register(p.left, 1)
        self.cl.register(p.right, 3)
        assert sched.build_candidates(p, self.cl) == [1, 3]

    def test_one_repeated_yields_holder(self):
        sched = MiccoScheduler()
        p = make_pair()
        self.cl.register(p.right, 0)
        assert sched.build_candidates(p, self.cl) == [0]

    def test_two_new_yields_all_available(self):
        sched = MiccoScheduler()
        assert sched.build_candidates(make_pair(), self.cl) == [0, 1, 2, 3]

    def test_unavailable_holder_falls_through_to_tier1(self):
        """A twoRepeatedSame holder over the tier-0 bound is skipped;
        tier 1 then still considers holders of one tensor."""
        sched = MiccoScheduler(ReuseBounds(0, 8, 8))
        p = make_pair()
        self.cl.register(p.left, 2)
        self.cl.register(p.right, 2)
        self.cl.assigned_slots[2] = 4  # at balance -> tier-0 unavailable
        candi = sched.build_candidates(p, self.cl)
        assert candi == [2]  # tier-1 bound (8) readmits the holder

    def test_full_fallback_when_all_over(self):
        sched = MiccoScheduler()
        self.cl.assigned_slots[:] = 100
        assert sched.build_candidates(make_pair(), self.cl) == [0, 1, 2, 3]

    def test_pattern_counts_updated(self):
        sched = MiccoScheduler()
        p = make_pair()
        self.cl.register(p.left, 0)
        sched.build_candidates(p, self.cl)
        assert sched.pattern_counts[ReusePattern.ONE_REPEATED] == 1
        sched.reset_stats()
        assert sched.pattern_counts[ReusePattern.ONE_REPEATED] == 0


class TestSelect:
    def test_least_compute_wins_without_pressure(self):
        cl = make_cluster(num_devices=3)
        cl.begin_vector(8)
        cl.compute_s[:] = [3.0, 1.0, 2.0]
        sched = MiccoScheduler()
        assert sched.select([0, 1, 2], make_pair(), cl) == 1

    def test_most_free_memory_wins_under_pressure(self):
        p = make_pair(size=64, batch=8)
        cl = make_cluster(num_devices=2, memory_bytes=4 * p.left.nbytes)
        cl.begin_vector(4)
        # Fill device 0 so placing the pair there would evict.
        cl.register(make_tensor(size=64, batch=8), 0)
        cl.register(make_tensor(size=64, batch=8), 0)
        cl.compute_s[:] = [0.0, 10.0]  # device 0 has less compute...
        sched = MiccoScheduler()
        # ...but the eviction-sensitive policy picks the roomier device 1.
        assert sched.select([0, 1], p, cl) == 1

    def test_empty_queue_raises(self):
        cl = make_cluster()
        with pytest.raises(SchedulingError):
            MiccoScheduler().select([], make_pair(), cl)

    def test_deterministic_tie_break_lowest_id(self):
        cl = make_cluster(num_devices=3)
        cl.begin_vector(8)
        sched = MiccoScheduler()
        assert sched.select([2, 0, 1], make_pair(), cl) == 0


class TestEndToEnd:
    def test_reuses_resident_pair_location(self):
        """Repeating the same pair twice lands on the same device."""
        cl = make_cluster()
        engine = ExecutionEngine(cl, CostModel())
        sched = MiccoScheduler(ReuseBounds(4, 4, 4))
        t1, t2 = make_tensor(), make_tensor()
        v = VectorSpec(pairs=[TensorPair.make(t1, t2), TensorPair.make(t1, t2)])
        cl.begin_vector(v.num_tensors)
        m = ExecutionMetrics(num_devices=cl.num_devices)
        devices = []
        for p in v.pairs:
            g = sched.choose(p, cl)
            engine.execute_pair(p, g, m)
            devices.append(g)
        assert devices[0] == devices[1]
        assert m.counts.reuse_hits >= 2

    def test_naive_bounds_spread_work(self):
        """With bounds 0, a vector's pairs cannot pile on one device."""
        cl = make_cluster(num_devices=2)
        engine = ExecutionEngine(cl, CostModel())
        sched = MiccoScheduler(ReuseBounds.zeros())
        v = make_vector(n_pairs=4)
        cl.begin_vector(v.num_tensors)  # balance: 4 slots/device
        m = ExecutionMetrics(num_devices=2)
        for p in v.pairs:
            engine.execute_pair(p, sched.choose(p, cl), m)
        assert list(m.pairs_per_device) == [2, 2]

    def test_set_bounds_changes_behaviour(self):
        sched = MiccoScheduler()
        assert sched.bounds.as_tuple() == (0.0, 0.0, 0.0)
        sched.set_bounds(ReuseBounds(2, 2, 2))
        assert sched.bounds.as_tuple() == (2.0, 2.0, 2.0)
