"""Unit tests for tenant specs, stream building and per-tenant reports."""

import pytest

from repro.errors import ConfigurationError
from repro.serve import (
    MultiTenantServer,
    PoissonArrivals,
    ServeConfig,
    SloTargets,
    TenantSpec,
    TraceArrivals,
)
from repro.serve.slo import LatencyReport
from repro.serve.tenancy import build_streams, tenant_sections
from repro.serve.timeline import Ticket
from repro.workloads import WorkloadParams
from tests.conftest import make_vector


def spec(name="t", rate=100.0, weight=1.0, num_vectors=4, **slo):
    return TenantSpec(
        name,
        PoissonArrivals(rate),
        WorkloadParams(num_vectors=num_vectors, vector_size=8, tensor_size=32),
        weight=weight,
        slo=SloTargets(**slo),
    )


class TestTenantSpec:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TenantSpec("", PoissonArrivals(1.0))
        with pytest.raises(ConfigurationError):
            TenantSpec("a", PoissonArrivals(1.0), weight=0.0)
        with pytest.raises(ConfigurationError):
            TenantSpec("a", "poisson")  # not an ArrivalProcess

    def test_dict_round_trip(self):
        s = spec("heavy", rate=250.0, weight=3.0, p99_s=0.5, max_drop_rate=0.1)
        assert TenantSpec.from_dict(s.to_dict()) == s

    def test_from_dict_rejects_unknown_keys(self):
        d = spec().to_dict()
        d["priority"] = 7
        with pytest.raises(ConfigurationError):
            TenantSpec.from_dict(d)

    def test_from_dict_needs_name_and_arrivals(self):
        with pytest.raises(ConfigurationError):
            TenantSpec.from_dict({"name": "a"})

    def test_num_vectors_property(self):
        assert spec(num_vectors=7).num_vectors == 7


class TestSloTargets:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SloTargets(p99_s=0.0)
        with pytest.raises(ConfigurationError):
            SloTargets(max_drop_rate=1.5)

    def test_attainment_met_and_missed(self):
        report = LatencyReport()
        t = Ticket(vector=make_vector(n_pairs=2), arrival_s=0.0)
        t.dispatch_s = t.sched_done_s = 0.0
        t.complete_s = 0.1
        report.add_completion(t)
        ok = SloTargets(p99_s=1.0).attainment(report)
        assert ok["attained"] and ok["checks"]["p99_s"]["met"]
        miss = SloTargets(p99_s=0.01).attainment(report)
        assert not miss["attained"]

    def test_unset_targets_vacuously_attained(self):
        assert SloTargets().attainment(LatencyReport())["attained"]
        assert SloTargets().attainment(LatencyReport())["checks"] == {}

    def test_target_with_no_completions_is_unmet(self):
        res = SloTargets(p99_s=1.0).attainment(LatencyReport())
        assert not res["attained"]  # NaN percentile cannot satisfy a target


class TestBuildStreams:
    def test_deterministic_per_seed(self):
        tenants = (spec("a", weight=2.0), spec("b"))
        s1 = build_streams(tenants, seed=5)
        s2 = build_streams(tenants, seed=5)
        assert [st.times for st in s1] == [st.times for st in s2]
        assert [
            [v.num_tensors for v in st.vectors] for st in s1
        ] == [[v.num_tensors for v in st.vectors] for st in s2]

    def test_different_seeds_differ(self):
        tenants = (spec("a"),)
        assert build_streams(tenants, 1)[0].times != build_streams(tenants, 2)[0].times

    def test_vector_ids_globally_unique(self):
        streams = build_streams((spec("a", num_vectors=3), spec("b", num_vectors=3)), 0)
        ids = [v.vector_id for st in streams for v in st.vectors]
        assert ids == list(range(6))

    def test_rejects_duplicate_names(self):
        with pytest.raises(ConfigurationError):
            build_streams((spec("a"), spec("a")), 0)

    def test_rejects_empty_roster(self):
        with pytest.raises(ConfigurationError):
            build_streams((), 0)


class TestTenantSections:
    def make_report(self):
        report = LatencyReport()
        for i, tenant in enumerate(["a", "a", "b"]):
            t = Ticket(vector=make_vector(n_pairs=2, vector_id=i), arrival_s=0.0, tenant=tenant)
            t.dispatch_s = t.sched_done_s = 0.0
            t.complete_s = 0.1 * (i + 1)
            report.add_completion(t)
        return report

    def test_sections_slice_by_tenant(self):
        report = self.make_report()
        sections = tenant_sections(report, [spec("a", weight=2.0), spec("b")])
        assert sections["a"]["summary"]["completed"] == 2
        assert sections["b"]["summary"]["completed"] == 1
        assert sections["a"]["weight"] == 2.0

    def test_for_tenant_view(self):
        report = self.make_report()
        sub = report.for_tenant("a")
        assert len(sub.completed) == 2
        assert report.tenant_names() == ["a", "b"]


class TestServeConfigTenancy:
    def test_tenant_names_must_be_unique(self):
        with pytest.raises(ConfigurationError):
            ServeConfig(tenants=(spec("a"), spec("a")))

    def test_json_round_trip(self, tmp_path):
        from repro.serve import AutoscalerConfig

        cfg = ServeConfig(
            queue_capacity=16,
            tenants=(spec("heavy", weight=3.0, p99_s=0.5), spec("light")),
            autoscaler=AutoscalerConfig(max_devices=4, p99_target_s=0.1),
        )
        path = tmp_path / "cfg.json"
        cfg.to_json(path)
        assert ServeConfig.from_json(path) == cfg

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError):
            ServeConfig.from_dict({"queue_capcity": 3})


class TestMultiTenantServer:
    def test_requires_tenants(self):
        with pytest.raises(ConfigurationError):
            MultiTenantServer(serve=ServeConfig())

    def test_per_tenant_sections_in_result(self):
        cfg = ServeConfig(tenants=(spec("a", weight=2.0), spec("b")))
        result = MultiTenantServer(serve=cfg).run(seed=0)
        assert set(result.tenants) == {"a", "b"}
        assert result.summary()["tenants"]["a"]["summary"]["offered"] == 4
        assert result.queue["policy"] == "weighted"

    def test_deterministic_per_seed(self):
        cfg = ServeConfig(tenants=(spec("a"), spec("b")))
        server = MultiTenantServer(serve=cfg)
        assert server.run(seed=3).summary() == server.run(seed=3).summary()

    def test_weighted_shares_under_saturation(self):
        # Both tenants arrive at t≈0 (trace arrivals) with equal demand;
        # weight 3:1 should let the heavy tenant finish ~3/4 of the
        # early dispatches.
        n = 12
        heavy = TenantSpec(
            "heavy",
            TraceArrivals([0.0] * n),
            WorkloadParams(num_vectors=n, vector_size=8, tensor_size=32),
            weight=3.0,
        )
        light = TenantSpec(
            "light",
            TraceArrivals([0.0] * n),
            WorkloadParams(num_vectors=n, vector_size=8, tensor_size=32),
            weight=1.0,
        )
        cfg = ServeConfig(queue_capacity=64, tenants=(heavy, light))
        result = MultiTenantServer(serve=cfg).run(seed=0)
        completions = sorted(result.report.completed, key=lambda r: r.dispatch_s)
        first_half = completions[: n]
        share = sum(1 for r in first_half if r.tenant == "heavy") / len(first_half)
        assert share == pytest.approx(0.75, abs=0.1)
