"""Unit tests for the multi-node topology and overlap extensions."""

import pytest

from repro.errors import ConfigurationError
from repro.gpusim.costmodel import CostModel
from repro.gpusim.engine import ExecutionEngine
from repro.gpusim.metrics import ExecutionMetrics
from repro.gpusim.topology import Topology
from tests.conftest import make_cluster, make_pair


class TestTopology:
    def test_node_grouping(self):
        topo = Topology(num_devices=8, devices_per_node=4)
        assert topo.num_nodes == 2
        assert topo.node_of(0) == 0
        assert topo.node_of(3) == 0
        assert topo.node_of(4) == 1
        assert topo.same_node(0, 3)
        assert not topo.same_node(3, 4)

    def test_indivisible_rejected(self):
        with pytest.raises(ConfigurationError):
            Topology(num_devices=7, devices_per_node=4)

    def test_device_range_checked(self):
        topo = Topology(num_devices=4, devices_per_node=2)
        with pytest.raises(ConfigurationError):
            topo.node_of(4)

    def test_cross_node_slower(self):
        topo = Topology(
            num_devices=8, devices_per_node=4,
            intra_node_bandwidth=20e9, inter_node_bandwidth=5e9,
        )
        nbytes = 10**8
        intra = topo.d2d_time(0, 1, nbytes, base_latency_s=0.0)
        inter = topo.d2d_time(0, 4, nbytes, base_latency_s=0.0)
        assert inter > 3 * intra

    def test_inter_node_extra_latency(self):
        topo = Topology(
            num_devices=4, devices_per_node=2,
            intra_node_bandwidth=1e9, inter_node_bandwidth=1e9,
            inter_node_extra_latency_s=1.0,
        )
        assert topo.d2d_time(0, 2, 0, 0.0) == pytest.approx(1.0)
        assert topo.d2d_time(0, 1, 0, 0.0) == pytest.approx(0.0)


class TestTopologyInCostModel:
    def test_d2d_dispatches_to_topology(self):
        topo = Topology(num_devices=4, devices_per_node=2, inter_node_bandwidth=1e9, intra_node_bandwidth=100e9)
        cm = CostModel(topology=topo)
        nbytes = 10**9
        assert cm.d2d_time(nbytes, src=0, dst=2) > 10 * cm.d2d_time(nbytes, src=0, dst=1)

    def test_without_endpoints_falls_back(self):
        topo = Topology(num_devices=4, devices_per_node=2)
        cm = CostModel(topology=topo)
        assert cm.d2d_time(10**6) == cm.interconnect.d2d_time(10**6)

    def test_engine_charges_cross_node_transfers(self):
        topo = Topology(num_devices=2, devices_per_node=1, inter_node_bandwidth=1e9, intra_node_bandwidth=100e9)
        cluster = make_cluster(num_devices=2)
        engine = ExecutionEngine(cluster, CostModel(topology=topo))
        p = make_pair()
        cluster.register(p.left, 1)  # cross-node source
        cluster.begin_vector(2)
        m = ExecutionMetrics(num_devices=2)
        engine.execute_pair(p, 0, m)
        assert m.counts.d2d_transfers == 1
        # Cross-node copy slower than an equivalent same-config intra run.
        cluster2 = make_cluster(num_devices=2)
        engine2 = ExecutionEngine(cluster2, CostModel())
        p2 = make_pair()
        cluster2.register(p2.left, 1)
        cluster2.begin_vector(2)
        m2 = ExecutionMetrics(num_devices=2)
        engine2.execute_pair(p2, 0, m2)
        assert m.memop_s[0] > m2.memop_s[0]


class TestOverlap:
    def test_overlap_validated(self):
        with pytest.raises(ConfigurationError):
            CostModel(overlap_fraction=1.5)

    def test_effective_memop_clamped(self):
        cm = CostModel(overlap_fraction=1.0)
        assert cm.effective_memop_time(0.5, 1.0) == 0.0
        assert cm.effective_memop_time(1.5, 1.0) == pytest.approx(0.5)

    def test_overlap_reduces_makespan(self):
        p = make_pair(size=64, batch=8)
        results = {}
        for frac in (0.0, 1.0):
            cluster = make_cluster()
            engine = ExecutionEngine(cluster, CostModel(overlap_fraction=frac))
            cluster.begin_vector(2)
            m = ExecutionMetrics(num_devices=2)
            engine.execute_pair(make_pair(size=64, batch=8), 0, m)
            results[frac] = m.makespan_s
        assert results[1.0] < results[0.0]

    def test_counters_unaffected_by_overlap(self):
        """Overlap changes timing only; integer counters stay exact."""
        for frac in (0.0, 0.5, 1.0):
            cluster = make_cluster()
            engine = ExecutionEngine(cluster, CostModel(overlap_fraction=frac))
            cluster.begin_vector(2)
            m = ExecutionMetrics(num_devices=2)
            engine.execute_pair(make_pair(), 0, m)
            assert m.counts.h2d_transfers == 2
            assert m.counts.allocations == 3
