"""Unit tests for permutation feature importance."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.ml.forest import RandomForestRegressor
from repro.ml.importance import permutation_importance, rank_features
from repro.ml.linear import LinearRegression


class TestPermutationImportance:
    def test_identifies_informative_feature(self, rng):
        X = rng.uniform(-1, 1, size=(200, 3))
        y = 5 * X[:, 1] + 0.01 * rng.standard_normal(200)  # only feature 1
        model = LinearRegression().fit(X, y)
        imp = permutation_importance(model, X, y, seed=0)
        assert imp[1] > 10 * max(abs(imp[0]), abs(imp[2]), 1e-9)

    def test_irrelevant_feature_near_zero(self, rng):
        X = rng.uniform(-1, 1, size=(300, 2))
        y = X[:, 0]
        model = LinearRegression().fit(X, y)
        imp = permutation_importance(model, X, y, n_repeats=20, seed=0)
        assert abs(imp[1]) < 0.05

    def test_works_with_forest_multi_output(self, rng):
        X = rng.uniform(-1, 1, size=(150, 3))
        Y = np.stack([np.sign(X[:, 0]), np.sign(X[:, 2])], axis=1)
        model = RandomForestRegressor(n_estimators=10, seed=0).fit(X, Y)
        imp = permutation_importance(model, X, Y, seed=0)
        assert imp[0] > imp[1] and imp[2] > imp[1]

    def test_deterministic_given_seed(self, rng):
        X = rng.uniform(size=(80, 2))
        y = X[:, 0]
        model = LinearRegression().fit(X, y)
        a = permutation_importance(model, X, y, seed=7)
        b = permutation_importance(model, X, y, seed=7)
        np.testing.assert_array_equal(a, b)

    def test_validation(self, rng):
        model = LinearRegression().fit(rng.uniform(size=(10, 2)), rng.uniform(size=10))
        with pytest.raises(ModelError):
            permutation_importance(model, np.zeros((5, 2)), np.zeros(4))
        with pytest.raises(ModelError):
            permutation_importance(model, np.zeros((5, 2)), np.zeros(5), n_repeats=0)


class TestRankFeatures:
    def test_sorted_descending(self):
        ranked = rank_features(["a", "b", "c"], np.array([0.1, 0.9, 0.5]))
        assert [n for n, _ in ranked] == ["b", "c", "a"]

    def test_length_mismatch(self):
        with pytest.raises(ModelError):
            rank_features(["a"], np.array([0.1, 0.2]))
