"""Two-level sharded control plane: routing, staleness, shard death."""

import json

import pytest

from repro.core.config import MiccoConfig
from repro.errors import ConfigurationError
from repro.faults import FaultEvent, FaultKind, FaultPlan
from repro.gpusim import CostModel, Topology
from repro.schedulers.bounds import ReuseBounds
from repro.schedulers.micco import MiccoScheduler
from repro.serve import (
    HealthConfig,
    MiccoServer,
    PoissonArrivals,
    ServeConfig,
    ShardedServer,
    SloTargets,
    TenantSpec,
)
from repro.workloads import SyntheticWorkload, WorkloadParams

MIB = 1024**2


def sharded_config(num_devices: int = 8, devices_per_node: int = 4) -> MiccoConfig:
    topo = Topology(num_devices=num_devices, devices_per_node=devices_per_node)
    return MiccoConfig(
        num_devices=num_devices,
        memory_bytes=64 * MIB,
        cost_model=CostModel(topology=topo),
    )


def make_vectors(n: int = 16, seed: int = 3):
    params = WorkloadParams(
        vector_size=8, tensor_size=128, repeated_rate=0.6, num_vectors=n, batch=4
    )
    return SyntheticWorkload(params, seed=seed).vectors()


def run_sharded(*, serve=None, n=16, arrivals=None, seed=0, faults=None,
                num_devices=8, devices_per_node=4):
    server = ShardedServer(
        MiccoScheduler(ReuseBounds(0, 4, 0)),
        sharded_config(num_devices, devices_per_node),
        serve or ServeConfig(sharded=True),
    )
    return server, server.run(
        make_vectors(n),
        arrivals if arrivals is not None else PoissonArrivals(300.0),
        seed=seed, faults=faults,
    )


class TestShardedServerBasics:
    def test_requires_topology(self):
        with pytest.raises(ConfigurationError, match="Topology"):
            ShardedServer(config=MiccoConfig(num_devices=4))

    def test_topology_must_cover_the_cluster(self):
        topo = Topology(num_devices=4, devices_per_node=2)
        cfg = MiccoConfig(num_devices=8, cost_model=CostModel(topology=topo))
        with pytest.raises(ConfigurationError, match="covers"):
            ShardedServer(config=cfg)

    def test_completes_everything_and_conserves_tickets(self):
        _, result = run_sharded()
        s = result.summary()
        assert s["completed"] + s["dropped"] == s["offered"] == 16
        assert s["dropped"] == 0

    def test_one_shard_per_topology_node(self):
        _, result = run_sharded(num_devices=8, devices_per_node=2)
        sh = result.sharding
        assert sh["num_shards"] == 4
        assert [x["devices"] for x in sh["shards"]] == [
            [0, 1], [2, 3], [4, 5], [6, 7]
        ]

    def test_every_ticket_is_routed_to_some_shard(self):
        _, result = run_sharded()
        sh = result.sharding
        assert sum(x["routed"] for x in sh["shards"]) == 16
        # The report records which shard dispatched every round.
        assert all("shard" in rnd for rnd in result.rounds)

    def test_digest_syncs_happen_on_the_configured_interval(self):
        serve = ServeConfig(sharded=True, sync_interval_s=0.005)
        _, fine = run_sharded(serve=serve)
        _, coarse = run_sharded(serve=ServeConfig(sharded=True, sync_interval_s=0.5))
        assert fine.sharding["syncs"] > coarse.sharding["syncs"]

    def test_placements_stay_inside_the_routed_shard(self):
        # Without faults every member's devices lie in its round's shard.
        server, result = run_sharded()
        topo = server.topology
        shard_of_round = {r["round_id"]: r["shard"] for r in result.rounds}
        for rec in result.report.completed:
            assert rec.devices, rec
            nodes = {topo.node_of(d) for d in rec.devices}
            assert nodes == {shard_of_round[rec.round_id]}

    def test_vectors_pay_cross_node_fetches_not_colocation(self):
        # Shared tensors routed to different shards show up as real
        # cross-node traffic in the metrics, never free co-location.
        _, result = run_sharded()
        assert result.sharding["cross_node_fetches"] == (
            result.metrics.counts.cross_node_fetches
        )


class TestForwarding:
    def full_cluster(self, n=10):
        # One round per shard in flight (max_inflight=1), one queue slot
        # each, and a dispatch latency far past the arrival burst: after
        # 4 tickets every shard is saturated and the rest face all-full
        # queues.
        serve = ServeConfig(
            sharded=True, queue_capacity=1, max_inflight=1,
            schedule_latency_per_pair_s=1.0,
        )
        return run_sharded(serve=serve, n=n, arrivals=[0.0] * n)

    def test_all_queues_full_sheds_exactly_once(self):
        _, result = self.full_cluster()
        s = result.summary()
        assert s["completed"] + s["dropped"] == s["offered"] == 10
        assert s["dropped"] == 6  # 2 dispatched + 2 queued, rest shed
        reasons = result.report.drops_by_reason()
        assert reasons.get("queue-full", 0) == 6

    def test_one_routing_attempt_visits_each_shard_at_most_once(self):
        _, result = self.full_cluster()
        sh = result.sharding
        # Every shed ticket was offered to each of the 2 full shards
        # exactly once — no bouncing between previously-tried shards.
        assert sh["forwards"] == 2 * result.summary()["dropped"]

    def test_all_full_shed_is_deterministic(self):
        summaries = {
            json.dumps(self.full_cluster()[1].summary(), sort_keys=True)
            for _ in range(2)
        }
        assert len(summaries) == 1


class TestShardedDeterminism:
    def test_same_seed_gives_byte_identical_reports(self, tmp_path):
        paths = []
        for i in range(2):
            serve = ServeConfig(sharded=True, max_batch_vectors=4)
            _, result = run_sharded(serve=serve, seed=5)
            p = tmp_path / f"run{i}.json"
            result.to_json(p)
            paths.append(p.read_bytes())
        assert paths[0] == paths[1]

    def test_same_seed_is_deterministic_under_node_loss(self):
        plan = FaultPlan((FaultEvent(FaultKind.NODE_LOST, 0.02, 5),))
        summaries = []
        for _ in range(2):
            _, result = run_sharded(faults=plan, seed=2)
            summaries.append(json.dumps(result.summary(), sort_keys=True))
        assert summaries[0] == summaries[1]

    def test_different_routing_policies_change_placement(self):
        outcomes = set()
        for routing in ("least-loaded", "residency-affinity", "threshold-local"):
            # Back-to-back arrivals with a visible dispatch latency so
            # backlog, residency and hashing actually pull apart.
            serve = ServeConfig(
                sharded=True, routing=routing,
                schedule_latency_per_pair_s=1e-3, sync_interval_s=0.002,
            )
            _, result = run_sharded(
                serve=serve, seed=1, n=24, arrivals=[i * 5e-4 for i in range(24)]
            )
            outcomes.add(tuple(r["shard"] for r in result.rounds))
        assert len(outcomes) > 1  # policies actually disagree somewhere


class TestShardDeath:
    def test_node_loss_kills_exactly_one_shard(self):
        plan = FaultPlan((FaultEvent(FaultKind.NODE_LOST, 0.01, 5),))
        server, result = run_sharded(faults=plan, n=24)
        sh = result.sharding
        dead = [x for x in sh["shards"] if x["dead"]]
        alive = [x for x in sh["shards"] if not x["dead"]]
        assert [x["node"] for x in dead] == [1]
        assert all(x["alive"] == 4 for x in alive)
        assert server.cluster.num_alive == 4

    def test_orphans_reroute_through_the_global_tier(self):
        # Saturate so shard 1 has queued + in-flight work when it dies.
        serve = ServeConfig(sharded=True, schedule_latency_per_pair_s=2e-3)
        plan = FaultPlan((FaultEvent(FaultKind.NODE_LOST, 0.05, 5),))
        _, result = run_sharded(
            serve=serve, faults=plan, n=32,
            arrivals=[i * 2e-3 for i in range(32)],
        )
        sh = result.sharding
        assert sh["rerouted"] > 0
        survivor = next(x for x in sh["shards"] if not x["dead"])
        assert survivor["rerouted_in"] == sh["rerouted"]
        s = result.summary()
        assert s["completed"] + s["dropped"] == s["offered"]

    def test_all_nodes_dead_sheds_the_rest(self):
        plan = FaultPlan((
            FaultEvent(FaultKind.NODE_LOST, 1e-3, 0),
            FaultEvent(FaultKind.NODE_LOST, 1e-3, 4),
        ))
        _, result = run_sharded(faults=plan, n=12, arrivals=[i * 1e-3 for i in range(12)])
        s = result.summary()
        assert s["completed"] + s["dropped"] == s["offered"]
        assert result.report.drops_by_reason().get("fault-abandoned", 0) > 0

    def test_partial_loss_keeps_the_shard_serving(self):
        # device_lost inside a shard shrinks it without killing it.
        plan = FaultPlan((FaultEvent(FaultKind.DEVICE_LOST, 0.01, 5),))
        _, result = run_sharded(faults=plan, n=24)
        sh = result.sharding
        hurt = next(x for x in sh["shards"] if x["node"] == 1)
        assert not hurt["dead"]
        assert hurt["alive"] == 3
        assert result.summary()["completed"] > 0

    def test_link_lost_degrades_without_killing_the_shard(self):
        plan = FaultPlan((FaultEvent(FaultKind.LINK_LOST, 1e-3, 0),))
        _, result = run_sharded(faults=plan, n=24)
        assert all(not x["dead"] for x in result.sharding["shards"])
        assert all(x["alive"] == 4 for x in result.sharding["shards"])
        assert result.faults["link_losses"] == 1


class TestShardedTenancyAndScaling:
    def tenants(self):
        return (
            TenantSpec(
                "heavy", PoissonArrivals(400.0),
                WorkloadParams(num_vectors=12, vector_size=8, tensor_size=64, batch=2),
                weight=3.0, slo=SloTargets(p99_s=0.5),
            ),
            TenantSpec(
                "light", PoissonArrivals(200.0),
                WorkloadParams(num_vectors=6, vector_size=8, tensor_size=64, batch=2),
                weight=1.0,
            ),
        )

    def test_tenant_streams_route_across_shards(self):
        serve = ServeConfig(sharded=True, tenants=self.tenants())
        server = ShardedServer(
            MiccoScheduler(ReuseBounds(0, 4, 0)), sharded_config(), serve
        )
        result = server.run(seed=0)
        assert result.tenants is not None
        assert set(result.tenants) == {"heavy", "light"}
        s = result.summary()
        assert s["completed"] + s["dropped"] == s["offered"] == 18
        # Weighted-fair dispatch runs inside every shard's queue.
        assert all(
            x["queue"]["policy"] == "weighted"
            for x in result.sharding["shards"]
        )

    def test_tenants_mode_rejects_explicit_vectors(self):
        serve = ServeConfig(sharded=True, tenants=self.tenants())
        server = ShardedServer(
            MiccoScheduler(ReuseBounds(0, 4, 0)), sharded_config(), serve
        )
        with pytest.raises(ConfigurationError, match="tenants"):
            server.run(make_vectors(4), [0.0] * 4)

    def test_per_shard_autoscaler_is_clamped_to_the_shard(self):
        from repro.serve import AutoscalerConfig

        serve = ServeConfig(
            sharded=True,
            autoscaler=AutoscalerConfig(
                min_devices=1, max_devices=8, initial_devices=1,
                up_queue_depth=2, down_queue_depth=0, warmup_s=1e-3,
                cooldown_s=1e-3,
            ),
        )
        _, result = run_sharded(serve=serve, n=24, arrivals=[i * 1e-3 for i in range(24)])
        assert result.autoscale is not None
        assert set(result.autoscale["per_shard"]) == {"0", "1"}
        # Scale-ups only ever activate the shard's own devices.
        assert result.autoscale["scale_ups"] >= 0
        s = result.summary()
        assert s["completed"] + s["dropped"] == s["offered"]


class TestServeConfigV5:
    def test_v5_round_trip(self, tmp_path):
        cfg = ServeConfig(
            sharded=True, sync_interval_s=0.01, routing="threshold-local",
            health=HealthConfig(hedging=True, probation_beats=5),
        )
        path = tmp_path / "cfg.json"
        cfg.to_json(path)
        on_disk = json.loads(path.read_text())
        assert on_disk["version"] == ServeConfig.CONFIG_VERSION == 8
        assert ServeConfig.from_json(path) == cfg

    def test_v3_file_loads_with_later_defaults(self, tmp_path):
        path = tmp_path / "v3.json"
        path.write_text(json.dumps({"version": 3, "max_batch_vectors": 2}))
        cfg = ServeConfig.from_json(path)
        assert cfg.sharded is False
        assert cfg.sync_interval_s == 0.05
        assert cfg.routing == "least-loaded"
        assert cfg.health is None

    @pytest.mark.parametrize("key, value", [
        ("sharded", True),
        ("sync_interval_s", 0.01),
        ("routing", "threshold-local"),
    ])
    def test_v4_keys_rejected_in_version_3_file(self, tmp_path, key, value):
        path = tmp_path / "v3.json"
        path.write_text(json.dumps({"version": 3, key: value}))
        with pytest.raises(ConfigurationError):
            ServeConfig.from_json(path)

    def test_v5_key_rejected_in_version_4_file(self, tmp_path):
        path = tmp_path / "v4.json"
        path.write_text(
            json.dumps({"version": 4, "health": HealthConfig().to_dict()})
        )
        with pytest.raises(ConfigurationError):
            ServeConfig.from_json(path)

    def test_v4_file_loads_without_health(self, tmp_path):
        path = tmp_path / "v4.json"
        path.write_text(json.dumps({"version": 4, "sharded": True}))
        cfg = ServeConfig.from_json(path)
        assert cfg.sharded is True
        assert cfg.health is None

    def test_fields_validate(self):
        with pytest.raises(ConfigurationError):
            ServeConfig(sync_interval_s=0.0)
        with pytest.raises(ConfigurationError):
            ServeConfig(routing="random")
        with pytest.raises(ConfigurationError):
            ServeConfig(health={"hedging": True})  # not a HealthConfig


class TestDeadlineAwareBatching:
    def two_tenant_serve(self, p99_s):
        return ServeConfig(
            tenants=(
                TenantSpec(
                    "slo", PoissonArrivals(500.0),
                    WorkloadParams(num_vectors=12, vector_size=8, tensor_size=64,
                                   batch=2),
                    slo=SloTargets(p99_s=p99_s),
                ),
            ),
            max_batch_vectors=8,
            # Make round assembly the dominant latency so the deadline
            # cutoff visibly limits round growth.
            schedule_latency_per_pair_s=5e-3,
        )

    def mean_round_size(self, result):
        sizes = [len(r["members"]) for r in result.rounds]
        return sum(sizes) / len(sizes)

    def test_tight_deadlines_cut_rounds_short(self):
        from repro.serve import MultiTenantServer

        tight = MultiTenantServer(
            MiccoScheduler(ReuseBounds(0, 4, 0)),
            MiccoConfig(num_devices=4, memory_bytes=64 * MIB),
            self.two_tenant_serve(p99_s=0.05),
        ).run(seed=0)
        loose = MultiTenantServer(
            MiccoScheduler(ReuseBounds(0, 4, 0)),
            MiccoConfig(num_devices=4, memory_bytes=64 * MIB),
            self.two_tenant_serve(p99_s=60.0),
        ).run(seed=0)
        assert self.mean_round_size(tight) < self.mean_round_size(loose)

    def test_no_deadline_never_constrains_growth(self):
        # Single-stream tickets carry no deadline: batching is bounded
        # only by shape, memory and max_batch_vectors.
        serve = ServeConfig(max_batch_vectors=8, schedule_latency_per_pair_s=5e-3)
        server = MiccoServer(
            MiccoScheduler(ReuseBounds(0, 4, 0)),
            MiccoConfig(num_devices=4, memory_bytes=64 * MIB),
            serve,
        )
        result = server.run(make_vectors(12), [0.0] * 12)
        assert max(len(r["members"]) for r in result.rounds) > 1
