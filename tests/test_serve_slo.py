"""Unit tests for the latency SLO report."""

import json
import math

import pytest

from repro.errors import ConfigurationError
from repro.serve.slo import LatencyReport, VectorLatency
from repro.serve.timeline import Ticket
from tests.conftest import make_vector


def completed_ticket(vector_id=0, arrival=0.0, dispatch=1.0, sched=1.5, complete=3.0, devices=(0,)):
    t = Ticket(vector=make_vector(n_pairs=2, vector_id=vector_id), arrival_s=arrival)
    t.dispatch_s = dispatch
    t.sched_done_s = sched
    t.complete_s = complete
    t.devices = list(devices)
    return t


def report_with(latencies):
    """Report of vectors completing exactly ``latencies`` after arrival."""
    rep = LatencyReport()
    for i, lat in enumerate(latencies):
        rep.add_completion(
            completed_ticket(vector_id=i, arrival=0.0, dispatch=0.0, sched=0.0, complete=lat)
        )
    return rep


class TestVectorLatency:
    def test_breakdown_sums_to_total(self):
        rep = LatencyReport()
        rec = rep.add_completion(completed_ticket())
        assert rec.queue_wait_s == pytest.approx(1.0)
        assert rec.schedule_s == pytest.approx(0.5)
        assert rec.execute_s == pytest.approx(1.5)
        assert rec.latency_s == pytest.approx(
            rec.queue_wait_s + rec.schedule_s + rec.execute_s
        )


class TestPercentiles:
    def test_known_values(self):
        rep = report_with([float(i) for i in range(1, 101)])
        assert rep.p50 == pytest.approx(50.5)
        assert rep.percentile(100) == pytest.approx(100.0)
        assert rep.p99 <= 100.0

    def test_empty_is_nan(self):
        rep = LatencyReport()
        assert math.isnan(rep.p50) and math.isnan(rep.mean_latency_s)

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            report_with([1.0]).percentile(101)


class TestAggregates:
    def test_drop_rate(self):
        rep = report_with([1.0, 2.0])
        rep.add_drop(completed_ticket(vector_id=9))
        assert rep.offered == 3
        assert rep.drop_rate == pytest.approx(1 / 3)

    def test_empty_drop_rate_zero(self):
        assert LatencyReport().drop_rate == 0.0

    def test_throughput_timeline(self):
        rep = report_with([0.5, 1.5, 1.7, 2.5])
        windows = rep.throughput_timeline(1.0)
        assert [w["completions"] for w in windows] == [1, 2, 1]
        assert windows[1]["rate"] == pytest.approx(2.0)
        assert windows[-1]["t_end_s"] == pytest.approx(3.0)

    def test_throughput_empty(self):
        assert LatencyReport().throughput_timeline(1.0) == []

    def test_throughput_bad_window(self):
        with pytest.raises(ConfigurationError):
            report_with([1.0]).throughput_timeline(0.0)

    def test_summary_keys(self):
        s = report_with([1.0, 3.0]).summary()
        assert {
            "offered", "completed", "dropped", "drop_rate",
            "p50_s", "p95_s", "p99_s", "mean_latency_s",
            "mean_queue_wait_s", "makespan_s", "throughput_vps",
        } <= set(s)
        assert s["completed"] == 2
        assert s["throughput_vps"] == pytest.approx(2 / 3.0)


class TestExports:
    def test_json_roundtrip(self, tmp_path):
        rep = report_with([1.0, 2.0])
        rep.add_drop(completed_ticket(vector_id=5))
        path = tmp_path / "report.json"
        rep.to_json(path, extra={"config": {"rate": 10.0}})
        payload = json.loads(path.read_text())
        assert payload["summary"]["completed"] == 2
        assert len(payload["completed"]) == 2
        assert len(payload["dropped"]) == 1
        assert payload["config"]["rate"] == 10.0

    def test_to_trace_spans(self, tmp_path):
        rep = LatencyReport()
        rep.add_completion(completed_ticket(vector_id=3))
        trace = rep.to_trace()
        kinds = [e.kind for e in trace.events]
        assert kinds == ["wait", "schedule", "execute"]
        wait, sched, execute = trace.events
        assert wait.end_s == pytest.approx(sched.start_s)
        assert sched.end_s == pytest.approx(execute.start_s)
        assert all(e.device == 3 for e in trace.events)
        trace.save_chrome_trace(tmp_path / "t.json")
        assert json.loads((tmp_path / "t.json").read_text())["traceEvents"]
