"""Shared fixtures and builders for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpusim.cluster import ClusterState
from repro.gpusim.costmodel import CostModel
from repro.gpusim.device import DeviceSpec
from repro.gpusim.engine import ExecutionEngine
from repro.gpusim.interconnect import Interconnect
from repro.tensor.spec import TensorPair, TensorSpec, VectorSpec, next_uid

MIB = 1024**2


def make_tensor(size: int = 16, batch: int = 2, rank: int = 2, label: str = "") -> TensorSpec:
    """Fresh small tensor spec."""
    return TensorSpec(uid=next_uid(), size=size, batch=batch, rank=rank, label=label)


def make_pair(size: int = 16, batch: int = 2, rank: int = 2, left=None, right=None) -> TensorPair:
    """Pair of (optionally supplied) tensors with derived output."""
    left = left if left is not None else make_tensor(size, batch, rank)
    right = right if right is not None else make_tensor(size, batch, rank)
    return TensorPair.make(left, right)


def make_vector(n_pairs: int = 4, size: int = 16, batch: int = 2, vector_id: int = 0) -> VectorSpec:
    """Vector of fresh independent pairs."""
    return VectorSpec(pairs=[make_pair(size, batch) for _ in range(n_pairs)], vector_id=vector_id)


def make_cluster(num_devices: int = 2, memory_bytes: int = 64 * MIB, peak_gflops: float = 1000.0) -> ClusterState:
    return ClusterState(
        [DeviceSpec(device_id=i, memory_bytes=memory_bytes, peak_gflops=peak_gflops) for i in range(num_devices)]
    )


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def cluster():
    return make_cluster()


@pytest.fixture
def cost_model():
    return CostModel(interconnect=Interconnect())


@pytest.fixture
def engine(cluster, cost_model):
    return ExecutionEngine(cluster, cost_model)
