"""Gray-failure resilience: health lifecycle, breakers, hedged dispatch."""

import json

import pytest

from repro.core.config import MiccoConfig
from repro.errors import ConfigurationError
from repro.faults import FaultEvent, FaultKind, FaultPlan
from repro.gpusim import CostModel, Topology
from repro.schedulers.bounds import ReuseBounds
from repro.schedulers.micco import MiccoScheduler
from repro.serve import (
    CircuitBreaker,
    HealthConfig,
    HealthMonitor,
    HedgePair,
    PoissonArrivals,
    ServeConfig,
    ShardedServer,
    ShardHealthState,
    ShardSnapshot,
)
from repro.serve.health import (
    AdaptiveHedgeDeadline,
    LatencyWindow,
    hedge_shielded,
)
from repro.serve.sharded.routing import (
    LeastLoaded,
    ResidencyAffinity,
    ThresholdLocal,
)
from repro.workloads import SyntheticWorkload, WorkloadParams

MIB = 1024**2


def sharded_config(num_devices: int = 8, devices_per_node: int = 4) -> MiccoConfig:
    topo = Topology(num_devices=num_devices, devices_per_node=devices_per_node)
    return MiccoConfig(
        num_devices=num_devices,
        memory_bytes=64 * MIB,
        cost_model=CostModel(topology=topo),
    )


def make_vectors(n: int = 16, seed: int = 3):
    params = WorkloadParams(
        vector_size=8, tensor_size=128, repeated_rate=0.6, num_vectors=n, batch=4
    )
    return SyntheticWorkload(params, seed=seed).vectors()


def run_health(*, health, faults=None, n=32, arrivals=None, seed=0, vectors=None):
    serve = ServeConfig(sharded=True, health=health)
    server = ShardedServer(
        MiccoScheduler(ReuseBounds(0, 4, 0)), sharded_config(), serve
    )
    return server.run(
        vectors if vectors is not None else make_vectors(n),
        arrivals if arrivals is not None else [i * 1e-3 for i in range(n)],
        seed=seed,
        faults=faults,
    )


FAST_HEALTH = HealthConfig(
    heartbeat_interval_s=1e-3,
    suspect_threshold=2.0,
    quarantine_threshold=4.0,
    probation_beats=3,
)


class TestHealthConfig:
    def test_round_trip(self):
        cfg = HealthConfig(hedging=True, breaker_threshold=7)
        assert HealthConfig.from_dict(cfg.to_dict()) == cfg

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown keys"):
            HealthConfig.from_dict({"heartbeats": 3})

    @pytest.mark.parametrize("kwargs", [
        {"heartbeat_interval_s": 0.0},
        {"alpha": 0.0},
        {"alpha": 1.5},
        {"suspect_threshold": 1.0},
        {"quarantine_threshold": 2.0, "suspect_threshold": 2.0},
        {"probation_beats": 0},
        {"hedge_deadline_s": 0.0},
        {"breaker_threshold": 0},
        {"breaker_probe_interval_s": 0.0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            HealthConfig(**kwargs)


class TestHealthMonitor:
    def monitor(self, **overrides):
        cfg = HealthConfig(heartbeat_interval_s=1.0, probation_beats=2, **overrides)
        return HealthMonitor([0, 1], cfg)

    def test_silence_walks_healthy_suspect_quarantined(self):
        m = self.monitor()
        for t in (1.0, 2.0, 3.0):
            m.beat(0, t)
            m.beat(1, t)
            m.evaluate(t)
        assert m.state[0] is ShardHealthState.HEALTHY
        # Node 0 goes silent; node 1 keeps beating.
        quarantined = []
        for t in (4.0, 5.0, 6.0, 7.0, 8.0):
            m.beat(1, t)
            quarantined += m.evaluate(t)
        assert m.state[0] is ShardHealthState.QUARANTINED
        assert m.state[1] is ShardHealthState.HEALTHY
        assert quarantined == [0]
        assert [ep["node"] for ep in m.quarantine_episodes] == [0]
        assert m.quarantine_episodes[0]["end_s"] is None

    def test_probation_readmits_after_clean_beats(self):
        m = self.monitor()
        for t in (4.0, 5.0, 6.0, 7.0, 8.0):
            m.evaluate(t)
        assert m.state[0] is ShardHealthState.QUARANTINED
        m.beat(0, 9.0)  # back from the dead: probation, not healthy
        assert m.state[0] is ShardHealthState.PROBATION
        m.beat(0, 10.0)
        assert m.state[0] is ShardHealthState.PROBATION
        m.beat(0, 11.0)  # second consecutive on-time beat: re-admitted
        assert m.state[0] is ShardHealthState.HEALTHY
        assert m.quarantine_episodes[0]["end_s"] == 9.0

    def test_probation_relapse_goes_straight_back_to_quarantine(self):
        m = self.monitor()
        for t in (4.0, 5.0, 6.0, 7.0, 8.0):
            m.evaluate(t)
        m.beat(0, 9.0)
        assert m.state[0] is ShardHealthState.PROBATION
        for t in (10.0, 11.0, 12.0):
            m.evaluate(t)
        assert m.state[0] is ShardHealthState.QUARANTINED
        assert sum(ep["node"] == 0 for ep in m.quarantine_episodes) == 2

    def test_quarantine_silence_does_not_inflate_the_gap_estimate(self):
        m = self.monitor()
        for t in (4.0, 5.0, 6.0, 7.0, 8.0):
            m.evaluate(t)
        gap_before = m.mean_gap[0]
        m.beat(0, 20.0)  # an 20 s gap, but the shard was quarantined
        assert m.mean_gap[0] == gap_before

    def test_dead_is_terminal_and_unroutable(self):
        m = self.monitor()
        m.mark_dead(0, 2.0)
        m.beat(0, 3.0)
        m.evaluate(3.0)
        assert m.state[0] is ShardHealthState.DEAD
        assert m.is_unroutable(0)
        death = next(t for t in m.transitions if t["to"] == "dead")
        assert death["suspicion"] == -1.0  # inf mapped for JSON

    def test_summary_is_json_ready(self):
        m = self.monitor()
        m.beat(0, 1.0)
        m.evaluate(5.0)
        blob = json.dumps(m.summary(), sort_keys=True)
        assert "suspicion_timeline" in blob


class TestCircuitBreaker:
    def test_opens_after_consecutive_rejections_only(self):
        b = CircuitBreaker(0, threshold=3, probe_interval_s=1.0)
        b.record_rejection(0.1)
        b.record_rejection(0.2)
        b.record_success(0.3)  # resets the consecutive count
        b.record_rejection(0.4)
        b.record_rejection(0.5)
        assert b.state == CircuitBreaker.CLOSED
        b.record_rejection(0.6)
        assert b.state == CircuitBreaker.OPEN
        assert b.opens == 1

    def test_half_open_admits_exactly_one_probe(self):
        b = CircuitBreaker(0, threshold=1, probe_interval_s=1.0)
        b.record_rejection(0.0)
        assert not b.allow(0.5)  # still open
        assert b.allow(1.5)  # probe window: one ticket through
        assert b.state == CircuitBreaker.HALF_OPEN
        assert not b.allow(1.5)  # second caller in the same window: no
        b.record_success(1.6)
        assert b.state == CircuitBreaker.CLOSED

    def test_rejected_probe_reopens(self):
        b = CircuitBreaker(0, threshold=1, probe_interval_s=1.0)
        b.record_rejection(0.0)
        assert b.allow(1.5)
        b.record_rejection(1.5)
        assert b.state == CircuitBreaker.OPEN
        assert b.opens == 2
        assert not b.allow(2.0)  # probe clock restarted at 1.5
        assert b.allow(2.6)

    def test_transitions_are_logged(self):
        log = []
        b = CircuitBreaker(3, threshold=1, probe_interval_s=1.0, transitions=log)
        b.record_rejection(0.0)
        b.allow(2.0)
        b.record_success(2.0)
        assert [(e["from"], e["to"]) for e in log] == [
            ("closed", "open"), ("open", "half_open"), ("half_open", "closed"),
        ]
        assert all(e["node"] == 3 for e in log)


class TestHedgePair:
    def ticket(self):
        class T:
            hedge = None
            cancelled = False
        return T()

    def test_shielding_covers_both_sides_until_resolved(self):
        a, b = self.ticket(), self.ticket()
        pair = HedgePair(primary=a, clone=b)
        a.hedge = b.hedge = pair
        assert hedge_shielded(a) and hedge_shielded(b)
        pair.resolved = True
        pair.winner = a
        assert not hedge_shielded(a)

    def test_no_shield_when_partner_already_cancelled(self):
        a, b = self.ticket(), self.ticket()
        pair = HedgePair(primary=a, clone=b)
        a.hedge = b.hedge = pair
        b.cancelled = True
        assert not hedge_shielded(a)
        assert not hedge_shielded(self.ticket())  # un-hedged: never shielded


class TestSuspectRouting:
    class Vec:
        vector_id = 0
        pairs = ()

    def snaps(self):
        # The suspect shard is otherwise strictly more attractive.
        return [
            ShardSnapshot(node=0, alive=4, queue_depth=5, inflight=1),
            ShardSnapshot(node=1, alive=4, queue_depth=0, inflight=0, suspect=True),
        ]

    def test_every_policy_deprioritizes_suspects(self):
        for policy in (LeastLoaded(), ResidencyAffinity(), ThresholdLocal(threshold=9)):
            assert policy.choose(self.Vec(), self.snaps()) == 0, policy.name

    def test_suspect_still_used_when_alone(self):
        only = [ShardSnapshot(node=1, alive=4, queue_depth=0, inflight=0, suspect=True)]
        assert LeastLoaded().choose(self.Vec(), only) == 1


class TestGrayFaultsEndToEnd:
    def silence_plan(self):
        # Node 1 (device 5) goes silent 5 ms for 8 ms; devices keep working.
        return FaultPlan((
            FaultEvent(FaultKind.HEARTBEAT_LOSS, 5e-3, 5, duration_s=8e-3),
        ))

    def flap_plan(self):
        # Node 1 flaps twice: down 4 ms at 5 ms and again at 15 ms.
        return FaultPlan((
            FaultEvent(
                FaultKind.NODE_FLAP, 5e-3, 5,
                duration_s=4e-3, count=2, period_s=1e-2,
            ),
        ))

    def test_silence_quarantines_then_readmits(self):
        result = run_health(health=FAST_HEALTH, faults=self.silence_plan())
        s = result.summary()
        assert s["completed"] + s["dropped"] == s["offered"] == 32
        h = result.health
        eps = [ep for ep in h["quarantine_episodes"] if ep["node"] == 1]
        assert eps and eps[0]["end_s"] is not None  # quarantined, then back
        assert h["states"]["1"] == "healthy"
        path = [
            (t["from"], t["to"]) for t in h["transitions"] if t["node"] == 1
        ]
        assert ("suspect", "quarantined") in path
        assert ("probation", "healthy") in path

    def test_quarantine_drains_the_queue_without_killing_the_shard(self):
        result = run_health(health=FAST_HEALTH, faults=self.silence_plan())
        sh = result.sharding
        silenced = next(x for x in sh["shards"] if x["node"] == 1)
        assert not silenced["dead"]
        assert silenced["alive"] == 4

    def test_flap_restores_devices_and_conserves_tickets(self):
        for health in (None, FAST_HEALTH):
            result = run_health(health=health, faults=self.flap_plan())
            s = result.summary()
            assert s["completed"] + s["dropped"] == s["offered"] == 32
            f = result.faults
            assert f["injected"]["node_flap"] == 2  # both cycles injected
            assert f["device_restores"] == 8  # 2 cycles x 4 devices
            assert all(not x["dead"] for x in result.sharding["shards"])
        assert result.health is not None
        assert len(result.health["quarantine_episodes"]) >= 1

    def test_flap_is_not_announced_to_the_router(self):
        # Gray failure semantics: a flap never shows up as a reroute
        # (reroutes are the *announced* shard-death path).
        result = run_health(health=None, faults=self.flap_plan())
        assert result.health is None

    def test_hedging_accounting_is_exactly_once(self):
        health = FAST_HEALTH.with_(hedging=True, hedge_deadline_s=2e-3)
        plan = FaultPlan((
            FaultEvent(
                FaultKind.NODE_FLAP, 2e-3, 5,
                duration_s=5e-3, count=2, period_s=1e-2,
            ),
            FaultEvent(FaultKind.HEARTBEAT_LOSS, 4e-3, 1, duration_s=6e-3),
        ))
        vectors = make_vectors(48)
        serve = ServeConfig(sharded=True, health=health)
        server = ShardedServer(
            MiccoScheduler(ReuseBounds(0, 4, 0)), sharded_config(), serve
        )
        result = server.run(vectors, PoissonArrivals(3000.0), seed=0, faults=plan)
        s = result.summary()
        assert s["completed"] + s["dropped"] == s["offered"] == 48
        hedges = result.health["hedges"]
        assert hedges["launched"] >= 1
        # Every resolved race cancels exactly one loser; clones that
        # never found a home cancel silently as unplaced.
        assert hedges["cancelled"] == (
            hedges["won_by_primary"] + hedges["won_by_clone"]
        )
        assert (
            hedges["won_by_primary"] + hedges["won_by_clone"] + hedges["unplaced"]
            <= hedges["launched"]
        )

    def test_health_events_feed_the_trace(self):
        result = run_health(health=FAST_HEALTH, faults=self.silence_plan())
        kinds = {e["kind"] for e in result.health_events}
        assert "health" in kinds
        trace = result.to_trace()
        lanes = {e.device for e in trace.events if e.kind == "health"}
        assert lanes and all(lane <= -100_000 for lane in lanes)

    def test_fixed_seed_replays_byte_for_byte(self, tmp_path):
        health = FAST_HEALTH.with_(hedging=True, hedge_deadline_s=2e-3)
        plan = FaultPlan((
            FaultEvent(
                FaultKind.NODE_FLAP, 2e-3, 5,
                duration_s=5e-3, count=2, period_s=1e-2,
            ),
            FaultEvent(FaultKind.HEARTBEAT_LOSS, 4e-3, 1, duration_s=6e-3),
        ))
        vectors = make_vectors(48)
        blobs, traces = [], []
        for i in range(2):
            serve = ServeConfig(sharded=True, health=health)
            server = ShardedServer(
                MiccoScheduler(ReuseBounds(0, 4, 0)), sharded_config(), serve
            )
            result = server.run(
                vectors, PoissonArrivals(3000.0), seed=0, faults=plan
            )
            p = tmp_path / f"run{i}.json"
            result.to_json(p)
            blobs.append(p.read_bytes())
            traces.append(
                json.dumps(result.to_trace().to_chrome_trace(), sort_keys=True)
            )
        assert blobs[0] == blobs[1]
        assert traces[0] == traces[1]


class TestLatencyWindow:
    def test_bounded_capacity(self):
        w = LatencyWindow(capacity=3)
        for v in (1.0, 2.0, 3.0, 4.0):
            w.observe(v)
        assert len(w) == 3
        assert w.quantile(1.0) == 4.0
        assert w.quantile(0.01) == 2.0  # 1.0 slid out

    def test_nearest_rank_quantiles(self):
        w = LatencyWindow(capacity=10)
        for v in (5.0, 1.0, 3.0, 2.0, 4.0):
            w.observe(v)
        assert w.quantile(0.5) == 3.0
        assert w.quantile(0.95) == 5.0
        assert w.quantile(0.2) == 1.0

    def test_empty_window_rejected(self):
        with pytest.raises(ConfigurationError):
            LatencyWindow(capacity=2).quantile(0.5)
        with pytest.raises(ConfigurationError):
            LatencyWindow(capacity=0)


class TestAdaptiveHedgeDeadline:
    CFG = HealthConfig(
        hedging=True, adaptive_hedging=True, hedge_deadline_s=0.1,
        hedge_quantile=0.5, hedge_window=8, hedge_multiplier=2.0,
        hedge_min_samples=3,
    )

    def test_fixed_fallback_until_min_samples(self):
        hedger = AdaptiveHedgeDeadline(self.CFG)
        assert hedger.deadline_for("a") == 0.1
        hedger.observe("a", 0.01)
        hedger.observe("a", 0.02)
        assert hedger.deadline_for("a") == 0.1  # 2 < min_samples
        hedger.observe("a", 0.03)
        assert hedger.deadline_for("a") == pytest.approx(2.0 * 0.02)

    def test_per_tenant_windows_are_independent(self):
        hedger = AdaptiveHedgeDeadline(self.CFG)
        for _ in range(4):
            hedger.observe("fast", 0.001)
            hedger.observe("slow", 1.0)
        assert hedger.deadline_for("fast") == pytest.approx(0.002)
        assert hedger.deadline_for("slow") == pytest.approx(2.0)
        assert hedger.deadline_for("unseen") == 0.1

    def test_sliding_window_tracks_shifts(self):
        hedger = AdaptiveHedgeDeadline(self.CFG)
        for _ in range(8):
            hedger.observe("t", 0.01)
        assert hedger.deadline_for("t") == pytest.approx(0.02)
        for _ in range(8):  # regime change fills the whole window
            hedger.observe("t", 0.1)
        assert hedger.deadline_for("t") == pytest.approx(0.2)

    def test_summary_shape(self):
        hedger = AdaptiveHedgeDeadline(self.CFG)
        hedger.observe(None, 0.5)
        summary = hedger.summary()
        assert summary == {"None": {"samples": 1, "deadline_s": 0.1}}

    def test_config_validation(self):
        for kwargs in (
            {"hedge_quantile": 0.0},
            {"hedge_quantile": 1.5},
            {"hedge_window": 0},
            {"hedge_multiplier": 0.0},
            {"hedge_min_samples": 0},
        ):
            with pytest.raises(ConfigurationError):
                HealthConfig(**kwargs)

    def test_config_round_trips_with_adaptive_knobs(self):
        cfg = HealthConfig(
            hedging=True, adaptive_hedging=True, hedge_quantile=0.9,
            hedge_window=32, hedge_multiplier=3.0, hedge_min_samples=4,
        )
        assert HealthConfig.from_dict(cfg.to_dict()) == cfg

    def test_old_health_dict_without_adaptive_keys_loads(self):
        payload = HealthConfig().to_dict()
        for key in (
            "adaptive_hedging", "hedge_quantile", "hedge_window",
            "hedge_multiplier", "hedge_min_samples",
        ):
            payload.pop(key)
        cfg = HealthConfig.from_dict(payload)
        assert cfg.adaptive_hedging is False

    def test_adaptive_run_reports_deadlines_and_stays_exactly_once(self):
        health = FAST_HEALTH.with_(
            hedging=True, adaptive_hedging=True, hedge_deadline_s=2e-3,
            hedge_min_samples=4, hedge_multiplier=2.0,
        )
        plan = FaultPlan((
            FaultEvent(
                FaultKind.NODE_FLAP, 2e-3, 5,
                duration_s=5e-3, count=2, period_s=1e-2,
            ),
            FaultEvent(FaultKind.HEARTBEAT_LOSS, 4e-3, 1, duration_s=6e-3),
        ))
        vectors = make_vectors(48)
        serve = ServeConfig(sharded=True, health=health)
        server = ShardedServer(
            MiccoScheduler(ReuseBounds(0, 4, 0)), sharded_config(), serve
        )
        result = server.run(vectors, PoissonArrivals(3000.0), seed=0, faults=plan)
        s = result.summary()
        assert s["completed"] + s["dropped"] == s["offered"] == 48
        hedges = result.health["hedges"]
        assert hedges["cancelled"] == (
            hedges["won_by_primary"] + hedges["won_by_clone"]
        )
        deadlines = result.health["adaptive_deadlines"]
        assert deadlines  # at least one tenant window observed
        for entry in deadlines.values():
            assert entry["samples"] >= 1
            assert entry["deadline_s"] > 0

    def test_fixed_deadline_stays_the_default(self):
        # adaptive_hedging off: behaviour is byte-identical to before the
        # knob existed (the fixed value is the override path).
        health = FAST_HEALTH.with_(hedging=True, hedge_deadline_s=2e-3)
        assert health.adaptive_hedging is False
        result = run_health(health=health)
        assert result.health["adaptive_deadlines"] is None
