"""Tests for remaining branches: mixed-rank numerics, drain tracing,
keep-outputs sessions, tuner sweep_vectors, experiment result helpers."""

import numpy as np
import pytest

from repro.core.config import MiccoConfig
from repro.core.session import run_stream
from repro.gpusim.costmodel import CostModel
from repro.gpusim.engine import ExecutionEngine
from repro.gpusim.trace import TraceRecorder
from repro.ml.tuner import ReuseBoundTuner
from repro.schedulers.micco import MiccoScheduler
from repro.tensor.contraction import mixed_contract
from repro.tensor.flops import contraction_flops, pair_flops
from repro.tensor.spec import TensorPair
from repro.workloads.synth import SyntheticWorkload, WorkloadParams
from tests.conftest import make_cluster, make_tensor, make_vector


class TestMixedContract:
    def test_matches_manual_einsum_23(self, rng):
        a = rng.standard_normal((2, 5, 5))
        b = rng.standard_normal((2, 5, 5, 5))
        np.testing.assert_allclose(mixed_contract(a, b), np.einsum("bxy,byzw->bxzw", a, b))

    def test_matches_manual_einsum_32(self, rng):
        a = rng.standard_normal((2, 5, 5, 5))
        b = rng.standard_normal((2, 5, 5))
        np.testing.assert_allclose(mixed_contract(a, b), np.einsum("bxyz,bzw->bxyw", a, b))

    def test_rejects_same_rank(self, rng):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            mixed_contract(np.zeros((2, 5, 5)), np.zeros((2, 5, 5)))

    def test_mixed_pair_flops(self):
        p = TensorPair.make(make_tensor(size=10, batch=3, rank=2), make_tensor(size=10, batch=3, rank=3))
        assert pair_flops(p) == contraction_flops(10, 3, 2, 3)
        assert pair_flops(p) == 3 * 8 * 10**4

    def test_mixed_pair_engine_execution(self):
        from repro.gpusim.metrics import ExecutionMetrics
        from repro.tensor.storage import TensorStore

        store = TensorStore(seed=0)
        cluster = make_cluster()
        engine = ExecutionEngine(cluster, CostModel(), store=store)
        p = TensorPair.make(make_tensor(size=6, batch=2, rank=2), make_tensor(size=6, batch=2, rank=3))
        cluster.begin_vector(2)
        engine.execute_pair(p, 0, ExecutionMetrics(num_devices=2))
        assert store.get(p.out.uid).shape == (2, 6, 6, 6)


class TestDrainTracing:
    def test_drain_events_recorded_with_writeback(self):
        trace = TraceRecorder()
        cluster = make_cluster()
        engine = ExecutionEngine(cluster, CostModel(drain_writeback=True), trace=trace)
        v = make_vector(n_pairs=2)
        engine.execute_vector(v, [0, 1])
        assert len(trace.events_of("drain")) == 2

    def test_no_drain_events_without_writeback(self):
        trace = TraceRecorder()
        cluster = make_cluster()
        engine = ExecutionEngine(cluster, CostModel(drain_writeback=False), trace=trace)
        v = make_vector(n_pairs=2)
        engine.execute_vector(v, [0, 1])
        assert trace.events_of("drain") == []


class TestKeepOutputsSession:
    def test_outputs_stay_resident_through_run_stream(self):
        cluster = make_cluster()
        engine = ExecutionEngine(cluster, CostModel())
        vectors = [make_vector(n_pairs=2, vector_id=i) for i in range(2)]
        run_stream(vectors, MiccoScheduler(), cluster, engine, keep_outputs=True)
        for v in vectors:
            for p in v.pairs:
                assert cluster.devices_holding(p.out.uid)


class TestTunerSweepVectors:
    def test_explicit_stream_sweep(self):
        params = WorkloadParams(vector_size=8, tensor_size=16, batch=2, num_vectors=3)
        vectors = SyntheticWorkload(params, seed=0).vectors()
        tuner = ReuseBoundTuner(MiccoConfig(num_devices=2), fractions=(0.0, 0.5), n_seeds=1)
        sample = tuner.sweep_vectors(vectors)
        assert len(sample.sweep) == 8
        assert sample.best_gflops > 0
        # Measured features used (not declared): vector_size from stream.
        assert sample.features[0] == 8.0


class TestResultHelpers:
    def test_fig7_helpers(self):
        from repro.experiments.fig7_overall import Fig7Result

        res = Fig7Result(rows=[
            {"distribution": "uniform", "vector_size": 8, "repeated_rate": 0.5,
             "groute": 10.0, "micco-naive": 11.0, "micco-optimal": 12.0,
             "speedup": 1.2, "speedup_naive": 1.1},
            {"distribution": "uniform", "vector_size": 8, "repeated_rate": 1.0,
             "groute": 10.0, "micco-naive": 11.0, "micco-optimal": 13.0,
             "speedup": 1.3, "speedup_naive": 1.1},
        ])
        assert res.max_speedup() == pytest.approx(1.3)
        assert res.geomean_speedup("uniform") == pytest.approx((1.2 * 1.3) ** 0.5)
        assert np.isnan(res.geomean_speedup("gaussian"))

    def test_ablation_result_lookup(self):
        from repro.experiments.ablations import AblationResult

        res = AblationResult("t", rows=[{"variant": "x", "gflops": 5.0, "reuse_hits": 1, "transfers": 2, "evictions": 0}])
        assert res.gflops("x") == 5.0
        with pytest.raises(KeyError):
            res.gflops("missing")
