"""Unit tests for R² and Spearman, cross-checked against scipy."""

import numpy as np
import pytest
from scipy import stats

from repro.errors import ModelError
from repro.ml.metrics import r2_score, spearman_matrix, spearmanr


class TestR2:
    def test_perfect_fit(self, rng):
        y = rng.standard_normal(50)
        assert r2_score(y, y) == pytest.approx(1.0)

    def test_mean_prediction_zero(self, rng):
        y = rng.standard_normal(50)
        assert r2_score(y, np.full(50, y.mean())) == pytest.approx(0.0)

    def test_worse_than_mean_negative(self, rng):
        y = rng.standard_normal(50)
        assert r2_score(y, -3 * y) < 0

    def test_multi_output_joint(self, rng):
        Y = rng.standard_normal((50, 3))
        P = Y.copy()
        P[:, 0] = Y[:, 0].mean()  # one column predicted by its mean
        score = r2_score(Y, P)
        assert 0.5 < score < 1.0

    def test_constant_target(self):
        y = np.ones(10)
        assert r2_score(y, y) == 1.0
        assert r2_score(y, y + 1) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ModelError):
            r2_score(np.zeros(5), np.zeros(6))


class TestSpearman:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_scipy(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(60)
        y = 0.4 * x + rng.standard_normal(60)
        ours = spearmanr(x, y)
        ref = float(stats.spearmanr(x, y).statistic)
        assert ours == pytest.approx(ref, abs=1e-12)

    def test_handles_ties_like_scipy(self):
        x = np.array([1, 1, 2, 2, 3, 3, 4, 4], dtype=float)
        y = np.array([2, 1, 2, 3, 3, 5, 4, 4], dtype=float)
        assert spearmanr(x, y) == pytest.approx(float(stats.spearmanr(x, y).statistic), abs=1e-12)

    def test_monotone_is_one(self):
        x = np.arange(20.0)
        assert spearmanr(x, np.exp(x / 5)) == pytest.approx(1.0)

    def test_reversed_is_minus_one(self):
        x = np.arange(20.0)
        assert spearmanr(x, -x) == pytest.approx(-1.0)

    def test_constant_input_returns_zero(self):
        assert spearmanr(np.ones(10), np.arange(10.0)) == 0.0

    def test_too_short_rejected(self):
        with pytest.raises(ModelError):
            spearmanr([1.0], [2.0])

    def test_shape_mismatch(self):
        with pytest.raises(ModelError):
            spearmanr(np.zeros(4), np.zeros(5))


class TestSpearmanMatrix:
    def test_symmetric_unit_diagonal(self, rng):
        cols = {k: rng.standard_normal(30) for k in "abc"}
        names, mat = spearman_matrix(cols)
        assert names == ["a", "b", "c"]
        np.testing.assert_allclose(mat, mat.T)
        np.testing.assert_allclose(np.diag(mat), 1.0)

    def test_entries_match_pairwise(self, rng):
        a = rng.standard_normal(40)
        b = a + 0.5 * rng.standard_normal(40)
        names, mat = spearman_matrix({"a": a, "b": b})
        assert mat[0, 1] == pytest.approx(spearmanr(a, b))
