"""Unit tests for the CART regression tree."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.ml.tree import DecisionTreeRegressor


class TestFit:
    def test_perfect_fit_on_step_function(self, rng):
        X = rng.uniform(0, 1, size=(200, 1))
        y = (X[:, 0] > 0.5).astype(float)
        tree = DecisionTreeRegressor(max_depth=3, min_samples_leaf=1)
        tree.fit(X, y)
        pred = tree.predict(X)[:, 0]
        np.testing.assert_allclose(pred, y)

    def test_depth_zero_predicts_mean(self, rng):
        X = rng.uniform(0, 1, size=(50, 2))
        y = rng.uniform(0, 1, size=50)
        tree = DecisionTreeRegressor(max_depth=0)
        tree.fit(X, y)
        np.testing.assert_allclose(tree.predict(X)[:, 0], y.mean())

    def test_multi_output(self, rng):
        X = rng.uniform(-1, 1, size=(100, 2))
        Y = np.stack([X[:, 0] > 0, X[:, 1] > 0], axis=1).astype(float)
        tree = DecisionTreeRegressor(max_depth=4)
        tree.fit(X, Y)
        assert tree.predict(X).shape == (100, 2)
        np.testing.assert_allclose(tree.predict(X), Y)

    def test_min_samples_leaf_respected(self, rng):
        X = rng.uniform(0, 1, size=(20, 1))
        y = rng.uniform(0, 1, size=20)
        tree = DecisionTreeRegressor(max_depth=10, min_samples_leaf=10)
        tree.fit(X, y)
        assert tree.depth() <= 1

    def test_constant_target_single_leaf(self):
        X = np.arange(10, dtype=float)[:, None]
        tree = DecisionTreeRegressor().fit(X, np.ones(10))
        assert tree.node_count() == 1

    def test_empty_data_rejected(self):
        with pytest.raises(ModelError):
            DecisionTreeRegressor().fit(np.empty((0, 2)), np.empty(0))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ModelError):
            DecisionTreeRegressor().fit(np.zeros((5, 2)), np.zeros(4))

    def test_bad_hyperparams_rejected(self):
        with pytest.raises(ModelError):
            DecisionTreeRegressor(max_depth=-1)
        with pytest.raises(ModelError):
            DecisionTreeRegressor(min_samples_leaf=0)


class TestPredict:
    def test_before_fit_raises(self):
        with pytest.raises(ModelError):
            DecisionTreeRegressor().predict(np.zeros((1, 2)))

    def test_wrong_feature_count_rejected(self, rng):
        tree = DecisionTreeRegressor().fit(rng.uniform(size=(20, 3)), rng.uniform(size=20))
        with pytest.raises(ModelError):
            tree.predict(np.zeros((1, 2)))

    def test_single_row_convenience(self, rng):
        tree = DecisionTreeRegressor().fit(rng.uniform(size=(20, 2)), rng.uniform(size=20))
        assert tree.predict(np.zeros(2)).shape == (1, 1)

    def test_predictions_within_target_range(self, rng):
        """Tree predictions are means of training targets."""
        X = rng.uniform(size=(100, 2))
        y = rng.uniform(2.0, 3.0, size=100)
        tree = DecisionTreeRegressor(max_depth=6).fit(X, y)
        pred = tree.predict(rng.uniform(size=(50, 2)))
        assert pred.min() >= 2.0 and pred.max() <= 3.0

    def test_feature_subsampling_needs_rng(self, rng):
        tree = DecisionTreeRegressor(max_features=1)
        with pytest.raises(ModelError):
            tree.fit(rng.uniform(size=(30, 3)), rng.uniform(size=30))

    def test_feature_subsampling_with_rng(self, rng):
        tree = DecisionTreeRegressor(max_features=0.5, rng=np.random.default_rng(0))
        tree.fit(rng.uniform(size=(30, 4)), rng.uniform(size=30))
        assert tree.predict(rng.uniform(size=(5, 4))).shape == (5, 1)


class TestSplitQuality:
    def test_prefers_informative_feature(self, rng):
        """Split chooses the feature that actually explains the target."""
        X = rng.uniform(size=(200, 2))
        y = (X[:, 1] > 0.3).astype(float)  # only feature 1 matters
        tree = DecisionTreeRegressor(max_depth=1).fit(X, y)
        assert tree._root.feature == 1
        assert tree._root.threshold == pytest.approx(0.3, abs=0.05)
