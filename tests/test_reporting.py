"""Tests for the common Report protocol and its implementations."""

import json

from repro.faults.recovery import FaultStats
from repro.reporting import Report, dump_json
from repro.serve import MiccoServer, PoissonArrivals
from repro.serve.slo import LatencyReport
from repro.workloads import SyntheticWorkload, WorkloadParams


def serve_result():
    params = WorkloadParams(num_vectors=4, vector_size=8, tensor_size=64, batch=2)
    vectors = SyntheticWorkload(params, seed=0).vectors()
    return MiccoServer().run(vectors, PoissonArrivals(100.0), seed=0)


class TestProtocol:
    def test_serve_result_is_a_report(self):
        assert isinstance(serve_result(), Report)

    def test_latency_report_is_a_report(self):
        assert isinstance(LatencyReport(), Report)

    def test_fault_stats_is_a_report(self):
        assert isinstance(FaultStats(), Report)

    def test_non_report_rejected(self):
        assert not isinstance(object(), Report)


class TestRoundTrips:
    def test_serve_result_to_json(self, tmp_path):
        result = serve_result()
        path = tmp_path / "result.json"
        result.to_json(path, extra={"note": "hi"})
        payload = json.loads(path.read_text())
        assert payload["summary"]["completed"] == 4
        assert len(payload["completed"]) == 4
        assert payload["note"] == "hi"

    def test_fault_stats_finalize_binds_context(self, tmp_path):
        stats = FaultStats()
        stats.record_recovery("device_lost", 0.5)
        stats.finalize(makespan_s=2.0, num_devices=4)
        summary = stats.summary()  # no args needed after finalize
        assert summary["availability_pct"] <= 100.0
        path = tmp_path / "faults.json"
        stats.to_json(path)
        payload = json.loads(path.read_text())
        assert "summary" in payload and "events" in payload

    def test_dump_json_writes_indented(self, tmp_path):
        path = tmp_path / "x.json"
        dump_json(path, {"a": 1})
        assert json.loads(path.read_text()) == {"a": 1}
        assert "\n" in path.read_text()

    def test_summaries_are_json_serializable(self):
        result = serve_result()
        json.dumps(result.summary())
        json.dumps(result.report.summary())
