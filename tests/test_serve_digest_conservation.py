"""Digest-conservation property: the charge ledger reconciles at every sync.

The global router corrects each shard's stale digest by the tickets it
routed there since the last sync (``routed_since_sync``).  Every path a
ticket can take off a shard without completing — full-queue forwards,
hedge-loser cancellations, quarantine drains, integrity flags, shard
death, transient abandons — must *discharge* exactly the correction its
placement charged, or the router's load estimate drifts for the rest of
the run (the stale-digest accounting bugs this suite pins down).

The property checked at every :class:`DigestSync`, for every live
shard::

    routed_since_sync == completed_since_sync
                         + |charged tickets still queued or in flight|

via the :data:`repro.serve.sharded.server.SYNC_AUDIT_HOOK` test hook,
which fires before the sync resets the counters.
"""

import pytest

from repro.faults import FaultEvent, FaultKind, FaultPlan
from repro.serve import HealthConfig, PoissonArrivals, ServeConfig
from repro.serve.sharded import server as sharded_server
from tests.test_serve_sharded import run_sharded

FAST_HEALTH = HealthConfig(
    heartbeat_interval_s=1e-3,
    suspect_threshold=2.0,
    quarantine_threshold=4.0,
    probation_beats=3,
)


class Auditor:
    """Records every conservation violation seen at any sync."""

    def __init__(self):
        self.syncs = 0
        self.violations = []

    def __call__(self, router, now, unreachable):
        self.syncs += 1
        for node in sorted(router.shards):
            shard = router.shards[node]
            if shard.dead:
                continue
            present = [
                t
                for t in (
                    list(shard.queue.tickets())
                    + list(shard.inflight_tickets.values())
                )
                if t.charge_node == node and t.charge_epoch == shard.sync_epoch
            ]
            expected = shard.completed_since_sync + len(present)
            if shard.routed_since_sync != expected:
                self.violations.append(
                    f"t={now:.6f} shard {node}: routed_since_sync="
                    f"{shard.routed_since_sync} but completed="
                    f"{shard.completed_since_sync} + present={len(present)}"
                )


def audited(**kwargs):
    """run_sharded under the audit hook; returns (auditor, result)."""
    auditor = Auditor()
    sharded_server.SYNC_AUDIT_HOOK = auditor
    try:
        _, result = run_sharded(**kwargs)
    finally:
        sharded_server.SYNC_AUDIT_HOOK = None
    s = result.summary()
    assert s["completed"] + s["dropped"] == s["offered"]
    assert auditor.syncs > 1  # the property was actually exercised
    assert auditor.violations == []
    return auditor, result


def gray_plan():
    """Straggler + flap + silence: the PR 7 gray-failure gauntlet."""
    return FaultPlan((
        FaultEvent(
            FaultKind.STRAGGLER, 1e-3, 4, duration_s=20e-3, slow_factor=6.0
        ),
        FaultEvent(
            FaultKind.NODE_FLAP, 2e-3, 5, duration_s=4e-3, count=3,
            period_s=5e-3,
        ),
        FaultEvent(FaultKind.HEARTBEAT_LOSS, 6.5e-3, 1, duration_s=6e-3),
    ))


class TestConservation:
    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_plain_routes(self, seed):
        audited(n=32, seed=seed, serve=ServeConfig(
            sharded=True, sync_interval_s=2e-3,
        ))

    @pytest.mark.parametrize("seed", [0, 3])
    def test_full_queue_forwards(self, seed):
        # queue_capacity=1 bounces tickets between shards; each hop must
        # discharge the previous shard and charge the next.
        _, result = audited(
            n=32, seed=seed,
            arrivals=[i * 1e-4 for i in range(32)],
            serve=ServeConfig(
                sharded=True, queue_capacity=1, sync_interval_s=2e-3,
                schedule_latency_per_pair_s=2e-3,
            ),
        )
        assert result.sharding["forwards"] > 0

    def test_quarantine_drain_and_hedges(self):
        # Gray faults drive quarantine drains (discharge + re-place) and
        # hedge clones (the loser's charge must be reversed on cancel).
        health = FAST_HEALTH.with_(hedging=True, hedge_deadline_s=2e-3)
        audited(
            n=48, seed=0,
            arrivals=PoissonArrivals(3000.0),
            faults=gray_plan(),
            serve=ServeConfig(
                sharded=True, health=health, sync_interval_s=1e-3,
            ),
        )

    def test_node_death_reroutes(self):
        # A whole failure domain dies mid-run; rescheduled tickets leave
        # the dead shard's ledger and charge their new home.
        plan = FaultPlan((
            FaultEvent(FaultKind.NODE_LOST, 3e-3, 5),
        ))
        _, result = audited(
            n=32, seed=2,
            arrivals=PoissonArrivals(3000.0),
            faults=plan,
            serve=ServeConfig(sharded=True, sync_interval_s=2e-3),
        )
        assert result.sharding["rerouted"] > 0

    @pytest.mark.parametrize("seed", [0, 5])
    def test_learned_routing_conserves_too(self, seed):
        # The learned policy adds placement callbacks on the same charge
        # path; the ledger must balance identically.
        audited(n=32, seed=seed, serve=ServeConfig(
            sharded=True, routing="learned", sync_interval_s=2e-3,
            min_samples=4, refit_interval=4, explore_floor=0.2,
        ))

    def test_very_stale_syncs_conserve_at_the_horizon(self):
        # One mid-run sync: the counters accumulate for a long window
        # and still reconcile exactly when it finally fires.
        audited(n=32, seed=0, serve=ServeConfig(
            sharded=True, sync_interval_s=30e-3,
        ))
