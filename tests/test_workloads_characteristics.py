"""Unit tests for characteristics measurement and oversubscription sizing."""

import pytest

from repro.errors import ConfigurationError
from repro.tensor.spec import TensorPair, VectorSpec
from repro.workloads.characteristics import (
    BIAS_DISTINCT_RATIO,
    CharacteristicsTracker,
    DataCharacteristics,
    judge_distribution,
    measure,
)
from repro.workloads.oversub import (
    capacity_for_oversubscription,
    vector_demand_bytes,
    workload_demand_bytes,
)
from repro.workloads.synth import SyntheticWorkload, WorkloadParams
from tests.conftest import make_tensor, make_vector


class TestJudgeDistribution:
    def test_tiny_sample_is_uniform(self):
        assert judge_distribution([1, 1, 2], pool_size=100) == 0.0

    def test_all_distinct_is_uniform(self):
        assert judge_distribution(list(range(20)), pool_size=1000) == 0.0

    def test_heavy_repeats_is_biased(self):
        assert judge_distribution([5] * 10 + [7] * 10, pool_size=1000) == 1.0

    def test_birthday_collisions_not_flagged(self):
        """Uniform picks from a small pool collide too; the expected-
        distinct correction must not flag them."""
        import numpy as np

        rng = np.random.default_rng(0)
        picks = list(rng.integers(0, 64, size=58))
        assert judge_distribution(picks, pool_size=64) == 0.0

    def test_empty_pool_is_uniform(self):
        assert judge_distribution([1] * 10, pool_size=0) == 0.0


class TestMeasure:
    def test_fresh_vector_zero_rate(self):
        v = make_vector(n_pairs=4, size=8)
        c = measure(v, set())
        assert c.repeated_rate == 0.0
        assert c.vector_size == 8
        assert c.tensor_size == 8

    def test_rate_counts_seen_slots(self):
        t = make_tensor()
        v = VectorSpec(pairs=[TensorPair.make(t, make_tensor())])
        c = measure(v, {t.uid})
        assert c.repeated_rate == 0.5

    def test_to_features_order(self):
        c = DataCharacteristics(vector_size=8, tensor_size=384, distribution=1.0, repeated_rate=0.25)
        assert list(c.to_features()) == [8.0, 384.0, 1.0, 0.25]


class TestTracker:
    def test_accumulates_history(self):
        params = WorkloadParams(vector_size=16, repeated_rate=0.5, num_vectors=3)
        vecs = SyntheticWorkload(params, seed=0).vectors()
        tracker = CharacteristicsTracker()
        rates = [tracker.observe(v).repeated_rate for v in vecs]
        assert rates[0] == 0.0
        assert all(r > 0 for r in rates[1:])

    def test_detects_gaussian_bias(self):
        params = WorkloadParams(
            vector_size=64, repeated_rate=0.9, distribution="gaussian",
            num_vectors=4, sigma_frac=0.02,
        )
        vecs = SyntheticWorkload(params, seed=0).vectors()
        tracker = CharacteristicsTracker()
        flags = [tracker.observe(v).distribution for v in vecs]
        assert any(f == 1.0 for f in flags[1:])

    def test_uniform_not_flagged(self):
        params = WorkloadParams(vector_size=64, repeated_rate=0.9, distribution="uniform", num_vectors=4)
        vecs = SyntheticWorkload(params, seed=0).vectors()
        tracker = CharacteristicsTracker()
        flags = [tracker.observe(v).distribution for v in vecs]
        # Uniform picks over a growing pool stay mostly distinct.
        assert sum(flags) <= 1

    def test_reset(self):
        tracker = CharacteristicsTracker()
        tracker.observe(make_vector())
        tracker.reset()
        assert not tracker.seen_uids


class TestOversubscription:
    def test_vector_demand(self):
        v = make_vector(n_pairs=2, size=8)
        expected = sum(p.left.nbytes + p.right.nbytes + p.out.nbytes for p in v.pairs)
        assert vector_demand_bytes(v) == expected

    def test_workload_demand_dedups_inputs(self):
        t = make_tensor(size=8)
        v1 = VectorSpec(pairs=[TensorPair.make(t, make_tensor(size=8))], vector_id=0)
        v2 = VectorSpec(pairs=[TensorPair.make(t, make_tensor(size=8))], vector_id=1)
        demand = workload_demand_bytes([v1, v2])
        # 3 distinct inputs + one vector's outputs (all outputs equal here).
        assert demand == 3 * t.nbytes + v1.pairs[0].out.nbytes

    def test_capacity_inverse_in_rate(self):
        vecs = [make_vector(n_pairs=8, size=32)]
        c1 = capacity_for_oversubscription(vecs, 2, 1.0)
        c2 = capacity_for_oversubscription(vecs, 2, 2.0)
        assert c1 == pytest.approx(2 * c2, rel=0.01)

    def test_capacity_floor_holds_one_pair(self):
        vecs = [make_vector(n_pairs=2, size=64)]
        cap = capacity_for_oversubscription(vecs, 8, 100.0)
        p = vecs[0].pairs[0]
        assert cap >= p.left.nbytes + p.right.nbytes + p.out.nbytes

    def test_empty_workload_rejected(self):
        with pytest.raises(ConfigurationError):
            workload_demand_bytes([])
