"""Unit tests for local reuse-pattern classification (paper Fig. 4)."""

from repro.schedulers.reuse_patterns import ReusePattern, classify_pair
from repro.tensor.spec import TensorPair
from tests.conftest import make_cluster, make_pair, make_tensor


class TestClassification:
    def test_two_new(self):
        cl = make_cluster()
        cls = classify_pair(make_pair(), cl)
        assert cls.pattern is ReusePattern.TWO_NEW
        assert cls.any_holders == frozenset()

    def test_one_repeated(self):
        cl = make_cluster()
        p = make_pair()
        cl.register(p.left, 0)
        cls = classify_pair(p, cl)
        assert cls.pattern is ReusePattern.ONE_REPEATED
        assert cls.any_holders == {0}

    def test_two_repeated_same(self):
        cl = make_cluster()
        p = make_pair()
        cl.register(p.left, 1)
        cl.register(p.right, 1)
        cls = classify_pair(p, cl)
        assert cls.pattern is ReusePattern.TWO_REPEATED_SAME
        assert cls.common_holders == {1}

    def test_two_repeated_diff(self):
        cl = make_cluster()
        p = make_pair()
        cl.register(p.left, 0)
        cl.register(p.right, 1)
        cls = classify_pair(p, cl)
        assert cls.pattern is ReusePattern.TWO_REPEATED_DIFF
        assert cls.common_holders == frozenset()
        assert cls.any_holders == {0, 1}

    def test_same_wins_over_diff_with_replicas(self):
        """left on {0,1}, right on {1}: device 1 holds both -> SAME."""
        cl = make_cluster()
        p = make_pair()
        cl.register(p.left, 0)
        cl.register(p.left, 1)
        cl.register(p.right, 1)
        cls = classify_pair(p, cl)
        assert cls.pattern is ReusePattern.TWO_REPEATED_SAME
        assert cls.common_holders == {1}

    def test_self_pair_resident(self):
        """A pair of the same tensor resident anywhere is SAME."""
        cl = make_cluster()
        t = make_tensor()
        cl.register(t, 0)
        cls = classify_pair(TensorPair.make(t, t), cl)
        assert cls.pattern is ReusePattern.TWO_REPEATED_SAME


class TestTiers:
    def test_tier_mapping_matches_table2(self):
        assert ReusePattern.TWO_REPEATED_SAME.tier == 0
        assert ReusePattern.TWO_REPEATED_DIFF.tier == 1
        assert ReusePattern.ONE_REPEATED.tier == 1
        assert ReusePattern.TWO_NEW.tier == 2
