"""Batched scheduling rounds: merge/split helpers and the serving loop.

Covers the cross-vector batching layer end to end: vector merging and
assignment de-multiplexing, round assembly from the admission queue,
per-ticket accounting exactness, and — critically — fault recovery of
partially failed rounds (device loss mid-round must re-schedule only
the orphaned members' pairs, and per-ticket drop reasons must survive
batching unchanged).
"""

import pytest

from repro.core.config import MiccoConfig
from repro.errors import ConfigurationError
from repro.faults import FaultEvent, FaultKind, FaultPlan
from repro.schedulers.batching import (
    batch_footprint_bytes,
    batch_shape_key,
    merge_vectors,
    split_assignment,
)
from repro.schedulers.bounds import ReuseBounds
from repro.schedulers.micco import MiccoScheduler
from repro.serve import MiccoServer, PoissonArrivals, ServeConfig
from repro.workloads import SyntheticWorkload, WorkloadParams

MIB = 1024**2


def make_vectors(n=12, seed=3, vector_size=8, tensor_size=128, repeated=0.6):
    params = WorkloadParams(
        vector_size=vector_size, tensor_size=tensor_size,
        repeated_rate=repeated, num_vectors=n, batch=4,
    )
    return SyntheticWorkload(params, seed=seed).vectors()


def make_server(serve, num_devices=4, mem_mib=64):
    return MiccoServer(
        MiccoScheduler(ReuseBounds(0, 4, 0)),
        MiccoConfig(num_devices=num_devices, memory_bytes=mem_mib * MIB),
        serve,
    )


class TestMergeHelpers:
    def test_shape_key_groups_same_family(self):
        a, b = make_vectors(2)
        assert batch_shape_key(a) == batch_shape_key(b)

    def test_merge_concatenates_pairs_in_member_order(self):
        a, b = make_vectors(2)
        merged = merge_vectors([a, b])
        assert len(merged.pairs) == len(a.pairs) + len(b.pairs)
        assert merged.pairs[: len(a.pairs)] == list(a.pairs)
        assert merged.meta["batch_members"] == [a.vector_id, b.vector_id]

    def test_single_member_merge_is_identity(self):
        (a,) = make_vectors(1)
        assert merge_vectors([a]) is a

    def test_merge_rejects_mixed_shape_families(self):
        (a,) = make_vectors(1, tensor_size=128)
        (b,) = make_vectors(1, tensor_size=64)
        with pytest.raises(ConfigurationError, match="shape famil"):
            merge_vectors([a, b])

    def test_merge_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            merge_vectors([])

    def test_split_assignment_round_trips_member_slices(self):
        a, b = make_vectors(2)
        assignment = list(range(len(a.pairs) + len(b.pairs)))
        sa, sb = split_assignment([a, b], assignment)
        assert sa == assignment[: len(a.pairs)]
        assert sb == assignment[len(a.pairs):]

    def test_split_assignment_length_checked(self):
        a, b = make_vectors(2)
        with pytest.raises(ConfigurationError, match="does not match"):
            split_assignment([a, b], [0])

    def test_footprint_counts_shared_inputs_once(self):
        a, b = make_vectors(2, repeated=0.9)
        separate = batch_footprint_bytes([a]) + batch_footprint_bytes([b])
        combined = batch_footprint_bytes([a, b])
        # The streams share repeated tensors, so the combined unique
        # footprint is strictly below the sum of the parts.
        assert combined < separate


class TestBatchedServing:
    def run_batched(self, batch=4, n=16, rate=2000.0, serve_extra=None, seed=7):
        serve = ServeConfig(max_batch_vectors=batch, **(serve_extra or {}))
        server = make_server(serve)
        vectors = make_vectors(n)
        return server.run(vectors, PoissonArrivals(rate), seed=seed)

    def test_rounds_actually_batch_under_backlog(self):
        res = self.run_batched()
        b = res.report.batching_summary()
        assert b["batched_rounds"] > 0
        assert b["max_round_vectors"] > 1
        assert b["rounds"] == len(res.rounds)

    def test_every_vector_completes_with_exact_accounting(self):
        res = self.run_batched()
        assert len(res.report.completed) == 16
        for r in res.report.completed:
            assert r.arrival_s <= r.dispatch_s <= r.sched_done_s <= r.complete_s
            assert r.round_id is not None and r.round_size >= 1

    def test_round_members_share_dispatch_timestamps(self):
        res = self.run_batched()
        by_round = {}
        for r in res.report.completed:
            by_round.setdefault(r.round_id, []).append(r)
        assert any(len(v) > 1 for v in by_round.values())
        for members in by_round.values():
            assert len({m.dispatch_s for m in members}) == 1
            assert len({m.sched_done_s for m in members}) == 1

    def test_unbatched_config_never_forms_rounds(self):
        res = self.run_batched(batch=1)
        b = res.report.batching_summary()
        assert b["batched_rounds"] == 0
        assert b["max_round_vectors"] == 1

    def test_batched_run_is_deterministic(self):
        a = self.run_batched().summary()
        b = self.run_batched().summary()
        assert a == b

    def test_batching_increases_reuse_on_overlapping_streams(self):
        # Same workload, same arrivals: scheduling overlapping vectors
        # in one round lets repeated tensors be placed once and reused.
        unbatched = self.run_batched(batch=1)
        batched = self.run_batched(batch=4)
        assert len(batched.report.completed) == len(unbatched.report.completed)
        assert (
            batched.metrics.counts.input_fetches
            <= unbatched.metrics.counts.input_fetches
        )

    def test_batch_memory_frac_bounds_round_size(self):
        # A tiny budget forbids joining: every round is a singleton.
        res = self.run_batched(serve_extra={"batch_memory_frac": 1e-6})
        assert res.report.batching_summary()["max_round_vectors"] == 1

    def test_rounds_log_in_json_report(self, tmp_path):
        import json

        res = self.run_batched()
        path = tmp_path / "report.json"
        res.to_json(path)
        payload = json.loads(path.read_text())
        assert payload["rounds"] == res.rounds
        assert payload["summary"]["batching"]["rounds"] == len(res.rounds)

    def test_batch_lane_in_trace(self):
        res = self.run_batched()
        trace = res.to_trace()
        batch_events = trace.events_of("batch")
        assert batch_events  # at least one batched round rendered
        assert all(
            e.device <= -(res.metrics.num_devices + 1) for e in batch_events
        )


class TestBatchFaultDemux:
    """Device loss mid-round: recovery must stay exact per member."""

    def run_chaos(self, recover=True, batch=4):
        plan = FaultPlan((FaultEvent(FaultKind.DEVICE_LOST, 1e-3, 0),))
        serve = ServeConfig(
            max_inflight=8, max_batch_vectors=batch, recover_faults=recover
        )
        server = make_server(serve)
        return server, server.run(make_vectors(12), [0.0] * 12, seed=0, faults=plan)

    def test_loss_mid_round_rescheds_only_orphaned_members(self):
        server, res = self.run_chaos()
        s = res.summary()
        assert s["completed"] == s["offered"]
        assert s["batching"]["batched_rounds"] > 0
        assert res.faults["rescheduled_pairs"] > 0
        # Only pairs assigned to the dead device were re-executed: the
        # re-scheduled count is bounded by the orphaned tensor count.
        for rec in res.report.completed:
            assert 0 not in rec.devices or rec.complete_s < 1e-3
        server.cluster.check_invariants()

    def test_recovery_off_sheds_only_affected_members(self):
        _, res = self.run_chaos(recover=False)
        s = res.summary()
        assert s["completed"] + s["dropped"] == s["offered"]
        assert s["dropped_by_reason"].get("fault-abandoned", 0) > 0
        assert res.faults["rescheduled_pairs"] == 0
        # Members of a partially failed round that had no pairs on the
        # dead device still complete (drop reasons are per-ticket).
        assert s["completed"] > 0

    def test_drop_reasons_exact_under_batching(self):
        _, res = self.run_chaos(recover=False)
        for d in res.report.dropped:
            assert d.reason in ("fault-abandoned", "queue-full")

    def test_batched_chaos_matches_unbatched_completion_count(self):
        _, batched = self.run_chaos(batch=4)
        _, unbatched = self.run_chaos(batch=1)
        assert (
            len(batched.report.completed)
            == len(unbatched.report.completed)
            == 12
        )


class TestRescaleAnchoring:
    """Repeated pool changes must not drift the reuse bounds."""

    def test_round_trip_restores_exact_bounds(self):
        server = make_server(ServeConfig())
        server._bounds_anchor = (ReuseBounds(1, 3, 5), 8)
        # 8 -> 7 -> 5 -> 8: back at the anchor size, bit-exact bounds.
        server._rescale_bounds(8, 7)
        server._rescale_bounds(7, 5)
        server._rescale_bounds(5, 8)
        assert server.scheduler.bounds == ReuseBounds(1, 3, 5)

    def test_chained_cycles_equal_single_rescale(self):
        anchor = (ReuseBounds(1, 3, 5), 8)
        walked = make_server(ServeConfig())
        walked._bounds_anchor = anchor
        sizes = [8, 7, 3, 6, 8, 2, 5, 8, 3]
        for before, after in zip(sizes, sizes[1:]):
            walked._rescale_bounds(before, after)
        direct = make_server(ServeConfig())
        direct._bounds_anchor = anchor
        direct._rescale_bounds(8, sizes[-1])
        assert walked.scheduler.bounds == direct.scheduler.bounds

    def test_idempotent_per_target_size(self):
        server = make_server(ServeConfig())
        server._bounds_anchor = (ReuseBounds(0, 4, 0), 4)
        server._rescale_bounds(4, 3)
        once = server.scheduler.bounds
        server._rescale_bounds(4, 3)  # same transition again
        assert server.scheduler.bounds == once

    def test_loss_then_restore_recovers_seed_bounds_end_to_end(self):
        # A run that loses a device still rescales from the anchor, so
        # the survivors' bounds match one direct 4->3 rescale exactly.
        plan = FaultPlan((FaultEvent(FaultKind.DEVICE_LOST, 0.01, 2),))
        server = make_server(ServeConfig())
        server.run(make_vectors(12), PoissonArrivals(200.0), seed=0, faults=plan)
        assert server.scheduler.bounds == ReuseBounds(0, 4, 0).rescaled(4, 3)
