"""Unit tests for hadron nodes, contraction graphs, and graph contraction."""

import pytest

from repro.errors import GraphError
from repro.graphs.contraction_graph import ContractionGraph, InternTable, contract_graph
from repro.graphs.hadron import HadronNode, baryon, meson
from repro.tensor.spec import TensorSpec, next_uid
from tests.conftest import make_tensor


def simple_graph(n_nodes=4, ring=True, graph_id=0, size=8):
    nodes = {f"h{i}": make_tensor(size=size, label=f"h{i}") for i in range(n_nodes)}
    names = list(nodes)
    edges = [(names[i], names[(i + 1) % n_nodes]) for i in range(n_nodes if ring else n_nodes - 1)]
    return ContractionGraph(nodes=nodes, edges=edges, graph_id=graph_id)


class TestHadron:
    def test_meson_builder(self):
        h = meson("pi+", "u", "dbar", size=16)
        assert h.is_meson and not h.is_baryon
        assert h.tensor.rank == 2

    def test_baryon_builder(self):
        h = baryon("p", "u", "u", "d", size=16)
        assert h.is_baryon
        assert h.tensor.rank == 3

    def test_rejects_wrong_quark_count(self):
        t = make_tensor()
        with pytest.raises(GraphError):
            HadronNode(name="x", quarks=("u",), tensor=t)

    def test_rejects_unknown_flavor(self):
        t = make_tensor()
        with pytest.raises(GraphError):
            HadronNode(name="x", quarks=("u", "cbar"), tensor=t)

    def test_rejects_rank_mismatch(self):
        t = make_tensor(rank=2)
        with pytest.raises(GraphError):
            HadronNode(name="x", quarks=("u", "u", "d"), tensor=t)


class TestContractionGraph:
    def test_valid_graph(self):
        g = simple_graph()
        assert g.num_nodes == 4 and g.num_edges == 4

    def test_rejects_single_node(self):
        with pytest.raises(GraphError):
            ContractionGraph(nodes={"a": make_tensor()}, edges=[])

    def test_rejects_unknown_edge_endpoint(self):
        with pytest.raises(GraphError):
            ContractionGraph(
                nodes={"a": make_tensor(), "b": make_tensor()}, edges=[("a", "zzz")]
            )

    def test_rejects_self_loop(self):
        with pytest.raises(GraphError):
            ContractionGraph(
                nodes={"a": make_tensor(), "b": make_tensor()}, edges=[("a", "a")]
            )

    def test_canonical_key_ignores_edge_order(self):
        a, b, c = (make_tensor() for _ in range(3))
        g1 = ContractionGraph(nodes={"a": a, "b": b, "c": c}, edges=[("a", "b"), ("b", "c")])
        g2 = ContractionGraph(nodes={"a": a, "b": b, "c": c}, edges=[("c", "b"), ("b", "a")])
        assert g1.canonical_key() == g2.canonical_key()


class TestInternTable:
    def test_same_pair_same_output(self):
        table = InternTable()
        a, b = make_tensor(), make_tensor()
        out1 = table.output_for(a, b)
        out2 = table.output_for(b, a)  # unordered key
        assert out1.uid == out2.uid
        assert table.hits == 1
        assert len(table) == 1

    def test_distinct_pairs_distinct_outputs(self):
        table = InternTable()
        a, b, c = (make_tensor() for _ in range(3))
        assert table.output_for(a, b).uid != table.output_for(a, c).uid


class TestContractGraph:
    def test_reduces_to_two_nodes(self):
        g = simple_graph(n_nodes=5)
        steps = contract_graph(g, InternTable())
        # 5 nodes -> 2 nodes needs exactly 3 merges.
        assert len(steps) == 3

    def test_two_node_graph_no_steps(self):
        g = simple_graph(n_nodes=2, ring=False)
        assert contract_graph(g, InternTable()) == []

    def test_depths_monotone(self):
        g = simple_graph(n_nodes=6)
        steps = contract_graph(g, InternTable())
        for step in steps:
            assert step.depth >= 1

    def test_consumes_parallel_edges_in_one_step(self):
        a, b, c = (make_tensor() for _ in range(3))
        g = ContractionGraph(
            nodes={"a": a, "b": b, "c": c},
            edges=[("a", "b"), ("a", "b"), ("b", "c")],
        )
        steps = contract_graph(g, InternTable())
        assert len(steps) == 1  # a+b merged once; 2 nodes remain
        assert {steps[0].left.uid, steps[0].right.uid} == {a.uid, b.uid}

    def test_merge_prefers_heaviest_pair(self):
        a, b, c, d = (make_tensor() for _ in range(4))
        g = ContractionGraph(
            nodes={"a": a, "b": b, "c": c, "d": d},
            edges=[("a", "b"), ("c", "d"), ("c", "d"), ("b", "c")],
        )
        steps = contract_graph(g, InternTable())
        first = {steps[0].left.uid, steps[0].right.uid}
        assert first == {c.uid, d.uid}

    def test_shared_intermediates_across_graphs(self):
        """Two graphs with the same first merge intern one output."""
        a, b, c, d = (make_tensor() for _ in range(4))
        table = InternTable()
        g1 = ContractionGraph(nodes={"a": a, "b": b, "c": c}, edges=[("a", "b"), ("a", "b"), ("b", "c")], graph_id=0)
        g2 = ContractionGraph(nodes={"a": a, "b": b, "d": d}, edges=[("a", "b"), ("a", "b"), ("b", "d")], graph_id=1)
        depths = {}
        s1 = contract_graph(g1, table, depths)
        s2 = contract_graph(g2, table, depths)
        assert s1[0].out.uid == s2[0].out.uid
        assert table.hits >= 1

    def test_disconnected_components_both_contracted(self):
        a, b, c, d = (make_tensor() for _ in range(4))
        g = ContractionGraph(
            nodes={"a": a, "b": b, "c": c, "d": d},
            edges=[("a", "b"), ("c", "d")],
        )
        steps = contract_graph(g, InternTable())
        assert len(steps) == 2  # each component merges once -> 2 nodes total
