"""Unit tests for the host-side TensorStore."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.tensor.storage import TensorStore
from tests.conftest import make_pair, make_tensor


class TestMaterialize:
    def test_shape_matches_spec(self):
        store = TensorStore(seed=0)
        t = make_tensor(size=6, batch=3)
        assert store.materialize(t).shape == (3, 6, 6)

    def test_deterministic_per_uid(self):
        t = make_tensor()
        a = TensorStore(seed=5).materialize(t)
        b = TensorStore(seed=5).materialize(t)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        t = make_tensor()
        a = TensorStore(seed=1).materialize(t)
        b = TensorStore(seed=2).materialize(t)
        assert not np.array_equal(a, b)

    def test_idempotent(self):
        store = TensorStore()
        t = make_tensor()
        assert store.materialize(t) is store.materialize(t)

    def test_contains_and_len(self):
        store = TensorStore()
        t = make_tensor()
        assert t.uid not in store
        store.materialize(t)
        assert t.uid in store
        assert len(store) == 1


class TestPutGetEvict:
    def test_put_then_get(self):
        store = TensorStore()
        t = make_tensor(size=4, batch=1)
        arr = np.ones(t.shape, dtype=np.complex64)
        store.put(t, arr)
        np.testing.assert_array_equal(store.get(t.uid), arr)

    def test_put_rejects_wrong_shape(self):
        store = TensorStore()
        with pytest.raises(ReproError):
            store.put(make_tensor(size=4, batch=1), np.ones((2, 4, 4)))

    def test_get_missing_raises(self):
        with pytest.raises(ReproError):
            TensorStore().get(10**9)

    def test_evict_frees(self):
        store = TensorStore()
        t = make_tensor()
        store.materialize(t)
        store.evict(t.uid)
        assert t.uid not in store

    def test_evict_missing_is_noop(self):
        TensorStore().evict(12345)

    def test_clear(self):
        store = TensorStore()
        store.materialize(make_tensor())
        store.clear()
        assert len(store) == 0

    def test_nbytes_tracks_content(self):
        store = TensorStore()
        t = make_tensor(size=4, batch=1)
        assert store.nbytes == 0
        store.materialize(t)
        assert store.nbytes == t.shape[0] * t.shape[1] * t.shape[2] * 8


class TestExecutePair:
    def test_matches_direct_contraction(self):
        store = TensorStore(seed=0)
        p = make_pair(size=6, batch=2)
        out = store.execute_pair(p)
        a = store.get(p.left.uid)
        b = store.get(p.right.uid)
        np.testing.assert_allclose(out, np.matmul(a, b), rtol=1e-5)

    def test_output_stored_under_out_uid(self):
        store = TensorStore(seed=0)
        p = make_pair()
        store.execute_pair(p)
        assert p.out.uid in store

    def test_chained_contractions(self):
        """Output of one pair usable as input of the next (stage flow)."""
        from repro.tensor.spec import TensorPair

        store = TensorStore(seed=0)
        p1 = make_pair(size=5, batch=2)
        store.execute_pair(p1)
        p2 = TensorPair.make(p1.out, make_tensor(size=5, batch=2))
        out = store.execute_pair(p2)
        assert out.shape == (2, 5, 5)
