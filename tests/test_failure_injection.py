"""Failure-injection tests: the system degrades loudly, not silently."""

import pytest

from repro.errors import CapacityError, SchedulingError
from repro.gpusim.costmodel import CostModel
from repro.gpusim.engine import ExecutionEngine
from repro.gpusim.metrics import ExecutionMetrics
from repro.schedulers.bounds import ReuseBounds
from repro.schedulers.micco import MiccoScheduler
from repro.tensor.spec import TensorPair, VectorSpec
from tests.conftest import make_cluster, make_pair, make_tensor


class TestCapacityFailures:
    def test_pair_larger_than_device_raises(self):
        big = make_pair(size=256, batch=64)  # ~100 MiB inputs
        cluster = make_cluster(memory_bytes=big.left.nbytes // 2)
        engine = ExecutionEngine(cluster, CostModel())
        cluster.begin_vector(2)
        with pytest.raises(CapacityError):
            engine.execute_pair(big, 0, ExecutionMetrics(num_devices=2))

    def test_protected_working_set_exceeding_capacity_raises(self):
        """Inputs + output alone exceeding capacity is a hard error —
        the simulator refuses to fake progress."""
        t = make_tensor(size=128, batch=16)
        pair = TensorPair.make(t, make_tensor(size=128, batch=16))
        cluster = make_cluster(memory_bytes=2 * t.nbytes + t.nbytes // 2)
        engine = ExecutionEngine(cluster, CostModel())
        cluster.begin_vector(2)
        with pytest.raises(CapacityError):
            engine.execute_pair(pair, 0, ExecutionMetrics(num_devices=2))

    def test_partial_state_after_failure_is_inspectable(self):
        big = make_pair(size=256, batch=64)
        cluster = make_cluster(memory_bytes=big.left.nbytes // 2)
        engine = ExecutionEngine(cluster, CostModel())
        cluster.begin_vector(2)
        try:
            engine.execute_pair(big, 0, ExecutionMetrics(num_devices=2))
        except CapacityError:
            pass
        # The cluster is still queryable and consistent.
        assert cluster.used_bytes(0) <= cluster.pools[0].capacity_bytes


class TestSchedulerMisuse:
    def test_engine_rejects_out_of_range_device(self):
        cluster = make_cluster()
        engine = ExecutionEngine(cluster, CostModel())
        with pytest.raises(SchedulingError):
            engine.execute_pair(make_pair(), 99, ExecutionMetrics(num_devices=2))

    def test_micco_survives_corrupted_counters(self):
        """Even with absurd external counter state, a device is returned."""
        cluster = make_cluster()
        cluster.begin_vector(4)
        cluster.assigned_slots[:] = 10**9
        sched = MiccoScheduler(ReuseBounds.zeros())
        g = sched.choose(make_pair(), cluster)
        assert 0 <= g < cluster.num_devices

    def test_vector_assignment_mismatch(self):
        cluster = make_cluster()
        engine = ExecutionEngine(cluster, CostModel())
        v = VectorSpec(pairs=[make_pair()])
        with pytest.raises(SchedulingError):
            engine.execute_vector(v, [0, 1])


class TestDegenerateWorkloads:
    def test_single_pair_vector(self):
        cluster = make_cluster()
        engine = ExecutionEngine(cluster, CostModel())
        v = VectorSpec(pairs=[make_pair()])
        m = engine.execute_vector(v, [0])
        assert m.pairs_executed == 1

    def test_all_pairs_identical_tensor(self):
        """A vector of pairs all referencing one tensor twice."""
        cluster = make_cluster()
        engine = ExecutionEngine(cluster, CostModel())
        t = make_tensor()
        v = VectorSpec(pairs=[TensorPair.make(t, t) for _ in range(4)])
        m = engine.execute_vector(v, [0, 1, 0, 1])
        # One h2d per device (move semantics bounce it between them).
        assert m.counts.h2d_transfers + m.counts.d2d_transfers <= 4
        assert m.counts.reuse_hits >= 4

    def test_one_device_cluster_runs_everything(self):
        cluster = make_cluster(num_devices=1)
        engine = ExecutionEngine(cluster, CostModel())
        sched = MiccoScheduler(ReuseBounds(2, 2, 2))
        v = VectorSpec(pairs=[make_pair() for _ in range(3)])
        cluster.begin_vector(v.num_tensors)
        m = ExecutionMetrics(num_devices=1)
        for p in v.pairs:
            engine.execute_pair(p, sched.choose(p, cluster), m)
        assert m.pairs_per_device[0] == 3


class TestErrorHierarchy:
    def test_capacity_error_is_a_runtime_error(self):
        """Callers using bare ``except RuntimeError`` keep working."""
        from repro.errors import ReproError

        assert issubclass(CapacityError, RuntimeError)
        assert issubclass(CapacityError, ReproError)

    def test_fault_errors_are_runtime_errors(self):
        from repro.errors import DeviceLostError, FaultError, ReproError, TransientFaultError

        for exc_type in (FaultError, TransientFaultError, DeviceLostError):
            assert issubclass(exc_type, RuntimeError)
            assert issubclass(exc_type, ReproError)
        assert issubclass(TransientFaultError, FaultError)
        assert issubclass(DeviceLostError, FaultError)


class TestDeadDeviceReferences:
    def test_execute_vector_on_dead_device_raises_device_lost(self):
        """A stale assignment referencing a lost device fails loudly
        with the device id and the offending pair index — never a
        KeyError/IndexError from some internal map."""
        from repro.errors import DeviceLostError

        cluster = make_cluster()
        engine = ExecutionEngine(cluster, CostModel())
        cluster.fail_device(0)
        v = VectorSpec(pairs=[make_pair(), make_pair()])
        with pytest.raises(DeviceLostError) as exc:
            engine.execute_vector(v, [1, 0])
        assert exc.value.device_id == 0
        assert exc.value.pair_index == 1

    def test_partial_vector_state_remains_consistent(self):
        from repro.errors import DeviceLostError

        cluster = make_cluster()
        engine = ExecutionEngine(cluster, CostModel())
        cluster.fail_device(1)
        v = VectorSpec(pairs=[make_pair(), make_pair()])
        try:
            engine.execute_vector(v, [0, 1])
        except DeviceLostError:
            pass
        cluster.check_invariants()
        assert cluster.used_bytes(1) == 0
