"""Additional property-based tests for the extension modules."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.gpusim.costmodel import CostModel
from repro.gpusim.engine import ExecutionEngine
from repro.gpusim.memory import EVICTION_POLICIES, MemoryPool
from repro.gpusim.topology import Topology
from repro.schedulers.costgreedy import CostGreedyScheduler
from repro.core.session import run_stream
from repro.workloads.serialize import stream_from_dict, stream_to_dict
from repro.workloads.synth import SyntheticWorkload, WorkloadParams
from tests.conftest import make_cluster


@st.composite
def small_streams(draw):
    params = WorkloadParams(
        vector_size=draw(st.sampled_from([4, 8])),
        tensor_size=16,
        repeated_rate=draw(st.sampled_from([0.0, 0.5, 1.0])),
        distribution=draw(st.sampled_from(["uniform", "gaussian"])),
        num_vectors=draw(st.integers(1, 3)),
        batch=2,
    )
    return SyntheticWorkload(params, seed=draw(st.integers(0, 1000))).vectors()


class TestSerializationProperties:
    @given(small_streams())
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_preserves_identity_structure(self, vectors):
        loaded = stream_from_dict(stream_to_dict(vectors))
        for a, b in zip(vectors, loaded):
            assert [p.input_uids for p in a.pairs] == [p.input_uids for p in b.pairs]
            assert a.num_tensors == b.num_tensors
            assert a.input_bytes_unique() == b.input_bytes_unique()

    @given(small_streams())
    @settings(max_examples=20, deadline=None)
    def test_roundtrip_runs_identically(self, vectors):
        from repro.schedulers.micco import MiccoScheduler

        loaded = stream_from_dict(stream_to_dict(vectors))
        results = []
        for stream in (vectors, loaded):
            cluster = make_cluster()
            engine = ExecutionEngine(cluster, CostModel())
            results.append(run_stream(stream, MiccoScheduler(), cluster, engine))
        assert results[0].metrics.summary() == results[1].metrics.summary()


class TestEvictionPolicyProperties:
    @given(
        st.sampled_from(EVICTION_POLICIES),
        st.lists(st.tuples(st.integers(0, 8), st.integers(1, 40)), min_size=1, max_size=25),
    )
    @settings(max_examples=60, deadline=None)
    def test_capacity_invariant_all_policies(self, policy, seq):
        pool = MemoryPool(100, policy=policy)
        for uid, nbytes in seq:
            pool.allocate(uid, nbytes)
            assert pool.used_bytes <= pool.capacity_bytes
            assert pool.used_bytes == sum(pool.nbytes_of(u) for u in pool.resident_uids())


class TestTopologyProperties:
    @given(
        st.integers(1, 4),
        st.integers(0, 15),
        st.integers(0, 15),
        st.integers(1, 10**8),
    )
    @settings(max_examples=60)
    def test_cross_node_never_faster(self, per_node, a, b, nbytes):
        topo = Topology(num_devices=16, devices_per_node={1: 1, 2: 2, 3: 4, 4: 8}[per_node])
        intra_ref = topo.d2d_time(0, 0, nbytes, 0.0)
        t = topo.d2d_time(a, b, nbytes, 0.0)
        if topo.same_node(a, b):
            assert t == intra_ref
        else:
            assert t >= intra_ref


class TestCostGreedyProperties:
    @given(small_streams())
    @settings(max_examples=20, deadline=None)
    def test_estimates_are_positive_and_finite(self, vectors):
        cluster = make_cluster()
        sched = CostGreedyScheduler()
        for v in vectors[:1]:
            for p in v.pairs:
                for g in range(cluster.num_devices):
                    est = sched.estimate_added_time(p, g, cluster)
                    assert np.isfinite(est) and est > 0

    @given(small_streams())
    @settings(max_examples=20, deadline=None)
    def test_counter_conservation_under_costgreedy(self, vectors):
        cluster = make_cluster()
        engine = ExecutionEngine(cluster, CostModel())
        result = run_stream(vectors, CostGreedyScheduler(), cluster, engine)
        c = result.metrics.counts
        slots = sum(v.num_tensors for v in vectors)
        assert c.reuse_hits + c.h2d_transfers + c.d2d_transfers == slots
