"""Unit tests for the residency journal (warm-restore substrate)."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.faults import ResidencyJournal


class TestRecording:
    def test_entries_are_stamped_with_the_advanced_clock(self):
        j = ResidencyJournal()
        j.advance(1.5)
        j.note_put(7, 0, 1024)
        j.note_drop(7, 0)
        assert j.entries() == [
            {"op": "put", "time_s": 1.5, "uid": 7, "device": 0, "nbytes": 1024},
            {"op": "drop", "time_s": 1.5, "uid": 7, "device": 0, "nbytes": 0,
             "reason": "evict"},
        ]
        assert len(j) == 2 and j.total_recorded == 2

    def test_drop_reason_validated(self):
        j = ResidencyJournal()
        with pytest.raises(ConfigurationError, match="drop reason"):
            j.note_drop(1, 0, "misplaced")

    def test_clock_never_goes_backwards(self):
        j = ResidencyJournal()
        j.advance(2.0)
        j.advance(1.0)
        assert j.now == 2.0

    def test_capacity_bounds_the_ring(self):
        j = ResidencyJournal(capacity=3)
        for uid in range(5):
            j.note_put(uid, 0, 8)
        assert len(j) == 3
        assert [e["uid"] for e in j.entries()] == [2, 3, 4]  # oldest rotated out
        assert j.total_recorded == 5  # counter survives rotation

    def test_capacity_validated(self):
        with pytest.raises(ConfigurationError):
            ResidencyJournal(capacity=0)


class TestHotTensors:
    def test_ranked_by_put_count_then_recency(self):
        j = ResidencyJournal()
        j.advance(1.0)
        j.note_put(1, 0, 100)
        j.note_put(2, 0, 200)
        j.advance(2.0)
        j.note_put(1, 1, 100)  # uid 1: two puts
        j.note_put(3, 0, 300)  # uid 3: one put, most recent
        assert j.hot_tensors() == [(1, 100), (3, 300), (2, 200)]

    def test_drops_do_not_count_toward_hotness(self):
        j = ResidencyJournal()
        j.note_put(1, 0, 100)
        j.note_drop(1, 0, "lost")  # involuntary: stays ranked
        j.note_put(2, 0, 200)
        j.note_put(2, 1, 200)
        assert [uid for uid, _ in j.hot_tensors()] == [2, 1]

    def test_drained_never_reput_is_not_ranked(self):
        # A drain is an explicit this-data-is-finished free (completed
        # outputs): never ranked again unless re-put.
        j = ResidencyJournal()
        j.note_put(1, 0, 100)
        j.note_drop(1, 0, "drain")
        j.note_put(2, 0, 200)
        assert [uid for uid, _ in j.hot_tensors()] == [2]

    def test_evicted_tensor_stays_ranked(self):
        # Capacity eviction is a pressure signal, not a cold signal:
        # the evicted tensor is still a prewarm candidate.
        j = ResidencyJournal()
        j.note_put(1, 0, 100)
        j.note_drop(1, 0, "evict")
        assert [uid for uid, _ in j.hot_tensors()] == [1]

    def test_reput_after_drain_restores_ranking(self):
        j = ResidencyJournal()
        j.note_put(1, 0, 100)
        j.note_drop(1, 0, "drain")
        j.note_put(1, 1, 100)  # wanted again: back in the hot set
        assert [uid for uid, _ in j.hot_tensors()] == [1]

    def test_migrated_tensor_stays_ranked(self):
        # A d2d migration puts on the destination *then* drops the
        # source copy; the trailing drop must not read as "finished".
        j = ResidencyJournal()
        j.note_put(1, 1, 100)  # copy lands on the destination
        j.note_drop(1, 0, "migrate")  # source copy freed
        assert [uid for uid, _ in j.hot_tensors()] == [1]

    def test_lost_tensors_stay_ranked_for_warm_restore(self):
        j = ResidencyJournal()
        j.note_put(1, 0, 100)
        j.note_put(1, 1, 100)
        j.note_drop(1, 0, "lost")
        j.note_drop(1, 1, "lost")
        assert j.hot_tensors() == [(1, 100)]

    def test_empty_journal_has_no_hot_set(self):
        assert ResidencyJournal().hot_tensors() == []


class TestRestoreAccounting:
    def test_note_restore_accumulates(self):
        j = ResidencyJournal()
        j.note_restore(3, tensors=4, cost_s=0.25)
        j.note_restore(5, tensors=2, cost_s=0.5)
        s = j.summary()
        assert s["restores"] == 2
        assert s["prewarmed_tensors"] == 6
        assert s["prewarm_cost_s"] == pytest.approx(0.75)


class TestPersistence:
    def test_json_round_trip(self, tmp_path):
        j = ResidencyJournal(capacity=16)
        j.advance(0.5)
        j.note_put(1, 0, 100)
        j.note_drop(1, 0)
        j.note_restore(2, tensors=1, cost_s=0.1)
        path = tmp_path / "journal.json"
        j.to_json(path)
        back = ResidencyJournal.from_json(path)
        assert back.entries() == j.entries()
        assert back.capacity == 16
        assert back.summary() == j.summary()

    def test_from_json_rejects_non_object(self, tmp_path):
        path = tmp_path / "journal.json"
        path.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(ConfigurationError):
            ResidencyJournal.from_json(path)

    def test_from_json_rejects_unknown_op(self, tmp_path):
        path = tmp_path / "journal.json"
        path.write_text(
            json.dumps({"log": [{"op": "swap", "time_s": 0.0, "uid": 1, "device": 0}]})
        )
        with pytest.raises(ConfigurationError, match="unknown op"):
            ResidencyJournal.from_json(path)

    def test_from_json_rejects_missing_fields(self, tmp_path):
        path = tmp_path / "journal.json"
        path.write_text(json.dumps({"log": [{"op": "put", "uid": 1}]}))
        with pytest.raises(ConfigurationError, match="entry 0"):
            ResidencyJournal.from_json(path)
