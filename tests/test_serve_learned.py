"""Learned routing: online latency prediction, cold start, determinism."""

import copy

import pytest

from repro.errors import ConfigurationError
from repro.serve import LearnedRouting, ServeConfig
from repro.serve.sharded.learned import FEATURE_NAMES, route_features
from repro.serve.sharded.routing import ShardSnapshot, make_routing_policy
from tests.conftest import make_vector
from tests.test_serve_sharded import run_sharded


def snap(node, depth=0, inflight=0, pending=0, **extra):
    return ShardSnapshot(
        node=node, alive=4, queue_depth=depth, inflight=inflight,
        linkless=False, residency={}, pending=pending, **extra,
    )


def warm_policy(latencies, *, explore_floor=0.0, seed=0, n_samples=4):
    """A LearnedRouting whose shard models predict ``latencies[node]``."""
    policy = LearnedRouting(
        explore_floor=explore_floor, min_samples=2, refit_interval=1,
        seed=seed,
    )
    v = make_vector()
    for node, latency in latencies.items():
        for i in range(n_samples):
            x = route_features(v, snap(node, depth=i))
            policy.model(node).observe(x, latency)
    return policy


class TestConstruction:
    def test_registry_builds_it(self):
        policy = make_routing_policy("learned", min_samples=3)
        assert isinstance(policy, LearnedRouting)
        assert policy.name == "learned"
        assert policy.min_samples == 3

    def test_wants_features(self):
        # The router only pays for enriched snapshots + callbacks when
        # the policy opts in; the static three never do.
        assert LearnedRouting().wants_features
        for name in ("least-loaded", "residency-affinity", "threshold-local"):
            assert not make_routing_policy(name).wants_features

    def test_knob_validation(self):
        with pytest.raises(ConfigurationError, match="explore_floor"):
            LearnedRouting(explore_floor=1.0)
        with pytest.raises(ConfigurationError, match="explore_floor"):
            LearnedRouting(explore_floor=-0.1)
        with pytest.raises(ConfigurationError, match="min_samples"):
            LearnedRouting(min_samples=1)
        with pytest.raises(ConfigurationError, match="refit_interval"):
            LearnedRouting(refit_interval=0)


class TestFeatures:
    def test_feature_row_matches_layout(self):
        v = make_vector(n_pairs=2)
        uids = {s.uid: s.nbytes for p in v.pairs for s in p.inputs}
        some_uid = next(iter(uids))
        s = snap(
            1, depth=3, inflight=2, pending=1,
            age_s=0.02, suspicion=1.5, quarantines=2, breaker=1, blame=0.3,
        )
        s = ShardSnapshot(**{**s.__dict__, "residency": {some_uid: uids[some_uid]}})
        x = route_features(v, s)
        assert x.shape == (len(FEATURE_NAMES),)
        row = dict(zip(FEATURE_NAMES, x))
        assert row["queue_depth"] == 3
        assert row["inflight"] == 2
        assert row["pending"] == 1
        assert row["age_s"] == pytest.approx(0.02)
        assert row["suspicion"] == pytest.approx(1.5)
        assert row["quarantines"] == 2
        assert row["breaker"] == 1
        assert row["blame"] == pytest.approx(0.3)
        assert row["num_pairs"] == 2
        assert row["overlap_mib"] > 0


class TestColdStart:
    def test_falls_back_to_least_loaded(self):
        policy = LearnedRouting(min_samples=4)
        chosen = policy.choose(
            make_vector(), [snap(0, depth=3), snap(1, depth=1), snap(2, depth=2)]
        )
        assert chosen == 1  # the least-loaded ranking
        assert policy.fallback_decisions == 1
        assert policy.learned_decisions == 0

    def test_cold_start_draws_no_rng(self):
        # The fallback path must not consume exploration draws, or the
        # RNG schedule (and byte-identical replay) would depend on how
        # long the warm-up took.
        policy = LearnedRouting(min_samples=4, seed=9)
        before = copy.deepcopy(policy._rng.bit_generator.state)
        for _ in range(10):
            policy.choose(make_vector(), [snap(0), snap(1)])
        assert policy._rng.bit_generator.state == before

    def test_one_cold_candidate_keeps_the_fallback(self):
        # Shards warm at different rates; predictions are only trusted
        # once every *candidate* passed min_samples.
        policy = warm_policy({0: 1.0}, n_samples=4)
        policy.choose(make_vector(), [snap(0), snap(1)])
        assert policy.fallback_decisions == 1


class TestWarmRouting:
    def test_routes_to_argmin_predicted_latency(self):
        # Shard 0 learned ~1s completions, shard 1 ~0.1s: the digest
        # says both are empty, but the model knows better.
        policy = warm_policy({0: 1.0, 1: 0.1})
        assert policy.choose(make_vector(), [snap(0), snap(1)]) == 1
        assert policy.learned_decisions == 1

    def test_ties_break_on_lowest_node(self):
        policy = warm_policy({0: 0.5, 1: 0.5})
        assert policy.choose(make_vector(), [snap(0), snap(1)]) == 0

    def test_exploration_floor_samples_other_shards(self):
        policy = warm_policy({0: 1.0, 1: 0.1}, explore_floor=0.5, seed=3)
        picks = {policy.choose(make_vector(), [snap(0), snap(1)]) for _ in range(64)}
        assert policy.explored > 0
        assert policy.learned_decisions > 0
        assert picks == {0, 1}  # exploration reaches the "slow" shard too

    def test_exploration_is_seed_deterministic(self):
        a = warm_policy({0: 1.0, 1: 0.1}, explore_floor=0.5, seed=3)
        b = warm_policy({0: 1.0, 1: 0.1}, explore_floor=0.5, seed=3)
        snaps = [snap(0), snap(1)]
        seq_a = [a.choose(make_vector(), snaps) for _ in range(64)]
        seq_b = [b.choose(make_vector(), snaps) for _ in range(64)]
        assert seq_a == seq_b
        assert a.explored == b.explored


class TestSampleLifecycle:
    def test_completion_trains_the_placed_shard(self):
        policy = LearnedRouting(min_samples=2, refit_interval=1)
        ticket = type("T", (), {})()
        ticket.vector = make_vector()
        policy.note_placed(ticket, snap(0), now=1.0)
        assert ticket.route_sample is not None
        policy.note_outcome(ticket, now=1.5, completed=True)
        assert ticket.route_sample is None
        assert policy.model(0).samples == 1
        # The observed label is the route->completion latency.
        assert policy.model(0)._window[-1][1] == pytest.approx(0.5)

    def test_non_completions_drop_the_sample(self):
        # Reroutes / sheds / hedge losers must not poison the model
        # with latencies that are not completion latencies.
        policy = LearnedRouting(min_samples=2)
        ticket = type("T", (), {})()
        ticket.vector = make_vector()
        policy.note_placed(ticket, snap(0), now=1.0)
        policy.note_outcome(ticket, now=2.0, completed=False)
        assert ticket.route_sample is None
        assert policy.model(0).samples == 0

    def test_prediction_error_tracked_once_warm(self):
        policy = warm_policy({0: 1.0})
        ticket = type("T", (), {})()
        ticket.vector = make_vector()
        policy.note_placed(ticket, snap(0), now=0.0)
        policy.note_outcome(ticket, now=1.2, completed=True)
        s = policy.summary()
        assert s["per_shard"]["0"]["mean_abs_err_ms"] == pytest.approx(
            200.0, rel=0.2
        )


class TestConfigKnobs:
    def test_round_trip(self, tmp_path):
        cfg = ServeConfig(
            sharded=True, routing="learned",
            explore_floor=0.2, min_samples=8, refit_interval=4,
        )
        path = tmp_path / "cfg.json"
        cfg.to_json(path)
        loaded = ServeConfig.from_json(path)
        assert loaded == cfg

    def test_unknown_routing_rejected_at_parse_time(self):
        with pytest.raises(ConfigurationError, match="least-loaded"):
            ServeConfig(sharded=True, routing="hash-ring")

    def test_knob_validation(self):
        with pytest.raises(ConfigurationError, match="explore_floor"):
            ServeConfig(explore_floor=1.0)
        with pytest.raises(ConfigurationError, match="min_samples"):
            ServeConfig(min_samples=1)
        with pytest.raises(ConfigurationError, match="refit_interval"):
            ServeConfig(refit_interval=0)


def learned_serve(**over):
    base = dict(
        sharded=True, routing="learned", sync_interval_s=0.01,
        explore_floor=0.1, min_samples=4, refit_interval=4,
    )
    base.update(over)
    return ServeConfig(**base)


class TestEndToEnd:
    def test_completes_everything_and_reports_routing(self):
        _, result = run_sharded(serve=learned_serve(), n=32, seed=5)
        s = result.summary()
        assert s["completed"] + s["dropped"] == s["offered"] == 32
        r = result.routing
        assert r is not None and r["policy"] == "learned"
        assert r["decisions"] >= 32
        assert r["fallback"] > 0  # the run started cold
        assert r["learned"] > 0  # ... and warmed up
        assert s["routing"] == r  # summary carries the same section
        # Every shard model saw completions and refit at least once.
        assert all(x["samples"] > 0 for x in r["per_shard"].values())
        assert any(x["refits"] > 0 for x in r["per_shard"].values())

    def test_static_policies_report_no_routing_section(self):
        _, result = run_sharded(n=8)
        assert result.routing is None
        assert "routing" not in result.summary()

    def test_refit_events_land_in_the_trace(self):
        _, result = run_sharded(serve=learned_serve(), n=32, seed=5)
        assert any(e["kind"] == "refit" for e in result.routing_events)
        kinds = {e.kind for e in result.to_trace().events}
        assert "routing-refit" in kinds

    def test_same_seed_replays_byte_identically(self, tmp_path):
        paths = []
        for tag in ("a", "b"):
            _, result = run_sharded(serve=learned_serve(), n=32, seed=5)
            report = tmp_path / f"{tag}.json"
            trace = tmp_path / f"{tag}_trace.json"
            result.to_json(report)
            result.to_trace().save_chrome_trace(trace)
            paths.append((report.read_bytes(), trace.read_bytes()))
        assert paths[0] == paths[1]

    def test_different_seeds_change_exploration(self):
        # Not byte-equality in reverse (workload noise could mask it) —
        # just that the seed actually feeds the exploration stream.
        r5 = run_sharded(serve=learned_serve(explore_floor=0.5), n=32, seed=5)[1]
        r6 = run_sharded(serve=learned_serve(explore_floor=0.5), n=32, seed=6)[1]
        assert (r5.routing["explored"], r5.routing["learned"]) != (0, 0)
        assert r5.to_trace().events != r6.to_trace().events
