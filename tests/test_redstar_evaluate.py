"""Unit tests for correlator evaluation and the baryon (NN) dataset."""

import numpy as np
import pytest

from repro.core.config import MiccoConfig
from repro.core.framework import Micco
from repro.errors import GraphError
from repro.redstar.datasets import nucleon_nn
from repro.redstar.evaluate import (
    batched_trace,
    correlator_values,
    effective_mass,
    final_outputs_by_slice,
)
from repro.redstar.pipeline import RedstarPipeline
from repro.schedulers.bounds import ReuseBounds
from repro.tensor.storage import TensorStore
from tests.conftest import make_vector
from tests.test_redstar_pipeline import tiny_spec


def executed_pipeline(spec, seed=0):
    from repro.tensor.spec import reset_uid_counter

    # Materialized values derive from tensor uids; reset the uid space
    # so repeated constructions are numerically identical.
    reset_uid_counter()
    pipe = RedstarPipeline(spec, seed=seed)
    vectors = pipe.vectors()
    store = TensorStore(seed=1)
    system = Micco.with_bounds(
        ReuseBounds(0, 4, 0), MiccoConfig(num_devices=2, keep_outputs=True)
    )
    system.engine.store = store
    system.run(vectors)
    return vectors, store


class TestBatchedTrace:
    def test_identity_trace(self):
        eye = np.broadcast_to(np.eye(5), (3, 5, 5)).copy()
        assert batched_trace(eye) == pytest.approx(5.0)

    def test_rejects_non_square(self):
        with pytest.raises(GraphError):
            batched_trace(np.zeros((2, 3, 4)))


class TestFinalOutputs:
    def test_groups_by_slice_and_stage(self):
        spec = tiny_spec(time_slices=2)
        vectors = RedstarPipeline(spec, seed=0).vectors()
        finals = final_outputs_by_slice(vectors)
        assert set(finals) == {0, 1}
        assert all(outs for outs in finals.values())

    def test_missing_metadata_rejected(self):
        with pytest.raises(GraphError):
            final_outputs_by_slice([make_vector()])


class TestCorrelatorValues:
    def test_meson_correlator_per_slice(self):
        spec = tiny_spec(time_slices=3)
        vectors, store = executed_pipeline(spec)
        values = correlator_values(vectors, store)
        assert set(values) == {0, 1, 2}
        assert all(np.isfinite([v.real, v.imag]).all() for v in values.values())

    def test_values_deterministic(self):
        spec = tiny_spec(time_slices=2)
        a = correlator_values(*executed_pipeline(spec))
        b = correlator_values(*executed_pipeline(spec))
        assert a == b

    def test_effective_mass_consecutive_slices(self):
        values = {0: 8.0 + 0j, 1: 4.0 + 0j, 2: 2.0 + 0j}
        m = effective_mass(values)
        assert m[0] == pytest.approx(np.log(2))
        assert m[1] == pytest.approx(np.log(2))

    def test_effective_mass_skips_gaps(self):
        assert effective_mass({0: 1.0 + 0j, 2: 1.0 + 0j}) == {}


class TestNucleonNN:
    def test_baryon_pipeline_structure(self):
        spec = nucleon_nn(time_slices=2)
        pipe = RedstarPipeline(spec, seed=0)
        vectors = pipe.vectors()
        assert pipe.stats.num_graphs > 10
        assert pipe.stats.num_steps > 0
        ranks = {p.left.rank for v in vectors for p in v.pairs}
        assert 3 in ranks  # baryon tensors flow through the scheduler

    def test_baryon_numerics_finite(self):
        vectors, store = executed_pipeline(nucleon_nn(time_slices=2))
        values = correlator_values(vectors, store)
        assert values
        for v in values.values():
            assert np.isfinite([v.real, v.imag]).all()
