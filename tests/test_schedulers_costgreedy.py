"""Unit tests for the cost-model-aware greedy scheduler."""

import pytest

from repro.core.config import MiccoConfig
from repro.core.framework import Micco
from repro.gpusim.costmodel import CostModel
from repro.schedulers.costgreedy import CostGreedyScheduler
from repro.schedulers.locality import RandomScheduler
from repro.workloads.synth import SyntheticWorkload, WorkloadParams
from tests.conftest import make_cluster, make_pair, make_tensor


class TestEstimate:
    def test_resident_inputs_cheaper(self):
        cl = make_cluster()
        sched = CostGreedyScheduler()
        p = make_pair()
        cl.register(p.left, 0)
        cl.register(p.right, 0)
        t_hot = sched.estimate_added_time(p, 0, cl)
        t_cold = sched.estimate_added_time(p, 1, cl)
        assert t_hot < t_cold

    def test_estimate_includes_eviction_overflow(self):
        p = make_pair(size=64, batch=8)
        tight = make_cluster(memory_bytes=2 * p.left.nbytes)
        roomy = make_cluster(memory_bytes=1024**3)
        sched = CostGreedyScheduler()
        assert sched.estimate_added_time(p, 0, tight) > sched.estimate_added_time(p, 0, roomy)

    def test_duplicate_input_counted_once(self):
        from repro.tensor.spec import TensorPair

        cl = make_cluster()
        sched = CostGreedyScheduler()
        t = make_tensor()
        single = sched.estimate_added_time(TensorPair.make(t, t), 0, cl)
        double = sched.estimate_added_time(make_pair(), 0, cl)
        assert single < double


class TestChoice:
    def test_prefers_holder_over_idle(self):
        cl = make_cluster(num_devices=2)
        p = make_pair()
        cl.register(p.left, 1)
        cl.register(p.right, 1)
        assert CostGreedyScheduler().choose(p, cl) == 1

    def test_busy_holder_eventually_avoided(self):
        cl = make_cluster(num_devices=2)
        p = make_pair()
        cl.register(p.left, 1)
        cl.register(p.right, 1)
        cl.add_compute(1, 1e9)  # holder is pathologically backed up
        assert CostGreedyScheduler().choose(p, cl) == 0

    def test_beats_random_end_to_end(self):
        params = WorkloadParams(vector_size=32, tensor_size=128, batch=8, repeated_rate=0.75, num_vectors=6)
        vectors = SyntheticWorkload(params, seed=2).vectors()
        cfg = MiccoConfig(num_devices=4)
        greedy = Micco(cfg, scheduler=CostGreedyScheduler(cfg.cost_model)).run(vectors)
        rand = Micco(cfg, scheduler=RandomScheduler(seed=0)).run(vectors)
        assert greedy.gflops > rand.gflops
