"""Unit tests for Groute and RoundRobin baselines."""

from repro.gpusim.costmodel import CostModel
from repro.gpusim.engine import ExecutionEngine
from repro.gpusim.metrics import ExecutionMetrics
from repro.schedulers.groute import GrouteScheduler
from repro.schedulers.roundrobin import RoundRobinScheduler
from tests.conftest import make_cluster, make_pair, make_vector


class TestGroute:
    def test_picks_least_busy(self):
        cl = make_cluster(num_devices=3)
        cl.add_compute(0, 2.0)
        cl.add_compute(1, 0.5)
        cl.add_compute(2, 1.0)
        assert GrouteScheduler().choose(make_pair(), cl) == 1

    def test_memops_count_toward_busy(self):
        cl = make_cluster(num_devices=2)
        cl.add_compute(0, 1.0)
        cl.add_memop(1, 2.0)
        assert GrouteScheduler().choose(make_pair(), cl) == 0

    def test_tie_breaks_lowest_id(self):
        cl = make_cluster(num_devices=4)
        assert GrouteScheduler().choose(make_pair(), cl) == 0

    def test_balances_over_a_vector(self):
        cl = make_cluster(num_devices=2)
        engine = ExecutionEngine(cl, CostModel())
        sched = GrouteScheduler()
        v = make_vector(n_pairs=6)
        cl.begin_vector(v.num_tensors)
        m = ExecutionMetrics(num_devices=2)
        for p in v.pairs:
            engine.execute_pair(p, sched.choose(p, cl), m)
        # Identical pairs -> strict alternation -> even split.
        assert list(m.pairs_per_device) == [3, 3]

    def test_ignores_residency(self):
        """Groute picks the idle device even when data lives elsewhere."""
        cl = make_cluster(num_devices=2)
        p = make_pair()
        cl.register(p.left, 0)
        cl.register(p.right, 0)
        cl.add_compute(0, 1.0)  # device 0 busier
        assert GrouteScheduler().choose(p, cl) == 1


class TestRoundRobin:
    def test_cycles_devices(self):
        cl = make_cluster(num_devices=3)
        sched = RoundRobinScheduler()
        picks = [sched.choose(make_pair(), cl) for _ in range(7)]
        assert picks == [0, 1, 2, 0, 1, 2, 0]

    def test_cursor_survives_begin_vector(self):
        cl = make_cluster(num_devices=2)
        sched = RoundRobinScheduler()
        sched.choose(make_pair(), cl)
        sched.begin_vector(make_vector(), cl)
        assert sched.choose(make_pair(), cl) == 1
