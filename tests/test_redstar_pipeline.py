"""Unit tests for the Redstar pipeline and real-world dataset analogs."""

import pytest

from repro.errors import GraphError
from repro.redstar.correlator import CorrelatorSpec, Operator, conjugate
from repro.redstar.datasets import GIB, REAL_WORLD_SPECS, a1_rhopi, f0d2, f0d4
from repro.redstar.pipeline import RedstarPipeline


def tiny_spec(time_slices=2, momenta=2):
    return CorrelatorSpec(
        name="tiny",
        operators=(
            Operator(name="a1", hadrons=(("u", "dbar"),)),
            Operator(name="rho_pi", hadrons=(("u", "ubar"), ("u", "dbar")), momenta=momenta),
        ),
        tensor_size=16,
        batch=2,
        time_slices=time_slices,
        max_vector_size=8,
    )


class TestCorrelatorSpec:
    def test_conjugate_roundtrip(self):
        content = ("u", "dbar", "s")
        assert conjugate(conjugate(content)) == content

    def test_conjugate_unknown_flavor(self):
        with pytest.raises(GraphError):
            conjugate(("x",))

    def test_single_particle_momenta_fixed(self):
        with pytest.raises(GraphError):
            Operator(name="bad", hadrons=(("u", "dbar"),), momenta=3)

    def test_empty_operators_rejected(self):
        with pytest.raises(GraphError):
            CorrelatorSpec(name="x", operators=(), tensor_size=16)


class TestPipeline:
    def test_diagrams_generated(self):
        pipe = RedstarPipeline(tiny_spec(), seed=0)
        graphs = pipe.diagrams(0)
        assert len(graphs) > 4

    def test_vectors_stream_structure(self):
        spec = tiny_spec()
        pipe = RedstarPipeline(spec, seed=0)
        vectors = pipe.vectors()
        assert vectors
        assert all(v.num_tensors <= spec.max_vector_size for v in vectors)
        assert pipe.stats.num_graphs > 0
        assert pipe.stats.num_steps == sum(len(v.pairs) for v in vectors)

    def test_source_tensors_shared_across_slices(self):
        pipe = RedstarPipeline(tiny_spec(time_slices=3), seed=0)
        pipe.vectors()
        labels = [k for k in pipe._hadron_registry if k[0] == "src"]
        # All source registry keys live on time slice 0.
        assert all(key[4] == 0 for key in labels)

    def test_sink_tensors_per_slice(self):
        pipe = RedstarPipeline(tiny_spec(time_slices=3), seed=0)
        pipe.vectors()
        snk_slices = {key[4] for key in pipe._hadron_registry if key[0] == "snk"}
        assert snk_slices == {0, 1, 2}

    def test_repeated_steps_not_recomputed_across_slices(self):
        """Source-source merges appear once, not once per slice."""
        spec = tiny_spec(time_slices=3)
        pipe = RedstarPipeline(spec, seed=0)
        vectors = pipe.vectors()
        out_uids = [p.out.uid for v in vectors for p in v.pairs]
        assert len(out_uids) == len(set(out_uids))

    def test_stats_bytes_positive(self):
        pipe = RedstarPipeline(tiny_spec(), seed=0)
        pipe.vectors()
        assert pipe.stats.input_bytes > 0
        assert pipe.stats.intermediate_bytes > 0
        assert pipe.stats.total_bytes == pipe.stats.input_bytes + pipe.stats.intermediate_bytes

    def test_deterministic(self):
        a = RedstarPipeline(tiny_spec(), seed=0)
        b = RedstarPipeline(tiny_spec(), seed=0)
        assert [len(v.pairs) for v in a.vectors()] == [len(v.pairs) for v in b.vectors()]


class TestDatasets:
    @pytest.mark.parametrize("name", ["a1_rhopi", "f0d2", "f0d4"])
    def test_memory_matches_table6(self, name):
        factory, paper_n, paper_mem, _ = REAL_WORLD_SPECS[name]
        spec = factory()
        pipe = RedstarPipeline(spec, seed=0)
        pipe.vectors()
        assert spec.tensor_size == paper_n
        assert pipe.stats.total_bytes == pytest.approx(paper_mem, rel=0.05)

    def test_thousands_of_graphs(self):
        pipe = RedstarPipeline(a1_rhopi(), seed=0)
        pipe.vectors()
        assert pipe.stats.num_graphs > 1000

    def test_f0_specs_differ(self):
        assert f0d2().operators[1].momenta != f0d4().operators[1].momenta
