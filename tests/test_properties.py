"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.gpusim.costmodel import CostModel
from repro.gpusim.engine import ExecutionEngine
from repro.gpusim.memory import MemoryPool
from repro.ml.metrics import _rank, r2_score, spearmanr
from repro.schedulers.bounds import ReuseBounds
from repro.schedulers.groute import GrouteScheduler
from repro.schedulers.micco import MiccoScheduler
from repro.schedulers.roundrobin import RoundRobinScheduler
from repro.core.session import run_stream
from repro.tensor.spec import TensorPair, TensorSpec, VectorSpec, next_uid
from repro.workloads.synth import SyntheticWorkload, WorkloadParams
from tests.conftest import make_cluster

# ---------------------------------------------------------------- strategies

tensor_sizes = st.integers(min_value=2, max_value=64)


@st.composite
def alloc_sequences(draw):
    """A sequence of (uid, nbytes) allocations within one pool's scale."""
    n = draw(st.integers(min_value=1, max_value=30))
    return [
        (draw(st.integers(0, 10)), draw(st.integers(min_value=1, max_value=40)))
        for _ in range(n)
    ]


@st.composite
def vector_streams(draw):
    """A small synthetic stream with drawn characteristics."""
    params = WorkloadParams(
        vector_size=draw(st.sampled_from([4, 8, 12])),
        tensor_size=draw(st.sampled_from([8, 16])),
        repeated_rate=draw(st.sampled_from([0.0, 0.25, 0.5, 0.75, 1.0])),
        distribution=draw(st.sampled_from(["uniform", "gaussian"])),
        num_vectors=draw(st.integers(1, 4)),
        batch=2,
    )
    return SyntheticWorkload(params, seed=draw(st.integers(0, 10_000))).vectors()


# ----------------------------------------------------------------- MemoryPool


class TestMemoryPoolProperties:
    @given(alloc_sequences())
    @settings(max_examples=60, deadline=None)
    def test_used_bytes_never_exceed_capacity(self, seq):
        pool = MemoryPool(100)
        for uid, nbytes in seq:
            pool.allocate(uid, nbytes)
            assert 0 <= pool.used_bytes <= pool.capacity_bytes
            assert pool.used_bytes == sum(pool.nbytes_of(u) for u in pool.resident_uids())

    @given(alloc_sequences())
    @settings(max_examples=60, deadline=None)
    def test_resident_set_consistent(self, seq):
        pool = MemoryPool(100)
        for uid, nbytes in seq:
            pool.allocate(uid, nbytes)
        for uid in pool.resident_uids():
            assert uid in pool


# ------------------------------------------------------------------ scheduler


SCHEDULERS = [
    lambda: MiccoScheduler(ReuseBounds(0, 0, 0)),
    lambda: MiccoScheduler(ReuseBounds(2, 2, 2)),
    lambda: GrouteScheduler(),
    lambda: RoundRobinScheduler(),
]


class TestSchedulerProperties:
    @given(vector_streams(), st.integers(0, 3), st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_counter_conservation(self, vectors, sched_idx, num_devices):
        """Across any schedule: input slots = hits + h2d + d2d, and every
        pair executes exactly once on a valid device."""
        cluster = make_cluster(num_devices=num_devices)
        engine = ExecutionEngine(cluster, CostModel())
        result = run_stream(vectors, SCHEDULERS[sched_idx](), cluster, engine)
        total_pairs = sum(len(v.pairs) for v in vectors)
        total_slots = sum(v.num_tensors for v in vectors)
        c = result.metrics.counts
        assert result.metrics.pairs_executed == total_pairs
        assert c.reuse_hits + c.h2d_transfers + c.d2d_transfers == total_slots
        assert result.metrics.pairs_per_device.sum() == total_pairs

    @given(vector_streams(), st.integers(0, 3))
    @settings(max_examples=30, deadline=None)
    def test_makespan_bounds_total_work(self, vectors, sched_idx):
        """makespan <= total busy time <= num_devices * makespan."""
        cluster = make_cluster(num_devices=2)
        engine = ExecutionEngine(cluster, CostModel())
        result = run_stream(vectors, SCHEDULERS[sched_idx](), cluster, engine)
        total = float(result.metrics.device_time_s.sum())
        span = result.metrics.makespan_s
        assert span <= total + 1e-12
        assert total <= 2 * span + 1e-12

    @given(vector_streams())
    @settings(max_examples=30, deadline=None)
    def test_micco_naive_respects_balance(self, vectors):
        """With zero bounds, no device exceeds the balanced share
        (ceil to pair granularity) in any vector."""
        cluster = make_cluster(num_devices=2)
        engine = ExecutionEngine(cluster, CostModel())
        result = run_stream(vectors, MiccoScheduler(ReuseBounds.zeros()), cluster, engine)
        for rec, vector in zip(result.per_vector, vectors):
            balance = vector.num_tensors / 2
            counts = np.bincount(rec["assignment"], minlength=2) * 2
            assert counts.max() <= balance + 2  # last pair may straddle


# -------------------------------------------------------------------- metrics


class TestMetricProperties:
    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=50))
    @settings(max_examples=100)
    def test_rank_is_permutation_sum(self, xs):
        ranks = _rank(np.asarray(xs))
        assert ranks.sum() == np.arange(1, len(xs) + 1).sum()

    @given(st.lists(st.floats(-1e3, 1e3), min_size=3, max_size=40, unique=True))
    @settings(max_examples=60)
    def test_spearman_symmetric_and_bounded(self, xs):
        rng = np.random.default_rng(0)
        ys = rng.permutation(np.asarray(xs))
        a = spearmanr(xs, ys)
        b = spearmanr(ys, xs)
        assert a == b
        assert -1.0 - 1e-9 <= a <= 1.0 + 1e-9

    @given(st.lists(st.floats(-1e3, 1e3), min_size=3, max_size=40))
    @settings(max_examples=60)
    def test_spearman_self_correlation(self, xs):
        arr = np.asarray(xs)
        if len(set(xs)) == 1:  # constant sample (std() underflows on subnormals)
            assert spearmanr(arr, arr) == 0.0
        else:
            assert abs(spearmanr(arr, arr) - 1.0) < 1e-9

    @given(st.lists(st.floats(-100, 100), min_size=2, max_size=40))
    @settings(max_examples=60)
    def test_r2_of_exact_prediction_is_one(self, ys):
        assert r2_score(ys, ys) == 1.0


# ------------------------------------------------------------------- tensors


class TestTensorProperties:
    @given(tensor_sizes, st.integers(1, 8), st.sampled_from([2, 3]))
    @settings(max_examples=60)
    def test_nbytes_consistent_with_shape(self, size, batch, rank):
        t = TensorSpec(uid=next_uid(), size=size, batch=batch, rank=rank)
        assert t.nbytes == int(np.prod(t.shape)) * t.dtype_bytes

    @given(st.integers(1, 6), tensor_sizes)
    @settings(max_examples=40)
    def test_vector_demand_nonnegative_monotone(self, n_pairs, size):
        pairs = [
            TensorPair.make(
                TensorSpec(uid=next_uid(), size=size, batch=2),
                TensorSpec(uid=next_uid(), size=size, batch=2),
            )
            for _ in range(n_pairs)
        ]
        v = VectorSpec(pairs=pairs)
        assert v.input_bytes_unique() == 2 * n_pairs * pairs[0].left.nbytes
        assert v.output_bytes() > 0
