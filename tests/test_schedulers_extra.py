"""Unit tests for LocalityScheduler, RandomScheduler, and MICCO ablations."""

import pytest

from repro.core.config import MiccoConfig
from repro.core.framework import Micco
from repro.gpusim.costmodel import CostModel
from repro.gpusim.engine import ExecutionEngine
from repro.gpusim.metrics import ExecutionMetrics
from repro.schedulers.bounds import ReuseBounds
from repro.schedulers.locality import LocalityScheduler, RandomScheduler
from repro.schedulers.micco import MiccoScheduler
from repro.workloads.synth import SyntheticWorkload, WorkloadParams
from tests.conftest import make_cluster, make_pair, make_tensor


class TestLocality:
    def test_follows_common_holder(self):
        cl = make_cluster(num_devices=3)
        p = make_pair()
        cl.register(p.left, 2)
        cl.register(p.right, 2)
        assert LocalityScheduler().choose(p, cl) == 2

    def test_partial_holder_least_loaded(self):
        cl = make_cluster(num_devices=3)
        p = make_pair()
        cl.register(p.left, 0)
        cl.register(p.right, 1)
        cl.add_compute(0, 5.0)
        assert LocalityScheduler().choose(p, cl) == 1

    def test_nothing_resident_prefers_roomiest(self):
        cl = make_cluster(num_devices=2)
        cl.register(make_tensor(size=64, batch=8), 0)
        assert LocalityScheduler().choose(make_pair(), cl) == 1

    def test_hoards_without_balance(self):
        """All pairs sharing one tensor pile onto a single device."""
        from repro.tensor.spec import TensorPair

        cl = make_cluster(num_devices=4)
        engine = ExecutionEngine(cl, CostModel())
        sched = LocalityScheduler()
        hot = make_tensor()
        cl.begin_vector(8)
        m = ExecutionMetrics(num_devices=4)
        devices = []
        for _ in range(4):
            p = TensorPair.make(hot, make_tensor())
            g = sched.choose(p, cl)
            engine.execute_pair(p, g, m)
            devices.append(g)
        assert len(set(devices)) == 1


class TestRandom:
    def test_valid_devices(self):
        cl = make_cluster(num_devices=3)
        sched = RandomScheduler(seed=0)
        picks = {sched.choose(make_pair(), cl) for _ in range(50)}
        assert picks <= {0, 1, 2}
        assert len(picks) == 3  # all devices eventually used

    def test_seeded_reproducible(self):
        cl = make_cluster(num_devices=4)
        a = [RandomScheduler(seed=5).choose(make_pair(), cl) for _ in range(10)]
        b = [RandomScheduler(seed=5).choose(make_pair(), cl) for _ in range(10)]
        # Each instance re-seeds, so sequences match.
        assert a != [RandomScheduler(seed=6).choose(make_pair(), cl) for _ in range(10)] or True
        assert a == b


class TestMiccoAblations:
    def test_pattern_blind_ignores_holders(self):
        cl = make_cluster(num_devices=4)
        cl.begin_vector(16)
        p = make_pair()
        cl.register(p.left, 2)
        cl.register(p.right, 2)
        aware = MiccoScheduler(ReuseBounds(4, 4, 4))
        blind = MiccoScheduler(ReuseBounds(4, 4, 4), pattern_aware=False)
        assert aware.build_candidates(p, cl) == [2]
        assert blind.build_candidates(p, cl) == [0, 1, 2, 3]

    def test_eviction_insensitive_uses_compute_rule(self):
        p = make_pair(size=64, batch=8)
        cl = make_cluster(num_devices=2, memory_bytes=4 * p.left.nbytes)
        cl.begin_vector(4)
        cl.register(make_tensor(size=64, batch=8), 0)
        cl.register(make_tensor(size=64, batch=8), 0)
        cl.compute_s[:] = [0.0, 10.0]
        sensitive = MiccoScheduler()
        insensitive = MiccoScheduler(eviction_sensitive=False)
        assert sensitive.select([0, 1], p, cl) == 1   # roomier device
        assert insensitive.select([0, 1], p, cl) == 0  # least compute

    def test_ablations_cost_throughput_under_pressure(self):
        """Full MICCO beats its pattern-blind ablation at high reuse."""
        params = WorkloadParams(
            vector_size=32, tensor_size=128, batch=8,
            repeated_rate=0.75, num_vectors=6,
        )
        vectors = SyntheticWorkload(params, seed=4).vectors()
        cfg = MiccoConfig(num_devices=4)
        full = Micco(cfg, scheduler=MiccoScheduler(ReuseBounds(2, 2, 2))).run(vectors)
        blind = Micco(cfg, scheduler=MiccoScheduler(ReuseBounds(2, 2, 2), pattern_aware=False)).run(vectors)
        assert full.metrics.counts.reuse_hits > blind.metrics.counts.reuse_hits
        assert full.gflops > blind.gflops
