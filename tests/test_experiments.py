"""Smoke tests for the experiment runners (tiny configurations)."""

import numpy as np
import pytest

from repro.core.config import MiccoConfig
from repro.experiments import EXPERIMENTS, Table
from repro.experiments import (
    fig5_spearman,
    fig7_overall,
    fig8_bounds,
    fig9_scalability,
    fig10_tensor_size,
    fig11_oversubscription,
    tab4_regression,
    tab5_overhead,
    tab6_redstar,
)
from repro.experiments.common import pressured_config, run_comparison
from repro.ml.dataset import build_training_set
from repro.schedulers.bounds import ReuseBounds
from repro.workloads.synth import SyntheticWorkload, WorkloadParams

TINY = dict(num_devices=2, num_vectors=3, batch=2, seed=1)


class StubPredictor:
    def predict_bounds(self, chars):
        return ReuseBounds(2, 2, 0)


class TestTable:
    def test_render(self):
        t = Table("T", ["a", "bb"])
        t.add_row(1, 2.5)
        t.add_row("x", 0.001)
        text = t.to_text()
        assert "T" in text and "bb" in text and "0.0010" in text

    def test_registry_complete(self):
        assert set(EXPERIMENTS) == {
            "fig5", "fig7", "fig8", "fig9", "fig10", "fig11",
            "tab4", "tab5", "tab6", "ablations", "sensitivity",
        }
        for mod in EXPERIMENTS.values():
            assert hasattr(mod, "run") and hasattr(mod, "main")


class TestCommon:
    def test_run_comparison_line_up(self):
        vectors = SyntheticWorkload(WorkloadParams(vector_size=8, tensor_size=16, batch=2, num_vectors=2), seed=0).vectors()
        runs = run_comparison(
            vectors, MiccoConfig(num_devices=2), StubPredictor(),
        )
        assert set(runs) == {"groute", "micco-naive", "micco-optimal"}

    def test_run_comparison_unknown_system(self):
        vectors = SyntheticWorkload(WorkloadParams(vector_size=8, tensor_size=16, batch=2, num_vectors=1), seed=0).vectors()
        with pytest.raises(ValueError):
            run_comparison(vectors, MiccoConfig(num_devices=2), StubPredictor(), include=("slurm",))

    def test_pressured_config(self):
        vectors = SyntheticWorkload(WorkloadParams(vector_size=8, tensor_size=16, batch=2, num_vectors=2), seed=0).vectors()
        base = MiccoConfig(num_devices=2)
        assert pressured_config(vectors, base, None) is base
        tight = pressured_config(vectors, base, 2.0)
        assert tight.memory_bytes < base.memory_bytes


class TestFig7:
    def test_tiny_run(self):
        res = fig7_overall.run(
            distributions=("uniform",), vector_sizes=(8,), repeated_rates=(0.5,),
            tensor_size=16, **TINY, quick=True, subscription=None, predictor=StubPredictor(),
        )
        assert len(res.rows) == 1
        row = res.rows[0]
        assert row["groute"] > 0 and row["speedup"] > 0
        assert res.table().to_text()
        assert res.geomean_speedup("uniform") == pytest.approx(row["speedup"])


class TestFig8:
    def test_tiny_run(self):
        res = fig8_bounds.run(tensor_size=16, num_devices=2, num_vectors=2, batch=2, subscription=None, seed=0)
        assert len(res.cases) == 3
        assert all(len(c["sweep"]) == 13 for c in res.cases)
        name, g = res.best_setting(0)
        assert g == max(res.cases[0]["sweep"].values())

    def test_slot_scaling(self):
        assert fig8_bounds.slot_scaled(ReuseBounds(0, 2, 1)).as_tuple() == (0.0, 4.0, 2.0)


class TestFig9:
    def test_tiny_run(self):
        res = fig9_scalability.run(
            device_counts=(1, 2), distributions=("uniform",),
            vector_size=8, tensor_size=16, num_vectors=2, batch=2,
            subscription=None, seed=0, quick=True, predictor=StubPredictor(),
        )
        assert [r["num_devices"] for r in res.rows] == [1, 2]
        assert res.rows[0]["speedup"] == pytest.approx(1.0)  # 1 GPU: no choice


class TestFig10:
    def test_tiny_run(self):
        res = fig10_tensor_size.run(
            tensor_sizes=(16, 32), distributions=("uniform",),
            vector_size=8, num_devices=2, num_vectors=2, batch=2,
            subscription=None, seed=0, quick=True, predictor=StubPredictor(),
        )
        gf = res.series("uniform", "micco-optimal")
        assert gf[1] > gf[0]  # bigger tensors -> higher GFLOPS


class TestFig11:
    def test_tiny_run(self):
        res = fig11_oversubscription.run(
            rates=(1.25, 2.0), distributions=("uniform",),
            vector_size=8, tensor_size=32, num_devices=2, num_vectors=3, batch=4,
            seed=0, quick=True, predictor=StubPredictor(),
        )
        assert len(res.rows) == 2
        assert res.rows[1]["evictions_groute"] >= res.rows[0]["evictions_groute"]


class TestFig5AndTab4:
    @pytest.fixture(scope="class")
    def tiny_ts(self):
        return build_training_set(
            8, MiccoConfig(num_devices=2), seed=0,
            fractions=(0.0, 0.5), n_seeds=1, num_vectors=3, batch=2,
        )

    def test_fig5_matrix(self, tiny_ts):
        res = fig5_spearman.from_training_set(tiny_ts)
        assert res.matrix.shape == (8, 8)
        np.testing.assert_allclose(np.diag(res.matrix), 1.0)
        assert -1.001 <= res.matrix.min() and res.matrix.max() <= 1.001
        assert res.corr("gflops", "tensor_size") == res.matrix[-1, 1]

    def test_tab4_scores(self, tiny_ts):
        res = tab4_regression.evaluate_models(tiny_ts, n_estimators=4, seed=0)
        assert set(res.scores) == {"linear", "gradient-boosting", "random-forest"}
        assert res.table().to_text()


class TestTab5:
    def test_tiny_run(self, monkeypatch):
        monkeypatch.setattr(
            "repro.experiments.tab5_overhead.get_default_predictor",
            lambda *a, **k: StubPredictor(),
        )
        res = tab5_overhead.run(
            distributions=("uniform",), vector_size=8, tensor_size=16,
            num_devices=2, num_vectors=2, batch=2, subscription=None, seed=0,
        )
        row = res.rows[0]
        assert row["schedule_ms"] > 0
        assert 0 <= row["overhead_fraction"] < 1


class TestTab6:
    def test_tiny_correlator(self, monkeypatch):
        monkeypatch.setattr(
            "repro.experiments.tab6_redstar.get_default_predictor",
            lambda *a, **k: StubPredictor(),
        )
        res = tab6_redstar.run(functions=("a1_rhopi",), num_devices=2, time_slices=2, seed=0)
        row = res.rows[0]
        assert row["tensor_size"] == 128
        assert row["num_graphs"] > 0
        assert row["speedup"] > 0
