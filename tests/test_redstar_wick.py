"""Unit tests for Wick-style diagram enumeration."""

from repro.graphs.hadron import meson
from repro.redstar.correlator import conjugate
from repro.redstar.wick import diagrams_for, enumerate_pairings


def hadrons_meson_pair():
    """π+ source with conjugated sink: the minimal 2-point function."""
    return [("src", ("u", "dbar")), ("snk", conjugate(("u", "dbar")))]


class TestEnumeratePairings:
    def test_minimal_two_point_function(self):
        pairings = enumerate_pairings(hadrons_meson_pair())
        assert len(pairings) == 1
        (edges,) = pairings
        assert sorted(edges) == [(0, 1), (0, 1)]  # two quark lines src<->snk

    def test_unbalanced_flavors_give_nothing(self):
        assert enumerate_pairings([("a", ("u", "dbar")), ("b", ("u", "dbar"))]) == []

    def test_flavor_set_mismatch_gives_nothing(self):
        assert enumerate_pairings([("a", ("u", "ubar")), ("b", ("s", "sbar"))]) == []

    def test_excludes_internal_traces(self):
        """f0-like (u, ubar) x conjugate: the identity pairing (each
        quark with its own hadron's antiquark) is excluded."""
        hadrons = [("src", ("u", "ubar")), ("snk", ("ubar", "u"))]
        pairings = enumerate_pairings(hadrons)
        for edges in pairings:
            assert all(a != b for a, b in edges)

    def test_four_hadron_cell_multiple_diagrams(self):
        hadrons = [
            ("s1", ("u", "dbar")),
            ("s2", ("d", "ubar")),
            ("k1", conjugate(("u", "dbar"))),
            ("k2", conjugate(("d", "ubar"))),
        ]
        pairings = enumerate_pairings(hadrons)
        assert len(pairings) >= 2
        # No duplicates.
        keys = [tuple(sorted(e)) for e in pairings]
        assert len(keys) == len(set(keys))

    def test_max_diagrams_cap(self):
        hadrons = [
            ("s1", ("u", "ubar")),
            ("s2", ("u", "ubar")),
            ("s3", ("u", "ubar")),
            ("k1", ("ubar", "u")),
            ("k2", ("ubar", "u")),
            ("k3", ("ubar", "u")),
        ]
        assert len(enumerate_pairings(hadrons, max_diagrams=3)) <= 3

    def test_deterministic_sampling(self):
        hadrons = [(f"h{i}", ("u", "ubar")) for i in range(5)] + [
            (f"k{i}", ("ubar", "u")) for i in range(5)
        ]
        a = enumerate_pairings(hadrons, max_diagrams=5, seed=1)
        b = enumerate_pairings(hadrons, max_diagrams=5, seed=1)
        assert a == b


class TestDiagramsFor:
    def test_builds_graphs_with_shared_tensors(self):
        src = meson("src", "u", "dbar", size=8)
        snk_content = conjugate(("u", "dbar"))
        snk = meson("snk", *snk_content, size=8)
        graphs = diagrams_for([src, snk])
        assert len(graphs) == 1
        g = graphs[0]
        assert g.nodes["src"].uid == src.tensor.uid
        assert g.num_edges == 2

    def test_graph_ids_offset(self):
        hadrons = [
            meson("s1", "u", "dbar", size=8),
            meson("s2", "d", "ubar", size=8),
            meson("k1", "dbar", "u", size=8),
            meson("k2", "ubar", "d", size=8),
        ]
        graphs = diagrams_for(hadrons, graph_id_base=10)
        assert graphs[0].graph_id == 10
