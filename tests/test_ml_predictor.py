"""Unit tests for the predictor wrapper and JSON persistence."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.ml.forest import RandomForestRegressor
from repro.ml.gbm import GradientBoostingRegressor
from repro.ml.linear import LinearRegression
from repro.ml.persistence import (
    load_predictor,
    model_from_dict,
    model_to_dict,
    save_predictor,
)
from repro.ml.predictor import ReuseBoundPredictor
from repro.ml.tree import DecisionTreeRegressor
from repro.schedulers.bounds import ReuseBounds
from repro.workloads.characteristics import DataCharacteristics

CHARS = DataCharacteristics(vector_size=16, tensor_size=128, distribution=0.0, repeated_rate=0.5)


def fitted_models(rng):
    X = rng.uniform(0, 10, size=(60, 4))
    Y = np.stack([X[:, 0] % 3, X[:, 1] % 2, np.zeros(60)], axis=1)
    return X, Y, [
        DecisionTreeRegressor(max_depth=4).fit(X, Y),
        RandomForestRegressor(n_estimators=4, seed=0).fit(X, Y),
        GradientBoostingRegressor(n_estimators=4, seed=0).fit(X, Y),
        LinearRegression().fit(X, Y),
    ]


class TestPredictor:
    def test_rounds_and_clips(self):
        class Stub:
            def predict(self, X):
                return np.array([[1.4, -0.3, 7.9]])

        pred = ReuseBoundPredictor(Stub(), clip_max=4.0)
        b = pred.predict_bounds(CHARS)
        assert b.as_tuple() == (1.0, 0.0, 4.0)

    def test_no_clip(self):
        class Stub:
            def predict(self, X):
                return np.array([[10.0, 0.0, 0.0]])

        assert ReuseBoundPredictor(Stub()).predict_bounds(CHARS)[0] == 10.0

    def test_wrong_output_arity_rejected(self):
        class Stub:
            def predict(self, X):
                return np.array([[1.0, 2.0]])

        with pytest.raises(ModelError):
            ReuseBoundPredictor(Stub()).predict_bounds(CHARS)

    def test_returns_reuse_bounds(self):
        class Stub:
            def predict(self, X):
                return np.zeros((1, 3))

        assert isinstance(ReuseBoundPredictor(Stub()).predict_bounds(CHARS), ReuseBounds)


class TestPersistence:
    def test_roundtrip_all_model_kinds(self, rng):
        X, Y, models = fitted_models(rng)
        probe = rng.uniform(0, 10, size=(20, 4))
        for model in models:
            clone = model_from_dict(model_to_dict(model))
            np.testing.assert_allclose(clone.predict(probe), model.predict(probe), atol=1e-12)

    def test_unfitted_tree_rejected(self):
        with pytest.raises(ModelError):
            model_to_dict(DecisionTreeRegressor())

    def test_unknown_kind_rejected(self):
        with pytest.raises(ModelError):
            model_from_dict({"kind": "svm"})

    def test_unknown_model_type_rejected(self):
        with pytest.raises(ModelError):
            model_to_dict(object())

    def test_file_roundtrip(self, rng, tmp_path):
        X, Y, models = fitted_models(rng)
        pred = ReuseBoundPredictor(models[1], clip_max=4.0)
        path = tmp_path / "model.json"
        save_predictor(pred, path)
        loaded = load_predictor(path)
        assert loaded.clip_max == 4.0
        got = loaded.predict_bounds(CHARS)
        want = pred.predict_bounds(CHARS)
        assert got.as_tuple() == want.as_tuple()
