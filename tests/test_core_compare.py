"""Unit tests for the compare() convenience and pattern reporting."""

import pytest

from repro.core.config import MiccoConfig
from repro.core.framework import Micco, compare
from repro.schedulers.groute import GrouteScheduler
from repro.workloads.synth import SyntheticWorkload, WorkloadParams


def stream():
    params = WorkloadParams(vector_size=8, tensor_size=16, batch=2, num_vectors=3, repeated_rate=0.5)
    return SyntheticWorkload(params, seed=0).vectors()


class TestCompare:
    def test_table_rows_per_system(self):
        cfg = MiccoConfig(num_devices=2)
        table = compare(stream(), {
            "groute": Micco.baseline(GrouteScheduler(), cfg),
            "micco": Micco.naive(cfg),
        })
        text = table.to_text()
        assert "groute" in text and "micco" in text
        assert len(table.rows) == 2
        # Baseline speedup is exactly 1.
        assert table.rows[0][2] == pytest.approx(1.0)

    def test_explicit_baseline(self):
        cfg = MiccoConfig(num_devices=2)
        table = compare(
            stream(),
            {"a": Micco.naive(cfg), "b": Micco.naive(cfg)},
            baseline="b",
        )
        assert table.rows[1][2] == pytest.approx(1.0)

    def test_empty_systems_rejected(self):
        with pytest.raises(ValueError):
            compare(stream(), {})

    def test_unknown_baseline_rejected(self):
        with pytest.raises(ValueError):
            compare(stream(), {"a": Micco.naive(MiccoConfig(num_devices=2))}, baseline="zz")


class TestPatternReporting:
    def test_micco_run_reports_patterns(self):
        result = Micco.naive(MiccoConfig(num_devices=2)).run(stream())
        assert result.pattern_counts
        assert sum(result.pattern_counts.values()) >= 12  # one per pair
        assert "twoNew" in result.pattern_counts

    def test_groute_run_has_no_patterns(self):
        result = Micco.baseline(GrouteScheduler(), MiccoConfig(num_devices=2)).run(stream())
        assert result.pattern_counts == {}
