"""Unit tests for the reuse-bound tuner and training-set builder."""

import numpy as np
import pytest

from repro.core.config import MiccoConfig
from repro.ml.dataset import build_training_set, sample_characteristics_grid
from repro.ml.tuner import (
    ReuseBoundTuner,
    canonical_best,
    max_slack,
    measured_features,
    relative_grid,
)
from repro.workloads.synth import SyntheticWorkload, WorkloadParams

QUICK = dict(num_vectors=3, batch=2)


class TestGridHelpers:
    def test_max_slack_formula(self):
        assert max_slack(64, 8) == 64 - 8.0

    def test_relative_grid_even_values(self):
        grid = relative_grid(64, 8, fractions=(0.0, 0.1, 0.5))
        vals = sorted({v for b in grid for v in b.as_tuple()})
        assert vals[0] == 0.0
        assert all(v % 2 == 0 for v in vals)

    def test_relative_grid_is_cartesian(self):
        grid = relative_grid(64, 8, fractions=(0.0, 0.5))
        assert len(grid) == 8

    def test_small_nonzero_fraction_stays_distinct(self):
        grid = relative_grid(8, 4, fractions=(0.0, 0.01))
        vals = sorted({v for b in grid for v in b.as_tuple()})
        assert vals == [0.0, 2.0]


class TestCanonicalBest:
    def test_picks_max(self):
        sweep = {(0.0, 0.0, 0.0): 10.0, (2.0, 0.0, 0.0): 20.0}
        key, g = canonical_best(sweep, 0.01)
        assert key == (2.0, 0.0, 0.0) and g == 20.0

    def test_near_tie_prefers_smallest(self):
        sweep = {(4.0, 0.0, 0.0): 100.0, (0.0, 0.0, 0.0): 99.8, (2.0, 0.0, 0.0): 99.9}
        key, g = canonical_best(sweep, 0.005)
        assert key == (0.0, 0.0, 0.0)
        assert g == 100.0  # reported gflops is the true max

    def test_tolerance_zero_exact_argmax(self):
        sweep = {(0.0, 0.0, 0.0): 99.99, (2.0, 0.0, 0.0): 100.0}
        key, _ = canonical_best(sweep, 0.0)
        assert key == (2.0, 0.0, 0.0)


class TestMeasuredFeatures:
    def test_skips_first_vector(self):
        params = WorkloadParams(vector_size=16, repeated_rate=0.5, num_vectors=4)
        vecs = SyntheticWorkload(params, seed=0).vectors()
        feats = measured_features(vecs)
        assert feats[3] == pytest.approx(0.5, abs=0.05)  # not diluted by vec 0

    def test_single_vector_fallback(self):
        params = WorkloadParams(vector_size=16, num_vectors=1)
        vecs = SyntheticWorkload(params, seed=0).vectors()
        assert measured_features(vecs)[3] == 0.0


class TestTuner:
    def test_sweep_covers_grid(self):
        tuner = ReuseBoundTuner(MiccoConfig(num_devices=2), fractions=(0.0, 0.5), n_seeds=1)
        params = WorkloadParams(vector_size=8, tensor_size=32, **QUICK)
        sample = tuner.tune(params, seed=0)
        assert len(sample.sweep) == 8
        assert sample.best_gflops == max(sample.sweep.values())
        assert sample.sweep[sample.best_bounds.as_tuple()] >= sample.best_gflops * 0.99

    def test_label_matches_best_bounds(self):
        tuner = ReuseBoundTuner(MiccoConfig(num_devices=2), fractions=(0.0, 0.5), n_seeds=1)
        sample = tuner.tune(WorkloadParams(vector_size=8, tensor_size=32, **QUICK), seed=0)
        assert list(sample.label) == list(sample.best_bounds.as_tuple())

    def test_features_are_declared_values(self):
        tuner = ReuseBoundTuner(MiccoConfig(num_devices=2), fractions=(0.0,), n_seeds=1)
        params = WorkloadParams(
            vector_size=8, tensor_size=32, repeated_rate=0.75, distribution="gaussian", **QUICK
        )
        sample = tuner.tune(params, seed=0)
        assert list(sample.features) == [8.0, 32.0, 1.0, 0.75]

    def test_deterministic(self):
        tuner = ReuseBoundTuner(MiccoConfig(num_devices=2), fractions=(0.0, 0.5), n_seeds=1)
        params = WorkloadParams(vector_size=8, tensor_size=32, **QUICK)
        a = tuner.tune(params, seed=5)
        b = tuner.tune(params, seed=5)
        assert a.sweep == b.sweep

    def test_validation(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            ReuseBoundTuner(n_seeds=0)


class TestDataset:
    def test_sampled_params_on_grid(self):
        from repro.ml.dataset import DISTRIBUTIONS, REPEATED_RATES, TENSOR_SIZES, VECTOR_SIZES

        for p in sample_characteristics_grid(40, seed=0):
            assert p.vector_size in VECTOR_SIZES
            assert p.tensor_size in TENSOR_SIZES
            assert p.repeated_rate in REPEATED_RATES
            assert p.distribution in DISTRIBUTIONS

    def test_build_training_set_shapes(self):
        ts = build_training_set(
            6, MiccoConfig(num_devices=2), seed=0,
            fractions=(0.0, 0.5), n_seeds=1, num_vectors=3, batch=2,
        )
        assert ts.X.shape == (6, 4)
        assert ts.Y.shape == (6, 3)
        assert ts.gflops.shape == (6,)
        assert len(ts) == 6

    def test_repeated_configs_share_labels(self):
        """Config-derived seeds: identical configs get identical labels."""
        ts = build_training_set(
            30, MiccoConfig(num_devices=2), seed=1,
            fractions=(0.0, 0.5), n_seeds=1, num_vectors=3, batch=2,
        )
        by_config = {}
        for x, y in zip(map(tuple, ts.X), map(tuple, ts.Y)):
            by_config.setdefault(x, set()).add(y)
        assert all(len(labels) == 1 for labels in by_config.values())

    def test_split_partition(self):
        ts = build_training_set(
            8, MiccoConfig(num_devices=2), seed=0,
            fractions=(0.0,), n_seeds=1, num_vectors=3, batch=2,
        )
        Xtr, Ytr, Xte, Yte = ts.split(0.25, seed=0)
        assert Xtr.shape[0] + Xte.shape[0] == 8
        assert Xte.shape[0] == 2

    def test_split_fraction_validated(self):
        ts = build_training_set(
            4, MiccoConfig(num_devices=2), seed=0,
            fractions=(0.0,), n_seeds=1, num_vectors=3, batch=2,
        )
        with pytest.raises(ValueError):
            ts.split(1.5)
