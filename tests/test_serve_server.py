"""Integration tests for MiccoServer: the online serving event loop."""

import pytest

from repro.core.config import MiccoConfig
from repro.errors import ConfigurationError, WorkloadError
from repro.gpusim.device import GIB
from repro.schedulers.bounds import ReuseBounds
from repro.schedulers.groute import GrouteScheduler
from repro.schedulers.micco import MiccoScheduler
from repro.serve import MiccoServer, PoissonArrivals, ServeConfig
from repro.workloads import SyntheticWorkload, WorkloadParams

CONFIG = MiccoConfig(num_devices=2, memory_bytes=2 * GIB)


def stream(num_vectors=12, vector_size=8, seed=3):
    params = WorkloadParams(
        vector_size=vector_size, tensor_size=64, repeated_rate=0.5,
        num_vectors=num_vectors, batch=2,
    )
    return SyntheticWorkload(params, seed=seed).vectors()


def make_server(scheduler=None, serve=None):
    return MiccoServer(scheduler or MiccoScheduler(), CONFIG, serve or ServeConfig())


class TestDeterminism:
    def test_repeated_runs_identical(self):
        """Fixed seed ⇒ identical arrivals, percentiles and drop counts."""
        vectors = stream()
        results = []
        for _ in range(2):
            server = make_server(serve=ServeConfig(queue_capacity=4))
            results.append(server.run(vectors, PoissonArrivals(500.0), seed=11))
        a, b = results
        assert a.arrival_s == b.arrival_s
        assert a.summary() == b.summary()
        assert [r.latency_s for r in a.report.completed] == [
            r.latency_s for r in b.report.completed
        ]
        assert [d.vector_id for d in a.report.dropped] == [
            d.vector_id for d in b.report.dropped
        ]

    def test_rerun_on_same_server_resets(self):
        vectors = stream()
        server = make_server()
        first = server.run(vectors, PoissonArrivals(100.0), seed=5).summary()
        second = server.run(vectors, PoissonArrivals(100.0), seed=5).summary()
        assert first == second


class TestLifecycle:
    def test_all_vectors_accounted_for(self):
        vectors = stream(num_vectors=20)
        res = make_server(serve=ServeConfig(queue_capacity=2)).run(
            vectors, PoissonArrivals(5000.0), seed=1
        )
        assert res.report.offered == len(vectors)
        assert len(res.report.completed) + len(res.report.dropped) == len(vectors)

    def test_dropped_vectors_never_execute(self):
        vectors = stream(num_vectors=20)
        res = make_server(serve=ServeConfig(queue_capacity=1)).run(
            vectors, PoissonArrivals(20000.0), seed=1
        )
        assert res.dropped > 0
        executed_pairs = sum(r.pairs for r in res.report.completed)
        assert res.metrics.pairs_executed == executed_pairs

    def test_timestamps_ordered(self):
        vectors = stream()
        res = make_server().run(vectors, PoissonArrivals(300.0), seed=2)
        for r in res.report.completed:
            assert r.arrival_s <= r.dispatch_s <= r.sched_done_s <= r.complete_s

    def test_light_load_no_queueing(self):
        """At a trickle rate every vector dispatches on arrival."""
        vectors = stream()
        res = make_server().run(vectors, PoissonArrivals(0.5), seed=2)
        assert res.dropped == 0
        for r in res.report.completed:
            assert r.queue_wait_s == pytest.approx(0.0)

    def test_schedule_latency_model(self):
        serve = ServeConfig(schedule_latency_per_pair_s=1e-4)
        vectors = stream(vector_size=8)  # 4 pairs
        res = make_server(serve=serve).run(vectors, PoissonArrivals(1.0), seed=0)
        for r in res.report.completed:
            assert r.schedule_s == pytest.approx(4e-4)

    def test_devices_recorded(self):
        vectors = stream()
        res = make_server().run(vectors, PoissonArrivals(100.0), seed=0)
        for r in res.report.completed:
            assert r.devices
            assert all(0 <= d < CONFIG.num_devices for d in r.devices)


class TestArrivalsInput:
    def test_explicit_timestamps(self):
        vectors = stream(num_vectors=3)
        res = make_server().run(vectors, [0.0, 0.1, 0.2])
        assert res.arrival_s == [0.0, 0.1, 0.2]
        assert len(res.report.completed) == 3

    def test_short_timestamp_list_rejected(self):
        with pytest.raises(WorkloadError):
            make_server().run(stream(num_vectors=3), [0.0, 0.1])

    def test_empty_stream_rejected(self):
        with pytest.raises(ConfigurationError):
            make_server().run([], PoissonArrivals(1.0))


class TestBackpressure:
    def test_overload_sheds_and_saturates(self):
        vectors = stream(num_vectors=30)
        res = make_server(serve=ServeConfig(queue_capacity=4)).run(
            vectors, PoissonArrivals(50000.0), seed=9
        )
        assert res.dropped > 0
        assert res.queue["dropped"] == res.dropped
        assert res.queue["peak_depth"] == 4

    def test_larger_queue_fewer_drops(self):
        vectors = stream(num_vectors=30)
        small = make_server(serve=ServeConfig(queue_capacity=2)).run(
            vectors, PoissonArrivals(50000.0), seed=9
        )
        big = make_server(serve=ServeConfig(queue_capacity=16)).run(
            vectors, PoissonArrivals(50000.0), seed=9
        )
        assert big.dropped < small.dropped

    def test_max_inflight_pipelines(self):
        """A wider inflight window never increases end-to-end latency sums."""
        vectors = stream(num_vectors=20)
        serial = make_server(serve=ServeConfig(max_inflight=1)).run(
            vectors, PoissonArrivals(2000.0), seed=4
        )
        piped = make_server(serve=ServeConfig(max_inflight=2)).run(
            vectors, PoissonArrivals(2000.0), seed=4
        )
        assert piped.report.makespan_s <= serial.report.makespan_s * 1.05


class TestPredictor:
    def test_predictor_consulted_per_vector(self):
        calls = []

        class StubPredictor:
            def predict_bounds(self, chars):
                calls.append(chars)
                return ReuseBounds(0, 2, 0)

        vectors = stream(num_vectors=5)
        server = MiccoServer(MiccoScheduler(), CONFIG, predictor=StubPredictor())
        server.run(vectors, PoissonArrivals(10.0), seed=0)
        assert len(calls) == 5
        assert server.scheduler.bounds == ReuseBounds(0, 2, 0)

    def test_predictor_ignored_for_boundless_scheduler(self):
        class ExplodingPredictor:
            def predict_bounds(self, chars):  # pragma: no cover - must not run
                raise AssertionError("should not be consulted")

        vectors = stream(num_vectors=3)
        server = MiccoServer(GrouteScheduler(), CONFIG, predictor=ExplodingPredictor())
        res = server.run(vectors, PoissonArrivals(10.0), seed=0)
        assert len(res.report.completed) == 3


class TestServeConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ServeConfig(queue_capacity=0)
        with pytest.raises(ConfigurationError):
            ServeConfig(queue_policy="lifo")
        with pytest.raises(ConfigurationError):
            ServeConfig(max_inflight=0)
        with pytest.raises(ConfigurationError):
            ServeConfig(schedule_latency_per_pair_s=-1e-6)

    def test_with_override(self):
        assert ServeConfig().with_(queue_capacity=3).queue_capacity == 3


class TestServeConfigVersioning:
    """Versioned JSON: v2 added the resilience knobs, v3 the batching knobs."""

    V2_KEYS = (
        "warm_restore", "journal_capacity", "prewarm_fraction",
        "fault_aware_admission", "admission_min_success",
    )
    V3_KEYS = ("max_batch_vectors", "batch_memory_frac")

    def test_v2_fields_validate(self):
        with pytest.raises(ConfigurationError):
            ServeConfig(journal_capacity=0)
        with pytest.raises(ConfigurationError):
            ServeConfig(prewarm_fraction=0.0)
        with pytest.raises(ConfigurationError):
            ServeConfig(prewarm_fraction=1.5)
        with pytest.raises(ConfigurationError):
            ServeConfig(admission_min_success=1.0)

    def test_v3_fields_validate(self):
        with pytest.raises(ConfigurationError):
            ServeConfig(max_batch_vectors=0)
        with pytest.raises(ConfigurationError):
            ServeConfig(batch_memory_frac=0.0)
        with pytest.raises(ConfigurationError):
            ServeConfig(batch_memory_frac=1.5)

    def test_v3_round_trip(self, tmp_path):
        import json

        cfg = ServeConfig(
            warm_restore=True, journal_capacity=128, prewarm_fraction=0.25,
            fault_aware_admission=True, admission_min_success=0.8,
            max_batch_vectors=4, batch_memory_frac=0.3,
        )
        path = tmp_path / "cfg.json"
        cfg.to_json(path)
        on_disk = json.loads(path.read_text())
        assert on_disk["version"] == ServeConfig.CONFIG_VERSION == 8
        assert ServeConfig.from_json(path) == cfg

    def test_version_1_file_loads_with_later_defaults(self, tmp_path):
        import json

        path = tmp_path / "old.json"
        path.write_text(json.dumps({"version": 1, "queue_capacity": 7}))
        cfg = ServeConfig.from_json(path)
        assert cfg.queue_capacity == 7
        assert cfg.warm_restore is False
        assert cfg.fault_aware_admission is False
        assert cfg.max_batch_vectors == 1

    def test_version_2_file_loads_with_v3_defaults(self, tmp_path):
        import json

        path = tmp_path / "v2.json"
        path.write_text(json.dumps({"version": 2, "warm_restore": True}))
        cfg = ServeConfig.from_json(path)
        assert cfg.warm_restore is True
        assert cfg.max_batch_vectors == 1
        assert cfg.batch_memory_frac == 0.5

    @pytest.mark.parametrize("key, value", [
        ("warm_restore", True),
        ("journal_capacity", 64),
        ("prewarm_fraction", 0.5),
        ("fault_aware_admission", True),
        ("admission_min_success", 0.7),
        ("max_batch_vectors", 4),
        ("batch_memory_frac", 0.3),
    ])
    def test_newer_keys_rejected_in_version_1_file(self, tmp_path, key, value):
        import json

        path = tmp_path / "old.json"
        path.write_text(json.dumps({"version": 1, key: value}))
        with pytest.raises(ConfigurationError):
            ServeConfig.from_json(path)

    @pytest.mark.parametrize("key, value", [
        ("max_batch_vectors", 4),
        ("batch_memory_frac", 0.3),
    ])
    def test_v3_keys_rejected_in_version_2_file(self, tmp_path, key, value):
        import json

        path = tmp_path / "v2.json"
        path.write_text(json.dumps({"version": 2, key: value}))
        with pytest.raises(ConfigurationError):
            ServeConfig.from_json(path)

    def test_unknown_version_rejected(self, tmp_path):
        import json

        path = tmp_path / "future.json"
        path.write_text(json.dumps({"version": 9}))
        with pytest.raises(ConfigurationError, match="version"):
            ServeConfig.from_json(path)

    def test_v6_trace_block_round_trips(self, tmp_path):
        import json

        from repro.gpusim.trace import TraceConfig

        cfg = ServeConfig(trace=TraceConfig(mode="sampling", sample_stride=8))
        path = tmp_path / "v6.json"
        cfg.to_json(path)
        on_disk = json.loads(path.read_text())
        assert on_disk["version"] == 8
        assert on_disk["trace"] == {"mode": "sampling", "sample_stride": 8}
        assert ServeConfig.from_json(path) == cfg

    @pytest.mark.parametrize("version", [1, 2, 3, 4, 5])
    def test_v6_trace_key_rejected_in_older_files(self, tmp_path, version):
        import json

        path = tmp_path / "older.json"
        path.write_text(json.dumps({"version": version, "trace": {"mode": "full"}}))
        with pytest.raises(ConfigurationError):
            ServeConfig.from_json(path)

    def test_unversioned_dict_assumes_current(self):
        cfg = ServeConfig.from_dict({"warm_restore": True, "max_batch_vectors": 2})
        assert cfg.warm_restore is True
        assert cfg.max_batch_vectors == 2
