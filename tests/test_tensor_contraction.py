"""Unit tests for the numeric contraction kernels and flop accounting."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.tensor.contraction import baryon_contract, contract_pair, meson_contract, output_spec
from repro.tensor.flops import COMPLEX_MAC_FLOPS, contraction_flops, pair_bytes, pair_flops, vector_flops
from tests.conftest import make_pair, make_tensor, make_vector


class TestMesonContract:
    def test_matches_manual_matmul(self, rng):
        a = rng.standard_normal((3, 8, 8)) + 1j * rng.standard_normal((3, 8, 8))
        b = rng.standard_normal((3, 8, 8)) + 1j * rng.standard_normal((3, 8, 8))
        out = meson_contract(a, b)
        for k in range(3):
            np.testing.assert_allclose(out[k], a[k] @ b[k], rtol=1e-12)

    def test_identity_is_neutral(self, rng):
        a = rng.standard_normal((2, 5, 5))
        eye = np.broadcast_to(np.eye(5), (2, 5, 5)).copy()
        np.testing.assert_allclose(meson_contract(a, eye), a)

    def test_rejects_shape_mismatch(self, rng):
        with pytest.raises(ConfigurationError):
            meson_contract(np.zeros((2, 4, 4)), np.zeros((2, 5, 5)))

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ConfigurationError):
            meson_contract(np.zeros((4, 4)), np.zeros((4, 4)))


class TestBaryonContract:
    def test_matches_manual_einsum(self, rng):
        a = rng.standard_normal((2, 4, 4, 4))
        b = rng.standard_normal((2, 4, 4, 4))
        out = baryon_contract(a, b)
        ref = np.einsum("bxyz,bwyz->bxw", a, b)
        np.testing.assert_allclose(out, ref, rtol=1e-12)

    def test_output_shape(self, rng):
        a = rng.standard_normal((3, 6, 6, 6))
        assert baryon_contract(a, a).shape == (3, 6, 6)

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ConfigurationError):
            baryon_contract(np.zeros((2, 4, 4)), np.zeros((2, 4, 4)))


class TestContractPair:
    def test_dispatches_on_rank(self, rng):
        m = rng.standard_normal((2, 4, 4))
        b = rng.standard_normal((2, 4, 4, 4))
        assert contract_pair(m, m).shape == (2, 4, 4)
        assert contract_pair(b, b).shape == (2, 4, 4)

    def test_rejects_vector_operands(self):
        with pytest.raises(ConfigurationError):
            contract_pair(np.zeros((4, 4)), np.zeros((4, 4)))


class TestOutputSpec:
    def test_meson_output_rank2(self):
        out = output_spec(make_tensor(rank=2), make_tensor(rank=2))
        assert out.rank == 2

    def test_baryon_output_rank2(self):
        out = output_spec(make_tensor(rank=3), make_tensor(rank=3))
        assert out.rank == 2

    def test_mixed_rank_output_rank3(self):
        assert output_spec(make_tensor(rank=2), make_tensor(rank=3)).rank == 3
        assert output_spec(make_tensor(rank=3), make_tensor(rank=2)).rank == 3

    def test_fresh_uid(self):
        a, b = make_tensor(), make_tensor()
        assert output_spec(a, b).uid not in (a.uid, b.uid)


class TestFlops:
    def test_meson_formula(self):
        assert contraction_flops(10, 3, 2) == 3 * COMPLEX_MAC_FLOPS * 1000

    def test_baryon_formula(self):
        assert contraction_flops(10, 3, 3) == 3 * COMPLEX_MAC_FLOPS * 10_000

    def test_rejects_bad_rank(self):
        with pytest.raises(ConfigurationError):
            contraction_flops(10, 1, 5)

    def test_pair_flops_uses_left_geometry(self):
        p = make_pair(size=12, batch=4)
        assert pair_flops(p) == contraction_flops(12, 4, 2)

    def test_pair_bytes_counts_all_three(self):
        p = make_pair(size=8)
        assert pair_bytes(p) == p.left.nbytes + p.right.nbytes + p.out.nbytes

    def test_vector_flops_sums(self):
        v = make_vector(n_pairs=3, size=8)
        assert vector_flops(v) == 3 * pair_flops(v.pairs[0])
