"""Result-integrity subsystem: config, ledger, blame, end-to-end runs.

Unit tests drive :class:`repro.integrity.IntegrityState` directly with
stub pairs; property tests (hypothesis) check the taint ledger's
closure/soundness invariants and replay determinism under arbitrary
operation sequences; the end-to-end tests run seeded chaos serves and
assert the ISSUE's acceptance criteria — high detection rate, the
``detected == repaired + flagged`` conservation, zero corrupt results
inside reported completions, and blame-driven device quarantine.
"""

from types import SimpleNamespace

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.faults import FaultPlan
from repro.gpusim import CostModel, Topology
from repro.integrity import (
    BLAME_STATES,
    INTEGRITY_MODES,
    IntegrityConfig,
    IntegrityState,
    mix64,
)
from repro.core.config import MiccoConfig
from repro.schedulers.bounds import ReuseBounds
from repro.schedulers.micco import MiccoScheduler
from repro.serve import PoissonArrivals, ServeConfig, serve
from repro.workloads import SyntheticWorkload, WorkloadParams

MIB = 1024**2


def pair(left, right, out):
    """Minimal contraction-pair stub (only uids are consulted)."""
    return SimpleNamespace(
        left=SimpleNamespace(uid=left),
        right=SimpleNamespace(uid=right),
        out=SimpleNamespace(uid=out),
    )


# ------------------------------------------------------------------ config
class TestIntegrityConfig:
    def test_defaults(self):
        cfg = IntegrityConfig()
        assert cfg.mode == "off"
        assert 0 < cfg.audit_fraction <= 1
        assert cfg.verify_transfers is True

    def test_round_trip(self):
        cfg = IntegrityConfig(mode="suspect-full", audit_fraction=0.1,
                              audit_budget_frac=0.3, blame_threshold=0.5)
        assert IntegrityConfig.from_dict(cfg.to_dict()) == cfg

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown integrity"):
            IntegrityConfig.from_dict({"mode": "spot", "typo": 1})

    @pytest.mark.parametrize("kwargs", [
        {"mode": "paranoid"},
        {"audit_fraction": 0.0},
        {"audit_fraction": 1.5},
        {"audit_budget_frac": 0.0},
        {"blame_threshold": 0.0},
        {"blame_alpha": 1.0},
    ])
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            IntegrityConfig(**kwargs)

    def test_with_revalidates(self):
        cfg = IntegrityConfig(mode="spot")
        assert cfg.with_(audit_fraction=0.5).audit_fraction == 0.5
        with pytest.raises(ConfigurationError):
            cfg.with_(mode="nope")

    def test_modes_and_states_frozen(self):
        assert INTEGRITY_MODES == ("off", "spot", "suspect-full")
        assert BLAME_STATES == ("trusted", "suspect", "quarantined")


# ------------------------------------------------------------------- mix64
class TestMix64:
    def test_deterministic(self):
        assert mix64(1, 2, 3) == mix64(1, 2, 3)

    def test_order_sensitive(self):
        assert mix64(1, 2) != mix64(2, 1)

    def test_64_bit_range_and_spread(self):
        seen = {mix64(0xAD017, v, 7) for v in range(256)}
        assert len(seen) == 256
        assert all(0 <= h < 1 << 64 for h in seen)


# ------------------------------------------------------------------ ledger
def state(mode="spot", **kw):
    return IntegrityState(IntegrityConfig(mode=mode, **kw), num_devices=4)


class TestChecksumLedger:
    def test_clean_copy_hashes_true(self):
        s = state()
        assert s.copy_version(5, 0) == s.true_version(5)

    def test_corrupt_compute_diverges_checksum(self):
        s = state()
        s.note_compute(pair(1, 2, 10), device=0, corrupt=True, now=1.0)
        assert s.injected == 1
        assert s.copy_version(10, 0) != s.true_version(10)
        # Other devices' (nonexistent) copies would still hash clean.
        assert s.copy_version(10, 1) == s.true_version(10)

    def test_lineage_propagates_through_clean_compute(self):
        s = state()
        s.flip(7, 2, now=0.5)  # bitflip dirties uid 7 on device 2
        s.note_compute(pair(7, 8, 20), device=2, corrupt=False, now=1.0)
        entry = s.output_entry(20, 2)
        assert entry == (2, 7)  # blamed on the flipping device, root uid 7
        assert s.derived_version(20, 7, 8, 2) != s.derived_version(20, 7, 8, 1)

    def test_clean_compute_over_clean_inputs_clears_output(self):
        s = state()
        s.flip(20, 1, now=0.0)
        s.note_compute(pair(1, 2, 20), device=1, corrupt=False, now=1.0)
        assert s.output_entry(20, 1) is None

    def test_d2d_propagates_taint_h2d_cleans(self):
        s = state()
        s.note_compute(pair(1, 2, 10), device=0, corrupt=True, now=0.0)
        entry = s.note_d2d(10, src=0, dst=3)
        assert entry == (0, 10)
        assert s.copy_version(10, 3) != s.true_version(10)
        s.note_h2d(10, 3)
        assert s.copy_version(10, 3) == s.true_version(10)
        assert s.note_d2d(10, src=3, dst=1) is None  # clean source

    def test_transfer_detection_clears_and_blames(self):
        s = state()
        s.note_compute(pair(1, 2, 10), device=0, corrupt=True, now=0.0)
        entry = s.note_d2d(10, src=0, dst=3)
        s.transfer_detected(10, 0, 3, entry, now=2.0)
        assert s.detected == s.repaired == s.transfer_detections == 1
        assert s.copy_version(10, 0) == s.true_version(10)
        assert s.is_suspect(0)
        assert s.detection_latency_s == [2.0]

    def test_audit_detected_pops_all_copies(self):
        s = state()
        s.note_compute(pair(1, 2, 10), device=0, corrupt=True, now=0.0)
        s.note_d2d(10, src=0, dst=2)
        assert s.audit_detected(10, now=1.0) == [0, 2]
        assert s.output_entry(10, 0) is None
        assert s.detected == s.repaired == 1
        assert s.device_detections[0] == 1

    def test_flag_ticket_preserves_conservation(self):
        s = state()
        s.note_compute(pair(1, 2, 10), device=0, corrupt=True, now=0.0)
        s.audit_detected(10, now=1.0)
        s.flag_ticket(1)
        assert s.detected == s.repaired + s.flagged == 1
        assert s.flagged == 1 and s.unverified_tickets == 1

    def test_escaped_counts_reported_dirty_outputs(self):
        s = state()
        s.note_compute(pair(1, 2, 10), device=0, corrupt=True, now=0.0)
        vector = SimpleNamespace(pairs=[pair(1, 2, 10), pair(3, 4, 11)])
        s.note_reported(vector, [0, 1])
        assert s.escaped == 1

    def test_dirty_uids_on_sorted(self):
        s = state()
        s.flip(9, 1, now=0.0)
        s.flip(3, 1, now=0.0)
        s.flip(5, 0, now=0.0)
        assert s.dirty_uids_on(1) == [3, 9]


class TestBlameLifecycle:
    def test_two_detections_cross_default_threshold(self):
        s = state()  # alpha 0.25, threshold 0.4: 0.25 then 0.4375
        s._blame(1, now=0.0)
        assert s.blame_state[1] == "suspect"
        assert s.poll_quarantines() == []
        s._blame(1, now=1.0)
        assert s.blame_state[1] == "quarantined"
        assert s.poll_quarantines() == [1]
        assert s.poll_quarantines() == []  # delivered exactly once
        assert s.quarantined_devices() == [1]

    def test_clean_audit_decays_ewma(self):
        s = state()
        s._blame(2, now=0.0)
        before = s.ewma[2]
        s.clean_audit(2)
        assert s.ewma[2] == pytest.approx(before * 0.75)

    def test_quarantine_devices_flag_gates_retirement(self):
        s = IntegrityState(
            IntegrityConfig(mode="spot", quarantine_devices=False), 4
        )
        s._blame(0, now=0.0)
        s._blame(0, now=0.0)
        assert s.blame_state[0] == "quarantined"
        assert s.poll_quarantines() == []  # state changes, pool does not

    def test_transitions_logged(self):
        s = state()
        s._blame(3, now=0.5)
        s._blame(3, now=0.7)
        assert [t["to"] for t in s.blame_log] == ["suspect", "quarantined"]
        assert all(t["device"] == 3 for t in s.blame_log)


class TestAuditSampling:
    def test_deterministic(self):
        s, t = state(), state()
        draws = [(v, i) for v in range(50) for i in range(8)]
        assert [s.sampled(*d) for d in draws] == [t.sampled(*d) for d in draws]

    def test_tracks_audit_fraction(self):
        s = state(audit_fraction=0.25)
        hits = sum(s.sampled(v, i) for v in range(500) for i in range(8))
        assert 0.2 < hits / 4000 < 0.3

    def test_fraction_one_audits_everything(self):
        s = state(audit_fraction=1.0)
        assert all(s.sampled(v, i) for v in range(50) for i in range(4))


# -------------------------------------------------------- property tests
OPS = st.lists(
    st.one_of(
        st.tuples(st.just("flip"), st.integers(0, 7), st.integers(0, 3)),
        st.tuples(st.just("corrupt"), st.integers(0, 7), st.integers(0, 3)),
        st.tuples(st.just("compute"), st.integers(0, 7), st.integers(0, 3)),
        st.tuples(st.just("d2d"), st.integers(0, 7), st.integers(0, 3)),
        st.tuples(st.just("h2d"), st.integers(0, 7), st.integers(0, 3)),
    ),
    max_size=40,
)


def apply_ops(s: IntegrityState, ops) -> None:
    """Drive one state through an encoded op sequence (uids 0-7 inputs,
    outputs offset by 100 so compute chains reuse earlier outputs)."""
    for kind, uid, dev in ops:
        if kind == "flip":
            s.flip(uid, dev, now=0.0)
        elif kind == "corrupt":
            s.note_compute(pair(uid, (uid + 1) % 8, 100 + uid), dev, True, 0.0)
        elif kind == "compute":
            s.note_compute(pair(uid, 100 + uid, 200 + uid), dev, False, 0.0)
        elif kind == "d2d":
            s.note_d2d(uid, src=dev, dst=(dev + 1) % 4)
        elif kind == "h2d":
            s.note_h2d(uid, dev)


class TestTaintProperties:
    @settings(max_examples=60, deadline=None)
    @given(OPS)
    def test_soundness_every_taint_descends_from_injected_root(self, ops):
        """No copy is ever dirty without an injected ancestor, and its
        checksum diverges from the true version exactly when dirty."""
        s = state()
        apply_ops(s, ops)
        for uid, devs in s._dirty.items():
            for dev, (blame, root) in devs.items():
                assert root in s._injected_roots
                assert 0 <= blame < 4
                assert s.copy_version(uid, dev) != s.true_version(uid)

    @settings(max_examples=60, deadline=None)
    @given(OPS)
    def test_closure_clean_compute_over_dirty_input_is_dirty(self, ops):
        """Lineage closure: after any history, a clean kernel over a
        dirty input copy must produce a dirty output copy."""
        s = state()
        apply_ops(s, ops)
        for uid in range(8):
            for dev in range(4):
                input_dirty = dev in s._dirty.get(uid, {})
                s.note_compute(pair(uid, 999, 300 + uid), dev, False, 0.0)
                out_dirty = dev in s._dirty.get(300 + uid, {})
                # The stub's right input (999) is always clean, so the
                # output's taint equals the left input's.
                assert out_dirty == input_dirty

    @settings(max_examples=60, deadline=None)
    @given(OPS)
    def test_replay_determinism(self, ops):
        """Two states fed the same ops agree byte-for-byte — the whole
        subsystem is RNG-free (checksum determinism across cores)."""
        import json

        a, b = state(), state()
        apply_ops(a, ops)
        apply_ops(b, ops)
        assert json.dumps(a.summary(1.0), sort_keys=True) == json.dumps(
            b.summary(1.0), sort_keys=True
        )
        assert a._dirty == b._dirty


# ------------------------------------------------------------- end to end
def chaos_result(mode="spot", sharded=False, seed=0, n_vectors=60, **integ_kw):
    if sharded:
        topo = Topology(num_devices=8, devices_per_node=4)
        cluster = MiccoConfig(
            num_devices=8, memory_bytes=64 * MIB,
            cost_model=CostModel(topology=topo),
        )
        num_devices = 8
    else:
        cluster = MiccoConfig(num_devices=4, memory_bytes=64 * MIB)
        num_devices = 4
    plan = FaultPlan.generate(
        seed, num_devices=num_devices, horizon_s=n_vectors / 100.0,
        n_transient=1, n_data_corruption=1, n_tensor_bitflip=1,
        corruption_prob=0.6,
    )
    cfg = ServeConfig(
        queue_capacity=64, faults=plan, sharded=sharded,
        integrity=IntegrityConfig(mode=mode, **integ_kw),
    )
    params = WorkloadParams(
        vector_size=8, tensor_size=64, repeated_rate=0.6,
        num_vectors=n_vectors, batch=2,
    )
    vectors = SyntheticWorkload(params, seed=seed).vectors()
    return serve(
        cfg, cluster=cluster,
        scheduler=MiccoScheduler(ReuseBounds(0, 4, 0)),
        vectors=vectors, arrivals=PoissonArrivals(100.0), seed=seed,
    )


class TestEndToEnd:
    def test_acceptance_spot_mode(self):
        """The ISSUE's acceptance bar on a seeded spot-mode chaos run."""
        it = chaos_result("spot").integrity
        assert it is not None and it["mode"] == "spot"
        assert it["injected"] >= 2
        assert it["detection_rate"] >= 0.9
        assert it["detected"] == it["repaired"] + it["flagged"]
        assert it["escaped"] == 0  # zero corrupt results reported
        assert it["blame"]["quarantined"]  # the corruptor was retired
        assert any(t["to"] == "quarantined" for t in it["blame"]["transitions"])

    def test_integrity_off_reports_nothing(self):
        assert chaos_result("off").integrity is None

    def test_suspect_full_audits_at_least_as_much_as_spot(self):
        spot = chaos_result("spot").integrity
        full = chaos_result("suspect-full").integrity
        assert full["audited_pairs"] >= spot["audited_pairs"]
        assert full["detection_rate"] >= 0.9
        assert full["detected"] == full["repaired"] + full["flagged"]

    def test_sharded_mode_detects_and_reports(self):
        result = chaos_result("spot", sharded=True, seed=1)
        it = result.integrity
        assert it is not None
        assert it["detected"] > 0
        assert it["detected"] == it["repaired"] + it["flagged"]
        assert it["escaped"] == 0
        assert result.summary()["integrity"]["mode"] == "spot"

    def test_fixed_seed_replays_byte_identical(self):
        import json

        a = chaos_result("spot").summary()
        b = chaos_result("spot").summary()
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_tight_budget_degrades_to_flagging_not_storms(self):
        it = chaos_result("spot", audit_budget_frac=0.01).integrity
        assert it["audit_overhead_frac"] <= 0.011
        assert it["detected"] == it["repaired"] + it["flagged"]

    def test_serve_config_v7_round_trip(self, tmp_path):
        import json

        cfg = ServeConfig(integrity=IntegrityConfig(mode="spot", audit_fraction=0.1))
        path = tmp_path / "v7.json"
        cfg.to_json(path)
        on_disk = json.loads(path.read_text())
        assert on_disk["version"] == 8
        assert on_disk["integrity"]["mode"] == "spot"
        assert ServeConfig.from_json(path) == cfg

    @pytest.mark.parametrize("version", [1, 2, 3, 4, 5, 6])
    def test_integrity_key_rejected_in_older_files(self, tmp_path, version):
        import json

        path = tmp_path / "old.json"
        path.write_text(json.dumps(
            {"version": version, "integrity": {"mode": "spot"}}
        ))
        with pytest.raises(ConfigurationError):
            ServeConfig.from_json(path)

    def test_drop_reason_surfaces_in_report(self):
        """Flagged tickets shed as integrity-unverified, never reported."""
        result = chaos_result("suspect-full")
        it = result.integrity
        assert it["unverified_tickets"] > 0
        reasons = {d.reason for d in result.report.dropped}
        assert "integrity-unverified" in reasons
        flagged_ids = {
            d.vector_id for d in result.report.dropped
            if d.reason == "integrity-unverified"
        }
        completed_ids = {r.vector_id for r in result.report.completed}
        assert not flagged_ids & completed_ids  # shed means never reported
