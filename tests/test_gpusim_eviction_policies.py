"""Unit tests for the pluggable eviction policies."""

import pytest

from repro.errors import ConfigurationError
from repro.gpusim.memory import EVICTION_POLICIES, MemoryPool
from tests.conftest import make_cluster, make_tensor


class TestPolicySelection:
    def test_known_policies(self):
        assert set(EVICTION_POLICIES) == {"lru", "fifo", "largest"}
        for policy in EVICTION_POLICIES:
            MemoryPool(100, policy=policy)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoryPool(100, policy="random")


class TestFifo:
    def test_ignores_recency(self):
        pool = MemoryPool(100, policy="fifo")
        pool.allocate(1, 40)
        pool.allocate(2, 40)
        pool.touch(1)  # LRU would now evict 2; FIFO still evicts 1.
        evicted = pool.allocate(3, 40)
        assert [r.uid for r in evicted] == [1]

    def test_order_is_insertion(self):
        pool = MemoryPool(100, policy="fifo")
        for uid in (5, 3, 9):
            pool.allocate(uid, 30)
        evicted = pool.allocate(10, 90)
        assert [r.uid for r in evicted] == [5, 3, 9]


class TestLargest:
    def test_biggest_victim_first(self):
        pool = MemoryPool(100, policy="largest")
        pool.allocate(1, 10)
        pool.allocate(2, 60)
        pool.allocate(3, 20)
        evicted = pool.allocate(4, 50)
        assert [r.uid for r in evicted] == [2]
        assert 1 in pool and 3 in pool

    def test_tie_breaks_oldest(self):
        pool = MemoryPool(100, policy="largest")
        pool.allocate(1, 40)
        pool.allocate(2, 40)
        evicted = pool.allocate(3, 30)
        assert [r.uid for r in evicted] == [1]


class TestPolicyRespectsProtection:
    @pytest.mark.parametrize("policy", EVICTION_POLICIES)
    def test_protected_never_victim(self, policy):
        pool = MemoryPool(100, policy=policy)
        pool.allocate(1, 50)
        pool.allocate(2, 40)
        evicted = pool.allocate(3, 50, protect={1})
        assert all(r.uid != 1 for r in evicted)


class TestClusterIntegration:
    def test_cluster_propagates_policy(self):
        cl = make_cluster()
        assert cl.eviction_policy == "lru"
        from repro.gpusim.cluster import ClusterState
        from repro.gpusim.device import mi100_like

        cl2 = ClusterState(mi100_like(2, memory_bytes=1024**2), eviction_policy="fifo")
        assert all(p.policy == "fifo" for p in cl2.pools)
        assert cl2.clone().eviction_policy == "fifo"

    def test_config_propagates_policy(self):
        from repro.core.config import MiccoConfig
        from repro.core.framework import Micco

        m = Micco.naive(MiccoConfig(num_devices=2, eviction_policy="largest"))
        assert all(p.policy == "largest" for p in m.cluster.pools)
