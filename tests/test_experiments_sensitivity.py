"""Unit tests for the sensitivity experiment."""

import pytest

from repro.experiments import sensitivity
from repro.experiments.sensitivity import SCALES, _variants


class TestVariants:
    def test_grid_covers_four_parameters_three_scales(self):
        variants = _variants()
        assert len(variants) == 4 * len(SCALES)
        names = {name for name, *_ in variants}
        assert names == {"link bandwidth", "device peak", "efficiency knee", "alloc cost"}

    def test_scales_applied(self):
        for name, scale, cm, peak in _variants():
            if name == "link bandwidth":
                assert cm.interconnect.h2d_bandwidth == pytest.approx(16e9 * scale)
            if name == "device peak":
                assert peak == pytest.approx(23_000.0 * scale)
            if name == "efficiency knee":
                assert cm.efficiency_half_size == int(256 * scale)


class TestRun:
    def test_tiny_run_shape(self):
        res = sensitivity.run(
            vector_size=8, tensor_size=16, num_devices=2,
            num_vectors=2, batch=2, seed=0,
        )
        assert len(res.rows) == 12
        for r in res.rows:
            assert r["groute"] > 0 and r["micco"] > 0
        assert res.table().to_text()
        assert len(res.speedups()) == 12
