"""Unit tests for the trace recorder."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.gpusim.costmodel import CostModel
from repro.gpusim.engine import ExecutionEngine
from repro.gpusim.trace import (
    FullSink,
    NullSink,
    SamplingSink,
    TraceConfig,
    TraceRecorder,
    TraceSink,
)
from tests.conftest import make_cluster, make_vector


def traced_run(n_pairs=4, assignment=None):
    cluster = make_cluster()
    trace = TraceRecorder()
    engine = ExecutionEngine(cluster, CostModel(), trace=trace)
    v = make_vector(n_pairs=n_pairs)
    engine.execute_vector(v, assignment or [i % 2 for i in range(n_pairs)])
    return trace, v


class TestRecorder:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            TraceRecorder().record("dma", 0, 1.0)

    def test_device_clock_serializes_events(self):
        tr = TraceRecorder()
        tr.record("alloc", 0, 1.0)
        tr.record("kernel", 0, 2.0)
        tr.record("alloc", 1, 5.0)
        a, k, other = tr.events
        assert a.end_s == k.start_s
        assert other.start_s == 0.0  # devices have independent clocks

    def test_clear(self):
        tr = TraceRecorder()
        tr.record("alloc", 0, 1.0)
        tr.clear()
        assert len(tr) == 0
        tr.record("alloc", 0, 1.0)
        assert tr.events[0].start_s == 0.0


class TestEngineIntegration:
    def test_kernel_per_pair(self):
        trace, v = traced_run(n_pairs=4)
        assert len(trace.events_of("kernel")) == 4

    def test_fetch_events_match_counters(self):
        trace, v = traced_run(n_pairs=3)
        h2d = trace.events_of("h2d")
        assert len(h2d) == 6  # all inputs fresh

    def test_summary_by_device(self):
        trace, _ = traced_run(n_pairs=4)
        summary = trace.summary_by_device()
        assert set(summary) == {0, 1}
        for dev in summary.values():
            assert dev["kernel"] > 0
            assert dev["events"] > 0

    def test_chrome_trace_schema(self, tmp_path):
        trace, _ = traced_run(n_pairs=2)
        path = tmp_path / "trace.json"
        trace.save_chrome_trace(path)
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        assert events
        for e in events:
            assert e["ph"] == "X"
            assert e["dur"] >= 0
            assert e["tid"] in (0, 1)

    def test_records_roundtrip(self):
        trace, _ = traced_run(n_pairs=2)
        recs = trace.to_records()
        assert len(recs) == len(trace)
        assert {"kind", "device", "start_s", "duration_s"} <= set(recs[0])


class TestRecordAt:
    def test_explicit_start_and_clock_advance(self):
        tr = TraceRecorder()
        tr.record_at("wait", 0, 5.0, 1.0)
        tr.record("kernel", 0, 2.0)
        wait, kernel = tr.events
        assert wait.start_s == 5.0 and wait.end_s == 6.0
        assert kernel.start_s == 6.0  # clock advanced past record_at's end

    def test_does_not_rewind_clock(self):
        tr = TraceRecorder()
        tr.record("kernel", 0, 10.0)
        tr.record_at("wait", 0, 1.0, 2.0)
        tr.record("alloc", 0, 1.0)
        assert tr.events[-1].start_s == 10.0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            TraceRecorder().record_at("dma", 0, 0.0, 1.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            TraceRecorder().record_at("wait", 0, 0.0, -1.0)

    def test_serve_kinds_accepted(self):
        tr = TraceRecorder()
        for kind in ("wait", "schedule", "execute"):
            tr.record_at(kind, 1, 0.0, 0.5)
        assert len(tr) == 3


class TestEventOrdering:
    def test_per_device_events_contiguous_and_monotonic(self):
        """Engine events on one device tile the device's busy timeline."""
        trace, _ = traced_run(n_pairs=4)
        for dev in (0, 1):
            events = [e for e in trace.events if e.device == dev]
            assert events, "both devices ran pairs"
            assert events[0].start_s == 0.0
            for a, b in zip(events, events[1:]):
                assert b.start_s == pytest.approx(a.end_s)

    def test_order_preserved_in_exports(self):
        trace, _ = traced_run(n_pairs=3)
        records = trace.to_records()
        chrome = trace.to_chrome_trace()
        assert [r["kind"] for r in records] == [e.kind for e in trace.events]
        assert [c["ts"] for c in chrome] == [e.start_s * 1e6 for e in trace.events]


class TestSinks:
    def test_full_sink_is_default(self):
        tr = TraceRecorder()
        assert isinstance(tr.sink, FullSink)
        assert tr.sink.keep("kernel", 0)

    def test_null_sink_keeps_nothing_but_advances_clock(self):
        tr = TraceRecorder(NullSink())
        tr.record("alloc", 0, 1.0)
        tr.record("kernel", 0, 2.0)
        assert len(tr) == 0
        # Clock bookkeeping is independent of what is kept: the next
        # kept event (after a sink swap) starts where the run left off.
        tr.sink = FullSink()
        tr.record("kernel", 0, 1.0)
        assert tr.events[0].start_s == pytest.approx(3.0)

    def test_sampling_sink_deterministic_thinning(self):
        tr = TraceRecorder(SamplingSink(stride=3))
        for _ in range(9):
            tr.record("kernel", 0, 1.0)
        assert len(tr) == 3
        assert [e.start_s for e in tr.events] == [0.0, 3.0, 6.0]

    def test_sampling_stride_one_keeps_everything(self):
        tr = TraceRecorder(SamplingSink(stride=1))
        for _ in range(5):
            tr.record("kernel", 0, 1.0)
        assert len(tr) == 5

    def test_sampling_bad_stride_rejected(self):
        with pytest.raises(ConfigurationError):
            SamplingSink(stride=0)

    def test_sampling_sink_never_drops_integrity_or_fault_lanes(self):
        """fault/audit/taint/blame events are each individually
        meaningful; a sampled trace must keep every one of them."""
        from repro.gpusim.trace import ALWAYS_KEPT_KINDS

        tr = TraceRecorder(SamplingSink(stride=1000))
        kinds = sorted(ALWAYS_KEPT_KINDS)
        assert kinds == ["audit", "blame", "fault", "taint"]
        for _ in range(5):
            for kind in kinds:
                tr.record(kind, 0, 0.0)
            tr.record("kernel", 0, 1.0)
        kept = [e.kind for e in tr.events]
        for kind in kinds:
            assert kept.count(kind) == 5

    def test_always_kept_kinds_do_not_perturb_thinning(self):
        """The bypass must not advance the stride counter: the thinned
        subset of the other kinds is identical however many fault or
        integrity events interleave with them."""
        plain = TraceRecorder(SamplingSink(stride=3))
        noisy = TraceRecorder(SamplingSink(stride=3))
        for i in range(9):
            plain.record("kernel", 0, 1.0)
            noisy.record("fault", 0, 0.0)
            noisy.record("kernel", 0, 1.0)
            noisy.record("audit", 1, 0.0)
        assert [e.start_s for e in plain.events if e.kind == "kernel"] == [
            e.start_s for e in noisy.events if e.kind == "kernel"
        ]

    def test_sinks_satisfy_protocol(self):
        for sink in (FullSink(), NullSink(), SamplingSink()):
            assert isinstance(sink, TraceSink)

    def test_engine_run_with_sampling_sink(self):
        cluster = make_cluster()
        trace = TraceRecorder(SamplingSink(stride=2))
        engine = ExecutionEngine(cluster, CostModel(), trace=trace)
        full_cluster = make_cluster()
        full = TraceRecorder()
        full_engine = ExecutionEngine(full_cluster, CostModel(), trace=full)
        v = make_vector(n_pairs=4)
        assignment = [i % 2 for i in range(4)]
        engine.execute_vector(v, assignment)
        full_engine.execute_vector(v, assignment)
        # Every other event of the full stream, in order.
        assert [e.kind for e in trace.events] == [
            e.kind for e in full.events[::2]
        ]


class TestTraceConfig:
    def test_defaults(self):
        cfg = TraceConfig()
        assert cfg.mode == "report"
        assert cfg.make_sink() is None

    def test_mode_sinks(self):
        assert isinstance(TraceConfig(mode="full").make_sink(), FullSink)
        sink = TraceConfig(mode="sampling", sample_stride=4).make_sink()
        assert isinstance(sink, SamplingSink)
        assert sink.stride == 4
        assert TraceConfig(mode="off").make_sink() is None

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TraceConfig(mode="verbose")
        with pytest.raises(ConfigurationError):
            TraceConfig(sample_stride=0)

    def test_round_trip(self):
        cfg = TraceConfig(mode="sampling", sample_stride=8)
        assert TraceConfig.from_dict(cfg.to_dict()) == cfg

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigurationError):
            TraceConfig.from_dict({"mode": "full", "rate": 2})
        with pytest.raises(ConfigurationError):
            TraceConfig.from_dict("full")
