"""Unit tests for the ExecutionEngine: counters, residency, costs."""

import pytest

from repro.errors import SchedulingError
from repro.gpusim.costmodel import CostModel
from repro.gpusim.engine import ExecutionEngine
from repro.gpusim.metrics import ExecutionMetrics
from repro.tensor.flops import pair_flops
from repro.tensor.spec import TensorPair, VectorSpec
from repro.tensor.storage import TensorStore
from tests.conftest import make_cluster, make_pair, make_tensor, make_vector


def fresh(num_devices=2, memory_mib=64, **cm_kwargs):
    cluster = make_cluster(num_devices=num_devices, memory_bytes=memory_mib * 1024**2)
    engine = ExecutionEngine(cluster, CostModel(**cm_kwargs))
    return cluster, engine


class TestSinglePair:
    def test_new_pair_two_h2d_three_allocs(self):
        cluster, engine = fresh()
        m = ExecutionMetrics(num_devices=2)
        cluster.begin_vector(2)
        engine.execute_pair(make_pair(), 0, m)
        assert m.counts.h2d_transfers == 2
        assert m.counts.d2d_transfers == 0
        assert m.counts.allocations == 3  # two inputs + output
        assert m.counts.reuse_hits == 0

    def test_resident_input_is_reuse_hit(self):
        cluster, engine = fresh()
        m = ExecutionMetrics(num_devices=2)
        p = make_pair()
        cluster.register(p.left, 0)
        cluster.begin_vector(2)
        engine.execute_pair(p, 0, m)
        assert m.counts.reuse_hits == 1
        assert m.counts.h2d_transfers == 1

    def test_remote_input_is_d2d(self):
        cluster, engine = fresh()
        m = ExecutionMetrics(num_devices=2)
        p = make_pair()
        cluster.register(p.left, 1)
        cluster.begin_vector(2)
        engine.execute_pair(p, 0, m)
        assert m.counts.d2d_transfers == 1
        assert m.counts.h2d_transfers == 1

    def test_d2d_moves_source_copy(self):
        cluster, engine = fresh()  # default cost model: d2d_moves=True
        m = ExecutionMetrics(num_devices=2)
        p = make_pair()
        cluster.register(p.left, 1)
        cluster.begin_vector(2)
        engine.execute_pair(p, 0, m)
        assert cluster.devices_holding(p.left.uid) == {0}

    def test_d2d_copy_semantics_keeps_source(self):
        cluster, engine = fresh(d2d_moves=False)
        m = ExecutionMetrics(num_devices=2)
        p = make_pair()
        cluster.register(p.left, 1)
        cluster.begin_vector(2)
        engine.execute_pair(p, 0, m)
        assert cluster.devices_holding(p.left.uid) == {0, 1}

    def test_duplicate_input_fetched_once(self):
        cluster, engine = fresh()
        m = ExecutionMetrics(num_devices=2)
        t = make_tensor()
        p = TensorPair.make(t, t)
        cluster.begin_vector(2)
        engine.execute_pair(p, 0, m)
        assert m.counts.h2d_transfers == 1
        assert m.counts.reuse_hits == 1

    def test_output_registered_on_device(self):
        cluster, engine = fresh()
        m = ExecutionMetrics(num_devices=2)
        p = make_pair()
        cluster.begin_vector(2)
        engine.execute_pair(p, 1, m)
        assert cluster.is_resident(p.out.uid, 1)

    def test_flops_and_compute_time(self):
        cluster, engine = fresh()
        m = ExecutionMetrics(num_devices=2)
        p = make_pair()
        cluster.begin_vector(2)
        engine.execute_pair(p, 0, m)
        assert m.total_flops == pair_flops(p)
        assert m.compute_s[0] > 0
        assert m.compute_s[1] == 0

    def test_invalid_device_raises(self):
        cluster, engine = fresh()
        with pytest.raises(SchedulingError):
            engine.execute_pair(make_pair(), 5, ExecutionMetrics(num_devices=2))

    def test_slot_accounting(self):
        cluster, engine = fresh()
        m = ExecutionMetrics(num_devices=2)
        cluster.begin_vector(4)
        engine.execute_pair(make_pair(), 0, m)
        engine.execute_pair(make_pair(), 0, m)
        assert cluster.assigned_slots[0] == 4


class TestEvictions:
    def test_oversubscription_triggers_eviction(self):
        t = make_tensor(size=64, batch=8)
        cluster, engine = fresh(memory_mib=int(3.2 * t.nbytes / 1024**2) or 1)
        # Capacity ~3 tensors; a pair needs 3 (two inputs + output).
        m = ExecutionMetrics(num_devices=2)
        cluster.begin_vector(4)
        p1 = make_pair(size=64, batch=8)
        p2 = make_pair(size=64, batch=8)
        engine.execute_pair(p1, 0, m)
        engine.execute_pair(p2, 0, m)
        assert m.counts.evictions > 0
        assert m.counts.eviction_bytes > 0

    def test_current_pair_tensors_protected(self):
        t = make_tensor(size=64, batch=8)
        cluster, engine = fresh(memory_mib=max(1, int(3.2 * t.nbytes / 1024**2)))
        m = ExecutionMetrics(num_devices=2)
        cluster.begin_vector(2)
        p = make_pair(size=64, batch=8)
        engine.execute_pair(p, 0, m)
        # All three tensors of the pair survived its own execution.
        assert cluster.is_resident(p.left.uid, 0)
        assert cluster.is_resident(p.right.uid, 0)
        assert cluster.is_resident(p.out.uid, 0)


class TestVectorExecution:
    def test_counter_invariant(self):
        """Every input slot is exactly one of: reuse hit, h2d, d2d."""
        cluster, engine = fresh()
        v = make_vector(n_pairs=6)
        m = engine.execute_vector(v, [0, 1, 0, 1, 0, 1])
        c = m.counts
        assert c.reuse_hits + c.h2d_transfers + c.d2d_transfers == v.num_tensors

    def test_assignment_length_checked(self):
        cluster, engine = fresh()
        with pytest.raises(SchedulingError):
            engine.execute_vector(make_vector(n_pairs=3), [0, 1])

    def test_outputs_drained_by_default(self):
        cluster, engine = fresh()
        v = make_vector(n_pairs=2)
        engine.execute_vector(v, [0, 0])
        for p in v.pairs:
            assert cluster.devices_holding(p.out.uid) == frozenset()

    def test_keep_outputs(self):
        cluster, engine = fresh()
        v = make_vector(n_pairs=2)
        engine.execute_vector(v, [0, 1], keep_outputs=True)
        assert cluster.is_resident(v.pairs[0].out.uid, 0)
        assert cluster.is_resident(v.pairs[1].out.uid, 1)

    def test_pairs_per_device(self):
        cluster, engine = fresh()
        v = make_vector(n_pairs=4)
        m = engine.execute_vector(v, [0, 0, 0, 1])
        assert list(m.pairs_per_device) == [3, 1]

    def test_reuse_across_vectors(self):
        """A tensor left resident by vector 1 is a reuse hit in vector 2."""
        cluster, engine = fresh()
        t1, t2 = make_tensor(), make_tensor()
        v1 = VectorSpec(pairs=[TensorPair.make(t1, t2)], vector_id=0)
        v2 = VectorSpec(pairs=[TensorPair.make(t1, make_tensor())], vector_id=1)
        engine.execute_vector(v1, [0])
        m = engine.execute_vector(v2, [0])
        assert m.counts.reuse_hits == 1

    def test_numeric_validation_via_store(self):
        store = TensorStore(seed=0)
        cluster = make_cluster()
        engine = ExecutionEngine(cluster, CostModel(), store=store)
        v = make_vector(n_pairs=2, size=6)
        engine.execute_vector(v, [0, 1])
        for p in v.pairs:
            assert p.out.uid in store

    def test_makespan_is_max_device_time(self):
        cluster, engine = fresh()
        v = make_vector(n_pairs=4)
        m = engine.execute_vector(v, [0, 0, 0, 0])
        assert m.makespan_s == pytest.approx(float(m.device_time_s[0]))
        assert m.device_time_s[1] == 0


class TestD2DSourceSelection:
    def test_cheapest_holder_wins_on_topology(self):
        """With a multi-node topology the intra-node holder is the source."""
        from repro.gpusim.topology import Topology

        cluster, engine = fresh(num_devices=4, topology=Topology(num_devices=4, devices_per_node=2))
        shared = make_tensor()
        cluster.register(shared, 0)  # node 0 (remote to target)
        cluster.register(shared, 3)  # node 1 (local to target)
        p = make_pair(left=shared, right=make_tensor())
        m = ExecutionMetrics(num_devices=4)
        cluster.begin_vector(2)
        engine.execute_pair(p, 2, m)
        assert m.counts.d2d_transfers == 1
        # Single-residency runtime: the chosen source (device 3) moved;
        # the remote copy on device 0 is untouched.
        assert cluster.devices_holding(shared.uid) == frozenset({0, 2})

    def test_lowest_id_breaks_cost_ties(self):
        """Without a topology all holders cost the same: lowest id wins."""
        cluster, engine = fresh(num_devices=4)
        shared = make_tensor()
        cluster.register(shared, 3)
        cluster.register(shared, 1)
        p = make_pair(left=shared, right=make_tensor())
        m = ExecutionMetrics(num_devices=4)
        cluster.begin_vector(2)
        engine.execute_pair(p, 0, m)
        assert cluster.devices_holding(shared.uid) == frozenset({0, 3})


class TestDrainOutputs:
    def test_writeback_charged_exactly_once(self):
        from repro.gpusim.trace import TraceRecorder

        cluster = make_cluster()
        trace = TraceRecorder()
        engine = ExecutionEngine(cluster, CostModel(drain_writeback=True), trace=trace)
        v = make_vector(n_pairs=3)
        assignment = [0, 1, 0]
        m = engine.execute_vector(v, assignment, keep_outputs=True)
        memop_before = m.memop_s.copy()
        engine.drain_outputs(v, assignment, m)
        drains = trace.events_of("drain")
        assert len(drains) == 3
        expected = sum(
            engine.cost_model.interconnect.d2h_time(p.out.nbytes) for p in v.pairs
        )
        assert float((m.memop_s - memop_before).sum()) == pytest.approx(expected)
        # Outputs are gone; a second drain is a no-op.
        engine.drain_outputs(v, assignment, m)
        assert len(trace.events_of("drain")) == 3
        assert float((m.memop_s - memop_before).sum()) == pytest.approx(expected)

    def test_already_evicted_output_skipped(self):
        from repro.gpusim.trace import TraceRecorder

        cluster = make_cluster()
        trace = TraceRecorder()
        engine = ExecutionEngine(cluster, CostModel(drain_writeback=True), trace=trace)
        v = make_vector(n_pairs=2)
        assignment = [0, 0]
        m = engine.execute_vector(v, assignment, keep_outputs=True)
        cluster.drop(v.pairs[0].out.uid, 0)  # as if evicted under pressure
        engine.drain_outputs(v, assignment, m)
        drains = trace.events_of("drain")
        assert len(drains) == 1
        assert drains[0].uid == v.pairs[1].out.uid

    def test_no_writeback_mode_only_frees(self):
        cluster, engine = fresh()  # drain_writeback defaults to False
        v = make_vector(n_pairs=2)
        m = engine.execute_vector(v, [0, 1], keep_outputs=True)
        memop_before = m.memop_s.copy()
        engine.drain_outputs(v, [0, 1], m)
        assert (m.memop_s == memop_before).all()
        for p in v.pairs:
            assert cluster.devices_holding(p.out.uid) == frozenset()
