"""Unit tests for the bounded admission queue and its dispatch policies."""

import pytest

from repro.errors import ConfigurationError
from repro.serve.queueing import (
    QUEUE_POLICIES,
    AdmissionQueue,
    FaultAware,
    Fifo,
    QueuePolicy,
    Sjf,
    WeightedFair,
    make_policy,
)
from repro.serve.timeline import Ticket
from tests.conftest import make_vector


def ticket(n_pairs=2, vector_id=0, arrival_s=0.0, tenant=None):
    return Ticket(
        vector=make_vector(n_pairs=n_pairs, vector_id=vector_id),
        arrival_s=arrival_s,
        tenant=tenant,
    )


class TestFifo:
    def test_fifo_order(self):
        q = AdmissionQueue(capacity=4)
        tickets = [ticket(vector_id=i) for i in range(3)]
        for t in tickets:
            assert q.offer(t)
        assert [q.pop() for _ in range(3)] == tickets

    def test_pop_empty_returns_none(self):
        assert AdmissionQueue().pop() is None

    def test_shed_when_full(self):
        q = AdmissionQueue(capacity=2)
        assert q.offer(ticket())
        assert q.offer(ticket())
        assert not q.offer(ticket())
        assert q.dropped == 1
        assert q.admitted == 2
        assert len(q) == 2 and q.is_full

    def test_peak_depth_high_water(self):
        q = AdmissionQueue(capacity=8)
        for i in range(3):
            q.offer(ticket(vector_id=i))
        q.pop()
        q.pop()
        q.offer(ticket(vector_id=9))
        assert q.peak_depth == 3

    def test_counters_snapshot(self):
        q = AdmissionQueue(capacity=1, policy=Fifo())
        q.offer(ticket())
        q.offer(ticket())
        assert q.counters() == {
            "capacity": 1,
            "policy": "fifo",
            "admitted": 1,
            "dropped": 1,
            "peak_depth": 1,
        }


class TestSjf:
    def test_shortest_vector_first(self):
        q = AdmissionQueue(capacity=4, policy=Sjf())
        big = ticket(n_pairs=8, vector_id=0)
        small = ticket(n_pairs=1, vector_id=1)
        mid = ticket(n_pairs=4, vector_id=2)
        for t in (big, small, mid):
            q.offer(t)
        assert [q.pop() for _ in range(3)] == [small, mid, big]

    def test_fifo_among_equals(self):
        q = AdmissionQueue(capacity=4, policy=Sjf())
        first = ticket(n_pairs=2, vector_id=0)
        second = ticket(n_pairs=2, vector_id=1)
        q.offer(first)
        q.offer(second)
        assert q.pop() is first


class TestWeightedFair:
    def drain_tenants(self, q, n):
        return [q.pop().tenant for _ in range(n)]

    def test_proportional_interleave(self):
        # Tenant a (weight 3) and b (weight 1), equal-size vectors: under
        # a full backlog a should get 3 of every 4 dispatches.
        q = AdmissionQueue(capacity=32, policy=WeightedFair({"a": 3.0, "b": 1.0}))
        for i in range(8):
            q.offer(ticket(vector_id=i, tenant="a"))
            q.offer(ticket(vector_id=100 + i, tenant="b"))
        first8 = self.drain_tenants(q, 8)
        assert first8.count("a") == 6
        assert first8.count("b") == 2

    def test_equal_weights_alternate(self):
        q = AdmissionQueue(capacity=16, policy=WeightedFair({"a": 1.0, "b": 1.0}))
        for i in range(4):
            q.offer(ticket(vector_id=i, tenant="a"))
            q.offer(ticket(vector_id=100 + i, tenant="b"))
        order = self.drain_tenants(q, 8)
        assert order.count("a") == 4 and order.count("b") == 4
        # No tenant ever gets two-ahead of the other.
        lead = 0
        for t in order:
            lead += 1 if t == "a" else -1
            assert abs(lead) <= 1

    def test_idle_tenant_cannot_bank_credit(self):
        # b idles while a drains; when b shows up its virtual clock is
        # floored at the queue's virtual time, so it gets its fair share
        # from now on rather than a catch-up monopoly.
        q = AdmissionQueue(capacity=32, policy=WeightedFair({"a": 1.0, "b": 1.0}))
        for i in range(4):
            q.offer(ticket(vector_id=i, tenant="a"))
        for _ in range(4):
            q.pop()
        for i in range(2):
            q.offer(ticket(vector_id=10 + i, tenant="a"))
            q.offer(ticket(vector_id=20 + i, tenant="b"))
        order = self.drain_tenants(q, 4)
        assert order.count("b") == 2 and order.count("a") == 2
        assert abs(order[:2].count("b") - 1) <= 1  # interleaved, not b,b,a,a

    def test_unknown_tenant_uses_default_weight(self):
        p = WeightedFair({"a": 4.0}, default_weight=2.0)
        assert p.weight_of("a") == 4.0
        assert p.weight_of("stranger") == 2.0
        assert p.weight_of(None) == 2.0

    def test_bad_weights(self):
        with pytest.raises(ConfigurationError):
            WeightedFair({"a": 0.0})
        with pytest.raises(ConfigurationError):
            WeightedFair({"a": float("inf")})
        with pytest.raises(ConfigurationError):
            WeightedFair(default_weight=-1.0)

    def test_reset_clears_clocks(self):
        p = WeightedFair({"a": 1.0})
        p.key(ticket(tenant="a"), 0)
        p.observe_pop((5.0,))
        p.reset()
        assert p._vtime == 0.0 and p._finish == {}


class TestWeightedFairPurity:
    """key() must be side-effect free; clocks commit only on enqueue."""

    def test_key_is_pure(self):
        p = WeightedFair({"a": 1.0})
        k1 = p.key(ticket(tenant="a"), 0)
        k2 = p.key(ticket(tenant="a"), 1)
        # Repeated probes without an offer see the same virtual clock.
        assert k1[0] == k2[0]
        assert p._finish == {}

    def test_shed_at_full_queue_does_not_charge_virtual_time(self):
        # Regression: a tenant whose ticket is shed (queue full) must not
        # have its virtual finish clock advanced — otherwise overload
        # *punishes* the shed tenant's future share under saturation.
        p = WeightedFair({"a": 1.0, "b": 1.0})
        q = AdmissionQueue(capacity=2, policy=p)
        assert q.offer(ticket(vector_id=0, tenant="a"))
        assert q.offer(ticket(vector_id=1, tenant="b"))
        clocks = dict(p._finish)
        assert not q.offer(ticket(vector_id=2, tenant="b"))  # full: shed
        assert p._finish == clocks

    def test_offer_commits_exactly_once(self):
        p = WeightedFair({"a": 2.0})
        q = AdmissionQueue(capacity=8, policy=p)
        t = ticket(n_pairs=2, tenant="a")  # 4 tensor slots, weight 2
        q.offer(t)
        assert p._finish["a"] == pytest.approx(t.vector.num_tensors / 2.0)

    def test_shed_tenant_keeps_fair_share_after_overload(self):
        # b's shed tickets charge nothing, so once capacity frees up the
        # a/b interleave is as if the overload never happened.
        p = WeightedFair({"a": 1.0, "b": 1.0})
        q = AdmissionQueue(capacity=4, policy=p)
        for i in range(2):
            q.offer(ticket(vector_id=i, tenant="a"))
            q.offer(ticket(vector_id=100 + i, tenant="b"))
        for i in range(3):  # queue full: all shed
            assert not q.offer(ticket(vector_id=200 + i, tenant="b"))
        order = [q.pop().tenant for _ in range(4)]
        assert order.count("a") == 2 and order.count("b") == 2


class TestPopBatch:
    def test_empty_queue_returns_empty_batch(self):
        assert AdmissionQueue().pop_batch(4) == []

    def test_limit_validated(self):
        q = AdmissionQueue()
        with pytest.raises(ConfigurationError):
            q.pop_batch(0)

    def test_takes_up_to_limit_in_policy_order(self):
        q = AdmissionQueue(capacity=8)
        tickets = [ticket(vector_id=i) for i in range(5)]
        for t in tickets:
            q.offer(t)
        batch = q.pop_batch(3)
        assert batch == tickets[:3]
        assert len(q) == 2

    def test_head_always_taken_even_when_accept_rejects(self):
        q = AdmissionQueue(capacity=8)
        a, b = ticket(vector_id=0), ticket(vector_id=1)
        q.offer(a)
        q.offer(b)
        batch = q.pop_batch(4, accept=lambda members, cand: False)
        assert batch == [a]
        assert q.pop() is b  # skipped ticket kept its position

    def test_skipped_tickets_keep_relative_order(self):
        q = AdmissionQueue(capacity=8, policy=Sjf())
        small = ticket(n_pairs=1, vector_id=0)
        mid = ticket(n_pairs=2, vector_id=1)
        big = ticket(n_pairs=8, vector_id=2)
        for t in (big, small, mid):
            q.offer(t)
        # Accept only vectors matching the head's pair count: mid and big
        # are skipped and must pop later in unchanged sjf order.
        batch = q.pop_batch(
            4, accept=lambda m, c: len(c.vector.pairs) == len(m[0].vector.pairs)
        )
        assert batch == [small]
        assert [q.pop() for _ in range(2)] == [mid, big]

    def test_accept_sees_growing_member_list(self):
        q = AdmissionQueue(capacity=8)
        for i in range(4):
            q.offer(ticket(vector_id=i))
        sizes = []

        def accept(members, cand):
            sizes.append(len(members))
            return True

        q.pop_batch(4, accept=accept)
        assert sizes == [1, 2, 3]

    def test_weighted_fair_vtime_advances_only_for_taken(self):
        p = WeightedFair({"a": 1.0, "b": 1.0})
        q = AdmissionQueue(capacity=8, policy=p)
        q.offer(ticket(vector_id=0, tenant="a"))
        q.offer(ticket(vector_id=1, tenant="b"))
        q.pop_batch(2, accept=lambda m, c: False)  # only the head taken
        vtime_after = p._vtime
        # The skipped b ticket still pops with its original finish tag
        # and only then advances the queue's virtual time.
        t = q.pop()
        assert t.tenant == "b"
        assert p._vtime >= vtime_after


class TestPolicyProtocol:
    def test_registry_names(self):
        assert QUEUE_POLICIES == ("fifo", "sjf", "weighted")

    def test_make_policy(self):
        assert isinstance(make_policy("fifo"), Fifo)
        assert isinstance(make_policy("sjf"), Sjf)
        wf = make_policy("weighted", weights={"a": 2.0})
        assert isinstance(wf, WeightedFair) and wf.weights == {"a": 2.0}

    def test_make_policy_unknown(self):
        with pytest.raises(ConfigurationError):
            make_policy("lifo")

    def test_string_policy_deprecated_but_works(self):
        with pytest.deprecated_call():
            q = AdmissionQueue(capacity=4, policy="sjf")
        assert isinstance(q.policy, Sjf)
        assert q.counters()["policy"] == "sjf"

    def test_custom_policy_object(self):
        class Lifo(QueuePolicy):
            name = "lifo"

            def key(self, t, seq):
                return (-seq,)

        q = AdmissionQueue(capacity=4, policy=Lifo())
        a, b = ticket(vector_id=0), ticket(vector_id=1)
        q.offer(a)
        q.offer(b)
        assert q.pop() is b
        assert q.counters()["policy"] == "lifo"


class TestValidation:
    def test_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            AdmissionQueue(capacity=0)

    def test_bad_policy(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ConfigurationError):
                AdmissionQueue(policy="lifo")

    def test_non_policy_object_rejected(self):
        with pytest.raises(ConfigurationError):
            AdmissionQueue(policy=42)


class TestFaultAware:
    def test_default_policy_admits_everything(self):
        assert Fifo().admit(ticket(), now=0.0)

    def test_no_faults_means_admission(self):
        p = FaultAware(Fifo())
        p.observe(0.0, fault_events=0, alive=4, total=4)
        assert p.success_probability(ticket(), now=0.0) == pytest.approx(1.0)
        assert p.admit(ticket(), now=0.0)
        assert p.shed_predicted == 0

    def test_fault_burst_sheds_then_decays(self):
        p = FaultAware(Fifo(), tau_s=0.1, min_success_prob=0.9,
                       exposure_s_per_pair=1e-2)
        p.observe(1.0, fault_events=5, alive=4, total=4)
        # rate = 5/0.1 = 50/s; hazard = 50 * 1e-2 * 2 = 1.0 -> p ~ 0.37.
        assert not p.admit(ticket(n_pairs=2), now=1.0)
        assert p.shed_predicted == 1
        # Well past the time constant the rate has decayed away.
        assert p.admit(ticket(n_pairs=2), now=3.0)

    def test_shrunken_pool_raises_hazard(self):
        p = FaultAware(Fifo())
        p.observe(0.0, fault_events=2, alive=4, total=4)
        full = p.success_probability(ticket(n_pairs=4), now=0.0)
        p.observe(0.0, fault_events=2, alive=1, total=4)
        quarter = p.success_probability(ticket(n_pairs=4), now=0.0)
        assert quarter < full

    def test_dead_pool_sheds_everything(self):
        p = FaultAware(Fifo())
        p.observe(0.0, fault_events=0, alive=0, total=4)
        assert p.success_probability(ticket(), now=0.0) == 0.0
        assert not p.admit(ticket(), now=0.0)

    def test_observe_diffs_cumulative_counts(self):
        p = FaultAware(Fifo(), tau_s=1.0)
        p.observe(0.0, fault_events=3, alive=4, total=4)
        r1 = p.fault_rate(0.0)
        p.observe(0.0, fault_events=3, alive=4, total=4)  # same cumulative
        assert p.fault_rate(0.0) == pytest.approx(r1)  # nothing new counted

    def test_dispatch_order_delegates_to_inner(self):
        q = AdmissionQueue(capacity=8, policy=FaultAware(Sjf()))
        big, small = ticket(n_pairs=6, vector_id=0), ticket(n_pairs=1, vector_id=1)
        q.offer(big)
        q.offer(small)
        assert q.pop().vector.vector_id == 1  # sjf order preserved
        assert q.counters()["policy"] == "fault-aware(sjf)"

    def test_reset_clears_rate_and_inner(self):
        inner = WeightedFair({"a": 1.0})
        p = FaultAware(inner)
        p.observe(1.0, fault_events=9, alive=2, total=4)
        p.admit(ticket(n_pairs=50), now=1.0)
        p.reset()
        assert p.fault_rate(1.0) == 0.0
        assert p.shed_predicted == 0
        assert inner._vtime == 0.0

    def test_observe_offer_delegates_to_inner(self):
        # Offering through a FaultAware-wrapped queue must advance the
        # wrapped WeightedFair's clocks exactly as offering directly would.
        inner = WeightedFair({"a": 1.0})
        q = AdmissionQueue(capacity=8, policy=FaultAware(inner))
        t = ticket(n_pairs=2, tenant="a")
        q.offer(t)
        assert inner._finish["a"] == pytest.approx(float(t.vector.num_tensors))

    def test_counters_merge_inner_counters(self):
        class Counting(Fifo):
            def counters(self):
                return {"inner_stat": 42}

        p = FaultAware(Counting(), min_success_prob=0.9,
                       exposure_s_per_pair=1e-2, tau_s=0.1)
        p.observe(1.0, fault_events=5, alive=4, total=4)
        p.admit(ticket(n_pairs=2), now=1.0)  # shed
        assert p.counters() == {"inner_stat": 42, "shed_predicted": 1}

    def test_queue_counters_include_policy_counters(self):
        q = AdmissionQueue(capacity=4, policy=FaultAware(Fifo()))
        assert q.counters()["shed_predicted"] == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FaultAware("fifo")
        with pytest.raises(ConfigurationError):
            FaultAware(FaultAware(Fifo()))  # no double wrapping
        with pytest.raises(ConfigurationError):
            FaultAware(Fifo(), tau_s=0.0)
        with pytest.raises(ConfigurationError):
            FaultAware(Fifo(), min_success_prob=1.0)
        with pytest.raises(ConfigurationError):
            FaultAware(Fifo(), exposure_s_per_pair=-1.0)
