"""Unit tests for the bounded admission queue."""

import pytest

from repro.errors import ConfigurationError
from repro.serve.queueing import QUEUE_POLICIES, AdmissionQueue
from repro.serve.timeline import Ticket
from tests.conftest import make_vector


def ticket(n_pairs=2, vector_id=0, arrival_s=0.0):
    return Ticket(vector=make_vector(n_pairs=n_pairs, vector_id=vector_id), arrival_s=arrival_s)


class TestFifo:
    def test_fifo_order(self):
        q = AdmissionQueue(capacity=4)
        tickets = [ticket(vector_id=i) for i in range(3)]
        for t in tickets:
            assert q.offer(t)
        assert [q.pop() for _ in range(3)] == tickets

    def test_pop_empty_returns_none(self):
        assert AdmissionQueue().pop() is None

    def test_shed_when_full(self):
        q = AdmissionQueue(capacity=2)
        assert q.offer(ticket())
        assert q.offer(ticket())
        assert not q.offer(ticket())
        assert q.dropped == 1
        assert q.admitted == 2
        assert len(q) == 2 and q.is_full

    def test_peak_depth_high_water(self):
        q = AdmissionQueue(capacity=8)
        for i in range(3):
            q.offer(ticket(vector_id=i))
        q.pop()
        q.pop()
        q.offer(ticket(vector_id=9))
        assert q.peak_depth == 3

    def test_counters_snapshot(self):
        q = AdmissionQueue(capacity=1, policy="fifo")
        q.offer(ticket())
        q.offer(ticket())
        assert q.counters() == {
            "capacity": 1,
            "policy": "fifo",
            "admitted": 1,
            "dropped": 1,
            "peak_depth": 1,
        }


class TestSjf:
    def test_shortest_vector_first(self):
        q = AdmissionQueue(capacity=4, policy="sjf")
        big = ticket(n_pairs=8, vector_id=0)
        small = ticket(n_pairs=1, vector_id=1)
        mid = ticket(n_pairs=4, vector_id=2)
        for t in (big, small, mid):
            q.offer(t)
        assert [q.pop() for _ in range(3)] == [small, mid, big]

    def test_fifo_among_equals(self):
        q = AdmissionQueue(capacity=4, policy="sjf")
        first = ticket(n_pairs=2, vector_id=0)
        second = ticket(n_pairs=2, vector_id=1)
        q.offer(first)
        q.offer(second)
        assert q.pop() is first


class TestValidation:
    def test_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            AdmissionQueue(capacity=0)

    def test_bad_policy(self):
        with pytest.raises(ConfigurationError):
            AdmissionQueue(policy="lifo")

    def test_policy_registry(self):
        assert QUEUE_POLICIES == ("fifo", "sjf")
