"""Property-based tests on graph contraction invariants."""

from hypothesis import given, settings, strategies as st

from repro.graphs.contraction_graph import ContractionGraph, InternTable, contract_graph
from repro.graphs.stages import build_stage_plan, stages_to_vectors
from tests.conftest import make_tensor


@st.composite
def random_graphs(draw):
    """Connected-ish random multigraphs of 3-8 hadron nodes."""
    n = draw(st.integers(3, 8))
    nodes = {f"h{i}": make_tensor(size=8, label=f"h{i}") for i in range(n)}
    names = list(nodes)
    # Spanning path guarantees one connected component...
    edges = [(names[i], names[i + 1]) for i in range(n - 1)]
    # ...plus random extra edges (parallel edges allowed).
    extra = draw(st.lists(st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)), max_size=8))
    for a, b in extra:
        if a != b:
            edges.append((names[a], names[b]))
    return ContractionGraph(nodes=nodes, edges=edges)


class TestContractionProperties:
    @given(random_graphs())
    @settings(max_examples=60, deadline=None)
    def test_connected_graph_needs_n_minus_2_steps(self, graph):
        steps = contract_graph(graph, InternTable())
        assert len(steps) == graph.num_nodes - 2

    @given(random_graphs())
    @settings(max_examples=60, deadline=None)
    def test_every_step_consumes_known_tensors(self, graph):
        """Step inputs are original nodes or earlier outputs."""
        steps = contract_graph(graph, InternTable())
        known = {t.uid for t in graph.nodes.values()}
        for step in steps:
            assert step.left.uid in known
            assert step.right.uid in known
            known.add(step.out.uid)

    @given(random_graphs())
    @settings(max_examples=60, deadline=None)
    def test_depths_respect_dependencies(self, graph):
        depths: dict[int, int] = {}
        steps = contract_graph(graph, InternTable(), depths)
        for step in steps:
            left_d = depths.get(step.left.uid, 0) if step.left.uid in depths else 0
            assert step.depth >= 1
            # The output's recorded depth is at least this step's depth.
            assert depths[step.out.uid] >= step.depth

    @given(random_graphs())
    @settings(max_examples=40, deadline=None)
    def test_stage_plan_round_trip(self, graph):
        """Plan validates and chunks losslessly into vectors."""
        steps = contract_graph(graph, InternTable())
        if not steps:
            return
        plan = build_stage_plan(steps)
        plan.validate()
        vectors = stages_to_vectors(plan, max_vector_size=4)
        assert sum(len(v.pairs) for v in vectors) == plan.total_steps

    @given(random_graphs(), random_graphs())
    @settings(max_examples=30, deadline=None)
    def test_intern_table_shared_across_graphs(self, g1, g2):
        """Interning never produces two outputs for one input pair."""
        table = InternTable()
        depths: dict[int, int] = {}
        steps = contract_graph(g1, table, depths) + contract_graph(g2, table, depths)
        by_inputs: dict[tuple[int, int], int] = {}
        for s in steps:
            key = tuple(sorted((s.left.uid, s.right.uid)))
            if key in by_inputs:
                assert by_inputs[key] == s.out.uid
            by_inputs[key] = s.out.uid
