"""Unit tests for arrival processes (Poisson, bursty, trace replay)."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.serve.arrivals import BurstyArrivals, PoissonArrivals, TraceArrivals


def assert_valid_times(times, n):
    assert len(times) == n
    assert all(t >= 0 for t in times)
    assert all(b >= a for a, b in zip(times, times[1:]))


class TestPoisson:
    def test_count_and_monotonic(self):
        assert_valid_times(PoissonArrivals(10.0).arrival_times(100, seed=0), 100)

    def test_deterministic_per_seed(self):
        p = PoissonArrivals(5.0)
        assert p.arrival_times(50, seed=7) == p.arrival_times(50, seed=7)
        assert p.arrival_times(50, seed=7) != p.arrival_times(50, seed=8)

    def test_mean_rate_approximate(self):
        times = PoissonArrivals(100.0).arrival_times(4000, seed=1)
        rate = len(times) / times[-1]
        assert rate == pytest.approx(100.0, rel=0.1)

    def test_rejects_bad_rate(self):
        with pytest.raises(WorkloadError):
            PoissonArrivals(0.0)
        with pytest.raises(WorkloadError):
            PoissonArrivals(-1.0)

    def test_rejects_bad_count(self):
        with pytest.raises(WorkloadError):
            PoissonArrivals(1.0).arrival_times(0)


class TestBursty:
    def test_count_and_monotonic(self):
        b = BurstyArrivals(rate_on=50.0, rate_off=0.0, mean_on_s=0.2, mean_off_s=0.2)
        assert_valid_times(b.arrival_times(200, seed=4), 200)

    def test_deterministic_per_seed(self):
        b = BurstyArrivals(rate_on=20.0, rate_off=1.0)
        assert b.arrival_times(40, seed=2) == b.arrival_times(40, seed=2)

    def test_burstier_than_poisson(self):
        """On/off gaps give a higher inter-arrival CV than Poisson (CV=1)."""
        b = BurstyArrivals(rate_on=200.0, rate_off=0.0, mean_on_s=0.05, mean_off_s=0.5)
        gaps = np.diff(b.arrival_times(2000, seed=5))
        assert gaps.std() / gaps.mean() > 1.3

    def test_silent_off_phase_produces_gaps(self):
        b = BurstyArrivals(rate_on=1000.0, rate_off=0.0, mean_on_s=0.01, mean_off_s=1.0)
        gaps = np.diff(b.arrival_times(300, seed=6))
        assert gaps.max() > 0.1  # an OFF phase passed with no arrivals

    def test_validation(self):
        with pytest.raises(WorkloadError):
            BurstyArrivals(rate_on=0.0)
        with pytest.raises(WorkloadError):
            BurstyArrivals(rate_on=1.0, rate_off=-0.5)
        with pytest.raises(WorkloadError):
            BurstyArrivals(rate_on=1.0, mean_on_s=0.0)


class TestTrace:
    def test_replay_prefix(self):
        tr = TraceArrivals([0.0, 0.5, 1.25, 9.0])
        assert tr.arrival_times(3) == [0.0, 0.5, 1.25]
        assert len(tr) == 4

    def test_seed_ignored(self):
        tr = TraceArrivals([0.1, 0.2])
        assert tr.arrival_times(2, seed=1) == tr.arrival_times(2, seed=99)

    def test_too_many_requested(self):
        with pytest.raises(WorkloadError):
            TraceArrivals([0.1]).arrival_times(2)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            TraceArrivals([])
        with pytest.raises(WorkloadError):
            TraceArrivals([-0.1, 0.2])
        with pytest.raises(WorkloadError):
            TraceArrivals([0.5, 0.1])

    def test_json_roundtrip(self, tmp_path):
        path = tmp_path / "arrivals.json"
        TraceArrivals([0.0, 0.25, 1.5]).to_json(path)
        back = TraceArrivals.from_json(path)
        assert back.times == [0.0, 0.25, 1.5]

    def test_from_json_bad_payload(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"nope": []}')
        with pytest.raises(WorkloadError):
            TraceArrivals.from_json(path)
