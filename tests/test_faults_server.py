"""Serving-loop fault recovery: shrinking pools, re-scheduling, shedding."""

import pytest

from repro.core.config import MiccoConfig
from repro.faults import FaultEvent, FaultKind, FaultPlan
from repro.schedulers.bounds import ReuseBounds
from repro.schedulers.micco import MiccoScheduler
from repro.serve import MiccoServer, PoissonArrivals, ServeConfig
from repro.workloads import SyntheticWorkload, WorkloadParams

MIB = 1024**2


def small_config(num_devices: int = 4) -> MiccoConfig:
    return MiccoConfig(num_devices=num_devices, memory_bytes=64 * MIB)


def make_vectors(n: int = 12, seed: int = 3):
    params = WorkloadParams(
        vector_size=8, tensor_size=128, repeated_rate=0.6, num_vectors=n, batch=4
    )
    return SyntheticWorkload(params, seed=seed).vectors()


def run_chaos(plan, *, num_devices=4, serve=None, n=12, arrivals=None, seed=0):
    server = MiccoServer(
        MiccoScheduler(ReuseBounds(0, 4, 0)),
        small_config(num_devices),
        serve or ServeConfig(),
    )
    vectors = make_vectors(n)
    return server, server.run(
        vectors, arrivals if arrivals is not None else PoissonArrivals(200.0),
        seed=seed, faults=plan,
    )


class TestDeviceLossRecovery:
    def test_pool_shrinks_and_run_completes(self):
        plan = FaultPlan((FaultEvent(FaultKind.DEVICE_LOST, 0.01, 1),))
        server, result = run_chaos(plan)
        assert server.cluster.num_alive == 3
        assert not server.cluster.is_alive(1)
        s = result.summary()
        assert s["completed"] == s["offered"]
        assert result.faults["device_losses"] == 1
        assert result.faults["availability_pct"] < 100.0
        # No completed vector ran a pair on the dead device after loss:
        # the cluster stays consistent throughout.
        server.cluster.check_invariants()

    def test_inflight_orphans_are_rescheduled_onto_survivors(self):
        # Everything arrives at t=0 with a deep inflight window, so the
        # loss at t=1ms lands while completions are still pending.
        plan = FaultPlan((FaultEvent(FaultKind.DEVICE_LOST, 1e-3, 0),))
        server, result = run_chaos(
            plan,
            serve=ServeConfig(max_inflight=8),
            arrivals=[0.0] * 12,
        )
        s = result.summary()
        assert s["completed"] == s["offered"]
        assert result.faults["rescheduled_pairs"] > 0
        assert result.faults["orphaned_tensors"] > 0
        assert result.faults["recovery_latency_s"]["device_lost"]
        # Re-scheduled pairs landed on survivors only.
        for rec in result.report.completed:
            assert 0 not in rec.devices or rec.complete_s < 1e-3

    def test_bounds_rescaled_for_survivors(self):
        plan = FaultPlan((FaultEvent(FaultKind.DEVICE_LOST, 0.01, 2),))
        server, _ = run_chaos(plan)
        # 4 -> 3 alive: bounds scale by 4/3.
        expected = ReuseBounds(0, 4, 0).scaled(4 / 3)
        assert server.scheduler.bounds == expected

    def test_recovery_off_sheds_affected_vectors(self):
        plan = FaultPlan((FaultEvent(FaultKind.DEVICE_LOST, 1e-3, 0),))
        _, result = run_chaos(
            plan,
            serve=ServeConfig(max_inflight=8, recover_faults=False),
            arrivals=[0.0] * 12,
        )
        s = result.summary()
        assert s["dropped_by_reason"].get("fault-abandoned", 0) > 0
        assert s["completed"] + s["dropped"] == s["offered"]
        assert result.faults["rescheduled_pairs"] == 0

    def test_losing_every_device_sheds_remaining_arrivals(self):
        plan = FaultPlan((
            FaultEvent(FaultKind.DEVICE_LOST, 1e-4, 0),
            FaultEvent(FaultKind.DEVICE_LOST, 1e-4, 1),
        ))
        _, result = run_chaos(plan, num_devices=2, arrivals=[i * 0.01 for i in range(12)])
        s = result.summary()
        assert s["completed"] == 0
        assert s["dropped_by_reason"] == {"fault-abandoned": 12}
        # Nothing completed, so the makespan is zero and availability
        # degenerates to its no-denominator value.
        assert result.faults["availability_pct"] == 100.0
        assert result.faults["device_losses"] == 2

    def test_duplicate_loss_entries_are_idempotent(self):
        plan = FaultPlan((
            FaultEvent(FaultKind.DEVICE_LOST, 0.01, 1),
            FaultEvent(FaultKind.DEVICE_LOST, 0.02, 1),
        ))
        server, result = run_chaos(plan)
        assert server.cluster.num_alive == 3
        assert result.faults["device_losses"] == 1


class TestTransientAndTransferInServing:
    def test_exhausted_retry_budget_sheds_not_crashes(self):
        # Arm more consecutive kernel failures than the retry budget
        # (4) on one device: the first vector with a pair there hits
        # the wall and is shed; the leftovers recover on later vectors.
        plan = FaultPlan((FaultEvent(FaultKind.TRANSIENT, 0.0, 0, count=6),))
        _, result = run_chaos(plan)
        s = result.summary()
        assert s["dropped_by_reason"].get("fault-abandoned", 0) >= 1
        assert s["completed"] >= 1
        assert result.faults["transient_abandoned"] >= 1

    def test_recovered_faults_leave_slo_report_complete(self):
        plan = FaultPlan((
            FaultEvent(FaultKind.TRANSIENT, 0.0, 0, count=1),
            FaultEvent(FaultKind.TRANSFER, 0.0, 1, count=1),
        ))
        _, result = run_chaos(plan)
        s = result.summary()
        assert s["completed"] == s["offered"]
        f = result.faults
        assert f["transient_recovered"] + f["transfer_refetches"] >= 1

    def test_straggler_inflates_latency_not_drops(self):
        clean = run_chaos(FaultPlan(()))[1].summary()
        plan = FaultPlan((
            FaultEvent(FaultKind.STRAGGLER, 0.0, d, duration_s=10.0, slow_factor=8.0)
            for d in range(4)
        ))
        slow = run_chaos(plan)[1]
        s = slow.summary()
        assert s["completed"] == s["offered"]
        assert s["p99_s"] > clean["p99_s"]
        assert slow.faults["degraded_device_s"] > 0


class TestChaosDeterminism:
    def test_same_seed_same_report_and_trace(self):
        plan = FaultPlan.generate(5, num_devices=4, horizon_s=0.06)
        # One request stream shared by both runs: fresh streams would
        # draw fresh global tensor uids, which appear in event labels.
        vectors = make_vectors(12)

        def one():
            server = MiccoServer(
                MiccoScheduler(ReuseBounds(0, 4, 0)), small_config(), ServeConfig()
            )
            return server.run(vectors, PoissonArrivals(200.0), seed=9, faults=plan)

        a, b = one(), one()
        assert a.summary() == b.summary()
        assert a.fault_events == b.fault_events
        assert [e.__dict__ for e in a.to_trace().events] == [
            e.__dict__ for e in b.to_trace().events
        ]

    def test_no_plan_means_no_fault_section(self):
        _, result = run_chaos(None)
        assert result.faults is None
        assert result.fault_events == []
        assert "faults" not in result.summary()

    def test_no_vector_completes_twice(self):
        plan = FaultPlan((FaultEvent(FaultKind.DEVICE_LOST, 1e-3, 0),))
        _, result = run_chaos(plan, serve=ServeConfig(max_inflight=8), arrivals=[0.0] * 12)
        ids = [r.vector_id for r in result.report.completed]
        assert len(ids) == len(set(ids))
