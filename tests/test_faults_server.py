"""Serving-loop fault recovery: shrinking pools, re-scheduling, shedding."""

import pytest

from repro.core.config import MiccoConfig
from repro.faults import FaultEvent, FaultKind, FaultPlan
from repro.schedulers.bounds import ReuseBounds
from repro.schedulers.micco import MiccoScheduler
from repro.serve import MiccoServer, PoissonArrivals, ServeConfig
from repro.workloads import SyntheticWorkload, WorkloadParams

MIB = 1024**2


def small_config(num_devices: int = 4) -> MiccoConfig:
    return MiccoConfig(num_devices=num_devices, memory_bytes=64 * MIB)


def make_vectors(n: int = 12, seed: int = 3):
    params = WorkloadParams(
        vector_size=8, tensor_size=128, repeated_rate=0.6, num_vectors=n, batch=4
    )
    return SyntheticWorkload(params, seed=seed).vectors()


def run_chaos(plan, *, num_devices=4, serve=None, n=12, arrivals=None, seed=0):
    server = MiccoServer(
        MiccoScheduler(ReuseBounds(0, 4, 0)),
        small_config(num_devices),
        serve or ServeConfig(),
    )
    vectors = make_vectors(n)
    return server, server.run(
        vectors, arrivals if arrivals is not None else PoissonArrivals(200.0),
        seed=seed, faults=plan,
    )


class TestDeviceLossRecovery:
    def test_pool_shrinks_and_run_completes(self):
        plan = FaultPlan((FaultEvent(FaultKind.DEVICE_LOST, 0.01, 1),))
        server, result = run_chaos(plan)
        assert server.cluster.num_alive == 3
        assert not server.cluster.is_alive(1)
        s = result.summary()
        assert s["completed"] == s["offered"]
        assert result.faults["device_losses"] == 1
        assert result.faults["availability_pct"] < 100.0
        # No completed vector ran a pair on the dead device after loss:
        # the cluster stays consistent throughout.
        server.cluster.check_invariants()

    def test_inflight_orphans_are_rescheduled_onto_survivors(self):
        # Everything arrives at t=0 with a deep inflight window, so the
        # loss at t=1ms lands while completions are still pending.
        plan = FaultPlan((FaultEvent(FaultKind.DEVICE_LOST, 1e-3, 0),))
        server, result = run_chaos(
            plan,
            serve=ServeConfig(max_inflight=8),
            arrivals=[0.0] * 12,
        )
        s = result.summary()
        assert s["completed"] == s["offered"]
        assert result.faults["rescheduled_pairs"] > 0
        assert result.faults["orphaned_tensors"] > 0
        assert result.faults["recovery_latency_s"]["device_lost"]
        # Re-scheduled pairs landed on survivors only.
        for rec in result.report.completed:
            assert 0 not in rec.devices or rec.complete_s < 1e-3

    def test_bounds_rescaled_for_survivors(self):
        plan = FaultPlan((FaultEvent(FaultKind.DEVICE_LOST, 0.01, 2),))
        server, _ = run_chaos(plan)
        # 4 -> 3 alive: bounds scale by 4/3.
        expected = ReuseBounds(0, 4, 0).scaled(4 / 3)
        assert server.scheduler.bounds == expected

    def test_recovery_off_sheds_affected_vectors(self):
        plan = FaultPlan((FaultEvent(FaultKind.DEVICE_LOST, 1e-3, 0),))
        _, result = run_chaos(
            plan,
            serve=ServeConfig(max_inflight=8, recover_faults=False),
            arrivals=[0.0] * 12,
        )
        s = result.summary()
        assert s["dropped_by_reason"].get("fault-abandoned", 0) > 0
        assert s["completed"] + s["dropped"] == s["offered"]
        assert result.faults["rescheduled_pairs"] == 0

    def test_losing_every_device_sheds_remaining_arrivals(self):
        plan = FaultPlan((
            FaultEvent(FaultKind.DEVICE_LOST, 1e-4, 0),
            FaultEvent(FaultKind.DEVICE_LOST, 1e-4, 1),
        ))
        _, result = run_chaos(plan, num_devices=2, arrivals=[i * 0.01 for i in range(12)])
        s = result.summary()
        assert s["completed"] == 0
        assert s["dropped_by_reason"] == {"fault-abandoned": 12}
        # Nothing completed, so the makespan is zero and availability
        # degenerates to its no-denominator value.
        assert result.faults["availability_pct"] == 100.0
        assert result.faults["device_losses"] == 2

    def test_duplicate_loss_entries_are_idempotent(self):
        plan = FaultPlan((
            FaultEvent(FaultKind.DEVICE_LOST, 0.01, 1),
            FaultEvent(FaultKind.DEVICE_LOST, 0.02, 1),
        ))
        server, result = run_chaos(plan)
        assert server.cluster.num_alive == 3
        assert result.faults["device_losses"] == 1


class TestTransientAndTransferInServing:
    def test_exhausted_retry_budget_sheds_not_crashes(self):
        # Arm more consecutive kernel failures than the retry budget
        # (4) on one device: the first vector with a pair there hits
        # the wall and is shed; the leftovers recover on later vectors.
        plan = FaultPlan((FaultEvent(FaultKind.TRANSIENT, 0.0, 0, count=6),))
        _, result = run_chaos(plan)
        s = result.summary()
        assert s["dropped_by_reason"].get("fault-abandoned", 0) >= 1
        assert s["completed"] >= 1
        assert result.faults["transient_abandoned"] >= 1

    def test_recovered_faults_leave_slo_report_complete(self):
        plan = FaultPlan((
            FaultEvent(FaultKind.TRANSIENT, 0.0, 0, count=1),
            FaultEvent(FaultKind.TRANSFER, 0.0, 1, count=1),
        ))
        _, result = run_chaos(plan)
        s = result.summary()
        assert s["completed"] == s["offered"]
        f = result.faults
        assert f["transient_recovered"] + f["transfer_refetches"] >= 1

    def test_straggler_inflates_latency_not_drops(self):
        clean = run_chaos(FaultPlan(()))[1].summary()
        plan = FaultPlan((
            FaultEvent(FaultKind.STRAGGLER, 0.0, d, duration_s=10.0, slow_factor=8.0)
            for d in range(4)
        ))
        slow = run_chaos(plan)[1]
        s = slow.summary()
        assert s["completed"] == s["offered"]
        assert s["p99_s"] > clean["p99_s"]
        assert slow.faults["degraded_device_s"] > 0


class TestChaosDeterminism:
    def test_same_seed_same_report_and_trace(self):
        plan = FaultPlan.generate(5, num_devices=4, horizon_s=0.06)
        # One request stream shared by both runs: fresh streams would
        # draw fresh global tensor uids, which appear in event labels.
        vectors = make_vectors(12)

        def one():
            server = MiccoServer(
                MiccoScheduler(ReuseBounds(0, 4, 0)), small_config(), ServeConfig()
            )
            return server.run(vectors, PoissonArrivals(200.0), seed=9, faults=plan)

        a, b = one(), one()
        assert a.summary() == b.summary()
        assert a.fault_events == b.fault_events
        assert [e.__dict__ for e in a.to_trace().events] == [
            e.__dict__ for e in b.to_trace().events
        ]

    def test_no_plan_means_no_fault_section(self):
        _, result = run_chaos(None)
        assert result.faults is None
        assert result.fault_events == []
        assert "faults" not in result.summary()

    def test_no_vector_completes_twice(self):
        plan = FaultPlan((FaultEvent(FaultKind.DEVICE_LOST, 1e-3, 0),))
        _, result = run_chaos(plan, serve=ServeConfig(max_inflight=8), arrivals=[0.0] * 12)
        ids = [r.vector_id for r in result.report.completed]
        assert len(ids) == len(set(ids))


def multinode_config(num_devices: int = 8, devices_per_node: int = 4) -> MiccoConfig:
    from repro.gpusim import CostModel, Topology

    topo = Topology(num_devices=num_devices, devices_per_node=devices_per_node)
    return MiccoConfig(
        num_devices=num_devices,
        memory_bytes=64 * MIB,
        cost_model=CostModel(topology=topo),
    )


def run_multinode(plan, *, serve=None, n=12, arrivals=None, seed=0,
                  num_devices=8, devices_per_node=4):
    server = MiccoServer(
        MiccoScheduler(ReuseBounds(0, 4, 0)),
        multinode_config(num_devices, devices_per_node),
        serve or ServeConfig(),
    )
    vectors = make_vectors(n)
    return server, server.run(
        vectors, arrivals if arrivals is not None else PoissonArrivals(200.0),
        seed=seed, faults=plan,
    )


class TestNodeLossDomains:
    def test_node_lost_kills_exactly_one_node(self):
        # Device 1 lives on node 0 = {0,1,2,3}; the whole node must die
        # and node 1 = {4,5,6,7} must survive untouched.
        plan = FaultPlan((FaultEvent(FaultKind.NODE_LOST, 0.01, 1),))
        server, result = run_multinode(plan)
        assert server.cluster.alive_ids() == [4, 5, 6, 7]
        assert all(server.cluster.is_failed(d) for d in range(4))
        f = result.faults
        assert f["node_losses"] == 1
        assert f["device_losses"] == 4
        assert f["injected"]["node_lost"] == 1
        s = result.summary()
        assert s["completed"] == s["offered"]
        server.cluster.check_invariants()

    def test_survivor_residency_only_on_surviving_node(self):
        plan = FaultPlan((FaultEvent(FaultKind.NODE_LOST, 0.005, 2),))
        server, _ = run_multinode(plan, serve=ServeConfig(max_inflight=4))
        dead = {0, 1, 2, 3}
        for dev in range(8):
            if dev in dead:
                assert server.cluster.resident_count(dev) == 0
        server.cluster.check_invariants()

    def test_inflight_rescheduled_onto_surviving_node(self):
        # Eight devices drain the t=0 burst in under a millisecond, so
        # the loss must land early to catch pairs in flight.
        plan = FaultPlan((FaultEvent(FaultKind.NODE_LOST, 2e-4, 0),))
        server, result = run_multinode(
            plan, serve=ServeConfig(max_inflight=8), arrivals=[0.0] * 12,
        )
        assert result.faults["rescheduled_pairs"] > 0
        # Every completed vector's final assignment avoids the dead node.
        for rec in result.report.completed:
            assert not (set(rec.devices) & {0, 1, 2, 3})

    def test_without_topology_node_lost_degenerates_to_one_device(self):
        plan = FaultPlan((FaultEvent(FaultKind.NODE_LOST, 0.01, 1),))
        server, result = run_chaos(plan)  # single-node 4-GPU config
        assert server.cluster.alive_ids() == [0, 2, 3]
        assert result.faults["node_losses"] == 1
        assert result.faults["device_losses"] == 1

    def test_cross_node_fetches_visible_in_trace(self):
        # Multi-node traffic (even pre-loss) pays inter-node links; the
        # engine records each cross-node d2d as an "xnode" fault event.
        plan = FaultPlan((FaultEvent(FaultKind.NODE_LOST, 0.02, 0),))
        _, result = run_multinode(plan, serve=ServeConfig(max_inflight=4), n=16)
        xnode = [e for e in result.fault_events if e["kind"] == "xnode"]
        assert result.faults["cross_node_fetches"] == len(xnode)
        if xnode:  # workload-dependent, but the counter must be consistent
            trace = result.to_trace()
            assert any(ev.kind == "xnode" for ev in trace.events)

    def test_node_loss_determinism(self):
        def one():
            _, result = run_multinode(
                FaultPlan((FaultEvent(FaultKind.NODE_LOST, 0.01, 5),)),
                serve=ServeConfig(max_inflight=4),
            )
            return result.summary(), result.fault_events

        assert one() == one()

    def test_duplicate_node_loss_is_idempotent(self):
        plan = FaultPlan((
            FaultEvent(FaultKind.NODE_LOST, 0.01, 0),
            FaultEvent(FaultKind.NODE_LOST, 0.02, 3),  # same node again
        ))
        server, result = run_multinode(plan)
        assert server.cluster.alive_ids() == [4, 5, 6, 7]
        assert result.faults["device_losses"] == 4  # not 8


class TestWarmRestore:
    def chaos_with_replacement(self, *, warm: bool, seed=0):
        from repro.serve import AutoscalerConfig

        plan = FaultPlan((FaultEvent(FaultKind.DEVICE_LOST, 0.02, 0),))
        serve = ServeConfig(
            max_inflight=2,
            warm_restore=warm,
            autoscaler=AutoscalerConfig(
                min_devices=2, max_devices=4, initial_devices=3,
                warmup_s=0.005, replace_lost=True,
            ),
        )
        server = MiccoServer(
            MiccoScheduler(ReuseBounds(0, 4, 0)), small_config(4), serve
        )
        return server, server.run(
            make_vectors(24), [i * 2e-3 for i in range(24)], seed=seed, faults=plan
        )

    def test_replace_lost_brings_a_spare_online(self):
        server, result = self.chaos_with_replacement(warm=False)
        ups = [a for a in result.autoscale["actions"]
               if a["action"] == "up" and "replace lost" in a["reason"]]
        assert len(ups) == 1
        # The replacement spare finished warm-up and joined the pool.
        onlines = [a for a in result.autoscale["actions"]
                   if a["action"] == "online" and a["device"] == ups[0]["device"]]
        assert onlines and onlines[0]["time_s"] == pytest.approx(
            ups[0]["time_s"] + 0.005
        )
        assert server.cluster.num_alive >= 2

    def test_warm_restore_prewarms_journaled_tensors(self):
        _, result = self.chaos_with_replacement(warm=True)
        assert result.journal is not None
        assert result.journal["restores"] >= 1
        assert result.journal["prewarmed_tensors"] > 0
        assert result.faults["prewarmed_tensors"] == result.journal["prewarmed_tensors"]
        assert "warm_restore" in result.faults["recovery_latency_s"]
        prewarm = [e for e in result.fault_events if e["kind"] == "prewarm"]
        assert len(prewarm) == result.journal["restores"]

    def test_cold_runs_have_no_journal_section(self):
        _, result = self.chaos_with_replacement(warm=False)
        assert result.journal is None
        assert result.faults["prewarmed_tensors"] == 0

    def test_journal_detached_after_run(self):
        server, _ = self.chaos_with_replacement(warm=True)
        assert server.cluster.journal is None


class TestFaultAwareAdmission:
    def test_predicted_infeasible_sheds_under_fault_pressure(self):
        plan = FaultPlan((
            FaultEvent(FaultKind.DEVICE_LOST, 1.5e-3, 0),
            FaultEvent(FaultKind.DEVICE_LOST, 1.6e-3, 1),
        ))
        serve = ServeConfig(fault_aware_admission=True, admission_min_success=0.9)
        _, result = run_chaos(
            plan, serve=serve, n=12, arrivals=[i * 1e-3 for i in range(12)]
        )
        reasons = result.report.drops_by_reason()
        assert reasons.get("predicted-infeasible", 0) > 0
        assert result.faults["predicted_infeasible"] == reasons["predicted-infeasible"]
        # Shed vectors never executed: nothing was fault-abandoned mid-run.
        s = result.summary()
        assert s["dropped_by_reason"] == reasons
        assert s["queue"]["policy"] == "fault-aware(fifo)"

    def test_gate_admits_everything_without_faults(self):
        serve = ServeConfig(fault_aware_admission=True)
        _, result = run_chaos(None, serve=serve)
        s = result.summary()
        assert s["completed"] == s["offered"]

    def test_fault_aware_composes_with_explicit_policy(self):
        from repro.serve import Sjf

        serve = ServeConfig(queue_policy=Sjf(), fault_aware_admission=True)
        _, result = run_chaos(None, serve=serve)
        assert result.queue["policy"] == "fault-aware(sjf)"


class TestLinkLossDegradation:
    """``link_lost``: the node degrades (host-staged fetches), nothing dies."""

    def test_devices_stay_alive_and_run_completes(self):
        plan = FaultPlan((FaultEvent(FaultKind.LINK_LOST, 1e-4, 1),))
        server, result = run_multinode(plan)
        assert server.cluster.num_alive == 8  # nobody died
        assert result.faults["injected"]["link_lost"] == 1
        assert result.faults["link_losses"] == 1
        assert result.faults["device_losses"] == 0
        s = result.summary()
        assert s["completed"] + s["dropped"] == s["offered"]

    def test_cross_node_fetches_become_host_staged(self):
        # Repeated tensors make cross-node reuse likely; severing node 0's
        # links forces those fetches through the host instead.
        plan = FaultPlan((FaultEvent(FaultKind.LINK_LOST, 1e-4, 0),))
        _, degraded = run_multinode(plan)
        _, healthy = run_multinode(None)
        assert degraded.faults["host_staged_fetches"] > 0
        # Host staging replaces (never adds to) cross-node D2D traffic.
        assert (
            degraded.metrics.counts.cross_node_fetches
            <= healthy.metrics.counts.cross_node_fetches
        )

    def test_same_node_reuse_survives_link_loss(self):
        # Holders on the destination's own node stay reachable: the run
        # still gets reuse hits after every inter-node link is severed.
        plan = FaultPlan((
            FaultEvent(FaultKind.LINK_LOST, 1e-4, 0),
            FaultEvent(FaultKind.LINK_LOST, 1e-4, 4),
        ))
        _, result = run_multinode(plan)
        assert result.metrics.counts.reuse_hits > 0

    def test_duplicate_link_loss_is_idempotent(self):
        plan = FaultPlan((
            FaultEvent(FaultKind.LINK_LOST, 1e-4, 0),
            FaultEvent(FaultKind.LINK_LOST, 2e-4, 1),  # same node again
        ))
        _, result = run_multinode(plan)
        assert result.faults["link_losses"] == 1

    def test_generate_draws_link_lost_events(self):
        plan = FaultPlan.generate(
            7, num_devices=8, horizon_s=1.0, n_transient=0, n_transfer=0,
            n_straggler=0, n_device_lost=0, n_link_lost=3,
        )
        kinds = [e.kind for e in plan.events]
        assert kinds.count(FaultKind.LINK_LOST) == 3
        assert FaultPlan.from_dicts(plan.to_dicts()) == plan
