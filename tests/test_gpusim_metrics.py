"""Unit tests for ExecutionMetrics / MemoryOpCounts."""

import numpy as np
import pytest

from repro.gpusim.metrics import ExecutionMetrics, MemoryOpCounts


class TestCounts:
    def test_merge_adds(self):
        a = MemoryOpCounts(reuse_hits=1, h2d_transfers=2, d2d_transfers=3, allocations=4, evictions=5, eviction_bytes=6, transferred_bytes=7)
        b = MemoryOpCounts(reuse_hits=10, h2d_transfers=20, d2d_transfers=30, allocations=40, evictions=50, eviction_bytes=60, transferred_bytes=70)
        a.merge(b)
        assert (a.reuse_hits, a.h2d_transfers, a.d2d_transfers) == (11, 22, 33)
        assert (a.allocations, a.evictions, a.eviction_bytes, a.transferred_bytes) == (44, 55, 66, 77)

    def test_input_fetches(self):
        c = MemoryOpCounts(h2d_transfers=3, d2d_transfers=4)
        assert c.input_fetches == 7


class TestMetrics:
    def test_defaults_zeroed(self):
        m = ExecutionMetrics(num_devices=3)
        assert m.makespan_s == 0.0
        assert m.gflops == 0.0
        assert m.load_imbalance == 1.0
        assert m.memop_fraction == 0.0

    def test_gflops(self):
        m = ExecutionMetrics(num_devices=2)
        m.compute_s[:] = [2.0, 1.0]
        m.total_flops = 4_000_000_000
        assert m.gflops == pytest.approx(2.0)  # 4 GF / 2 s

    def test_makespan_is_max(self):
        m = ExecutionMetrics(num_devices=2)
        m.compute_s[:] = [1.0, 3.0]
        m.memop_s[:] = [0.5, 0.0]
        assert m.makespan_s == pytest.approx(3.0)

    def test_load_imbalance(self):
        m = ExecutionMetrics(num_devices=2)
        m.compute_s[:] = [3.0, 1.0]
        assert m.load_imbalance == pytest.approx(1.5)

    def test_memop_fraction(self):
        m = ExecutionMetrics(num_devices=1)
        m.compute_s[:] = [3.0]
        m.memop_s[:] = [1.0]
        assert m.memop_fraction == pytest.approx(0.25)

    def test_merge(self):
        a = ExecutionMetrics(num_devices=2)
        b = ExecutionMetrics(num_devices=2)
        a.compute_s[:] = [1.0, 0.0]
        b.compute_s[:] = [0.0, 2.0]
        a.total_flops, b.total_flops = 5, 7
        a.pairs_executed, b.pairs_executed = 1, 2
        b.pairs_per_device[:] = [0, 2]
        a.merge(b)
        np.testing.assert_allclose(a.compute_s, [1.0, 2.0])
        assert a.total_flops == 12
        assert a.pairs_executed == 3
        assert list(a.pairs_per_device) == [0, 2]

    def test_merge_rejects_mismatched_sizes(self):
        with pytest.raises(ValueError):
            ExecutionMetrics(num_devices=2).merge(ExecutionMetrics(num_devices=3))

    def test_summary_keys(self):
        s = ExecutionMetrics(num_devices=1).summary()
        for key in ("gflops", "makespan_s", "reuse_hits", "evictions", "load_imbalance"):
            assert key in s
