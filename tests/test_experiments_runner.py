"""Unit tests for the run-all driver and JSON export."""

import json

import numpy as np
import pytest

from repro.experiments.runner import _jsonable, result_to_dict, run_all, save_results


class TestJsonable:
    def test_scalars_pass_through(self):
        assert _jsonable(3) == 3
        assert _jsonable("x") == "x"
        assert _jsonable(None) is None

    def test_numpy_converted(self):
        assert _jsonable(np.float64(1.5)) == 1.5
        assert _jsonable(np.array([1, 2])) == [1, 2]

    def test_complex_split(self):
        assert _jsonable(1 + 2j) == {"real": 1.0, "imag": 2.0}

    def test_nested_containers(self):
        out = _jsonable({"a": [np.int64(1), (2, 3)]})
        assert out == {"a": [1, [2, 3]]}
        json.dumps(out)


class TestResultToDict:
    def test_rows_result(self):
        class R:
            rows = [{"x": np.float64(1.0)}]

        d = result_to_dict(R())
        assert d["rows"] == [{"x": 1.0}]
        assert d["type"] == "R"

    def test_matrix_result(self):
        class R:
            names = ["a", "b"]
            matrix = np.eye(2)

        d = result_to_dict(R())
        assert d["matrix"] == [[1.0, 0.0], [0.0, 1.0]]

    def test_list_result(self):
        class R:
            rows = []
            title = "t"

        d = result_to_dict([R(), R()])
        assert len(d["ablations"]) == 2
        assert d["ablations"][0]["title"] == "t"


class TestRunAll:
    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_all(include=["nope"], progress=None)

    def test_selected_subset_runs(self, monkeypatch, tmp_path):
        import repro.experiments as ex

        class FakeResult:
            rows = [{"v": 1}]

            def table(self):
                from repro.experiments.report import Table

                t = Table("fake", ["v"])
                t.add_row(1)
                return t

        fake = type("M", (), {"run": staticmethod(lambda quick: FakeResult())})
        monkeypatch.setitem(ex.EXPERIMENTS, "fig7", fake)
        results = run_all(include=["fig7"], progress=None)
        assert "fake" in results["fig7"]["text"]
        assert results["fig7"]["data"]["rows"] == [{"v": 1}]

        path = tmp_path / "out.json"
        save_results(results, path)
        payload = json.loads(path.read_text())
        assert payload["fig7"]["rows"] == [{"v": 1}]
