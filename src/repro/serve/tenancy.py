"""Multi-tenant serving: tenant specs, per-tenant streams and SLOs.

A :class:`TenantSpec` bundles everything one traffic source brings to a
shared cluster: a name, a weighted-fair admission weight, an arrival
process, a synthetic workload recipe (each tenant can have its own
tensor-size / repeated-rate / distribution regime — the MICCO
reuse-vs-balance tradeoff sharpens when tenants with different tensor
distributions compete for residency) and per-tenant SLO targets.

:func:`build_streams` materialises the specs into seeded
:class:`TenantStream`\\ s — per-tenant vectors and arrival timestamps
drawn from statistically independent generators spawned off one run
seed — which :class:`~repro.serve.server.MultiTenantServer` interleaves
into a single simulated timeline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.serve.arrivals import ArrivalProcess, arrivals_from_dict
from repro.serve.slo import LatencyReport
from repro.tensor.spec import VectorSpec
from repro.utils.rng import spawn_generators
from repro.workloads import SyntheticWorkload, WorkloadParams


@dataclass(frozen=True)
class SloTargets:
    """Per-tenant service-level objectives (all optional).

    Latency targets are on end-to-end sojourn time (arrival →
    completion), in simulated seconds; ``max_drop_rate`` bounds the
    shed fraction.  Unset targets are not evaluated (and vacuously
    attained).
    """

    p50_s: float | None = None
    p95_s: float | None = None
    p99_s: float | None = None
    max_drop_rate: float | None = None

    def __post_init__(self):
        for name in ("p50_s", "p95_s", "p99_s"):
            v = getattr(self, name)
            if v is not None and (not math.isfinite(v) or v <= 0):
                raise ConfigurationError(f"SLO target {name} must be > 0, got {v}")
        if self.max_drop_rate is not None and not 0 <= self.max_drop_rate <= 1:
            raise ConfigurationError(
                f"max_drop_rate must be in [0, 1], got {self.max_drop_rate}"
            )

    def attainment(self, report: LatencyReport) -> dict:
        """Evaluate the targets against a (per-tenant) latency report.

        Returns ``{"checks": {...}, "attained": bool}`` where each
        check carries target, actual and a ``met`` flag.  A target with
        no completions to measure against (NaN percentile) is unmet.
        """
        checks: dict[str, dict] = {}
        for name, target, actual in (
            ("p50_s", self.p50_s, report.p50),
            ("p95_s", self.p95_s, report.p95),
            ("p99_s", self.p99_s, report.p99),
        ):
            if target is not None:
                checks[name] = {
                    "target": target,
                    "actual": float(actual),
                    "met": bool(actual <= target),
                }
        if self.max_drop_rate is not None:
            checks["drop_rate"] = {
                "target": self.max_drop_rate,
                "actual": float(report.drop_rate),
                "met": bool(report.drop_rate <= self.max_drop_rate),
            }
        return {
            "checks": checks,
            "attained": all(c["met"] for c in checks.values()),
        }

    def to_dict(self) -> dict:
        return {
            "p50_s": self.p50_s,
            "p95_s": self.p95_s,
            "p99_s": self.p99_s,
            "max_drop_rate": self.max_drop_rate,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "SloTargets":
        try:
            return cls(**d)
        except TypeError as exc:
            raise ConfigurationError(f"bad SLO targets: {exc}") from None


@dataclass(frozen=True)
class TenantSpec:
    """One traffic source sharing the cluster.

    Parameters
    ----------
    name:
        Tenant identity, unique within a run (keys reports and weights).
    arrivals:
        When the tenant's vectors reach the server.
    workload:
        What the tenant's vectors look like; ``workload.num_vectors``
        is the tenant's stream length.
    weight:
        Weighted-fair admission share (relative to the other tenants'
        weights under saturation).
    slo:
        Per-tenant latency / drop-rate targets.
    """

    name: str
    arrivals: ArrivalProcess
    workload: WorkloadParams = field(default_factory=WorkloadParams)
    weight: float = 1.0
    slo: SloTargets = field(default_factory=SloTargets)

    def __post_init__(self):
        if not self.name:
            raise ConfigurationError("tenant name must be non-empty")
        if not math.isfinite(self.weight) or self.weight <= 0:
            raise ConfigurationError(
                f"tenant {self.name!r} weight must be finite and > 0, got {self.weight}"
            )
        if not isinstance(self.arrivals, ArrivalProcess):
            raise ConfigurationError(
                f"tenant {self.name!r} arrivals must be an ArrivalProcess, "
                f"got {type(self.arrivals).__name__}"
            )

    @property
    def num_vectors(self) -> int:
        return self.workload.num_vectors

    # ----------------------------------------------------------- persistence
    def to_dict(self) -> dict:
        from dataclasses import asdict

        return {
            "name": self.name,
            "weight": self.weight,
            "arrivals": self.arrivals.to_dict(),
            "workload": asdict(self.workload),
            "slo": self.slo.to_dict(),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "TenantSpec":
        if not isinstance(d, dict) or "name" not in d or "arrivals" not in d:
            raise ConfigurationError(
                f"tenant spec needs at least 'name' and 'arrivals', got {d!r}"
            )
        known = {"name", "weight", "arrivals", "workload", "slo"}
        unknown = set(d) - known
        if unknown:
            raise ConfigurationError(f"unknown tenant spec keys: {sorted(unknown)}")
        return cls(
            name=d["name"],
            weight=d.get("weight", 1.0),
            arrivals=arrivals_from_dict(d["arrivals"]),
            workload=WorkloadParams(**d.get("workload", {})),
            slo=SloTargets.from_dict(d.get("slo", {})),
        )


@dataclass
class TenantStream:
    """A materialised request stream for one run.

    ``spec`` is ``None`` for the anonymous single-tenant stream
    :meth:`~repro.serve.server.MiccoServer.run` builds internally.
    """

    spec: TenantSpec | None
    vectors: list[VectorSpec]
    times: list[float]


def build_streams(tenants, seed) -> list[TenantStream]:
    """Materialise each tenant's vectors and arrival times from one seed.

    Each tenant draws its workload and its arrivals from independent
    generators spawned off ``seed`` (no cross-tenant correlations, and
    adding a tenant does not perturb the others' streams beyond the
    spawn order).  Vector ids are renumbered globally so report and
    trace lanes stay unique across tenants.
    """
    tenants = list(tenants)
    if not tenants:
        raise ConfigurationError("multi-tenant run needs at least one TenantSpec")
    names = [t.name for t in tenants]
    if len(set(names)) != len(names):
        raise ConfigurationError(f"tenant names must be unique, got {names}")
    rngs = spawn_generators(seed, 2 * len(tenants))
    streams: list[TenantStream] = []
    next_id = 0
    for i, spec in enumerate(tenants):
        vectors = SyntheticWorkload(spec.workload, seed=rngs[2 * i]).vectors()
        for v in vectors:
            v.vector_id = next_id
            next_id += 1
        times = spec.arrivals.arrival_times(len(vectors), seed=rngs[2 * i + 1])
        streams.append(TenantStream(spec, vectors, times))
    return streams


def tenant_sections(report: LatencyReport, tenants) -> dict[str, dict]:
    """Per-tenant report section: latency summary + SLO attainment.

    One entry per tenant, keyed by name, each holding the tenant's
    weight, its :meth:`LatencyReport.summary` slice and the result of
    evaluating its :class:`SloTargets`.
    """
    sections: dict[str, dict] = {}
    for spec in tenants:
        sub = report.for_tenant(spec.name)
        sections[spec.name] = {
            "weight": spec.weight,
            "summary": sub.summary(),
            "slo": spec.slo.attainment(sub),
        }
    return sections
