"""Discrete-event timeline for the online serving simulator.

A :class:`Timeline` is a heap-ordered event queue that advances
simulated wall-clock time.  Three event kinds drive a serving run
(mirroring gym-sparksched's timeline structure):

* :class:`VectorArrival` — a vector enters the system,
* :class:`SchedulingDone` — the dispatcher finished assigning the
  vector's pairs to devices,
* :class:`VectorCompletion` — the last device finished the vector,
* :class:`DeviceOnline` — a scaled-up device finished warming up and
  joins the schedulable pool (no ticket attached),
* :class:`DigestSync` — the sharded control plane's global router
  refreshes its per-node load/residency digests (no ticket attached),
* :class:`HealthTick` — the health monitor samples heartbeats and
  re-evaluates per-shard suspicion (no ticket attached),
* :class:`DeviceRestore` — a flapped device's node comes back up and
  the device rejoins the pool cold (no ticket attached).

Ties at the same timestamp resolve in push order (a monotonic sequence
number), so event processing is fully deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.tensor.spec import VectorSpec


@dataclass
class Ticket:
    """Mutable per-vector lifecycle record threaded through events.

    Timestamps are simulated seconds; ``None`` until the corresponding
    stage happens.  ``devices`` lists the device ids the vector's pairs
    ran on (filled at scheduling time).
    """

    vector: VectorSpec
    arrival_s: float
    #: Owning tenant name (``None`` for single-tenant runs).
    tenant: str | None = None
    dispatch_s: float | None = None
    sched_done_s: float | None = None
    complete_s: float | None = None
    devices: list[int] = field(default_factory=list)
    #: Full pair→device assignment (index-aligned with ``vector.pairs``);
    #: recovery rewrites entries when orphaned pairs are re-scheduled.
    #: For a batched round this is the ticket's *own slice* of the merged
    #: assignment, so per-member fault recovery needs no round context.
    assignment: list[int] = field(default_factory=list)
    #: Bumped each time recovery supersedes the ticket's completion
    #: event; stale :class:`VectorCompletion` events are skipped.
    epoch: int = 0
    #: Scheduling round this ticket was dispatched in (``None`` before
    #: dispatch) and how many member vectors that round coalesced.
    round_id: int | None = None
    round_size: int = 1
    #: Live reference to the in-flight :class:`BatchRound`; cleared when
    #: the ticket settles (completes or is shed) so the round's
    #: scheduling slot is released exactly once per member.
    round: "BatchRound | None" = None
    #: Node shard the global router assigned the ticket to (``None``
    #: outside sharded serving, and before routing).
    shard: int | None = None
    #: Times the ticket was forwarded to another shard because its
    #: routed shard's queue was full (sharded serving only).
    forwards: int = 0
    #: Absolute completion deadline derived from the owning tenant's
    #: SLO (``arrival_s + p99 target``); ``None`` when no target is
    #: configured.  Batch assembly stops growing a round when adding a
    #: member would push the earliest deadline past this.
    deadline_s: float | None = None
    #: Hedge linkage (:class:`~repro.serve.health.HedgePair`) shared by
    #: a primary and its clone; ``None`` for unhedged tickets.
    hedge: object | None = None
    #: Set when the ticket lost a hedge race (or was a redundant clone
    #: that could not be placed) — cancelled tickets settle their round
    #: slot but record neither a completion nor a drop.
    cancelled: bool = False
    #: Shard currently charged for this ticket in the router's
    #: between-sync ``routed_since_sync`` correction, and the charged
    #: shard's digest epoch at charge time (sharded serving only).  The
    #: pair lets the router discharge exactly the corrections it made:
    #: on shed/abandon/cancel/reroute the charge is reversed, keeping
    #: ``pending`` reconciled with the shard's true backlog (a charge
    #: from a superseded epoch is simply dropped — its counter was
    #: already reset at the sync).
    charge_node: int | None = None
    charge_epoch: int = -1
    #: Pending learned-routing sample ``(node, t0, features, predicted,
    #: decision kind)``; labeled with the observed latency at completion,
    #: dropped when the ticket sheds, reroutes or loses a hedge race.
    route_sample: tuple | None = None


@dataclass
class BatchRound:
    """One scheduling round: the batch of tickets dispatched together.

    The serving loop may coalesce several compatible queued vectors into
    one round (see :attr:`~repro.serve.server.ServeConfig.max_batch_vectors`);
    their pairs are scheduled as a single merged vector so repeated
    tensors across the members are placed once, then each member gets
    its own :class:`VectorCompletion` event.  ``remaining`` counts the
    members still in flight — the round's scheduling slot is released
    only when every member has completed or been shed.
    """

    round_id: int
    members: list["Ticket"]
    #: Members not yet completed/abandoned (inits to ``len(members)``).
    remaining: int = -1

    def __post_init__(self):
        if not self.members:
            raise ConfigurationError("a scheduling round needs at least one ticket")
        if self.remaining < 0:
            self.remaining = len(self.members)

    @property
    def num_pairs(self) -> int:
        return sum(len(t.vector.pairs) for t in self.members)


@dataclass(frozen=True)
class Event:
    """Base timeline event: something happens at ``time_s``.

    ``ticket`` is the vector lifecycle record the event belongs to;
    pool-management events (:class:`DeviceOnline`) carry none.
    """

    time_s: float
    ticket: Ticket | None = None

    # Control events (digest syncs, health ticks) re-arm themselves and
    # must not keep the run alive on their own; Timeline counts them so
    # drivers can ask Timeline.work_remaining.  Class attribute, not a
    # dataclass field — subclasses override it.
    is_control = False

    def __post_init__(self):
        if self.time_s < 0:
            raise ConfigurationError(f"event time must be >= 0, got {self.time_s}")


@dataclass(frozen=True)
class VectorArrival(Event):
    """A vector arrives and requests admission."""


@dataclass(frozen=True)
class SchedulingDone(Event):
    """The dispatcher finished the round's pair→GPU assignment.

    ``round`` carries the full :class:`BatchRound` when the serving loop
    dispatched a batched round; ``ticket`` stays the round's head member
    so single-vector consumers keep working unchanged.
    """

    round: "BatchRound | None" = None


@dataclass(frozen=True)
class VectorCompletion(Event):
    """Every device involved in the vector finished its share.

    ``epoch`` snapshots the ticket's epoch at push time; if recovery
    re-schedules the vector afterwards (device loss), the ticket's
    epoch moves on and this event is recognised as stale and skipped.
    """

    epoch: int = 0


@dataclass(frozen=True)
class DigestSync(Event):
    """The sharded control plane refreshes its per-node digests.

    Fired every :attr:`~repro.serve.server.ServeConfig.sync_interval_s`
    simulated seconds by :class:`~repro.serve.sharded.ShardedServer`.
    Between syncs the global router deliberately works from stale
    summaries (corrected only by its own routing decisions since the
    last sync), modelling the coordination gap of a real two-level
    control plane.  No ticket attached.
    """

    is_control = True


@dataclass(frozen=True)
class HealthTick(Event):
    """The health monitor samples heartbeats and suspicion levels.

    Fired every ``health.heartbeat_interval_s`` simulated seconds when
    health checking is enabled: reachable shards beat, suspicion scores
    are re-evaluated, quarantine/probation transitions fire, and overdue
    queued tickets on suspect shards are hedged.  No ticket attached.
    """

    is_control = True


@dataclass(frozen=True)
class DeviceOnline(Event):
    """A scaling-up device finished its warm-up and becomes schedulable.

    Pushed by the autoscaler at decision time plus the configured
    warm-up delay; the device joins with a cold memory pool (no
    resident tensors).
    """

    device: int = -1

    def __post_init__(self):
        super().__post_init__()
        if self.device < 0:
            raise ConfigurationError(f"device must be >= 0, got {self.device}")


@dataclass(frozen=True)
class DeviceRestore(Event):
    """A flapped device's node comes back up (``node_flap`` up phase).

    Pushed by the driver when it applies a flap's down phase, at
    ``fault.time_s + duration_s``; the device rejoins the pool cold via
    :meth:`~repro.gpusim.cluster.ClusterState.restore_device` (plus
    journal-driven warm restore when enabled).  A *work* event — a run
    must not end while a restore is still due, or conservation breaks.
    """

    device: int = -1

    def __post_init__(self):
        super().__post_init__()
        if self.device < 0:
            raise ConfigurationError(f"device must be >= 0, got {self.device}")


class Timeline:
    """Heap-based event loop state: pending events + current time.

    ``pop`` never runs backwards — popping an event advances ``now`` to
    the event's timestamp; pushing an event earlier than ``now`` is a
    programming error and raises.
    """

    def __init__(self):
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = itertools.count()
        self._control = 0
        #: Current simulated time (timestamp of the last popped event).
        self.now = 0.0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    @property
    def work_remaining(self) -> bool:
        """True while any pending event is *not* a self-re-arming control
        timer.  Two periodic control events (digest sync + health tick)
        that each re-arm ``if timeline`` would keep each other alive
        forever; re-arming ``if timeline.work_remaining`` lets the run
        drain."""
        return len(self._heap) > self._control

    def push(self, event: Event) -> None:
        """Schedule ``event``; must not be in the simulated past."""
        if event.time_s < self.now:
            raise ConfigurationError(
                f"cannot schedule event at {event.time_s} before now={self.now}"
            )
        heapq.heappush(self._heap, (event.time_s, next(self._seq), event))
        if event.is_control:
            self._control += 1

    def pop(self) -> Event:
        """Remove and return the earliest event, advancing ``now``."""
        if not self._heap:
            raise IndexError("pop from an empty timeline")
        time_s, _, event = heapq.heappop(self._heap)
        self.now = time_s
        if event.is_control:
            self._control -= 1
        return event

    def peek_time(self) -> float:
        """Timestamp of the next event without popping it."""
        if not self._heap:
            raise IndexError("peek on an empty timeline")
        return self._heap[0][0]
