"""Unified serving entry point: one ``serve()`` call for every mode.

Historically each serving mode had its own front door — construct a
:class:`~repro.serve.server.MiccoServer` for a single stream, a
:class:`~repro.serve.server.MultiTenantServer` for a tenant roster, a
:class:`~repro.serve.sharded.ShardedServer` for the two-level control
plane — and call the matching ``run()`` overload.  :func:`serve`
collapses that into one function that picks the server class from the
:class:`~repro.serve.server.ServeConfig` alone:

===========================  =========================================
``ServeConfig`` state        dispatched server
===========================  =========================================
``sharded=True``             :class:`ShardedServer` (single-stream or
                             tenant roster, per ``tenants``)
``tenants`` non-empty        :class:`MultiTenantServer`
otherwise                    :class:`MiccoServer`
===========================  =========================================

Direct construction of the server classes still works (the entire test
surface exercises them) but emits a :class:`DeprecationWarning`;
:func:`serve` and :func:`make_server` are the supported paths.

Example
-------
>>> from repro.serve.api import serve
>>> result = serve(
...     ServeConfig(queue_capacity=32),
...     vectors=vectors,
...     arrivals=PoissonArrivals(200.0),
...     seed=7,
... )
>>> result.summary()["p99_s"]
"""

from __future__ import annotations

from repro.core.config import MiccoConfig
from repro.errors import ConfigurationError
from repro.serve.server import (
    MiccoServer,
    MultiTenantServer,
    ServeConfig,
    ServeResult,
    _api_construction,
)
from repro.serve.sharded import ShardedServer

__all__ = ["make_server", "serve"]


def make_server(
    config: ServeConfig | None = None,
    *,
    cluster: MiccoConfig | None = None,
    scheduler=None,
    predictor=None,
) -> MiccoServer:
    """Instantiate the server class ``config`` calls for.

    ``sharded=True`` selects :class:`ShardedServer`, a tenant roster
    selects :class:`MultiTenantServer`, anything else the single-loop
    :class:`MiccoServer`.  Unlike direct construction this path does
    not emit a :class:`DeprecationWarning`.

    Parameters
    ----------
    config:
        Serving-layer configuration (defaults to ``ServeConfig()``).
    cluster:
        Cluster + cost-model configuration (defaults to
        ``MiccoConfig()``).  Sharded mode needs a multi-node
        :class:`~repro.gpusim.topology.Topology` on its cost model.
    scheduler:
        Pair→GPU scheduler (defaults to MICCO).
    predictor:
        Optional reuse-bound predictor, forwarded verbatim.
    """
    cfg = config if config is not None else ServeConfig()
    if cfg.sharded:
        cls = ShardedServer
    elif cfg.tenants:
        cls = MultiTenantServer
    else:
        cls = MiccoServer
    with _api_construction():
        return cls(scheduler, cluster, cfg, predictor)


def serve(
    config: ServeConfig | None = None,
    *,
    cluster: MiccoConfig | None = None,
    scheduler=None,
    predictor=None,
    vectors=None,
    arrivals=None,
    seed=0,
    faults=None,
    reset: bool = True,
) -> ServeResult:
    """Run one serving simulation; the mode comes from ``config`` alone.

    Single-stream modes take the request stream as ``vectors`` (a list
    of :class:`~repro.tensor.spec.VectorSpec`) plus ``arrivals`` (an
    :class:`~repro.serve.arrivals.ArrivalProcess` or explicit
    timestamps).  When ``config.tenants`` is set the streams are drawn
    from the tenant specs instead and ``vectors``/``arrivals`` must be
    omitted.

    ``seed`` drives every stochastic draw (arrivals, tenant workloads,
    fault application order); identical arguments give byte-identical
    :class:`~repro.serve.server.ServeResult` reports.  ``faults``
    (a :class:`~repro.faults.plan.FaultPlan`) takes precedence over
    ``config.faults``.
    """
    server = make_server(
        config, cluster=cluster, scheduler=scheduler, predictor=predictor
    )
    cfg = server.serve_config
    if cfg.tenants:
        if vectors is not None or arrivals is not None:
            raise ConfigurationError(
                "ServeConfig.tenants is set: streams come from the tenant "
                "specs, do not pass vectors/arrivals"
            )
        return server.run(seed=seed, reset=reset, faults=faults)
    if vectors is None or arrivals is None:
        raise ConfigurationError(
            "single-stream serving needs vectors and arrivals "
            "(or a ServeConfig.tenants roster)"
        )
    return server.run(vectors, arrivals, seed=seed, reset=reset, faults=faults)
