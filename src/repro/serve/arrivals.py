"""Arrival processes: when do vectors reach the server?

Three generators, all driven through :func:`repro.utils.rng.as_generator`
so a fixed seed yields a bit-identical arrival trace:

* :class:`PoissonArrivals` — memoryless open-loop traffic at a fixed
  mean rate (exponential inter-arrivals),
* :class:`BurstyArrivals` — an on/off modulated Poisson process
  (exponentially distributed phase durations, different rates per
  phase) modelling flash crowds,
* :class:`TraceArrivals` — replay of explicit arrival timestamps,
  loadable from / savable to JSON (in the style of
  ray-scheduler-prototype's ``replaytrace``).
"""

from __future__ import annotations

import json
from abc import ABC, abstractmethod
from pathlib import Path

from repro.errors import WorkloadError
from repro.utils.rng import as_generator


class ArrivalProcess(ABC):
    """Produces absolute arrival timestamps (seconds, non-decreasing)."""

    #: Human-readable name used in reports (doubles as the ``kind`` tag
    #: in the serialized form).
    name: str = "arrivals"

    @abstractmethod
    def arrival_times(self, n: int, seed=None) -> list[float]:
        """Return ``n`` absolute arrival times starting from t=0."""

    @abstractmethod
    def to_dict(self) -> dict:
        """JSON-ready spec: ``{"kind": <name>, ...parameters}``."""

    def __eq__(self, other) -> bool:
        """Value equality: same process type and parameters."""
        return type(other) is type(self) and other.to_dict() == self.to_dict()

    __hash__ = None  # mutable-style value object

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


class PoissonArrivals(ArrivalProcess):
    """Open-loop Poisson traffic: ``rate`` vectors per simulated second."""

    name = "poisson"

    def __init__(self, rate: float):
        if rate <= 0:
            raise WorkloadError(f"arrival rate must be > 0, got {rate}")
        self.rate = float(rate)

    def arrival_times(self, n: int, seed=None) -> list[float]:
        _check_count(n)
        rng = as_generator(seed)
        gaps = rng.exponential(1.0 / self.rate, size=n)
        times, t = [], 0.0
        for g in gaps:
            t += float(g)
            times.append(t)
        return times

    def to_dict(self) -> dict:
        return {"kind": self.name, "rate": self.rate}


class BurstyArrivals(ArrivalProcess):
    """On/off modulated Poisson process (interrupted Poisson traffic).

    The source alternates between an ON phase (rate ``rate_on``, mean
    duration ``mean_on_s``) and an OFF phase (rate ``rate_off``, mean
    duration ``mean_off_s``); phase durations are exponential.  Because
    exponential inter-arrivals are memoryless, an arrival drawn past
    the phase boundary is discarded and redrawn at the new phase's
    rate — exact and deterministic under a fixed generator.
    """

    name = "bursty"

    def __init__(
        self,
        rate_on: float,
        rate_off: float = 0.0,
        *,
        mean_on_s: float = 1.0,
        mean_off_s: float = 1.0,
    ):
        if rate_on <= 0:
            raise WorkloadError(f"rate_on must be > 0, got {rate_on}")
        if rate_off < 0:
            raise WorkloadError(f"rate_off must be >= 0, got {rate_off}")
        if mean_on_s <= 0 or mean_off_s <= 0:
            raise WorkloadError(
                f"phase durations must be > 0, got on={mean_on_s} off={mean_off_s}"
            )
        self.rate_on = float(rate_on)
        self.rate_off = float(rate_off)
        self.mean_on_s = float(mean_on_s)
        self.mean_off_s = float(mean_off_s)

    def arrival_times(self, n: int, seed=None) -> list[float]:
        _check_count(n)
        rng = as_generator(seed)
        times: list[float] = []
        t = 0.0
        on = True
        phase_end = float(rng.exponential(self.mean_on_s))
        while len(times) < n:
            rate = self.rate_on if on else self.rate_off
            if rate > 0:
                nxt = t + float(rng.exponential(1.0 / rate))
                if nxt <= phase_end:
                    t = nxt
                    times.append(t)
                    continue
            t = phase_end
            on = not on
            mean = self.mean_on_s if on else self.mean_off_s
            phase_end = t + float(rng.exponential(mean))
        return times

    def to_dict(self) -> dict:
        return {
            "kind": self.name,
            "rate_on": self.rate_on,
            "rate_off": self.rate_off,
            "mean_on_s": self.mean_on_s,
            "mean_off_s": self.mean_off_s,
        }


class TraceArrivals(ArrivalProcess):
    """Replay of recorded arrival timestamps (seed is ignored)."""

    name = "trace"

    def __init__(self, times: list[float]):
        times = [float(t) for t in times]
        if not times:
            raise WorkloadError("an arrival trace needs at least one timestamp")
        if any(t < 0 for t in times):
            raise WorkloadError("arrival timestamps must be >= 0")
        if any(b < a for a, b in zip(times, times[1:])):
            raise WorkloadError("arrival timestamps must be non-decreasing")
        self.times = times

    def __len__(self) -> int:
        return len(self.times)

    def arrival_times(self, n: int, seed=None) -> list[float]:
        _check_count(n)
        if n > len(self.times):
            raise WorkloadError(
                f"trace holds {len(self.times)} arrivals, {n} requested"
            )
        return list(self.times[:n])

    def to_dict(self) -> dict:
        return {"kind": self.name, "times": list(self.times)}

    # ----------------------------------------------------------- JSON replay
    @classmethod
    def from_json(cls, path: str | Path) -> "TraceArrivals":
        """Load a trace written by :meth:`to_json`."""
        payload = json.loads(Path(path).read_text())
        try:
            times = payload["arrival_s"]
        except (TypeError, KeyError):
            raise WorkloadError(
                f"{path}: expected a JSON object with an 'arrival_s' list"
            ) from None
        return cls(times)

    def to_json(self, path: str | Path) -> None:
        """Write the trace as ``{"version": 1, "arrival_s": [...]}``."""
        Path(path).write_text(json.dumps({"version": 1, "arrival_s": self.times}))


def arrivals_from_dict(spec: dict) -> ArrivalProcess:
    """Rebuild an arrival process from its :meth:`~ArrivalProcess.to_dict` form."""
    if not isinstance(spec, dict) or "kind" not in spec:
        raise WorkloadError(f"arrival spec must be a dict with a 'kind' key, got {spec!r}")
    kind = spec["kind"]
    params = {k: v for k, v in spec.items() if k != "kind"}
    makers = {
        "poisson": lambda: PoissonArrivals(**params),
        "bursty": lambda: BurstyArrivals(**params),
        "trace": lambda: TraceArrivals(**params),
    }
    if kind not in makers:
        raise WorkloadError(
            f"unknown arrival kind {kind!r}; expected one of {sorted(makers)}"
        )
    try:
        return makers[kind]()
    except TypeError as exc:
        raise WorkloadError(f"bad parameters for {kind!r} arrivals: {exc}") from None


def _check_count(n: int) -> None:
    if n <= 0:
        raise WorkloadError(f"number of arrivals must be > 0, got {n}")
