"""Bounded admission queue with pluggable ordering and shed counters.

The server holds arrived-but-not-yet-dispatched vectors here.  When
the queue is full the offered vector is *shed* (dropped at admission,
never executed) — the counters make overload visible to the SLO report
and to backpressure-aware clients.

Ordering is a :class:`QueuePolicy` object mapping each ticket to a heap
key; three implementations ship:

* :class:`Fifo` — arrival order,
* :class:`Sjf`  — shortest-vector-first (fewest tensor slots dispatches
  first; FIFO among equals), a classic tail-latency lever when vector
  sizes are heterogeneous,
* :class:`WeightedFair` — weighted fair queueing across tenants: each
  tenant's sub-stream is dispatched in proportion to its weight under
  saturation (see the class docstring).

:class:`FaultAware` is not an ordering of its own but a *wrapper* over
any of them: it keeps the inner policy's dispatch order and adds an
admission gate that estimates each vector's completion probability from
the live fault rate (an EWMA over the fault events the injector has
recorded) and the surviving pool fraction, shedding doomed vectors at
admission (reason ``"predicted-infeasible"``) instead of wasting
execution on work that will be fault-abandoned mid-run.

Passing a policy *name* string still works for backwards compatibility
but is deprecated; construct the policy object instead.
"""

from __future__ import annotations

import heapq
import itertools
import math
import warnings
from abc import ABC, abstractmethod

from repro.errors import ConfigurationError
from repro.serve.timeline import Ticket

#: Names accepted where a policy is configured by string (CLI, JSON).
QUEUE_POLICIES = ("fifo", "sjf", "weighted")


class QueuePolicy(ABC):
    """Dispatch-order policy: maps a ticket to a sortable heap key.

    The :class:`AdmissionQueue` pops tickets in ascending key order.
    ``seq`` is the queue's monotonically increasing offer counter —
    include it (last) in the key so ties resolve in arrival order and
    ordering stays fully deterministic.

    Stateful policies (e.g. :class:`WeightedFair`'s per-tenant virtual
    clocks) additionally override :meth:`observe_pop` and :meth:`reset`.
    """

    #: Name used in counters/reports and for string lookup.
    name: str = "policy"

    @abstractmethod
    def key(self, ticket: Ticket, seq: int) -> tuple:
        """Heap key for ``ticket`` offered as the ``seq``-th ticket.

        MUST be side-effect free: the queue may compute a key and then
        shed the ticket without enqueueing it, and batch assembly may
        probe keys while scanning.  Stateful policies commit any state
        the key implies in :meth:`observe_offer`, which runs only once
        the ticket has actually entered the queue.
        """

    def observe_offer(self, ticket: Ticket, key: tuple) -> None:
        """Hook called after ``ticket`` successfully enqueued under ``key``.

        This is where stateful policies commit what :meth:`key`
        computed tentatively (e.g. :class:`WeightedFair` advances the
        tenant's virtual finish clock here).  A ticket shed before
        enqueueing — queue full, or an admission gate rejected it —
        never reaches this hook and therefore charges nothing.
        """

    def admit(self, ticket: Ticket, now: float) -> bool:
        """Admission gate consulted before a ticket enters the system.

        The default admits everything; :class:`FaultAware` overrides it
        to shed vectors unlikely to complete under the live fault rate.
        A False return sheds the ticket with reason
        ``"predicted-infeasible"`` (it never queues or executes).
        """
        return True

    def observe_pop(self, key: tuple) -> None:
        """Hook called with the key of each popped ticket (default no-op)."""

    def reset(self) -> None:
        """Clear any accumulated state (called when a queue is built)."""

    def counters(self) -> dict:
        """Policy-specific counters merged into the queue's report section.

        The default has none; wrappers (:class:`FaultAware`) must merge
        the wrapped policy's counters into their own.
        """
        return {}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


class Fifo(QueuePolicy):
    """Dispatch in arrival order."""

    name = "fifo"

    def key(self, ticket: Ticket, seq: int) -> tuple:
        return (seq,)


class Sjf(QueuePolicy):
    """Shortest-vector-first: fewest tensor slots dispatches first."""

    name = "sjf"

    def key(self, ticket: Ticket, seq: int) -> tuple:
        return (ticket.vector.num_tensors, seq)


class WeightedFair(QueuePolicy):
    """Weighted fair queueing over per-tenant sub-streams.

    Start-time fair queueing: each tenant keeps a virtual clock that
    advances by ``num_tensors / weight`` per ticket it offers, floored
    at the queue-wide virtual time (the largest finish tag dispatched
    so far, so an idle tenant cannot bank credit and later monopolise
    the queue).  Tickets dispatch in ascending finish-tag order, which
    realises the same proportional shares as deficit round-robin over
    per-tenant sub-queues — each tenant's clock *is* its sub-queue's
    deficit counter — while fitting the single-heap queue.

    Under saturation (every tenant backlogged) tenant ``i`` receives a
    ``w_i / Σw`` share of dispatches; an idle tenant's share is
    redistributed to the backlogged ones.

    Parameters
    ----------
    weights:
        Tenant name → positive weight.  Tickets from unknown tenants
        (or untagged single-tenant traffic) use ``default_weight``.
    """

    name = "weighted"

    def __init__(self, weights: dict[str, float] | None = None, default_weight: float = 1.0):
        weights = dict(weights or {})
        for tenant, w in weights.items():
            if not math.isfinite(w) or w <= 0:
                raise ConfigurationError(
                    f"tenant {tenant!r} weight must be finite and > 0, got {w}"
                )
        if not math.isfinite(default_weight) or default_weight <= 0:
            raise ConfigurationError(
                f"default_weight must be finite and > 0, got {default_weight}"
            )
        self.weights = weights
        self.default_weight = float(default_weight)
        self._finish: dict[str | None, float] = {}
        self._vtime = 0.0

    def weight_of(self, tenant: str | None) -> float:
        return self.weights.get(tenant, self.default_weight)

    def key(self, ticket: Ticket, seq: int) -> tuple:
        # Tentative: the finish tag is computed without touching the
        # tenant's clock.  Charging happens in observe_offer, so a
        # ticket shed before enqueueing (queue full, admission gate)
        # cannot skew its tenant's share under saturation.
        cost = ticket.vector.num_tensors / self.weight_of(ticket.tenant)
        start = max(self._vtime, self._finish.get(ticket.tenant, 0.0))
        return (start + cost, seq)

    def observe_offer(self, ticket: Ticket, key: tuple) -> None:
        self._finish[ticket.tenant] = key[0]

    def observe_pop(self, key: tuple) -> None:
        self._vtime = max(self._vtime, key[0])

    def reset(self) -> None:
        self._finish.clear()
        self._vtime = 0.0


class FaultAware(QueuePolicy):
    """Fault-aware admission gate wrapped around any :class:`QueuePolicy`.

    Dispatch order is delegated to ``inner`` untouched; what changes is
    *admission*: each offered vector's completion probability is
    estimated and vectors below ``min_success_prob`` are shed up front
    (shed reason ``"predicted-infeasible"``) rather than admitted,
    executed, and fault-abandoned mid-run — under a hostile fault plan
    that mid-run abandonment is pure wasted work.

    The estimate is deliberately simple and fully deterministic.  The
    serving loop feeds :meth:`observe` the injector's cumulative fault
    count (transient failures + device losses + transfer re-fetches
    from :class:`~repro.faults.recovery.FaultStats`) plus the live pool
    size; the wrapper maintains an exponentially weighted fault *rate*
    ``λ`` (events/second, time constant ``tau_s``).  A vector with
    ``P`` pairs then survives with

    ``p = exp(-λ · exposure_s_per_pair · P / alive_fraction)``

    — more pairs mean more exposure, and a shrunken pool both stretches
    the run and concentrates faults on the survivors.

    Parameters
    ----------
    inner:
        The dispatch-order policy to wrap.
    tau_s:
        EWMA time constant of the fault rate; shorter forgets faster.
    min_success_prob:
        Admission threshold on the estimated completion probability.
    exposure_s_per_pair:
        Seconds of fault exposure one pair contributes (scale knob
        matching the cost model's per-pair service time).
    """

    def __init__(
        self,
        inner: QueuePolicy,
        *,
        tau_s: float = 0.25,
        min_success_prob: float = 0.5,
        exposure_s_per_pair: float = 2e-3,
    ):
        if not isinstance(inner, QueuePolicy):
            raise ConfigurationError(f"inner must be a QueuePolicy, got {inner!r}")
        if isinstance(inner, FaultAware):
            raise ConfigurationError("FaultAware cannot wrap another FaultAware")
        if not math.isfinite(tau_s) or tau_s <= 0:
            raise ConfigurationError(f"tau_s must be finite and > 0, got {tau_s}")
        if not 0 < min_success_prob < 1:
            raise ConfigurationError(
                f"min_success_prob must be in (0, 1), got {min_success_prob}"
            )
        if not math.isfinite(exposure_s_per_pair) or exposure_s_per_pair <= 0:
            raise ConfigurationError(
                f"exposure_s_per_pair must be finite and > 0, got {exposure_s_per_pair}"
            )
        self.inner = inner
        self.name = f"fault-aware({inner.name})"
        self.tau_s = float(tau_s)
        self.min_success_prob = float(min_success_prob)
        self.exposure_s_per_pair = float(exposure_s_per_pair)
        self._rate = 0.0
        self._t_last = 0.0
        self._events_seen = 0
        self._alive_frac = 1.0
        #: Vectors this gate shed (mirrors the report's shed reason).
        self.shed_predicted = 0

    # -------------------------------------------------------------- signals
    def observe(self, now: float, fault_events: int, alive: int, total: int) -> None:
        """Feed the live fault picture (cumulative events, pool size)."""
        fresh = max(fault_events - self._events_seen, 0)
        self._events_seen = max(fault_events, self._events_seen)
        dt = max(now - self._t_last, 0.0)
        self._t_last = max(now, self._t_last)
        self._rate *= math.exp(-dt / self.tau_s)
        self._rate += fresh / self.tau_s
        self._alive_frac = alive / total if total > 0 else 0.0

    def fault_rate(self, now: float) -> float:
        """Decayed EWMA fault rate (events/second) as of ``now``."""
        dt = max(now - self._t_last, 0.0)
        return self._rate * math.exp(-dt / self.tau_s)

    def success_probability(self, ticket: Ticket, now: float) -> float:
        """Estimated probability the vector completes un-aborted."""
        if self._alive_frac <= 0.0:
            return 0.0
        hazard = (
            self.fault_rate(now)
            * self.exposure_s_per_pair
            * len(ticket.vector.pairs)
            / self._alive_frac
        )
        return math.exp(-hazard)

    # ------------------------------------------------------------ policy API
    def admit(self, ticket: Ticket, now: float) -> bool:
        ok = self.success_probability(ticket, now) >= self.min_success_prob
        if not ok:
            self.shed_predicted += 1
        return ok

    def key(self, ticket: Ticket, seq: int) -> tuple:
        return self.inner.key(ticket, seq)

    def observe_offer(self, ticket: Ticket, key: tuple) -> None:
        self.inner.observe_offer(ticket, key)

    def observe_pop(self, key: tuple) -> None:
        self.inner.observe_pop(key)

    def reset(self) -> None:
        self.inner.reset()
        self._rate = 0.0
        self._t_last = 0.0
        self._events_seen = 0
        self._alive_frac = 1.0
        self.shed_predicted = 0

    def counters(self) -> dict:
        return {**self.inner.counters(), "shed_predicted": self.shed_predicted}


_POLICY_FACTORIES = {"fifo": Fifo, "sjf": Sjf, "weighted": WeightedFair}


def make_policy(name: str, *, weights: dict[str, float] | None = None) -> QueuePolicy:
    """Build a :class:`QueuePolicy` from its registry name.

    ``weights`` only applies to ``"weighted"`` (ignored otherwise).
    """
    if name not in _POLICY_FACTORIES:
        raise ConfigurationError(
            f"unknown queue policy {name!r}; expected one of {QUEUE_POLICIES}"
        )
    if name == "weighted":
        return WeightedFair(weights)
    return _POLICY_FACTORIES[name]()


class AdmissionQueue:
    """Bounded buffer of :class:`~repro.serve.timeline.Ticket`\\ s.

    Parameters
    ----------
    capacity:
        Maximum queued tickets; offers beyond it are shed.
    policy:
        A :class:`QueuePolicy` instance (default: :class:`Fifo`).  A
        policy *name* string is still accepted (``DeprecationWarning``)
        and resolved through :func:`make_policy`.
    """

    def __init__(self, capacity: int = 64, policy: QueuePolicy | str | None = None):
        if capacity <= 0:
            raise ConfigurationError(f"queue capacity must be > 0, got {capacity}")
        if policy is None:
            policy = Fifo()
        elif isinstance(policy, str):
            warnings.warn(
                "passing a policy name string to AdmissionQueue is deprecated; "
                "pass a QueuePolicy instance (Fifo(), Sjf(), WeightedFair(...))",
                DeprecationWarning,
                stacklevel=2,
            )
            policy = make_policy(policy)
        if not isinstance(policy, QueuePolicy):
            raise ConfigurationError(
                f"policy must be a QueuePolicy or a name in {QUEUE_POLICIES}, got {policy!r}"
            )
        self.capacity = capacity
        self.policy = policy
        self.policy.reset()
        self._heap: list[tuple] = []
        self._seq = itertools.count()
        #: Tickets accepted into the queue.
        self.admitted = 0
        #: Tickets shed because the queue was full.
        self.dropped = 0
        #: High-water mark of queue depth.
        self.peak_depth = 0

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def is_full(self) -> bool:
        return len(self._heap) >= self.capacity

    def offer(self, ticket: Ticket) -> bool:
        """Try to enqueue; returns False (and counts a drop) when full.

        The policy key is computed tentatively and committed via
        :meth:`QueuePolicy.observe_offer` only once the ticket is
        actually in the heap, so shed tickets charge no policy state
        (e.g. no weighted-fair virtual time).
        """
        if self.is_full:
            self.dropped += 1
            return False
        seq = next(self._seq)
        key = self.policy.key(ticket, seq)
        heapq.heappush(self._heap, (*key, ticket))
        self.policy.observe_offer(ticket, key)
        self.admitted += 1
        self.peak_depth = max(self.peak_depth, len(self._heap))
        return True

    def tickets(self) -> list[Ticket]:
        """Queued tickets in policy (pop) order, without removing them.

        Used by the hedging sweep to find overdue tickets still waiting
        on a suspect shard.  Policy keys end in a unique sequence
        number, so sorting on the key prefix is total and deterministic
        (the trailing :class:`Ticket` never participates in comparison).
        """
        return [e[-1] for e in sorted(self._heap, key=lambda e: e[:-1])]

    def pop(self) -> Ticket | None:
        """Remove and return the next ticket per policy; None when empty."""
        if not self._heap:
            return None
        entry = heapq.heappop(self._heap)
        self.policy.observe_pop(entry[:-1])
        return entry[-1]

    def pop_batch(self, limit: int, accept=None) -> list[Ticket]:
        """Pop up to ``limit`` tickets for one scheduling round.

        The head ticket (first in policy order) is always taken.  The
        remaining queue is then scanned *in policy order*; each
        candidate is offered to ``accept(members, candidate)`` and
        either joins the batch or is left queued.  Skipped tickets are
        re-inserted under their original keys, so their relative
        dispatch order — including weighted-fair finish tags — is
        preserved exactly.  Returns ``[]`` when the queue is empty.
        """
        if limit < 1:
            raise ConfigurationError(f"batch limit must be >= 1, got {limit}")
        if not self._heap:
            return []
        first = heapq.heappop(self._heap)
        self.policy.observe_pop(first[:-1])
        members = [first[-1]]
        if limit > 1 and self._heap:
            skipped: list[tuple] = []
            while self._heap and len(members) < limit:
                entry = heapq.heappop(self._heap)
                if accept is None or accept(members, entry[-1]):
                    self.policy.observe_pop(entry[:-1])
                    members.append(entry[-1])
                else:
                    skipped.append(entry)
            for entry in skipped:
                heapq.heappush(self._heap, entry)
        return members

    def counters(self) -> dict:
        """Snapshot of the admission counters for reports.

        Policy-specific counters (e.g. :class:`FaultAware`'s
        ``shed_predicted``) merge in alongside the queue's own.
        """
        return {
            "capacity": self.capacity,
            "policy": self.policy.name,
            "admitted": self.admitted,
            "dropped": self.dropped,
            "peak_depth": self.peak_depth,
            **self.policy.counters(),
        }
