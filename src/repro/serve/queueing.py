"""Bounded admission queue with pluggable ordering and shed counters.

The server holds arrived-but-not-yet-dispatched vectors here.  When
the queue is full the offered vector is *shed* (dropped at admission,
never executed) — the counters make overload visible to the SLO report
and to backpressure-aware clients.

Two orderings:

* ``"fifo"`` — arrival order,
* ``"sjf"``  — shortest-vector-first (fewest tensor slots dispatches
  first; FIFO among equals), a classic tail-latency lever when vector
  sizes are heterogeneous.
"""

from __future__ import annotations

import heapq
import itertools

from repro.errors import ConfigurationError
from repro.serve.timeline import Ticket

#: Supported queue disciplines.
QUEUE_POLICIES = ("fifo", "sjf")


class AdmissionQueue:
    """Bounded buffer of :class:`~repro.serve.timeline.Ticket`\\ s.

    Parameters
    ----------
    capacity:
        Maximum queued tickets; offers beyond it are shed.
    policy:
        ``"fifo"`` or ``"sjf"`` (see module docstring).
    """

    def __init__(self, capacity: int = 64, policy: str = "fifo"):
        if capacity <= 0:
            raise ConfigurationError(f"queue capacity must be > 0, got {capacity}")
        if policy not in QUEUE_POLICIES:
            raise ConfigurationError(
                f"unknown queue policy {policy!r}; expected one of {QUEUE_POLICIES}"
            )
        self.capacity = capacity
        self.policy = policy
        self._heap: list[tuple] = []
        self._seq = itertools.count()
        #: Tickets accepted into the queue.
        self.admitted = 0
        #: Tickets shed because the queue was full.
        self.dropped = 0
        #: High-water mark of queue depth.
        self.peak_depth = 0

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def is_full(self) -> bool:
        return len(self._heap) >= self.capacity

    def _key(self, ticket: Ticket, seq: int) -> tuple:
        if self.policy == "sjf":
            return (ticket.vector.num_tensors, seq)
        return (seq,)

    def offer(self, ticket: Ticket) -> bool:
        """Try to enqueue; returns False (and counts a drop) when full."""
        if self.is_full:
            self.dropped += 1
            return False
        seq = next(self._seq)
        heapq.heappush(self._heap, (*self._key(ticket, seq), ticket))
        self.admitted += 1
        self.peak_depth = max(self.peak_depth, len(self._heap))
        return True

    def pop(self) -> Ticket | None:
        """Remove and return the next ticket per policy; None when empty."""
        if not self._heap:
            return None
        return heapq.heappop(self._heap)[-1]

    def counters(self) -> dict:
        """Snapshot of the admission counters for reports."""
        return {
            "capacity": self.capacity,
            "policy": self.policy,
            "admitted": self.admitted,
            "dropped": self.dropped,
            "peak_depth": self.peak_depth,
        }
