"""Global-tier routing policies for the sharded control plane.

The :class:`~repro.serve.sharded.GlobalScheduler` routes each arriving
vector to one node shard.  It sees the cluster only through
:class:`ShardSnapshot` records — per-node digests refreshed every
``sync_interval_s`` simulated seconds plus the router's own count of
tickets it sent since the last sync — so every policy here must behave
under *stale* information: a digest may undercount a shard's backlog or
advertise residency that has since been evicted.  Policies therefore
only ever *rank* candidates; correctness (the ticket lands on an alive
shard with queue space, or is forwarded) is the router's job.

This module is intentionally a leaf — it imports nothing from the
serving loop — so :class:`~repro.serve.server.ServeConfig` can validate
routing names without a circular import.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.gpusim.costmodel import lex_argmin

#: Routing policy names accepted by ``ServeConfig.routing`` and
#: ``micco serve --routing``.
ROUTING_POLICIES = (
    "least-loaded", "residency-affinity", "threshold-local", "learned"
)

#: Below this many candidate shards a plain tuple-key ``min`` beats the
#: numpy path (same crossover logic as the schedulers' candidate scan).
VECTOR_MIN_SHARDS = 12


def rank_shards(snapshots: list[ShardSnapshot], overlap: list[int] | None = None) -> int:
    """Winning node id under the shared lexicographic digest ranking.

    The key is ``(suspect, [-overlap,] linkless, backlog, node)`` —
    healthy before suspect, largest residency overlap first when given,
    well-linked before degraded, smallest backlog, lowest node id.  With
    many shards the key columns are scored in one
    :func:`~repro.gpusim.costmodel.lex_argmin` call over parallel
    arrays; the small-fleet path is an ordinary tuple ``min``.  Both
    compare the same integer values, so the pick is identical.
    """
    n = len(snapshots)
    if n >= VECTOR_MIN_SHARDS:
        keys = [np.fromiter((s.suspect for s in snapshots), dtype=np.int64, count=n)]
        if overlap is not None:
            keys.append(-np.asarray(overlap, dtype=np.int64))
        keys.append(np.fromiter((s.linkless for s in snapshots), dtype=np.int64, count=n))
        keys.append(np.fromiter((s.backlog for s in snapshots), dtype=np.int64, count=n))
        keys.append(np.fromiter((s.node for s in snapshots), dtype=np.int64, count=n))
        return snapshots[lex_argmin(*keys)].node
    if overlap is None:
        return min(
            snapshots, key=lambda s: (s.suspect, s.linkless, s.backlog, s.node)
        ).node
    best = min(
        range(n),
        key=lambda i: (
            snapshots[i].suspect,
            -overlap[i],
            snapshots[i].linkless,
            snapshots[i].backlog,
            snapshots[i].node,
        ),
    )
    return snapshots[best].node


@dataclass(frozen=True)
class ShardSnapshot:
    """The router's (possibly stale) view of one node shard.

    ``queue_depth``/``inflight``/``residency`` come from the shard's
    last digest; ``pending`` is the router-side correction — tickets it
    routed to the shard *since* that digest — so the estimated backlog
    does not collapse to zero between syncs.  ``linkless`` marks a node
    degraded by a ``link_lost`` fault: alive, but every fetch into or
    out of it is host-staged, so policies deprioritise it.  ``suspect``
    marks a shard the health monitor no longer fully trusts (missed
    heartbeats); every policy ranks suspect shards after healthy ones,
    ahead only of link-degraded suspects.
    """

    node: int
    #: Alive devices the digest reported.
    alive: int
    queue_depth: int
    inflight: int
    linkless: bool = False
    #: Health monitor doubts this shard (suspicion above threshold).
    suspect: bool = False
    #: uid -> resident bytes on the shard's devices (digest summary).
    residency: dict = field(default_factory=dict)
    #: Tickets routed to this shard since its digest was taken.
    pending: int = 0
    #: --- Enriched features (filled only for ``wants_features`` policies;
    #: static policies never pay for them and never see them). ---
    #: Seconds since the digest was taken (staleness of everything above).
    age_s: float = 0.0
    #: Phi-accrual suspicion score from the health monitor.
    suspicion: float = 0.0
    #: Times this shard has entered quarantine so far.
    quarantines: int = 0
    #: Forwarding circuit-breaker state: 0 closed, 1 half-open, 2 open.
    breaker: int = 0
    #: Max corruption-blame EWMA over the shard's devices.
    blame: float = 0.0

    @property
    def backlog(self) -> int:
        """Estimated queued + in-flight work, stale-corrected."""
        return self.queue_depth + self.inflight + self.pending


class RoutingPolicy(ABC):
    """Ranks candidate shards for one vector.

    ``choose`` receives the candidate snapshots (already filtered to
    alive shards the router has not yet tried for this ticket) and must
    return one of their node ids.  Determinism rule: break every tie on
    the lowest node id, so fixed-seed runs replay bit for bit.
    """

    name: str = "?"
    #: Policies that opt in receive snapshots carrying the enriched
    #: feature fields (age, suspicion, quarantines, breaker, blame) and
    #: placement/outcome callbacks from the router.  Static policies
    #: leave this ``False`` so their snapshots — and artifacts — stay
    #: byte-identical to the pre-learned-routing code path.
    wants_features: bool = False

    @abstractmethod
    def choose(self, vector, snapshots: list[ShardSnapshot]) -> int:
        """Pick the target node id for ``vector`` from ``snapshots``."""

    def __repr__(self):
        return f"{type(self).__name__}()"


class LeastLoaded(RoutingPolicy):
    """Route to the shard with the smallest estimated backlog.

    Link-degraded nodes rank strictly after healthy ones (host-staged
    fetches are expensive): they receive traffic only when every
    candidate is degraded, or through full-queue forwarding.
    """

    name = "least-loaded"

    def choose(self, vector, snapshots: list[ShardSnapshot]) -> int:
        return rank_shards(snapshots)


class ResidencyAffinity(RoutingPolicy):
    """Route to the shard already holding the most referenced bytes.

    Overlap is summed over the vector's *distinct* input tensors
    against the digest's residency summary; a stale digest merely makes
    the overlap estimate wrong, never the placement invalid.  Ties (and
    zero-overlap vectors) fall back to least-loaded order.
    """

    name = "residency-affinity"

    def choose(self, vector, snapshots: list[ShardSnapshot]) -> int:
        uids: dict[int, int] = {}
        for pair in vector.pairs:
            for spec in pair.inputs:
                uids.setdefault(spec.uid, spec.nbytes)

        overlap = [
            sum(nbytes for uid, nbytes in uids.items() if uid in snap.residency)
            for snap in snapshots
        ]
        return rank_shards(snapshots, overlap)


class ThresholdLocal(RoutingPolicy):
    """Delegate to a home shard unless its backlog exceeds a bound.

    The home shard is a deterministic hash of the vector id over the
    candidate set, so steady-state traffic spreads without any load
    information at all; the router only pays attention (falling back to
    least-loaded) when the home's estimated backlog crosses
    ``threshold`` — the cheapest policy in control-plane work.
    """

    name = "threshold-local"

    def __init__(self, threshold: int = 4):
        if threshold < 0:
            raise ConfigurationError(f"threshold must be >= 0, got {threshold}")
        self.threshold = threshold

    def choose(self, vector, snapshots: list[ShardSnapshot]) -> int:
        ordered = sorted(snapshots, key=lambda s: s.node)
        home = ordered[vector.vector_id % len(ordered)]
        if not home.suspect and not home.linkless and home.backlog <= self.threshold:
            return home.node
        return rank_shards(snapshots)

    def __repr__(self):
        return f"ThresholdLocal(threshold={self.threshold})"


def make_routing_policy(name: str, **kwargs) -> RoutingPolicy:
    """Build a routing policy from its registry name."""
    if name == "least-loaded":
        return LeastLoaded()
    if name == "residency-affinity":
        return ResidencyAffinity()
    if name == "threshold-local":
        return ThresholdLocal(**kwargs)
    if name == "learned":
        # Imported lazily: learned.py pulls in repro.ml (numpy model
        # stack), and this module must stay a leaf for ServeConfig's
        # parse-time validation.
        from repro.serve.sharded.learned import LearnedRouting

        return LearnedRouting(**kwargs)
    raise ConfigurationError(
        f"unknown routing policy {name!r}; expected one of {ROUTING_POLICIES}"
    )
