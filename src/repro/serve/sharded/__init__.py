"""Two-level sharded control plane: global router + per-node schedulers.

The package splits the serving control loop into a global routing tier
(:class:`GlobalScheduler`) and one local scheduler per topology node
(:class:`NodeRuntime`), coordinated only through periodically synced
load/residency digests.  :class:`ShardedServer` is the façade; enable
it with ``ServeConfig(sharded=True)`` or ``micco serve --sharded``.
"""

from repro.serve.sharded.learned import LearnedRouting
from repro.serve.sharded.node import NodeDigest, NodeRuntime, ShardView
from repro.serve.sharded.routing import (
    ROUTING_POLICIES,
    LeastLoaded,
    ResidencyAffinity,
    RoutingPolicy,
    ShardSnapshot,
    ThresholdLocal,
    make_routing_policy,
)
from repro.serve.sharded.server import GlobalScheduler, ShardedServer

__all__ = [
    "ROUTING_POLICIES",
    "GlobalScheduler",
    "LearnedRouting",
    "LeastLoaded",
    "NodeDigest",
    "NodeRuntime",
    "ResidencyAffinity",
    "RoutingPolicy",
    "ShardSnapshot",
    "ShardView",
    "ShardedServer",
    "ThresholdLocal",
    "make_routing_policy",
]
