"""Two-level sharded control plane: a global router over node schedulers.

:class:`ShardedServer` splits the single serving control loop into a
*global tier* (:class:`GlobalScheduler`: admission + routing from stale
per-node digests) and one :class:`~repro.serve.sharded.node.NodeRuntime`
per topology node, each running its own admission queue, MICCO
reuse-bound placement and batching over only its node's devices.  The
whole plane still executes on one deterministic
:class:`~repro.serve.timeline.Timeline`, so fixed-seed runs replay bit
for bit; what changes is the *scope* of every control decision:

* arrivals are routed (``least-loaded`` / ``residency-affinity`` /
  ``threshold-local`` / ``learned`` — see
  :mod:`repro.serve.sharded.learned`) to a shard, forwarded to the
  next-best shard when the target's queue is full;
* each shard batches and places only over its own devices — the
  balance share, the reuse bounds and the candidate tiers are all
  shard-local;
* node runtimes report load/residency digests every
  :attr:`~repro.serve.server.ServeConfig.sync_interval_s`; between
  syncs the router works from stale summaries, corrected only by its
  own routing decisions;
* a ``node_lost`` fault kills exactly one shard — its queued tickets
  re-route through the global tier (arrival timestamps intact, so
  per-tenant SLO accounting stays exact) and its in-flight work is
  re-executed on a surviving shard chosen by the router;
* a ``link_lost`` fault degrades a shard without killing it: the
  router deprioritises it and its cross-node fetches are host-staged.

Tensors still live in one shared
:class:`~repro.gpusim.cluster.ClusterState`; a vector routed away from
its data pays real ``cross_node_fetches`` through the cost model
rather than being silently co-located.
"""

from __future__ import annotations

import copy
import itertools

import numpy as np

from repro.core.config import MiccoConfig
from repro.errors import ConfigurationError, FaultError
from repro.faults.injector import FaultInjector
from repro.faults.journal import ResidencyJournal
from repro.faults.plan import FaultKind, FaultPlan
from repro.gpusim.metrics import ExecutionMetrics
from repro.integrity import IntegrityState
from repro.schedulers.base import Scheduler
from repro.schedulers.batching import merge_vectors, split_assignment
from repro.serve.arrivals import ArrivalProcess, TraceArrivals
from repro.serve.autoscale import Autoscaler
from repro.serve.health import (
    AdaptiveHedgeDeadline,
    CircuitBreaker,
    HealthMonitor,
    HedgePair,
    hedge_shielded,
)
from repro.serve.queueing import (
    AdmissionQueue,
    FaultAware,
    Fifo,
    QueuePolicy,
    WeightedFair,
    make_policy,
)
from repro.serve.server import MiccoServer, ServeConfig, ServeResult
from repro.serve.sharded.node import NodeRuntime, ShardView
from repro.serve.sharded.routing import RoutingPolicy, make_routing_policy
from repro.serve.slo import LatencyReport
from repro.serve.tenancy import TenantStream, build_streams, tenant_sections
from repro.serve.timeline import (
    BatchRound,
    DeviceOnline,
    DeviceRestore,
    DigestSync,
    HealthTick,
    SchedulingDone,
    Ticket,
    Timeline,
    VectorArrival,
    VectorCompletion,
)
from repro.tensor.spec import VectorSpec
from repro.workloads.characteristics import CharacteristicsTracker

#: Test hook invoked at the top of every :meth:`GlobalScheduler.sync`
#: (before the digests refresh) with ``(router, now, unreachable)``.
#: The digest-conservation property test installs an auditor here to
#: check, at each sync, that every live shard's ``routed_since_sync``
#: reconciles exactly with its completed-since-sync count plus the
#: charged tickets still queued or in flight.  ``None`` in production.
SYNC_AUDIT_HOOK = None

#: Circuit-breaker state encoded as a routing feature.
_BREAKER_CODE = {
    CircuitBreaker.CLOSED: 0,
    CircuitBreaker.HALF_OPEN: 1,
    CircuitBreaker.OPEN: 2,
}


class GlobalScheduler:
    """The global routing tier: stale digests in, shard choices out.

    Holds the per-node digests refreshed at every
    :class:`~repro.serve.timeline.DigestSync` and the routing policy.
    Between syncs each shard's estimated backlog is its last digest
    plus the tickets routed there since (``routed_since_sync``) — the
    router corrects for its *own* actions but not for completions it
    has not heard about, exactly the coordination gap of a real
    two-level control plane.

    Announced shard *death* is visible immediately (fail-stop faults
    carry their own notification): a dead shard never receives traffic,
    however stale its last digest.  *Gray* failures are not announced —
    an unreachable shard's digest simply stops refreshing (see
    :meth:`sync`) and only the attached :class:`HealthMonitor` can get
    the shard out of the routing set.
    """

    def __init__(
        self,
        shards: dict[int, NodeRuntime],
        policy: RoutingPolicy,
        sync_interval_s: float,
    ):
        self.shards = shards
        self.policy = policy
        self.sync_interval_s = sync_interval_s
        #: node -> last :class:`NodeDigest` (dropped when a shard dies).
        self.digests: dict = {}
        #: Optional :class:`~repro.serve.health.HealthMonitor`; when set,
        #: suspect shards are deprioritized and quarantined/probation
        #: shards excluded from routing (with a never-strand fallback).
        self.monitor: HealthMonitor | None = None
        #: Per-node forwarding breakers (set by the server when health
        #: is on); read here only as a ``wants_features`` routing input.
        self.breakers: dict[int, CircuitBreaker] = {}
        #: Optional ``node -> corruption-blame EWMA`` callable (set by
        #: the server when the integrity layer is on).
        self.blame_of = None
        #: Digest refreshes performed.
        self.syncs = 0
        #: Full-queue forward hops (ticket bounced to the next shard).
        self.forwards = 0
        #: Tickets re-homed after their shard died.
        self.reroutes = 0

    def sync(self, now: float, linkless_devices=frozenset(), unreachable=frozenset()) -> None:
        """Refresh every *reachable* live shard's digest.

        ``unreachable`` names shards that exist but cannot report right
        now (gray failures: every device down in a ``node_flap`` phase,
        or silenced by ``heartbeat_loss``).  Their digests are kept
        *stale* rather than refreshed or dropped — the router keeps
        routing on old information, exactly the failure mode health
        inference exists to catch.  Router-side ``routed_since_sync``
        corrections are likewise kept for unreachable shards.
        """
        if SYNC_AUDIT_HOOK is not None:
            SYNC_AUDIT_HOOK(self, now, unreachable)
        self.syncs += 1
        for node in sorted(self.shards):
            shard = self.shards[node]
            if shard.dead:
                self.digests.pop(node, None)
                continue
            if node in unreachable:
                continue
            self.digests[node] = shard.digest(now, linkless_devices)
            shard.routed_since_sync = 0
            shard.completed_since_sync = 0
            shard.sync_epoch += 1

    def _snapshot(self, node: int, digest, now: float):
        """Router-side snapshot, enriched only for opted-in policies."""
        shard = self.shards[node]
        monitor = self.monitor
        suspect = monitor.is_suspect(node) if monitor is not None else False
        if not self.policy.wants_features:
            return shard.snapshot(digest, suspect=suspect)
        breaker = self.breakers.get(node)
        return shard.snapshot(
            digest,
            suspect=suspect,
            age_s=max(now - digest.time_s, 0.0),
            suspicion=(
                monitor.suspicion(node, now) if monitor is not None else 0.0
            ),
            quarantines=(
                monitor.quarantine_count(node) if monitor is not None else 0
            ),
            breaker=(
                _BREAKER_CODE[breaker.state] if breaker is not None else 0
            ),
            blame=self.blame_of(node) if self.blame_of is not None else 0.0,
        )

    def route(self, vector: VectorSpec, now: float, exclude=frozenset()) -> int | None:
        """Choose a live shard for ``vector``; ``None`` when none remain.

        Routing state is *not* charged here: the caller commits the
        choice (queue offer or direct dispatch) and calls
        :meth:`charge` only on success, so a full-queue rejection does
        not inflate the shard's estimated backlog.

        With a health monitor attached, quarantined/probation/dead
        shards are excluded outright and suspect shards are flagged so
        every policy deprioritizes them; when exclusion would leave no
        candidate at all, the excluded set is used as a fallback —
        routing never strands a ticket that some shard could still take.
        """
        monitor = self.monitor
        routable: list = []
        avoided: list = []
        for node, digest in sorted(self.digests.items()):
            if node in exclude or self.shards[node].dead:
                continue
            snap = self._snapshot(node, digest, now)
            if monitor is not None and monitor.is_unroutable(node):
                avoided.append(snap)
            else:
                routable.append(snap)
        candidates = routable or avoided
        if not candidates:
            return None
        return self.policy.choose(vector, candidates)

    # ------------------------------------------- between-sync charge ledger
    def charge(self, ticket: Ticket, node: int, now: float) -> None:
        """Count a committed placement in the shard's stale correction.

        Every successful placement charges — direct dispatch, queue
        admission, forward landings, re-routes and hedge clones alike —
        because all of them are load the digest has not seen yet.  The
        ticket records which shard (and which digest epoch) it charged
        so :meth:`discharge` can reverse exactly this correction if the
        ticket later leaves the shard without completing.
        """
        shard = self.shards[node]
        shard.routed_since_sync += 1
        ticket.charge_node = node
        ticket.charge_epoch = shard.sync_epoch
        if self.policy.wants_features:
            digest = self.digests.get(node)
            if digest is not None:
                self.policy.note_placed(
                    ticket, self._snapshot(node, digest, now), now
                )

    def discharge(self, ticket: Ticket, now: float) -> None:
        """Reverse a ticket's pending charge (shed/abandon/cancel/reroute).

        A charge stamped under a superseded digest epoch was already
        wiped by the sync-time counter reset, so only a current-epoch
        charge decrements; either way the ticket's charge is cleared
        and any pending learned-routing sample is dropped (its latency
        would not be a completion latency).
        """
        node = ticket.charge_node
        if node is None:
            return
        ticket.charge_node = None
        shard = self.shards.get(node)
        if (
            shard is not None
            and not shard.dead
            and ticket.charge_epoch == shard.sync_epoch
            and shard.routed_since_sync > 0
        ):
            shard.routed_since_sync -= 1
        ticket.charge_epoch = -1
        if self.policy.wants_features:
            self.policy.note_outcome(ticket, now, completed=False)

    def note_completion(self, ticket: Ticket, now: float) -> None:
        """Settle a charged ticket's ledger entry on completion.

        The completion does *not* decrement ``routed_since_sync`` —
        the router deliberately never corrects for completions it has
        not heard about (the two-level coordination gap) — it only
        moves the charge to ``completed_since_sync`` so the sync-time
        conservation audit can reconcile the counters exactly.
        """
        node = ticket.charge_node
        if node is not None:
            shard = self.shards.get(node)
            if (
                shard is not None
                and not shard.dead
                and ticket.charge_epoch == shard.sync_epoch
            ):
                shard.completed_since_sync += 1
            ticket.charge_node = None
            ticket.charge_epoch = -1
        if self.policy.wants_features:
            self.policy.note_outcome(ticket, now, completed=True)


class ShardedServer(MiccoServer):
    """Sharded-control-plane mode of :class:`MiccoServer`.

    Requires a multi-node :class:`~repro.gpusim.topology.Topology` on
    the cost model — each topology node becomes one shard.  The serving
    knobs come from the same :class:`~repro.serve.server.ServeConfig`
    (``sync_interval_s``, ``routing``); tenants and the autoscaler are
    applied *per shard* (weighted-fair admission inside each shard's
    queue, the autoscaler config clamped to each shard's device count).

    Example
    -------
    >>> topo = Topology(num_devices=8, devices_per_node=4)
    >>> cfg = MiccoConfig(num_devices=8, cost_model=CostModel(topology=topo))
    >>> serve = ServeConfig(sharded=True, routing="residency-affinity")
    >>> result = ShardedServer(config=cfg, serve=serve).run(vectors, arrivals)
    >>> result.sharding["shards"][0]["routed"]
    """

    def __init__(
        self,
        scheduler: Scheduler | None = None,
        config: MiccoConfig | None = None,
        serve: ServeConfig | None = None,
        predictor=None,
    ):
        super().__init__(scheduler, config, serve, predictor)
        topo = self.config.cost_model.topology
        if topo is None:
            raise ConfigurationError(
                "ShardedServer needs a multi-node Topology on the cost model "
                "(set CostModel(topology=Topology(...)) on MiccoConfig)"
            )
        if topo.num_devices != self.cluster.num_devices:
            raise ConfigurationError(
                f"topology covers {topo.num_devices} devices but the cluster "
                f"has {self.cluster.num_devices}"
            )
        self.topology = topo

    # ------------------------------------------------------------------- run
    def run(
        self,
        vectors: list[VectorSpec] | None = None,
        arrivals=None,
        *,
        seed=0,
        reset: bool = True,
        faults: FaultPlan | None = None,
    ) -> ServeResult:
        """Serve one stream (``vectors`` + ``arrivals``) or the tenant roster.

        With :attr:`ServeConfig.tenants` configured the streams come
        from the tenant specs (multi-tenant sharded serving) and
        ``vectors``/``arrivals`` must be omitted; otherwise this
        mirrors :meth:`MiccoServer.run`'s single-stream signature.
        """
        if self.serve_config.tenants:
            if vectors is not None or arrivals is not None:
                raise ConfigurationError(
                    "ServeConfig.tenants is set: streams come from the tenant "
                    "specs, do not pass vectors/arrivals"
                )
            streams = build_streams(self.serve_config.tenants, seed)
        else:
            if not vectors:
                raise ConfigurationError(
                    "serving run needs at least one vector (or ServeConfig.tenants)"
                )
            if isinstance(arrivals, ArrivalProcess):
                times = arrivals.arrival_times(len(vectors), seed)
            else:
                times = TraceArrivals(list(arrivals)).arrival_times(len(vectors))
            streams = [TenantStream(spec=None, vectors=list(vectors), times=times)]
        return self._serve_sharded(streams, faults=faults, reset=reset, seed=seed)

    # ----------------------------------------------------------- shard set-up
    def _shard_policy(self, streams: list[TenantStream]) -> QueuePolicy:
        """A fresh per-shard dispatch policy (never shared across shards).

        Same resolution as the single loop's
        :meth:`MiccoServer._resolve_policy`, minus the fault-aware wrap
        — in sharded mode the :class:`FaultAware` gate runs once at the
        global tier, before routing, so shed accounting is not split
        across shards.
        """
        cfg = self.serve_config
        policy = cfg.queue_policy
        if isinstance(policy, QueuePolicy):
            return copy.deepcopy(policy)
        weights = {s.spec.name: s.spec.weight for s in streams if s.spec is not None}
        if policy == "auto":
            policy = "weighted" if weights else "fifo"
        return WeightedFair(weights) if policy == "weighted" else make_policy(policy)

    def _build_shards(self, streams: list[TenantStream]) -> dict[int, NodeRuntime]:
        """One :class:`NodeRuntime` per topology node."""
        cfg = self.serve_config
        shards: dict[int, NodeRuntime] = {}
        for node in range(self.topology.num_nodes):
            devices = self.topology.devices_of_node(node)
            scaler = None
            if cfg.autoscaler is not None:
                c = cfg.autoscaler
                n = len(devices)
                # The global autoscaler config, clamped to this shard's
                # physical device count (per-shard scaling decisions).
                min_d = max(1, min(c.min_devices, n))
                max_d = max(min_d, min(c.max_devices, n))
                initial = (
                    None
                    if c.initial_devices is None
                    else max(min_d, min(c.initial_devices, max_d))
                )
                scaler = Autoscaler(
                    c.with_(min_devices=min_d, max_devices=max_d, initial_devices=initial)
                )
            shards[node] = NodeRuntime(
                node=node,
                devices=devices,
                view=ShardView(self.cluster, devices),
                scheduler=copy.deepcopy(self.scheduler),
                queue=AdmissionQueue(cfg.queue_capacity, self._shard_policy(streams)),
                tracker=CharacteristicsTracker(),
                scaler=scaler,
            )
        return shards

    # ------------------------------------------------------------- event loop
    def _serve_sharded(
        self,
        streams: list[TenantStream],
        *,
        faults: FaultPlan | None,
        reset: bool = True,
        seed=0,
    ) -> ServeResult:
        """The sharded discrete-event loop (single shared timeline)."""
        if reset:
            self.cluster.reset()
            if hasattr(self.scheduler, "reset_stats"):
                self.scheduler.reset_stats()

        cfg = self.serve_config
        topo = self.topology
        if faults is None:
            faults = cfg.faults
        timeline = Timeline()
        report = LatencyReport()
        total = ExecutionMetrics(num_devices=self.cluster.num_devices)
        busy_until = np.zeros(self.cluster.num_devices)
        wants_bounds = self.predictor is not None and hasattr(self.scheduler, "set_bounds")
        injector = (
            FaultInjector(faults, self.cluster.num_devices) if faults is not None else None
        )
        journal = ResidencyJournal(cfg.journal_capacity) if cfg.warm_restore else None
        integ = (
            IntegrityState(cfg.integrity, self.cluster.num_devices)
            if cfg.integrity is not None and cfg.integrity.mode != "off"
            else None
        )
        #: id(ticket) -> audited-and-repaired; re-pushed completions of
        #: repaired tickets skip a second audit (see VectorCompletion).
        verified: set[int] = set()
        # Fault-aware admission runs once at the global tier (the shard
        # queues keep plain policies — see _shard_policy).
        gate = (
            FaultAware(Fifo(), min_success_prob=cfg.admission_min_success)
            if cfg.fault_aware_admission
            else None
        )
        shards = self._build_shards(streams)
        policy_kwargs = {}
        if cfg.routing == "learned":
            # The exploration stream derives from the run seed, so the
            # learned policy replays byte-identically at a fixed seed.
            entropy = (seed if isinstance(seed, int) else 0) & 0xFFFF_FFFF
            policy_kwargs = dict(
                explore_floor=cfg.explore_floor,
                min_samples=cfg.min_samples,
                refit_interval=cfg.refit_interval,
                seed=np.random.SeedSequence([0x1EA4, entropy]),
            )
        router = GlobalScheduler(
            shards,
            make_routing_policy(cfg.routing, **policy_kwargs),
            cfg.sync_interval_s,
        )
        pending: dict[int, Ticket] = {}
        round_ids = itertools.count()
        rounds_log: list[dict] = []
        events_processed = 0

        # ----- health subsystem (monitor + breakers + hedging state) -----
        hcfg = cfg.health
        monitor: HealthMonitor | None = None
        breakers: dict[int, CircuitBreaker] = {}
        breaker_log: list[dict] = []
        hstats = {
            "launched": 0,
            "won_by_primary": 0,
            "won_by_clone": 0,
            "cancelled": 0,
            "absorbed_drops": 0,
            "unplaced": 0,
        }
        health_events: list[dict] = []
        hedger = (
            AdaptiveHedgeDeadline(hcfg)
            if hcfg is not None and hcfg.hedging and hcfg.adaptive_hedging
            else None
        )
        if hcfg is not None:
            monitor = HealthMonitor(shards.keys(), hcfg)
            router.monitor = monitor
            breakers = {
                n: CircuitBreaker(
                    n,
                    hcfg.breaker_threshold,
                    hcfg.breaker_probe_interval_s,
                    transitions=breaker_log,
                )
                for n in sorted(shards)
            }
            router.breakers = breakers
        if integ is not None:
            router.blame_of = lambda node: max(
                (integ.ewma[d] for d in shards[node].devices), default=0.0
            )

        # Per-shard reuse-bound anchors (each shard rescales its own
        # scheduler's bounds from its own starting pool).
        for shard in shards.values():
            if (
                self.predictor is None
                and hasattr(shard.scheduler, "bounds")
                and hasattr(shard.scheduler, "set_bounds")
            ):
                shard.bounds_anchor = (shard.scheduler.bounds, shard.view.num_alive)
            if shard.scaler is not None:
                self._shrink_shard_to_initial(shard)

        for stream in streams:
            tenant = stream.spec.name if stream.spec is not None else None
            p99_target = stream.spec.slo.p99_s if stream.spec is not None else None
            for t, v in zip(stream.times, stream.vectors):
                deadline = t + p99_target if p99_target is not None else None
                timeline.push(
                    VectorArrival(
                        t,
                        Ticket(vector=v, arrival_s=t, tenant=tenant, deadline_s=deadline),
                    )
                )

        def linkless() -> frozenset[int]:
            return injector.linkless_devices if injector is not None else frozenset()

        def unreachable_shards(now: float) -> frozenset[int]:
            """Live shards that cannot report right now (gray failures)."""
            silent = (
                injector.silent_devices(now) if injector is not None else frozenset()
            )
            return frozenset(
                n
                for n, s in shards.items()
                if not s.dead
                and (s.view.num_alive == 0 or any(d in silent for d in s.devices))
            )

        def down_shards() -> frozenset[int]:
            """Live shards with every device flapped down (unschedulable)."""
            return frozenset(
                n for n, s in shards.items() if not s.dead and s.view.num_alive == 0
            )

        def dispatch(shard: NodeRuntime, members: list[Ticket], now: float) -> None:
            """Dispatch one scheduling round on ``shard``."""
            shard.inflight += 1
            rnd = BatchRound(round_id=next(round_ids), members=members)
            for t in members:
                t.dispatch_s = now
                t.round_id = rnd.round_id
                t.round_size = len(members)
                t.round = rnd
                t.shard = shard.node
                shard.inflight_tickets[id(t)] = t
            latency = cfg.schedule_latency_per_pair_s * rnd.num_pairs
            timeline.push(SchedulingDone(now + latency, members[0], round=rnd))
            rounds_log.append(
                {
                    "round_id": rnd.round_id,
                    "shard": shard.node,
                    "members": [t.vector.vector_id for t in members],
                    "pairs": rnd.num_pairs,
                    "dispatch_s": now,
                    "sched_done_s": now + latency,
                }
            )

        def refill(shard: NodeRuntime, now: float) -> None:
            if shard.dead or shard.view.num_alive == 0:
                return
            while shard.inflight < cfg.max_inflight:
                members = self._pop_shard_round(shard, now)
                if not members:
                    break
                # Hedge losers cancelled while queued settle silently.
                members = [t for t in members if not t.cancelled]
                if not members:
                    continue
                dispatch(shard, members, now)

        def settle(ticket: Ticket, now: float) -> None:
            """A round member settled; free the shard slot on the last one."""
            pending.pop(id(ticket), None)
            if ticket.shard is not None:
                owner = shards.get(ticket.shard)
                if owner is not None:
                    owner.inflight_tickets.pop(id(ticket), None)
            rnd = ticket.round
            ticket.round = None
            if rnd is None:
                return  # never dispatched (e.g. dropped while queued)
            rnd.remaining -= 1
            if rnd.remaining > 0:
                return
            shard = shards.get(ticket.shard)
            if shard is not None and not shard.dead:
                shard.inflight -= 1
                refill(shard, now)

        def abandon(ticket: Ticket, now: float) -> None:
            ticket.epoch += 1
            router.discharge(ticket, now)
            if hedge_shielded(ticket):
                # The vector's hedge partner is still racing: this copy
                # cancels silently instead of recording an SLO drop.
                ticket.cancelled = True
                hstats["absorbed_drops"] += 1
            else:
                report.add_drop(ticket, reason="fault-abandoned")
            settle(ticket, now)

        def place(
            ticket: Ticket,
            now: float,
            rerouted: bool = False,
            hedge_clone: bool = False,
            tried=None,
        ) -> None:
            """Route ``ticket`` to a shard; forward past full queues.

            The router proposes shards in policy order; a full shard
            costs one forward hop and joins ``tried``, which excludes
            *every* previously-rejected shard from the retry — one
            routing attempt visits each shard at most once, so a ticket
            facing all-full queues sheds deterministically instead of
            bouncing.  Shards whose forwarding circuit breaker is open
            are skipped without an offer; if only breaker-skipped
            shards remain they get one bypass pass (last resort beats
            stranding).  When every live shard is full the ticket is
            shed ``queue-full``; with no live shard at all it is
            ``fault-abandoned`` — unless a hedge partner still covers
            the vector, in which case this copy cancels silently.
            """
            if ticket.cancelled:
                return
            tried = set() if tried is None else set(tried)
            skipped: set[int] = set()
            bypass = False
            while True:
                node = router.route(ticket.vector, now, exclude=tried | skipped)
                if node is None:
                    if skipped and not bypass:
                        bypass = True
                        skipped.clear()
                        continue
                    if hedge_clone or hedge_shielded(ticket):
                        ticket.cancelled = True
                        hstats["unplaced" if hedge_clone else "absorbed_drops"] += 1
                    elif tried:
                        report.add_drop(ticket)  # every live shard was full
                    else:
                        report.add_drop(ticket, reason="fault-abandoned")
                    return
                shard = shards[node]
                breaker = breakers.get(node)
                if breaker is not None and not bypass and not breaker.allow(now):
                    skipped.add(node)
                    continue
                if (
                    shard.inflight < cfg.max_inflight
                    and not len(shard.queue)
                    and shard.view.num_alive > 0
                ):
                    dispatch(shard, [ticket], now)
                elif not shard.queue.offer(ticket):
                    if breaker is not None:
                        breaker.record_rejection(now)
                    tried.add(node)
                    ticket.forwards += 1
                    router.forwards += 1
                    continue
                else:
                    ticket.shard = node
                if breaker is not None:
                    breaker.record_success(now)
                shard.routed += 1
                router.charge(ticket, node, now)
                if ticket.forwards:
                    shard.forwarded_in += 1
                if rerouted:
                    shard.rerouted_in += 1
                if hedge_clone:
                    shard.hedged_in += 1
                return

        def reroute(ticket: Ticket, now: float) -> None:
            """Re-home a ticket whose shard died (arrival clock intact)."""
            if ticket.shard is not None:
                old = shards.get(ticket.shard)
                if old is not None:
                    old.inflight_tickets.pop(id(ticket), None)
            router.discharge(ticket, now)
            ticket.round = None
            ticket.round_id = None
            ticket.dispatch_s = None
            ticket.sched_done_s = None
            ticket.shard = None
            router.reroutes += 1
            place(ticket, now, rerouted=True)

        def apply_loss(fault, now: float) -> None:
            """Kill a failure domain; recover through shard or router."""
            kind = fault.kind.value
            members = [
                d for d in self._blast_radius(fault) if not self.cluster.is_failed(d)
            ]
            if not members:
                return
            orphaned = self.cluster.fail_node(members)
            if not orphaned:
                return
            if fault.kind is FaultKind.NODE_LOST:
                injector.stats.node_losses += 1
            for dev, orphans in sorted(orphaned.items()):
                injector.note_device_lost(dev, fault.time_s, len(orphans))
                injector.stats.record_event(
                    "fault", dev, fault.time_s, 0.0, label=kind.replace("_", " ")
                )
            dead = set(orphaned)
            by_shard: dict[int, set[int]] = {}
            for d in dead:
                by_shard.setdefault(topo.node_of(d), set()).add(d)

            latest = now
            rescheduled = 0
            for node in sorted(by_shard):
                shard = shards[node]
                if shard.view.num_alive == 0:
                    # The whole shard died: queued work re-routes through
                    # the global tier, in-flight work re-homes on a
                    # router-chosen surviving shard.
                    shard.dead = True
                    shard.inflight = 0
                    shard.inflight_tickets.clear()
                    shard.pending_online.clear()
                    router.digests.pop(node, None)
                    for t in shard.drain_queue():
                        reroute(t, now)
                    affected = [
                        t for t in pending.values() if by_shard[node] & set(t.assignment)
                    ]
                    for ticket in sorted(affected, key=lambda t: t.vector.vector_id):
                        # The charge cannot complete on the dead shard;
                        # drop it (and any learned sample) before the
                        # ticket re-homes.
                        router.discharge(ticket, now)
                        if not cfg.recover_faults:
                            abandon(ticket, now)
                            continue
                        target_node = router.route(ticket.vector, now)
                        if target_node is None:
                            abandon(ticket, now)
                            continue
                        target = shards[target_node]
                        try:
                            complete = self._reschedule_orphans(
                                ticket, by_shard[node], now, busy_until, total,
                                stats=injector.stats,
                                scheduler=target.scheduler, cluster=target.view,
                            )
                        except FaultError:
                            abandon(ticket, now)
                            continue
                        router.reroutes += 1
                        target.rerouted_in += 1
                        ticket.epoch += 1
                        timeline.push(VectorCompletion(complete, ticket, epoch=ticket.epoch))
                        latest = max(latest, complete)
                        rescheduled += 1
                else:
                    # Partial loss: the shard recovers on its own
                    # survivors, with its own rescaled bounds.
                    alive_before = shard.view.num_alive + len(by_shard[node])
                    self._rescale_shard_bounds(shard, alive_before, shard.view.num_alive)
                    affected = [
                        t for t in pending.values() if by_shard[node] & set(t.assignment)
                    ]
                    for ticket in sorted(affected, key=lambda t: t.vector.vector_id):
                        if not cfg.recover_faults:
                            abandon(ticket, now)
                            continue
                        try:
                            complete = self._reschedule_orphans(
                                ticket, by_shard[node], now, busy_until, total,
                                stats=injector.stats,
                                scheduler=shard.scheduler, cluster=shard.view,
                            )
                        except FaultError:
                            abandon(ticket, now)
                            continue
                        ticket.epoch += 1
                        timeline.push(VectorCompletion(complete, ticket, epoch=ticket.epoch))
                        latest = max(latest, complete)
                        rescheduled += 1
                    if (
                        shard.scaler is not None
                        and shard.scaler.config.replace_lost
                    ):
                        self._replace_lost_shard(
                            shard, now, timeline, len(by_shard[node])
                        )
            if cfg.recover_faults:
                injector.stats.record_recovery(kind, latest - fault.time_s)
                injector.stats.record_event(
                    "recovery", fault.device, now, max(latest - now, 0.0),
                    label=f"rescheduled {rescheduled} vectors",
                )
            else:
                injector.stats.record_recovery(kind, 0.0)

        def apply_flap(fault, now: float) -> None:
            """A node bounces: devices die *without announcement*.

            Unlike :func:`apply_loss` the shard is NOT marked dead, its
            queue is NOT drained and its digest stays stale — from the
            router's perspective nothing happened, which is the whole
            point of a gray fault.  In-flight work referencing the dead
            devices still has to move (the simulation knows the work
            cannot finish), and a :class:`DeviceRestore` per device
            brings the node back ``duration_s`` later.
            """
            members = [
                d for d in self._blast_radius(fault) if not self.cluster.is_failed(d)
            ]
            if not members:
                return
            orphaned = self.cluster.fail_node(members)
            if not orphaned:
                return
            for dev, orphans in sorted(orphaned.items()):
                injector.note_device_lost(dev, fault.time_s, len(orphans))
                injector.stats.record_event(
                    "fault", dev, fault.time_s, fault.duration_s, label="node flap down"
                )
                timeline.push(
                    DeviceRestore(
                        max(now, fault.time_s + fault.duration_s), device=dev
                    )
                )
            dead = set(orphaned)
            by_shard: dict[int, set[int]] = {}
            for d in dead:
                by_shard.setdefault(topo.node_of(d), set()).add(d)

            latest = now
            rescheduled = 0
            for node in sorted(by_shard):
                shard = shards[node]
                whole_node = shard.view.num_alive == 0
                if not whole_node:
                    alive_before = shard.view.num_alive + len(by_shard[node])
                    self._rescale_shard_bounds(
                        shard, alive_before, shard.view.num_alive
                    )
                affected = [
                    t for t in pending.values() if by_shard[node] & set(t.assignment)
                ]
                for ticket in sorted(affected, key=lambda t: t.vector.vector_id):
                    if not cfg.recover_faults:
                        abandon(ticket, now)
                        continue
                    if whole_node:
                        target_node = router.route(
                            ticket.vector, now, exclude=down_shards()
                        )
                        if target_node is None:
                            abandon(ticket, now)
                            continue
                        target = shards[target_node]
                    else:
                        target = shard
                    try:
                        complete = self._reschedule_orphans(
                            ticket, by_shard[node], now, busy_until, total,
                            stats=injector.stats,
                            scheduler=target.scheduler, cluster=target.view,
                        )
                    except FaultError:
                        abandon(ticket, now)
                        continue
                    if whole_node:
                        router.reroutes += 1
                        target.rerouted_in += 1
                    ticket.epoch += 1
                    timeline.push(
                        VectorCompletion(complete, ticket, epoch=ticket.epoch)
                    )
                    latest = max(latest, complete)
                    rescheduled += 1
            if cfg.recover_faults:
                injector.stats.record_recovery("node_flap", latest - fault.time_s)
                if rescheduled:
                    injector.stats.record_event(
                        "recovery", fault.device, now, max(latest - now, 0.0),
                        label=f"rescheduled {rescheduled} vectors",
                    )
            else:
                injector.stats.record_recovery("node_flap", 0.0)

        def apply_silence(fault, now: float) -> None:
            """A node goes gray-silent: alive and computing, not reporting."""
            devices = sorted(
                d for d in self._blast_radius(fault) if self.cluster.is_alive(d)
            )
            if not devices:
                return
            injector.note_heartbeat_loss(
                devices, fault.time_s, fault.time_s + fault.duration_s
            )
            injector.stats.record_event(
                "fault", fault.device, fault.time_s, fault.duration_s,
                label="heartbeat loss",
            )

        def quarantine_blamed(dev: int, now: float) -> None:
            """Retire a device blamed for silent corruption (sharded path).

            Mirrors :meth:`MiccoServer._quarantine_device` with
            shard-scoped recovery — the bounds rescale and the orphan
            rescheduling run through the *owning shard's* scheduler and
            view — and escalates the blame into the health monitor as a
            suspicion floor, so routing stops trusting the node even
            though its heartbeats still arrive on time (corruption is
            exactly the gray failure heartbeats cannot see).
            """
            node = topo.node_of(dev)
            shard = shards[node]
            for uid in integ.dirty_uids_on(dev):
                if self.cluster.is_resident(uid, dev):
                    self.cluster.drop(uid, dev, reason="corrupt")
            injector.stats.record_event(
                "blame", dev, now, 0.0,
                label=f"quarantined (corruption ewma {integ.ewma[dev]:.3f})",
            )
            if monitor is not None:
                monitor.raise_suspicion(node, hcfg.quarantine_threshold)
            health_events.append(
                {
                    "kind": "blame",
                    "node": node,
                    "time_s": now,
                    "label": f"device {dev} quarantined for corruption",
                }
            )
            if not self.cluster.is_alive(dev) or self.cluster.num_alive <= 1:
                return
            if shard.dead or shard.view.num_alive <= 1:
                # Never retire a shard's last device: a degraded shard
                # beats a dead one, and mandatory audits of its output
                # will flag whatever cannot be verified.
                return
            before = shard.view.num_alive
            self.cluster.retire_device(dev)
            self._rescale_shard_bounds(shard, before, shard.view.num_alive)
            affected = [t for t in pending.values() if dev in set(t.assignment)]
            for ticket in sorted(affected, key=lambda t: t.vector.vector_id):
                try:
                    complete = self._reschedule_orphans(
                        ticket, {dev}, now, busy_until, total,
                        stats=injector.stats,
                        scheduler=shard.scheduler, cluster=shard.view,
                    )
                except FaultError:
                    abandon(ticket, now)
                    continue
                verified.discard(id(ticket))
                ticket.epoch += 1
                timeline.push(VectorCompletion(complete, ticket, epoch=ticket.epoch))

        self.engine.injector = injector
        self.engine.integrity = integ
        self.cluster.journal = journal
        # Initial digests so routing works before the first sync fires.
        router.sync(0.0, linkless())
        timeline.push(DigestSync(cfg.sync_interval_s))
        if monitor is not None:
            timeline.push(HealthTick(hcfg.heartbeat_interval_s))
        try:
            while timeline:
                event = timeline.pop()
                now = timeline.now
                events_processed += 1
                if journal is not None:
                    journal.advance(now)
                if injector is not None:
                    for loss in injector.poll(now):
                        if loss.kind is FaultKind.LINK_LOST:
                            self._apply_link_loss(loss, now, injector)
                        elif loss.kind is FaultKind.NODE_FLAP:
                            apply_flap(loss, now)
                        elif loss.kind is FaultKind.HEARTBEAT_LOSS:
                            apply_silence(loss, now)
                        elif loss.kind is FaultKind.TENSOR_BITFLIP:
                            self._apply_bitflip(loss, now, injector, integ)
                        else:
                            apply_loss(loss, now)
                if integ is not None:
                    for dev in integ.poll_quarantines():
                        quarantine_blamed(dev, now)
                for node in sorted(shards):
                    self._autoscale_shard_step(
                        shards[node], now, timeline, pending, busy_until,
                        total, injector, abandon,
                    )
                ticket = event.ticket

                if isinstance(event, DigestSync):
                    router.sync(now, linkless(), unreachable=unreachable_shards(now))
                    if timeline.work_remaining:
                        # Stop syncing once only control timers remain:
                        # digests with no traffic left would tick forever.
                        timeline.push(DigestSync(now + cfg.sync_interval_s))

                elif isinstance(event, VectorArrival):
                    if gate is not None:
                        fault_events = 0
                        if injector is not None:
                            s = injector.stats
                            fault_events = (
                                s.transient_failures
                                + s.device_losses
                                + s.transfer_refetches
                            )
                        gate.observe(
                            now, fault_events,
                            self.cluster.num_alive, self.cluster.num_devices,
                        )
                    if self.cluster.num_alive == 0:
                        report.add_drop(ticket, reason="fault-abandoned")
                    elif gate is not None and not gate.admit(ticket, now):
                        report.add_drop(ticket, reason="predicted-infeasible")
                        if injector is not None:
                            injector.stats.predicted_infeasible += 1
                    else:
                        place(ticket, now)

                elif isinstance(event, SchedulingDone):
                    members = event.round.members if event.round is not None else [ticket]
                    for t in members:
                        t.sched_done_s = now
                    shard = shards.get(members[0].shard)
                    if shard is None or shard.dead or shard.view.num_alive == 0:
                        # The shard died (or flapped down to zero alive
                        # devices) between dispatch and sched-done.  A
                        # dead shard's inflight was already zeroed; a
                        # flapped shard's round slot is released here.
                        if (
                            shard is not None
                            and not shard.dead
                            and shard.inflight > 0
                        ):
                            shard.inflight -= 1
                        for t in members:
                            if t.cancelled:
                                t.round = None
                                if shard is not None:
                                    shard.inflight_tickets.pop(id(t), None)
                                continue
                            reroute(t, now)
                        continue
                    # Hedge losers cancelled between dispatch and
                    # sched-done settle here, releasing the round slot.
                    for t in members:
                        if t.cancelled:
                            settle(t, now)
                    members = [t for t in members if not t.cancelled]
                    if not members:
                        continue
                    merged = merge_vectors([t.vector for t in members])
                    try:
                        vec_metrics, assignment = self._schedule_on_shard(
                            merged, shard, wants_bounds
                        )
                    except FaultError:
                        for t in members:
                            abandon(t, now)
                        continue
                    delta = vec_metrics.compute_s + vec_metrics.memop_s
                    for dev in sorted(set(assignment)):
                        busy_until[dev] = max(busy_until[dev], now) + delta[dev]
                    total.merge(vec_metrics)
                    slices = split_assignment([t.vector for t in members], assignment)
                    for t, sl in zip(members, slices):
                        t.assignment = sl
                        t.devices = sorted(set(sl))
                        complete = max((busy_until[d] for d in t.devices), default=now)
                        pending[id(t)] = t
                        timeline.push(
                            VectorCompletion(max(complete, now), t, epoch=t.epoch)
                        )

                elif isinstance(event, VectorCompletion):
                    if event.epoch != ticket.epoch or ticket.cancelled:
                        continue
                    if integ is not None and id(ticket) not in verified:
                        action, ready = self._audit_ticket(
                            integ, ticket, now, busy_until, total, injector
                        )
                        if action == "repair":
                            verified.add(id(ticket))
                            ticket.epoch += 1
                            timeline.push(
                                VectorCompletion(
                                    max(ready, now), ticket, epoch=ticket.epoch
                                )
                            )
                            continue
                        if action == "flag":
                            router.discharge(ticket, now)
                            report.add_drop(ticket, reason="integrity-unverified")
                            settle(ticket, now)
                            continue
                    if integ is not None:
                        verified.discard(id(ticket))
                        integ.note_reported(ticket.vector, ticket.assignment)
                    ticket.complete_s = now
                    rec = report.add_completion(ticket)
                    router.note_completion(ticket, now)
                    if hedger is not None:
                        hedger.observe(ticket.tenant, rec.latency_s)
                    owner = shards.get(ticket.shard)
                    if owner is not None and owner.scaler is not None:
                        owner.scaler.observe_completion(now, rec.latency_s)
                    settle(ticket, now)
                    pair = ticket.hedge
                    if pair is not None and not pair.resolved:
                        # First completion wins; the loser is cancelled
                        # with exactly-once accounting (its round slot
                        # settles, no completion, no drop).
                        pair.resolved = True
                        pair.winner = ticket
                        hstats[
                            "won_by_clone" if ticket is pair.clone else "won_by_primary"
                        ] += 1
                        loser = pair.other(ticket)
                        if not loser.cancelled:
                            loser.cancelled = True
                            loser.epoch += 1
                            router.discharge(loser, now)
                            hstats["cancelled"] += 1
                            health_events.append(
                                {
                                    "kind": "hedge",
                                    "node": loser.shard if loser.shard is not None else -1,
                                    "time_s": now,
                                    "label": (
                                        f"vector {ticket.vector.vector_id}: "
                                        + (
                                            "clone won, primary cancelled"
                                            if ticket is pair.clone
                                            else "primary won, clone cancelled"
                                        )
                                    ),
                                }
                            )
                            if id(loser) in pending:
                                settle(loser, now)

                elif isinstance(event, DeviceRestore):
                    dev = event.device
                    shard = shards[topo.node_of(dev)]
                    if shard.dead or not self.cluster.is_failed(dev):
                        continue
                    before = shard.view.num_alive
                    self.cluster.restore_device(dev)
                    busy_until[dev] = now
                    restored = 0
                    if self.cluster.journal is not None:
                        restored, cost = self._warm_restore(dev, now, injector)
                        busy_until[dev] += cost
                    self._rescale_shard_bounds(shard, before, shard.view.num_alive)
                    if injector is not None:
                        injector.note_device_restored(dev, now)
                        label = "node flap up"
                        if restored:
                            label += f", {restored} tensors pre-warmed"
                        injector.stats.record_event("restore", dev, now, 0.0, label=label)
                    refill(shard, now)

                elif isinstance(event, HealthTick):
                    silent = (
                        injector.silent_devices(now)
                        if injector is not None
                        else frozenset()
                    )
                    for node in sorted(shards):
                        s = shards[node]
                        if s.dead:
                            monitor.mark_dead(node, now)
                        elif s.view.num_alive > 0 and not any(
                            d in silent for d in s.devices
                        ):
                            monitor.beat(node, now)
                        else:
                            monitor.miss()
                    for node in monitor.evaluate(now):
                        # Newly quarantined: drain its queue through the
                        # global tier.  The shard itself is left running
                        # (quarantine is not death) — only its *waiting*
                        # work moves to shards routing still trusts.
                        shard = shards[node]
                        drained = shard.drain_queue()
                        moved = 0
                        for t in drained:
                            if t.cancelled:
                                continue
                            shard.drained_out += 1
                            # The drain moves the ticket off this shard:
                            # reverse its between-sync charge before the
                            # new placement charges its destination.
                            router.discharge(t, now)
                            t.shard = None
                            place(t, now)
                            moved += 1
                        health_events.append(
                            {
                                "kind": "health",
                                "node": node,
                                "time_s": now,
                                "label": f"quarantined, drained {moved} tickets",
                            }
                        )
                    if hcfg.hedging:
                        for node in sorted(shards):
                            shard = shards[node]
                            if shard.dead or not monitor.is_suspect(node):
                                continue
                            for t in shard.queue.tickets():
                                if t.cancelled or t.hedge is not None:
                                    continue
                                deadline = (
                                    hedger.deadline_for(t.tenant)
                                    if hedger is not None
                                    else hcfg.hedge_deadline_s
                                )
                                if now - t.arrival_s < deadline:
                                    continue
                                clone = Ticket(
                                    vector=t.vector,
                                    arrival_s=t.arrival_s,
                                    tenant=t.tenant,
                                    deadline_s=t.deadline_s,
                                )
                                pair = HedgePair(primary=t, clone=clone)
                                t.hedge = pair
                                clone.hedge = pair
                                hstats["launched"] += 1
                                health_events.append(
                                    {
                                        "kind": "hedge",
                                        "node": node,
                                        "time_s": now,
                                        "label": (
                                            f"vector {t.vector.vector_id} hedged "
                                            f"off shard {node}"
                                        ),
                                    }
                                )
                                place(clone, now, hedge_clone=True, tried={node})
                    if timeline.work_remaining:
                        timeline.push(HealthTick(now + hcfg.heartbeat_interval_s))

                elif isinstance(event, DeviceOnline):
                    shard = shards[topo.node_of(event.device)]
                    if shard.dead:
                        continue
                    self._bring_online_shard(shard, event.device, now, busy_until, injector)
        finally:
            self.engine.injector = None
            self.engine.integrity = None
            self.cluster.journal = None

        fault_summary = None
        fault_events: list[dict] = []
        if injector is not None:
            injector.stats.finalize(report.makespan_s, self.cluster.num_devices)
            fault_summary = injector.stats.summary()
            fault_events = list(injector.stats.events)
        specs = [s.spec for s in streams if s.spec is not None]
        ordered = [shards[n] for n in sorted(shards)]
        queue_counters = {
            "capacity": cfg.queue_capacity,
            "policy": ordered[0].queue.policy.name,
            "admitted": sum(s.queue.admitted for s in ordered),
            "dropped": sum(s.queue.dropped for s in ordered),
            "peak_depth": max(s.queue.peak_depth for s in ordered),
        }
        autoscale = None
        if any(s.scaler is not None for s in ordered):
            actions = sorted(
                (a for s in ordered if s.scaler is not None for a in s.scaler.actions),
                key=lambda a: (a["time_s"], a["device"]),
            )
            autoscale = {
                "scale_ups": sum(1 for a in actions if a["action"] == "up"),
                "scale_downs": sum(1 for a in actions if a["action"] == "down"),
                "actions": actions,
                "per_shard": {
                    str(s.node): {
                        "scale_ups": sum(
                            1 for a in s.scaler.actions if a["action"] == "up"
                        ),
                        "scale_downs": sum(
                            1 for a in s.scaler.actions if a["action"] == "down"
                        ),
                    }
                    for s in ordered
                    if s.scaler is not None
                },
            }
        sharding = {
            "routing": router.policy.name,
            "sync_interval_s": cfg.sync_interval_s,
            "num_shards": len(ordered),
            "syncs": router.syncs,
            "forwards": router.forwards,
            "rerouted": router.reroutes,
            "cross_node_fetches": total.counts.cross_node_fetches,
            "shards": [
                {
                    "node": s.node,
                    "devices": list(s.devices),
                    "alive": s.view.num_alive,
                    "dead": s.dead,
                    "routed": s.routed,
                    "forwarded_in": s.forwarded_in,
                    "rerouted_in": s.rerouted_in,
                    "drained_out": s.drained_out,
                    "hedged_in": s.hedged_in,
                    "queue": s.queue.counters(),
                }
                for s in ordered
            ],
        }
        health_summary = None
        if monitor is not None:
            health_summary = {
                **monitor.summary(),
                "hedges": dict(hstats),
                "adaptive_deadlines": (
                    hedger.summary() if hedger is not None else None
                ),
                "breakers": {
                    "states": {str(n): breakers[n].state for n in sorted(breakers)},
                    "opens": sum(b.opens for b in breakers.values()),
                    "transitions": list(breaker_log),
                },
            }
            for tr in monitor.transitions:
                health_events.append(
                    {
                        "kind": "health",
                        "node": tr["node"],
                        "time_s": tr["time_s"],
                        "label": f"{tr['from']} -> {tr['to']}",
                    }
                )
            for tr in breaker_log:
                health_events.append(
                    {
                        "kind": "breaker",
                        "node": tr["node"],
                        "time_s": tr["time_s"],
                        "label": f"breaker {tr['from']} -> {tr['to']}",
                    }
                )
            health_events.sort(key=lambda e: (e["time_s"], e["node"], e["kind"], e["label"]))
        routing_summary = None
        routing_events: list[dict] = []
        if router.policy.wants_features:
            routing_summary = router.policy.summary()
            routing_events = sorted(
                router.policy.events,
                key=lambda e: (e["time_s"], e["node"], e["kind"], e["label"]),
            )
        return ServeResult(
            report=report,
            metrics=total,
            queue=queue_counters,
            arrival_s=sorted(t for s in streams for t in s.times),
            faults=fault_summary,
            fault_events=fault_events,
            tenants=tenant_sections(report, specs) if specs else None,
            autoscale=autoscale,
            journal=journal.summary() if journal is not None else None,
            rounds=rounds_log,
            sharding=sharding,
            health=health_summary,
            health_events=health_events,
            integrity=(
                integ.summary(float(total.compute_s.sum()))
                if integ is not None
                else None
            ),
            events_processed=events_processed,
            routing=routing_summary,
            routing_events=routing_events,
        )

    # ------------------------------------------------------- per-shard pieces
    def _pop_shard_round(self, shard: NodeRuntime, now: float) -> list[Ticket]:
        """Per-shard round assembly (same rules, shard-local budget)."""
        cfg = self.serve_config
        if cfg.max_batch_vectors <= 1:
            nxt = shard.queue.pop()
            return [nxt] if nxt is not None else []
        budget = cfg.batch_memory_frac * sum(
            self.cluster.devices[d].memory_bytes for d in shard.view.alive_ids()
        )
        return shard.queue.pop_batch(
            cfg.max_batch_vectors, accept=self._batch_accept(budget, now)
        )

    def _schedule_on_shard(
        self, vector: VectorSpec, shard: NodeRuntime, wants_bounds: bool
    ) -> tuple[ExecutionMetrics, list[int]]:
        """One merged round through the shard's scheduler and view."""
        # Characteristics tracking is only needed to feed the predictor;
        # skip the per-vector observation sweep when no one consumes it.
        if wants_bounds:
            chars = shard.tracker.observe(vector)
            shard.scheduler.set_bounds(self.predictor.predict_bounds(chars))
        shard.view.begin_vector(vector.num_tensors)
        shard.scheduler.begin_vector(vector, shard.view)
        vec_metrics = ExecutionMetrics(num_devices=self.cluster.num_devices)
        assignment: list[int] = []
        for pair in vector.pairs:
            dev = shard.scheduler.choose(pair, shard.view)
            self.engine.execute_pair(pair, dev, vec_metrics)
            assignment.append(dev)
        if not self.config.keep_outputs:
            self.engine.drain_outputs(vector, assignment, vec_metrics)
        return vec_metrics, assignment

    def _rescale_shard_bounds(self, shard: NodeRuntime, before: int, after: int) -> None:
        """Per-shard analogue of :meth:`MiccoServer._rescale_bounds`.

        ``before == 0`` is allowed (a fully-flapped shard restoring its
        first device): the rescale target only needs the anchor and the
        *new* alive count.
        """
        if (
            before != after
            and after > 0
            and shard.bounds_anchor is not None
        ):
            bounds0, alive0 = shard.bounds_anchor
            if after == alive0:
                shard.scheduler.set_bounds(bounds0)
            else:
                shard.scheduler.set_bounds(bounds0.rescaled(alive0, after))

    def _shrink_shard_to_initial(self, shard: NodeRuntime) -> None:
        """Retire shard devices down to the clamped initial pool size."""
        c = shard.scaler.config
        target = max(
            c.min_devices,
            min(
                c.initial_devices if c.initial_devices is not None else c.min_devices,
                c.max_devices,
                shard.view.num_alive,
            ),
        )
        while shard.view.num_alive > target:
            before = shard.view.num_alive
            self.cluster.retire_device(shard.view.alive_ids()[-1])
            self._rescale_shard_bounds(shard, before, shard.view.num_alive)

    def _shard_offline(self, shard: NodeRuntime) -> list[int]:
        """The shard's retired (re-activatable) devices, id order."""
        return [
            d
            for d in shard.devices
            if not self.cluster.is_alive(d)
            and not self.cluster.is_failed(d)
            and d not in shard.pending_online
        ]

    def _autoscale_shard_step(
        self,
        shard: NodeRuntime,
        now: float,
        timeline: Timeline,
        pending: dict[int, Ticket],
        busy_until,
        total: ExecutionMetrics,
        injector: FaultInjector | None,
        abandon,
    ) -> None:
        """Per-shard scaling: each shard grows/shrinks only its own devices."""
        if shard.dead or shard.scaler is None:
            return
        c = shard.scaler.config
        decision = shard.scaler.decide(
            now,
            queue_depth=len(shard.queue),
            num_alive=shard.view.num_alive + len(shard.pending_online),
        )
        if decision == "up":
            candidates = self._shard_offline(shard)
            if (
                not candidates
                or shard.view.num_alive + len(shard.pending_online) >= c.max_devices
            ):
                return
            dev = candidates[0]
            shard.pending_online.add(dev)
            timeline.push(DeviceOnline(now + c.warmup_s, device=dev))
            shard.scaler.log(
                now, "up", dev, shard.view.num_alive,
                reason=f"shard {shard.node} queue depth {len(shard.queue)}, "
                f"warm-up {c.warmup_s:g}s",
            )
        elif decision == "down":
            if shard.pending_online or shard.view.num_alive <= c.min_devices:
                return
            dev = shard.view.alive_ids()[-1]
            before = shard.view.num_alive
            self.cluster.retire_device(dev)
            self._rescale_shard_bounds(shard, before, shard.view.num_alive)
            moved = 0
            for ticket in [t for t in pending.values() if dev in set(t.assignment)]:
                try:
                    complete = self._reschedule_orphans(
                        ticket, dev, now, busy_until, total,
                        stats=injector.stats if injector is not None else None,
                        scheduler=shard.scheduler, cluster=shard.view,
                    )
                except FaultError:
                    abandon(ticket, now)
                    continue
                ticket.epoch += 1
                timeline.push(VectorCompletion(complete, ticket, epoch=ticket.epoch))
                moved += 1
            shard.scaler.log(
                now, "down", dev, shard.view.num_alive,
                reason=f"shard {shard.node} drained {moved} in-flight vectors",
            )

    def _bring_online_shard(
        self,
        shard: NodeRuntime,
        device: int,
        now: float,
        busy_until,
        injector: FaultInjector | None,
    ) -> None:
        """A shard device finished warming up (per-shard ``_bring_online``)."""
        shard.pending_online.discard(device)
        if self.cluster.is_failed(device) or self.cluster.is_alive(device):
            return
        before = shard.view.num_alive
        self.cluster.activate_device(device)
        busy_until[device] = now
        restored = 0
        if self.cluster.journal is not None:
            restored, cost = self._warm_restore(device, now, injector)
            busy_until[device] += cost
        self._rescale_shard_bounds(shard, before, shard.view.num_alive)
        if shard.scaler is not None:
            reason = "warm-up complete"
            if restored:
                reason += f", {restored} tensors pre-warmed"
            shard.scaler.log(
                now, "online", device, shard.view.num_alive,
                reason=reason, starts_cooldown=False,
            )

    def _replace_lost_shard(
        self, shard: NodeRuntime, now: float, timeline: Timeline, count: int
    ) -> None:
        """One replacement warm-up per lost device, from the shard's spares."""
        c = shard.scaler.config
        for _ in range(count):
            candidates = self._shard_offline(shard)
            if (
                not candidates
                or shard.view.num_alive + len(shard.pending_online) >= c.max_devices
            ):
                return
            dev = candidates[0]
            shard.pending_online.add(dev)
            timeline.push(DeviceOnline(now + c.warmup_s, device=dev))
            shard.scaler.log(
                now, "up", dev, shard.view.num_alive,
                reason=f"shard {shard.node}: replace lost device, "
                f"warm-up {c.warmup_s:g}s",
                starts_cooldown=False,
            )
