"""Per-node local scheduling runtime for the sharded control plane.

A :class:`NodeRuntime` is one node's slice of the serving machinery:
its own bounded :class:`~repro.serve.queueing.AdmissionQueue`, its own
copy of the placement scheduler (MICCO reuse-bound state is per-shard),
and a :class:`ShardView` that scopes the shared
:class:`~repro.gpusim.cluster.ClusterState` down to the node's devices.
The runtime never sees other nodes' queues; coordination happens only
through the digests it reports to the global tier
(:meth:`NodeRuntime.digest`) on the configured sync interval.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SchedulingError
from repro.gpusim.cluster import ClusterState
from repro.serve.queueing import AdmissionQueue
from repro.serve.sharded.routing import ShardSnapshot


class ShardView:
    """A node-scoped façade over the shared :class:`ClusterState`.

    Schedulers run unmodified against this view: every attribute
    delegates to the global cluster, but the *candidate-generating*
    surface — ``alive_ids``, ``num_alive``, ``devices_holding`` and the
    per-vector balance window (``begin_vector``) — is restricted to the
    shard's devices, so MICCO's Alg. 1/2 can only ever place pairs
    inside the shard.  The balance share ``balanceNum`` spreads each
    vector over the shard's survivors, not the whole cluster.

    The view is safe because the sharded server reuses the *single*
    deterministic timeline: exactly one scheduling round runs at a
    time, so the global ``assigned_slots``/``balance_num`` counters the
    view resets are never shared between concurrent rounds.
    """

    def __init__(self, cluster: ClusterState, devices):
        self._cluster = cluster
        self.devices = tuple(sorted(int(d) for d in devices))
        self._device_set = frozenset(self.devices)
        if not self.devices:
            raise SchedulingError("a shard view needs at least one device")

    def __getattr__(self, name):
        # Anything not shard-scoped (pools, compute_s, free_bytes,
        # is_resident, record_assignment, ...) is the global state.
        return getattr(self._cluster, name)

    # ---------------------------------------------------- shard-scoped surface
    def alive_ids(self) -> list[int]:
        return [d for d in self.devices if self._cluster.is_alive(d)]

    @property
    def num_alive(self) -> int:
        return len(self.alive_ids())

    def devices_holding(self, uid: int) -> frozenset[int]:
        """Holders *inside the shard* — candidates must stay local.

        The execution engine still fetches from the globally cheapest
        holder, so a vector routed away from its data pays the
        cross-node transfer through the cost model rather than being
        silently co-located.
        """
        return self._cluster.devices_holding(uid) & self._device_set

    def begin_vector(self, num_tensors: int) -> None:
        """Shard-local balance window: spread over the shard's survivors."""
        if num_tensors <= 0:
            raise SchedulingError(
                f"vector must have positive tensor slots, got {num_tensors}"
            )
        alive = self.num_alive
        if alive == 0:
            raise SchedulingError("cannot begin a vector: the shard has no alive devices")
        self._cluster.assigned_slots[:] = 0
        self._cluster.balance_num = num_tensors / alive


@dataclass(frozen=True)
class NodeDigest:
    """One shard's load/residency report to the global tier.

    Built by :meth:`NodeRuntime.digest` at sync time and *not* updated
    in between — the router's view is deliberately stale by up to one
    sync interval (plus its own routed-since-sync correction).
    """

    node: int
    time_s: float
    alive: int
    queue_depth: int
    inflight: int
    linkless: bool
    #: uid -> resident bytes across the shard's alive devices.
    residency: dict


class NodeRuntime:
    """One node's local scheduler: queue + placement over its devices.

    Parameters
    ----------
    node:
        Topology node id (also the shard id).
    devices:
        The node's device ids (from ``Topology.devices_of_node``).
    view:
        Shard-scoped cluster view the local scheduler places through.
    scheduler:
        This shard's *own* scheduler instance (per-shard reuse-bound
        state; never shared with other shards).
    queue:
        This shard's bounded admission queue.
    tracker:
        Per-shard workload-characteristics tracker (bounds prediction).
    scaler:
        Optional per-shard autoscaler (the global config clamped to the
        shard's device count).
    """

    def __init__(self, node, devices, view, scheduler, queue: AdmissionQueue,
                 tracker, scaler=None):
        self.node = int(node)
        self.devices = tuple(sorted(int(d) for d in devices))
        self.view: ShardView = view
        self.scheduler = scheduler
        self.queue = queue
        self.tracker = tracker
        self.scaler = scaler
        #: Scheduling rounds dispatched and not yet fully settled.
        self.inflight = 0
        #: True once the node's failure domain died; a dead shard takes
        #: no more traffic and its queued work re-routes globally.
        self.dead = False
        #: Devices of this shard warming up (autoscale / replacement).
        self.pending_online: set[int] = set()
        #: Tickets the router sent here since the last digest sync.
        #: Charged at placement (direct dispatch, queue admission,
        #: forward landings and hedge clones alike) and *discharged*
        #: when a charged ticket leaves the shard without completing —
        #: shed, abandoned, hedge-cancelled, quarantine-drained or
        #: rerouted — so the correction never counts work the shard no
        #: longer holds.
        self.routed_since_sync = 0
        #: Charged tickets that completed since the last sync.  Kept so
        #: the conservation invariant is checkable at every sync:
        #: ``routed_since_sync == completed_since_sync + charged tickets
        #: still queued or in flight here``.
        self.completed_since_sync = 0
        #: Bumped at every digest refresh; charges stamp the epoch they
        #: were made under so a stale charge (made before the counter
        #: reset) is never double-reversed.
        self.sync_epoch = 0
        #: id(ticket) -> ticket for every member dispatched on this
        #: shard and not yet settled (the audit-side complement of the
        #: ``inflight`` round counter).
        self.inflight_tickets: dict[int, object] = {}
        #: (bounds, alive-count) anchor for per-shard bound rescaling.
        self.bounds_anchor: tuple | None = None
        # ----- counters for the report's sharding section -----
        #: Tickets placed on this shard (queued or directly dispatched).
        self.routed = 0
        #: Of those, tickets that arrived after >= 1 full-queue forward.
        self.forwarded_in = 0
        #: Tickets re-homed here after their original shard died.
        self.rerouted_in = 0
        #: Tickets drained *out* of this shard's queue by quarantine.
        self.drained_out = 0
        #: Speculative hedge clones placed on this shard.
        self.hedged_in = 0

    # ------------------------------------------------------------------ digest
    def digest(self, now: float, linkless_devices=frozenset()) -> NodeDigest:
        """Snapshot this shard's load and residency for the global tier."""
        residency: dict[int, int] = {}
        cluster = self.view._cluster
        for d in self.view.alive_ids():
            pool = cluster.pools[d]
            for uid in pool.resident_uids():
                residency[uid] = pool.nbytes_of(uid)
        return NodeDigest(
            node=self.node,
            time_s=now,
            alive=self.view.num_alive,
            queue_depth=len(self.queue),
            inflight=self.inflight,
            linkless=any(d in linkless_devices for d in self.devices),
            residency=residency,
        )

    def snapshot(
        self,
        digest: NodeDigest,
        suspect: bool = False,
        *,
        age_s: float = 0.0,
        suspicion: float = 0.0,
        quarantines: int = 0,
        breaker: int = 0,
        blame: float = 0.0,
    ) -> ShardSnapshot:
        """Combine the last digest with the router-side correction.

        The keyword-only tail carries the enriched features for
        ``wants_features`` policies; static policies call with defaults
        and get exactly the historical snapshot.
        """
        return ShardSnapshot(
            node=self.node,
            alive=digest.alive,
            queue_depth=digest.queue_depth,
            inflight=digest.inflight,
            linkless=digest.linkless,
            suspect=suspect,
            residency=digest.residency,
            pending=self.routed_since_sync,
            age_s=age_s,
            suspicion=suspicion,
            quarantines=quarantines,
            breaker=breaker,
            blame=blame,
        )

    def drain_queue(self):
        """Pop every queued ticket (policy order) — shard-death re-routing."""
        out = []
        while True:
            t = self.queue.pop()
            if t is None:
                return out
            out.append(t)
