"""Online learned routing: per-shard completion-latency prediction.

The three static policies in :mod:`repro.serve.sharded.routing` rank
shards by digest arithmetic — they can only see what a digest carries,
and digests are deliberately stale.  A shard silently slowed by a gray
fault (straggler, flapping node) looks exactly as attractive as a
healthy one until its queue depth finally shows up at the next
``DigestSync``.

:class:`LearnedRouting` closes that gap by *learning* each shard's
completion latency online.  Every placement snapshots a feature vector
(digest fields, their age, and the PR 7/9 health signals: suspicion
score, quarantine history, breaker state, corruption-blame EWMA, plus
ticket shape and residency overlap); when the ticket completes, the
observed route→completion latency labels the sample and feeds that
shard's :class:`~repro.ml.online.SlidingWindowRegressor`.  Routing
then goes to the argmin *predicted* latency.  A straggling shard
learns a high intercept within a handful of completions — long before
its digest betrays it — which is what makes ``sync_interval_s`` a
measurable staleness/accuracy knob.

Determinism contract: all randomness comes from one seeded
``numpy.random.Generator`` handed in by the server (derived from the
run seed), and exploration draws happen on a fixed schedule — exactly
one ``random()`` draw per warm ``choose`` call, none while cold — so
fixed-seed runs replay byte-identically.  Cold start (< ``min_samples``
observations on any candidate shard) falls back to the least-loaded
ranking without drawing RNG state.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.ml.online import SlidingWindowRegressor
from repro.serve.sharded.routing import (
    RoutingPolicy,
    ShardSnapshot,
    rank_shards,
)
from repro.utils.rng import as_generator

#: Feature vector layout, in order (one row per candidate shard).
FEATURE_NAMES = (
    "queue_depth",
    "inflight",
    "pending",
    "alive",
    "linkless",
    "suspect",
    "age_s",
    "suspicion",
    "quarantines",
    "breaker",
    "blame",
    "num_pairs",
    "num_tensors",
    "overlap_mib",
)

_MIB = 1024**2


def route_features(vector, snap: ShardSnapshot) -> np.ndarray:
    """Feature row for placing ``vector`` on the shard behind ``snap``."""
    uids: dict[int, int] = {}
    for pair in vector.pairs:
        for spec in pair.inputs:
            uids.setdefault(spec.uid, spec.nbytes)
    overlap = sum(
        nbytes for uid, nbytes in uids.items() if uid in snap.residency
    )
    return np.array(
        [
            snap.queue_depth,
            snap.inflight,
            snap.pending,
            snap.alive,
            float(snap.linkless),
            float(snap.suspect),
            snap.age_s,
            snap.suspicion,
            snap.quarantines,
            snap.breaker,
            snap.blame,
            len(vector.pairs),
            len(uids),
            overlap / _MIB,
        ],
        dtype=np.float64,
    )


class LearnedRouting(RoutingPolicy):
    """Route to the argmin predicted completion latency.

    One :class:`~repro.ml.online.SlidingWindowRegressor` per shard maps
    the placement-time feature row to the observed route→completion
    latency; per-shard models (rather than one global model with a
    shard id feature) let a single slow shard earn a high intercept
    without dragging its neighbours' predictions with it.

    While any candidate's model has fewer than ``min_samples``
    observations, ``choose`` falls back to the least-loaded ranking —
    and draws no RNG state, keeping the draw schedule deterministic.
    Once warm, each call draws once: with probability ``explore_floor``
    the pick is uniform over the candidates (so every shard keeps
    getting sampled and a recovered shard can be re-discovered),
    otherwise it is the argmin prediction, ties broken on the lowest
    node id.
    """

    name = "learned"
    wants_features = True

    def __init__(
        self,
        explore_floor: float = 0.05,
        min_samples: int = 24,
        refit_interval: int = 16,
        window: int = 512,
        seed=0,
    ):
        if not 0.0 <= explore_floor < 1.0:
            raise ConfigurationError(
                f"explore_floor must be in [0, 1), got {explore_floor}"
            )
        if min_samples < 2:
            raise ConfigurationError(
                f"min_samples must be >= 2, got {min_samples}"
            )
        if refit_interval < 1:
            raise ConfigurationError(
                f"refit_interval must be >= 1, got {refit_interval}"
            )
        self.explore_floor = float(explore_floor)
        self.min_samples = int(min_samples)
        self.refit_interval = int(refit_interval)
        self.window = int(window)
        self._rng = as_generator(seed)
        self._models: dict[int, SlidingWindowRegressor] = {}
        #: Decision counters, broken out by how the pick was made.
        self.decisions = 0
        self.learned_decisions = 0
        self.fallback_decisions = 0
        self.explored = 0
        #: Per-shard |predicted - observed| accumulators.
        self._abs_err: dict[int, float] = {}
        self._err_n: dict[int, int] = {}
        #: Trace-worthy moments (refits, warm-up) for the routing lanes.
        self.events: list[dict] = []
        self._warm = False
        self._last_kind = "fallback"

    def reseed(self, seed) -> None:
        """Rebind the exploration stream (the server derives it per run)."""
        self._rng = as_generator(seed)

    def model(self, node: int) -> SlidingWindowRegressor:
        m = self._models.get(node)
        if m is None:
            m = SlidingWindowRegressor(
                window=max(self.window, self.min_samples),
                refit_interval=self.refit_interval,
                min_samples=max(2, min(self.min_samples, self.window)),
            )
            self._models[node] = m
        return m

    def choose(self, vector, snapshots: list[ShardSnapshot]) -> int:
        self.decisions += 1
        if any(
            self.model(s.node).samples < self.min_samples for s in snapshots
        ):
            self.fallback_decisions += 1
            self._last_kind = "fallback"
            return rank_shards(snapshots)
        if self.explore_floor > 0.0:
            draw = float(self._rng.random())
        else:
            draw = 1.0
        if draw < self.explore_floor:
            self.explored += 1
            self._last_kind = "explore"
            pick = int(self._rng.integers(len(snapshots)))
            return snapshots[pick].node
        self.learned_decisions += 1
        self._last_kind = "learned"
        best_node, best_pred = None, None
        for snap in snapshots:
            pred = self.model(snap.node).predict_one(
                route_features(vector, snap)
            )
            if pred is None:  # pragma: no cover - warm models always predict
                pred = float("inf")
            if (
                best_pred is None
                or pred < best_pred
                or (pred == best_pred and snap.node < best_node)
            ):
                best_node, best_pred = snap.node, pred
        return best_node

    # -- Router callbacks -------------------------------------------------

    def note_placed(self, ticket, snap: ShardSnapshot, now: float) -> None:
        """Record the pending sample for a just-placed ticket."""
        x = route_features(ticket.vector, snap)
        pred = self.model(snap.node).predict_one(x)
        ticket.route_sample = (snap.node, now, x, pred, self._last_kind)

    def note_outcome(self, ticket, now: float, *, completed: bool) -> None:
        """Label (or drop) the pending sample when the ticket resolves.

        Sheds, abandons, hedge-loser cancellations and reroutes arrive
        with ``completed=False``: their latency is not a completion
        latency, so the sample is dropped rather than poisoning the
        model.
        """
        sample = ticket.route_sample
        ticket.route_sample = None
        if sample is None or not completed:
            return
        node, t0, x, pred, kind = sample
        latency = now - t0
        model = self.model(node)
        was_cold = not self._warm
        refit = model.observe(x, latency)
        if pred is not None:
            self._abs_err[node] = self._abs_err.get(node, 0.0) + abs(
                pred - latency
            )
            self._err_n[node] = self._err_n.get(node, 0) + 1
        if refit:
            self.events.append({
                "time_s": now,
                "node": node,
                "kind": "refit",
                "label": (
                    f"refit #{model.refits} ({len(self._models)} models, "
                    f"{model.samples} samples)"
                ),
            })
        if was_cold and all(
            m.samples >= self.min_samples for m in self._models.values()
        ) and len(self._models) > 1:
            self._warm = True
            self.events.append({
                "time_s": now,
                "node": node,
                "kind": "warm",
                "label": f"cold start over: {len(self._models)} shard models "
                         f"at >= {self.min_samples} samples",
            })

    def summary(self) -> dict:
        """The ``result.routing`` report section."""
        per_shard = {}
        for node in sorted(self._models):
            m = self._models[node]
            n_err = self._err_n.get(node, 0)
            per_shard[str(node)] = {
                "samples": m.samples,
                "refits": m.refits,
                "mean_abs_err_ms": (
                    round(self._abs_err[node] / n_err * 1e3, 6)
                    if n_err else None
                ),
            }
        return {
            "policy": self.name,
            "explore_floor": self.explore_floor,
            "min_samples": self.min_samples,
            "refit_interval": self.refit_interval,
            "decisions": self.decisions,
            "learned": self.learned_decisions,
            "fallback": self.fallback_decisions,
            "explored": self.explored,
            "per_shard": per_shard,
        }

    def __repr__(self):
        return (
            f"LearnedRouting(explore_floor={self.explore_floor}, "
            f"min_samples={self.min_samples}, "
            f"refit_interval={self.refit_interval})"
        )
