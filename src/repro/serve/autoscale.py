"""p99-driven autoscaling of the simulated device pool.

An :class:`Autoscaler` watches two live signals as the serving event
loop advances — admission-queue depth and the p99 of end-to-end
latencies completed inside a sliding window — and decides when to grow
or shrink the alive device pool:

* **scale up** when the queue depth reaches ``up_queue_depth`` or the
  windowed p99 exceeds ``p99_target_s``; the new device pays a
  ``warmup_s`` delay before it becomes schedulable and joins with a
  cold memory pool (no resident tensors);
* **scale down** when the queue has drained to ``down_queue_depth``
  and the windowed p99 sits comfortably under target (below
  ``down_latency_frac × p99_target_s``); the retired device's
  in-flight pairs are re-scheduled onto the survivors through the same
  orphan-rescheduling path device *loss* recovery uses.

Every decision is a pure function of simulated time and observed
completions, so autoscaled runs replay bit-for-bit from a seed.  The
policy object keeps an ``actions`` log (scale-up/online/scale-down
records) that lands in the serving report.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, replace

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class AutoscalerConfig:
    """Knobs of the pool autoscaler.

    Parameters
    ----------
    min_devices, max_devices:
        Alive-pool bounds.  ``max_devices`` is additionally clamped to
        the cluster's physical device count at run time.
    initial_devices:
        Pool size at t=0 (default: ``min_devices``).
    p99_target_s:
        Windowed-p99 SLO target driving latency-based decisions;
        ``None`` disables the latency signal (queue depth only).
    window_s:
        Sliding-window width over which the p99 is computed.
    up_queue_depth:
        Queue depth at (or above) which the pool grows.
    down_queue_depth:
        Queue depth at (or below) which the pool may shrink.
    warmup_s:
        Delay between a scale-up decision and the device becoming
        schedulable (cold memory pool, no resident tensors).
    cooldown_s:
        Minimum simulated time between consecutive scaling decisions.
    down_latency_frac:
        Scale down only while the windowed p99 is below this fraction
        of ``p99_target_s`` (ignored when the latency signal is off).
    replace_lost:
        When True, a permanent device/node loss immediately requests
        one replacement per lost device (bypassing the cooldown clock —
        loss replacement is reactive, not a load decision).  The
        replacements still pay ``warmup_s`` and honour ``max_devices``.
    """

    min_devices: int = 1
    max_devices: int = 8
    initial_devices: int | None = None
    p99_target_s: float | None = None
    window_s: float = 1.0
    up_queue_depth: int = 4
    down_queue_depth: int = 0
    warmup_s: float = 0.05
    cooldown_s: float = 0.25
    down_latency_frac: float = 0.5
    replace_lost: bool = False

    def __post_init__(self):
        if self.min_devices < 1:
            raise ConfigurationError(f"min_devices must be >= 1, got {self.min_devices}")
        if self.max_devices < self.min_devices:
            raise ConfigurationError(
                f"max_devices ({self.max_devices}) must be >= min_devices ({self.min_devices})"
            )
        if self.initial_devices is not None and not (
            self.min_devices <= self.initial_devices <= self.max_devices
        ):
            raise ConfigurationError(
                f"initial_devices ({self.initial_devices}) must lie in "
                f"[{self.min_devices}, {self.max_devices}]"
            )
        if self.p99_target_s is not None and self.p99_target_s <= 0:
            raise ConfigurationError(f"p99_target_s must be > 0, got {self.p99_target_s}")
        if self.window_s <= 0:
            raise ConfigurationError(f"window_s must be > 0, got {self.window_s}")
        if self.up_queue_depth < 1:
            raise ConfigurationError(f"up_queue_depth must be >= 1, got {self.up_queue_depth}")
        if self.down_queue_depth < 0:
            raise ConfigurationError(
                f"down_queue_depth must be >= 0, got {self.down_queue_depth}"
            )
        if self.down_queue_depth >= self.up_queue_depth:
            raise ConfigurationError(
                f"down_queue_depth ({self.down_queue_depth}) must be below "
                f"up_queue_depth ({self.up_queue_depth})"
            )
        if self.warmup_s < 0:
            raise ConfigurationError(f"warmup_s must be >= 0, got {self.warmup_s}")
        if self.cooldown_s < 0:
            raise ConfigurationError(f"cooldown_s must be >= 0, got {self.cooldown_s}")
        if not 0 < self.down_latency_frac <= 1:
            raise ConfigurationError(
                f"down_latency_frac must be in (0, 1], got {self.down_latency_frac}"
            )

    def with_(self, **kwargs) -> "AutoscalerConfig":
        """Copy with overrides (sweep convenience)."""
        return replace(self, **kwargs)

    # ----------------------------------------------------------- persistence
    def to_dict(self) -> dict:
        return {
            "min_devices": self.min_devices,
            "max_devices": self.max_devices,
            "initial_devices": self.initial_devices,
            "p99_target_s": self.p99_target_s,
            "window_s": self.window_s,
            "up_queue_depth": self.up_queue_depth,
            "down_queue_depth": self.down_queue_depth,
            "warmup_s": self.warmup_s,
            "cooldown_s": self.cooldown_s,
            "down_latency_frac": self.down_latency_frac,
            "replace_lost": self.replace_lost,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "AutoscalerConfig":
        try:
            return cls(**d)
        except TypeError as exc:
            raise ConfigurationError(f"bad autoscaler config: {exc}") from None


class Autoscaler:
    """Runtime decision state for one serving run.

    Build a fresh instance per run (it accumulates the latency window,
    the cooldown clock and the action log).  The server drives it:
    :meth:`observe_completion` on every finished vector, :meth:`decide`
    at each event-loop step, :meth:`log` after applying a decision.
    """

    def __init__(self, config: AutoscalerConfig):
        self.config = config
        #: (complete_s, latency_s) pairs inside the sliding window.
        self._window: deque[tuple[float, float]] = deque()
        self._last_action_s = -math.inf
        #: Applied pool actions, in order: dicts with ``time_s``,
        #: ``action`` ("up" | "online" | "down"), ``device``,
        #: ``alive_after`` and ``reason``.
        self.actions: list[dict] = []

    # -------------------------------------------------------------- signals
    def observe_completion(self, now: float, latency_s: float) -> None:
        """Feed one completed vector's end-to-end latency."""
        self._window.append((now, float(latency_s)))
        self._prune(now)

    def _prune(self, now: float) -> None:
        horizon = now - self.config.window_s
        while self._window and self._window[0][0] < horizon:
            self._window.popleft()

    def windowed_p99(self, now: float) -> float:
        """p99 of latencies completed in the last ``window_s`` (NaN if none)."""
        self._prune(now)
        if not self._window:
            return float("nan")
        return float(np.percentile([lat for _, lat in self._window], 99))

    # ------------------------------------------------------------- decisions
    def decide(self, now: float, *, queue_depth: int, num_alive: int) -> str | None:
        """Return ``"up"``, ``"down"`` or ``None`` for the current state.

        ``num_alive`` must count devices already warming up, so one
        burst does not trigger a scale-up per event while the first
        replacement is still paying its warm-up delay.
        """
        c = self.config
        if now - self._last_action_s < c.cooldown_s:
            return None
        p99 = self.windowed_p99(now)
        overloaded = queue_depth >= c.up_queue_depth or (
            c.p99_target_s is not None and not math.isnan(p99) and p99 > c.p99_target_s
        )
        if overloaded and num_alive < c.max_devices:
            return "up"
        idle = queue_depth <= c.down_queue_depth and num_alive > c.min_devices
        if idle and c.p99_target_s is not None:
            idle = math.isnan(p99) or p99 < c.down_latency_frac * c.p99_target_s
        return "down" if idle else None

    def log(
        self,
        now: float,
        action: str,
        device: int,
        alive_after: int,
        reason: str = "",
        *,
        starts_cooldown: bool = True,
    ) -> None:
        """Record an applied action; decisions arm the cooldown clock.

        ``online`` records (warm-up completion) pass
        ``starts_cooldown=False`` — they finish an earlier ``up``
        decision rather than making a new one.
        """
        self.actions.append(
            {
                "time_s": float(now),
                "action": action,
                "device": int(device),
                "alive_after": int(alive_after),
                "reason": reason,
            }
        )
        if starts_cooldown:
            self._last_action_s = now

    # --------------------------------------------------------------- report
    def summary(self) -> dict:
        """Autoscale section of the serving report."""
        return {
            "min_devices": self.config.min_devices,
            "max_devices": self.config.max_devices,
            "p99_target_s": self.config.p99_target_s,
            "scale_ups": sum(1 for a in self.actions if a["action"] == "up"),
            "scale_downs": sum(1 for a in self.actions if a["action"] == "down"),
            "actions": list(self.actions),
        }
