"""Online serving facade: arrivals → admission queue → scheduler → devices.

:class:`MiccoServer` layers a discrete-event loop over the existing
batch machinery (any :class:`~repro.schedulers.base.Scheduler` plus the
:class:`~repro.gpusim.engine.ExecutionEngine`): vectors arrive over
simulated time, wait in a bounded :class:`AdmissionQueue`, are
dispatched one scheduling slot at a time, and execute on devices whose
busy-until horizons are derived from the cost model — so device compute
overlaps later arrivals exactly as on real hardware.

Everything is simulated and seeded: a fixed seed reproduces the same
arrival trace, the same scheduling decisions and the same latency
percentiles, bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.config import MiccoConfig
from repro.errors import ConfigurationError, FaultError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultEvent, FaultPlan
from repro.gpusim.cluster import ClusterState
from repro.gpusim.device import mi100_like
from repro.gpusim.engine import ExecutionEngine
from repro.gpusim.metrics import ExecutionMetrics
from repro.gpusim.trace import TraceRecorder
from repro.schedulers.base import Scheduler
from repro.schedulers.micco import MiccoScheduler
from repro.serve.arrivals import ArrivalProcess, TraceArrivals
from repro.serve.queueing import QUEUE_POLICIES, AdmissionQueue
from repro.serve.slo import LatencyReport
from repro.serve.timeline import (
    SchedulingDone,
    Ticket,
    Timeline,
    VectorArrival,
    VectorCompletion,
)
from repro.tensor.spec import VectorSpec
from repro.workloads.characteristics import CharacteristicsTracker


@dataclass(frozen=True)
class ServeConfig:
    """Knobs of the serving layer (cluster knobs live in MiccoConfig).

    Parameters
    ----------
    queue_capacity:
        Bounded admission-queue depth; arrivals beyond it are shed.
    queue_policy:
        ``"fifo"`` or ``"sjf"`` dispatch order.
    max_inflight:
        Vectors dispatched but not yet complete.  1 models the paper's
        single sequential scheduling thread; higher values pipeline
        scheduling of one vector under execution of the previous.
    schedule_latency_per_pair_s:
        Simulated scheduling cost per pair (Table V measures ~10µs-scale
        per-pair decision overhead); deterministic by construction so
        repeated runs produce identical latencies.
    recover_faults:
        When a fault plan is active and a device is lost, re-schedule
        the in-flight pairs that were assigned to it onto the survivors
        (default).  With recovery off, affected vectors are shed with
        reason ``"fault-abandoned"`` instead — the baseline a chaos run
        compares against.
    """

    queue_capacity: int = 64
    queue_policy: str = "fifo"
    max_inflight: int = 1
    schedule_latency_per_pair_s: float = 2e-5
    recover_faults: bool = True

    def __post_init__(self):
        if self.queue_capacity <= 0:
            raise ConfigurationError(f"queue_capacity must be > 0, got {self.queue_capacity}")
        if self.queue_policy not in QUEUE_POLICIES:
            raise ConfigurationError(
                f"unknown queue policy {self.queue_policy!r}; expected one of {QUEUE_POLICIES}"
            )
        if self.max_inflight < 1:
            raise ConfigurationError(f"max_inflight must be >= 1, got {self.max_inflight}")
        if self.schedule_latency_per_pair_s < 0:
            raise ConfigurationError(
                f"schedule_latency_per_pair_s must be >= 0, got {self.schedule_latency_per_pair_s}"
            )

    def with_(self, **kwargs) -> "ServeConfig":
        """Copy with overrides (sweep convenience)."""
        return replace(self, **kwargs)


@dataclass
class ServeResult:
    """Outcome of one online serving run."""

    report: LatencyReport
    metrics: ExecutionMetrics
    #: Admission-queue counter snapshot (admitted/dropped/peak depth).
    queue: dict = field(default_factory=dict)
    #: Absolute arrival timestamps actually offered.
    arrival_s: list[float] = field(default_factory=list)
    #: Fault section (``FaultStats.summary``); ``None`` without a plan.
    faults: dict | None = None
    #: Replayable fault/retry/recovery event log (empty without a plan).
    fault_events: list[dict] = field(default_factory=list)

    @property
    def p99(self) -> float:
        return self.report.p99

    @property
    def dropped(self) -> int:
        return len(self.report.dropped)

    def summary(self) -> dict:
        """Headline SLO numbers plus engine counters."""
        out = self.report.summary()
        out["queue"] = dict(self.queue)
        out["gflops"] = self.metrics.gflops
        out["reuse_hits"] = self.metrics.counts.reuse_hits
        out["transfers"] = self.metrics.counts.input_fetches
        if self.faults is not None:
            out["faults"] = self.faults
        return out

    def to_trace(self) -> TraceRecorder:
        """Chrome-trace view: vector lifecycle lanes plus fault events.

        Fault/retry/recovery events render on lane ``-(device + 1)`` so
        they never collide with the per-vector lanes (vector ids are
        non-negative).
        """
        trace = self.report.to_trace()
        for ev in self.fault_events:
            trace.record_at(
                ev["kind"],
                -(ev["device"] + 1),
                ev["time_s"],
                ev["duration_s"],
                label=ev["label"],
            )
        return trace


class MiccoServer:
    """An online serving instance: one scheduler on one simulated node.

    Parameters
    ----------
    scheduler:
        Any pair→GPU scheduler (default: :class:`MiccoScheduler`).
    config:
        Cluster + cost-model configuration shared with the batch path.
    serve:
        Serving-layer knobs (queue, inflight window, dispatch latency).
    predictor:
        Optional reuse-bound predictor; consulted per vector when the
        scheduler exposes ``set_bounds`` (MICCO-optimal serving).
    """

    def __init__(
        self,
        scheduler: Scheduler | None = None,
        config: MiccoConfig | None = None,
        serve: ServeConfig | None = None,
        predictor=None,
    ):
        self.config = config or MiccoConfig()
        self.serve_config = serve or ServeConfig()
        self.scheduler = scheduler if scheduler is not None else MiccoScheduler()
        self.predictor = predictor
        self.cluster = ClusterState(
            mi100_like(
                self.config.num_devices,
                memory_bytes=self.config.memory_bytes,
                peak_gflops=self.config.peak_gflops,
            ),
            eviction_policy=self.config.eviction_policy,
        )
        self.engine = ExecutionEngine(self.cluster, self.config.cost_model)

    # ------------------------------------------------------------------- run
    def run(
        self,
        vectors: list[VectorSpec],
        arrivals,
        *,
        seed=0,
        reset: bool = True,
        faults: FaultPlan | None = None,
    ) -> ServeResult:
        """Serve ``vectors`` arriving per ``arrivals``; returns SLO metrics.

        Parameters
        ----------
        vectors:
            The request stream, in arrival order.
        arrivals:
            An :class:`~repro.serve.arrivals.ArrivalProcess` (sampled
            with ``seed``) or an explicit sequence of absolute arrival
            timestamps, one per vector.
        reset:
            Start from an empty cluster and idle devices (default).
        faults:
            Optional :class:`~repro.faults.plan.FaultPlan`.  Due faults
            are applied as the event loop advances: transient/transfer
            faults and stragglers are handled inside the engine
            (retry + backoff, host re-fetch, stretched kernels); device
            losses shrink the pool — orphaned in-flight pairs are
            re-scheduled onto survivors (when
            :attr:`ServeConfig.recover_faults`), ``balanceNum`` and the
            reuse bounds are recomputed for the survivors, and the run
            keeps serving.  The result's ``faults`` section reports
            counts, recovery latencies and availability.
        """
        if not vectors:
            raise ConfigurationError("serving run needs at least one vector")
        if isinstance(arrivals, ArrivalProcess):
            times = arrivals.arrival_times(len(vectors), seed)
        else:
            # Explicit timestamps: validate through the trace process.
            times = TraceArrivals(list(arrivals)).arrival_times(len(vectors))

        if reset:
            self.cluster.reset()
            if hasattr(self.scheduler, "reset_stats"):
                self.scheduler.reset_stats()

        cfg = self.serve_config
        timeline = Timeline()
        queue = AdmissionQueue(cfg.queue_capacity, cfg.queue_policy)
        report = LatencyReport()
        tracker = CharacteristicsTracker()
        total = ExecutionMetrics(num_devices=self.cluster.num_devices)
        busy_until = np.zeros(self.cluster.num_devices)
        inflight = 0
        wants_bounds = self.predictor is not None and hasattr(self.scheduler, "set_bounds")
        injector = FaultInjector(faults) if faults is not None else None
        # Tickets dispatched and executed, completion event still ahead
        # (the set device loss can orphan work out of).
        pending: dict[int, Ticket] = {}

        for t, v in zip(times, vectors):
            timeline.push(VectorArrival(t, Ticket(vector=v, arrival_s=t)))

        def dispatch(ticket: Ticket, now: float) -> None:
            nonlocal inflight
            inflight += 1
            ticket.dispatch_s = now
            latency = cfg.schedule_latency_per_pair_s * len(ticket.vector.pairs)
            timeline.push(SchedulingDone(now + latency, ticket))

        def refill(now: float) -> None:
            while inflight < cfg.max_inflight:
                nxt = queue.pop()
                if nxt is None:
                    break
                dispatch(nxt, now)

        def abandon(ticket: Ticket, now: float) -> None:
            """Shed an admitted ticket that can no longer complete."""
            nonlocal inflight
            ticket.epoch += 1  # invalidate any queued completion event
            report.add_drop(ticket, reason="fault-abandoned")
            pending.pop(id(ticket), None)
            inflight -= 1
            refill(now)

        self.engine.injector = injector
        try:
            while timeline:
                event = timeline.pop()
                now = timeline.now
                if injector is not None:
                    for loss in injector.poll(now):
                        self._apply_device_loss(
                            loss, now, injector, pending, busy_until, timeline, total, abandon
                        )
                ticket = event.ticket

                if isinstance(event, VectorArrival):
                    if self.cluster.num_alive == 0:
                        report.add_drop(ticket, reason="fault-abandoned")
                    elif inflight < cfg.max_inflight and not len(queue):
                        dispatch(ticket, now)
                    elif not queue.offer(ticket):
                        report.add_drop(ticket)

                elif isinstance(event, SchedulingDone):
                    ticket.sched_done_s = now
                    if self.cluster.num_alive == 0:
                        abandon(ticket, now)
                        continue
                    try:
                        vec_metrics, assignment = self._schedule_and_execute(
                            ticket.vector, tracker, wants_bounds
                        )
                    except FaultError:
                        # Retry budget exhausted (or the pool died under
                        # us): shed the vector, keep the cluster serving.
                        abandon(ticket, now)
                        continue
                    ticket.assignment = assignment
                    ticket.devices = sorted(set(assignment))
                    # Per-device busy seconds this vector added.
                    delta = vec_metrics.compute_s + vec_metrics.memop_s
                    complete = now
                    for dev in ticket.devices:
                        busy_until[dev] = max(busy_until[dev], now) + delta[dev]
                        complete = max(complete, busy_until[dev])
                    total.merge(vec_metrics)
                    pending[id(ticket)] = ticket
                    timeline.push(VectorCompletion(complete, ticket, epoch=ticket.epoch))

                elif isinstance(event, VectorCompletion):
                    if event.epoch != ticket.epoch:
                        continue  # superseded by recovery (or abandoned)
                    ticket.complete_s = now
                    report.add_completion(ticket)
                    pending.pop(id(ticket), None)
                    inflight -= 1
                    refill(now)
        finally:
            self.engine.injector = None

        fault_summary = None
        fault_events: list[dict] = []
        if injector is not None:
            fault_summary = injector.stats.summary(
                report.makespan_s, self.cluster.num_devices
            )
            fault_events = list(injector.stats.events)
        return ServeResult(
            report=report,
            metrics=total,
            queue=queue.counters(),
            arrival_s=times,
            faults=fault_summary,
            fault_events=fault_events,
        )

    def _apply_device_loss(
        self,
        fault: FaultEvent,
        now: float,
        injector: FaultInjector,
        pending: dict[int, Ticket],
        busy_until,
        timeline: Timeline,
        total: ExecutionMetrics,
        abandon,
    ) -> None:
        """Kill a device and recover (or shed) the work it orphans.

        The device's resident tensors vanish, the balanced share and the
        reuse bounds are recomputed for the shrunken pool, and every
        in-flight vector with pairs assigned to the dead device either
        has those pairs re-executed on survivors (recovery on) or is
        shed as ``fault-abandoned`` (recovery off).
        """
        if not self.cluster.is_alive(fault.device):
            return  # already dead (duplicate plan entry)
        alive_before = self.cluster.num_alive
        orphans = self.cluster.fail_device(fault.device)
        injector.note_device_lost(fault.device, fault.time_s, len(orphans))
        injector.stats.record_event(
            "fault", fault.device, fault.time_s, 0.0, label="device lost"
        )

        if self.cluster.num_alive == 0:
            # Nothing left to serve on: everything admitted is shed.
            for ticket in list(pending.values()):
                abandon(ticket, now)
            return

        # Recompute the reuse bounds for the survivors (unless a
        # predictor re-derives them per vector anyway).
        if (
            self.predictor is None
            and hasattr(self.scheduler, "bounds")
            and hasattr(self.scheduler, "set_bounds")
        ):
            self.scheduler.set_bounds(
                self.scheduler.bounds.scaled(alive_before / self.cluster.num_alive)
            )

        affected = [
            t for t in pending.values() if fault.device in set(t.assignment)
        ]
        if not self.serve_config.recover_faults:
            for ticket in affected:
                abandon(ticket, now)
            injector.stats.record_recovery("device_lost", 0.0)
            return

        latest = now
        for ticket in affected:
            try:
                complete = self._reschedule_orphans(
                    ticket, fault.device, now, busy_until, total, injector
                )
            except FaultError:
                abandon(ticket, now)
                continue
            ticket.epoch += 1
            timeline.push(VectorCompletion(complete, ticket, epoch=ticket.epoch))
            latest = max(latest, complete)
        injector.stats.record_recovery("device_lost", latest - fault.time_s)
        injector.stats.record_event(
            "recovery",
            fault.device,
            now,
            max(latest - now, 0.0),
            label=f"rescheduled {len(affected)} vectors",
        )

    def _reschedule_orphans(
        self,
        ticket: Ticket,
        dead: int,
        now: float,
        busy_until,
        total: ExecutionMetrics,
        injector: FaultInjector,
    ) -> float:
        """Re-execute a ticket's dead-device pairs on the survivors.

        Returns the vector's new completion timestamp.  The surviving
        devices' original shares are already in ``busy_until``; only the
        re-executed pairs' busy time is appended.
        """
        orphan_idx = [i for i, dev in enumerate(ticket.assignment) if dev == dead]
        vector = ticket.vector
        # Fresh balance window sized to the re-scheduled slice (two
        # tensor slots per pair, matching record_assignment).
        self.cluster.begin_vector(2 * len(orphan_idx))
        self.scheduler.begin_vector(vector, self.cluster)
        vec_metrics = ExecutionMetrics(num_devices=self.cluster.num_devices)
        for i in orphan_idx:
            pair = vector.pairs[i]
            dev = self.scheduler.choose(pair, self.cluster)
            self.engine.execute_pair(pair, dev, vec_metrics)
            ticket.assignment[i] = dev
            injector.stats.rescheduled_pairs += 1
        total.merge(vec_metrics)
        delta = vec_metrics.compute_s + vec_metrics.memop_s
        for dev in sorted({ticket.assignment[i] for i in orphan_idx}):
            busy_until[dev] = max(busy_until[dev], now) + delta[dev]
        ticket.devices = sorted(set(ticket.assignment))
        complete = now
        for dev in ticket.devices:
            if self.cluster.is_alive(dev):
                complete = max(complete, busy_until[dev])
        return complete

    # ---------------------------------------------------------------- helpers
    def _schedule_and_execute(
        self, vector: VectorSpec, tracker: CharacteristicsTracker, wants_bounds: bool
    ) -> tuple[ExecutionMetrics, list[int]]:
        """One vector through the batch machinery; returns its metrics."""
        chars = tracker.observe(vector)
        if wants_bounds:
            self.scheduler.set_bounds(self.predictor.predict_bounds(chars))
        self.cluster.begin_vector(vector.num_tensors)
        self.scheduler.begin_vector(vector, self.cluster)
        vec_metrics = ExecutionMetrics(num_devices=self.cluster.num_devices)
        assignment: list[int] = []
        for pair in vector.pairs:
            dev = self.scheduler.choose(pair, self.cluster)
            self.engine.execute_pair(pair, dev, vec_metrics)
            assignment.append(dev)
        if not self.config.keep_outputs:
            self.engine.drain_outputs(vector, assignment, vec_metrics)
        return vec_metrics, assignment
