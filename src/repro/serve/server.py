"""Online serving facade: arrivals → admission queue → scheduler → devices.

:class:`MiccoServer` layers a discrete-event loop over the existing
batch machinery (any :class:`~repro.schedulers.base.Scheduler` plus the
:class:`~repro.gpusim.engine.ExecutionEngine`): vectors arrive over
simulated time, wait in a bounded :class:`AdmissionQueue`, are
dispatched one scheduling slot at a time, and execute on devices whose
busy-until horizons are derived from the cost model — so device compute
overlaps later arrivals exactly as on real hardware.

Everything is simulated and seeded: a fixed seed reproduces the same
arrival trace, the same scheduling decisions and the same latency
percentiles, bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.config import MiccoConfig
from repro.errors import ConfigurationError
from repro.gpusim.cluster import ClusterState
from repro.gpusim.device import mi100_like
from repro.gpusim.engine import ExecutionEngine
from repro.gpusim.metrics import ExecutionMetrics
from repro.schedulers.base import Scheduler
from repro.schedulers.micco import MiccoScheduler
from repro.serve.arrivals import ArrivalProcess, TraceArrivals
from repro.serve.queueing import QUEUE_POLICIES, AdmissionQueue
from repro.serve.slo import LatencyReport
from repro.serve.timeline import (
    SchedulingDone,
    Ticket,
    Timeline,
    VectorArrival,
    VectorCompletion,
)
from repro.tensor.spec import VectorSpec
from repro.workloads.characteristics import CharacteristicsTracker


@dataclass(frozen=True)
class ServeConfig:
    """Knobs of the serving layer (cluster knobs live in MiccoConfig).

    Parameters
    ----------
    queue_capacity:
        Bounded admission-queue depth; arrivals beyond it are shed.
    queue_policy:
        ``"fifo"`` or ``"sjf"`` dispatch order.
    max_inflight:
        Vectors dispatched but not yet complete.  1 models the paper's
        single sequential scheduling thread; higher values pipeline
        scheduling of one vector under execution of the previous.
    schedule_latency_per_pair_s:
        Simulated scheduling cost per pair (Table V measures ~10µs-scale
        per-pair decision overhead); deterministic by construction so
        repeated runs produce identical latencies.
    """

    queue_capacity: int = 64
    queue_policy: str = "fifo"
    max_inflight: int = 1
    schedule_latency_per_pair_s: float = 2e-5

    def __post_init__(self):
        if self.queue_capacity <= 0:
            raise ConfigurationError(f"queue_capacity must be > 0, got {self.queue_capacity}")
        if self.queue_policy not in QUEUE_POLICIES:
            raise ConfigurationError(
                f"unknown queue policy {self.queue_policy!r}; expected one of {QUEUE_POLICIES}"
            )
        if self.max_inflight < 1:
            raise ConfigurationError(f"max_inflight must be >= 1, got {self.max_inflight}")
        if self.schedule_latency_per_pair_s < 0:
            raise ConfigurationError(
                f"schedule_latency_per_pair_s must be >= 0, got {self.schedule_latency_per_pair_s}"
            )

    def with_(self, **kwargs) -> "ServeConfig":
        """Copy with overrides (sweep convenience)."""
        return replace(self, **kwargs)


@dataclass
class ServeResult:
    """Outcome of one online serving run."""

    report: LatencyReport
    metrics: ExecutionMetrics
    #: Admission-queue counter snapshot (admitted/dropped/peak depth).
    queue: dict = field(default_factory=dict)
    #: Absolute arrival timestamps actually offered.
    arrival_s: list[float] = field(default_factory=list)

    @property
    def p99(self) -> float:
        return self.report.p99

    @property
    def dropped(self) -> int:
        return len(self.report.dropped)

    def summary(self) -> dict:
        """Headline SLO numbers plus engine counters."""
        out = self.report.summary()
        out["queue"] = dict(self.queue)
        out["gflops"] = self.metrics.gflops
        out["reuse_hits"] = self.metrics.counts.reuse_hits
        out["transfers"] = self.metrics.counts.input_fetches
        return out


class MiccoServer:
    """An online serving instance: one scheduler on one simulated node.

    Parameters
    ----------
    scheduler:
        Any pair→GPU scheduler (default: :class:`MiccoScheduler`).
    config:
        Cluster + cost-model configuration shared with the batch path.
    serve:
        Serving-layer knobs (queue, inflight window, dispatch latency).
    predictor:
        Optional reuse-bound predictor; consulted per vector when the
        scheduler exposes ``set_bounds`` (MICCO-optimal serving).
    """

    def __init__(
        self,
        scheduler: Scheduler | None = None,
        config: MiccoConfig | None = None,
        serve: ServeConfig | None = None,
        predictor=None,
    ):
        self.config = config or MiccoConfig()
        self.serve_config = serve or ServeConfig()
        self.scheduler = scheduler if scheduler is not None else MiccoScheduler()
        self.predictor = predictor
        self.cluster = ClusterState(
            mi100_like(
                self.config.num_devices,
                memory_bytes=self.config.memory_bytes,
                peak_gflops=self.config.peak_gflops,
            ),
            eviction_policy=self.config.eviction_policy,
        )
        self.engine = ExecutionEngine(self.cluster, self.config.cost_model)

    # ------------------------------------------------------------------- run
    def run(self, vectors: list[VectorSpec], arrivals, *, seed=0, reset: bool = True) -> ServeResult:
        """Serve ``vectors`` arriving per ``arrivals``; returns SLO metrics.

        Parameters
        ----------
        vectors:
            The request stream, in arrival order.
        arrivals:
            An :class:`~repro.serve.arrivals.ArrivalProcess` (sampled
            with ``seed``) or an explicit sequence of absolute arrival
            timestamps, one per vector.
        reset:
            Start from an empty cluster and idle devices (default).
        """
        if not vectors:
            raise ConfigurationError("serving run needs at least one vector")
        if isinstance(arrivals, ArrivalProcess):
            times = arrivals.arrival_times(len(vectors), seed)
        else:
            # Explicit timestamps: validate through the trace process.
            times = TraceArrivals(list(arrivals)).arrival_times(len(vectors))

        if reset:
            self.cluster.reset()
            if hasattr(self.scheduler, "reset_stats"):
                self.scheduler.reset_stats()

        cfg = self.serve_config
        timeline = Timeline()
        queue = AdmissionQueue(cfg.queue_capacity, cfg.queue_policy)
        report = LatencyReport()
        tracker = CharacteristicsTracker()
        total = ExecutionMetrics(num_devices=self.cluster.num_devices)
        busy_until = np.zeros(self.cluster.num_devices)
        inflight = 0
        wants_bounds = self.predictor is not None and hasattr(self.scheduler, "set_bounds")

        for t, v in zip(times, vectors):
            timeline.push(VectorArrival(t, Ticket(vector=v, arrival_s=t)))

        def dispatch(ticket: Ticket, now: float) -> None:
            nonlocal inflight
            inflight += 1
            ticket.dispatch_s = now
            latency = cfg.schedule_latency_per_pair_s * len(ticket.vector.pairs)
            timeline.push(SchedulingDone(now + latency, ticket))

        while timeline:
            event = timeline.pop()
            now = timeline.now
            ticket = event.ticket

            if isinstance(event, VectorArrival):
                if inflight < cfg.max_inflight and not len(queue):
                    dispatch(ticket, now)
                elif not queue.offer(ticket):
                    report.add_drop(ticket)

            elif isinstance(event, SchedulingDone):
                ticket.sched_done_s = now
                vec_metrics, assignment = self._schedule_and_execute(
                    ticket.vector, tracker, wants_bounds
                )
                ticket.devices = sorted(set(assignment))
                # Per-device busy seconds this vector added.
                delta = vec_metrics.compute_s + vec_metrics.memop_s
                complete = now
                for dev in ticket.devices:
                    busy_until[dev] = max(busy_until[dev], now) + delta[dev]
                    complete = max(complete, busy_until[dev])
                total.merge(vec_metrics)
                timeline.push(VectorCompletion(complete, ticket))

            elif isinstance(event, VectorCompletion):
                ticket.complete_s = now
                report.add_completion(ticket)
                inflight -= 1
                while inflight < cfg.max_inflight:
                    nxt = queue.pop()
                    if nxt is None:
                        break
                    dispatch(nxt, now)

        return ServeResult(
            report=report,
            metrics=total,
            queue=queue.counters(),
            arrival_s=times,
        )

    # ---------------------------------------------------------------- helpers
    def _schedule_and_execute(
        self, vector: VectorSpec, tracker: CharacteristicsTracker, wants_bounds: bool
    ) -> tuple[ExecutionMetrics, list[int]]:
        """One vector through the batch machinery; returns its metrics."""
        chars = tracker.observe(vector)
        if wants_bounds:
            self.scheduler.set_bounds(self.predictor.predict_bounds(chars))
        self.cluster.begin_vector(vector.num_tensors)
        self.scheduler.begin_vector(vector, self.cluster)
        vec_metrics = ExecutionMetrics(num_devices=self.cluster.num_devices)
        assignment: list[int] = []
        for pair in vector.pairs:
            dev = self.scheduler.choose(pair, self.cluster)
            self.engine.execute_pair(pair, dev, vec_metrics)
            assignment.append(dev)
        if not self.config.keep_outputs:
            self.engine.drain_outputs(vector, assignment, vec_metrics)
        return vec_metrics, assignment
