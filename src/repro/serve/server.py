"""Online serving facade: arrivals → admission queue → scheduler → devices.

:class:`MiccoServer` layers a discrete-event loop over the existing
batch machinery (any :class:`~repro.schedulers.base.Scheduler` plus the
:class:`~repro.gpusim.engine.ExecutionEngine`): vectors arrive over
simulated time, wait in a bounded :class:`AdmissionQueue`, are
dispatched one scheduling slot at a time, and execute on devices whose
busy-until horizons are derived from the cost model — so device compute
overlaps later arrivals exactly as on real hardware.

:class:`MultiTenantServer` is the multi-tenant mode of the same loop:
several :class:`~repro.serve.tenancy.TenantSpec` arrival streams are
interleaved into one timeline, admission runs weighted-fair across the
tenants, and the report carries per-tenant tails and SLO attainment
alongside the global numbers.  An optional
:class:`~repro.serve.autoscale.Autoscaler` grows and shrinks the alive
device pool from queue-depth and windowed-p99 signals.

Everything is simulated and seeded: a fixed seed reproduces the same
arrival trace, the same scheduling and scaling decisions and the same
latency percentiles, bit for bit.
"""

from __future__ import annotations

import itertools
import json
import warnings
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path

import numpy as np

from repro.core.config import MiccoConfig
from repro.errors import ConfigurationError, FaultError
from repro.faults.injector import FaultInjector
from repro.faults.journal import ResidencyJournal
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
from repro.faults.recovery import FaultStats
from repro.gpusim.cluster import ClusterState
from repro.gpusim.device import mi100_like
from repro.gpusim.engine import ExecutionEngine
from repro.gpusim.metrics import ExecutionMetrics
from repro.gpusim.trace import TraceConfig, TraceRecorder
from repro.integrity import IntegrityConfig, IntegrityState
from repro.reporting import dump_json
from repro.schedulers.base import Scheduler
from repro.schedulers.batching import (
    batch_footprint_bytes,
    batch_shape_key,
    merge_vectors,
    split_assignment,
)
from repro.schedulers.micco import MiccoScheduler
from repro.serve.arrivals import ArrivalProcess, TraceArrivals
from repro.serve.autoscale import Autoscaler, AutoscalerConfig
from repro.serve.health import HealthConfig
from repro.serve.queueing import (
    QUEUE_POLICIES,
    AdmissionQueue,
    FaultAware,
    QueuePolicy,
    WeightedFair,
    make_policy,
)
from repro.serve.slo import LatencyReport
from repro.serve.tenancy import TenantSpec, TenantStream, build_streams, tenant_sections
from repro.serve.timeline import (
    BatchRound,
    DeviceOnline,
    DeviceRestore,
    SchedulingDone,
    Ticket,
    Timeline,
    VectorArrival,
    VectorCompletion,
)
from repro.tensor.spec import VectorSpec
from repro.workloads.characteristics import CharacteristicsTracker


@dataclass(frozen=True)
class ServeConfig:
    """Single source of truth for a serving run (cluster knobs aside).

    Everything the serving layer needs nests here — queue and inflight
    knobs, the tenant roster, the autoscaler policy and a fault plan —
    and the whole object round-trips through JSON
    (:meth:`to_json` / :meth:`from_json`), which is what
    ``micco serve --config cfg.json`` loads.  Cluster and cost-model
    knobs stay in :class:`~repro.core.config.MiccoConfig`.

    Parameters
    ----------
    queue_capacity:
        Bounded admission-queue depth; arrivals beyond it are shed.
    queue_policy:
        A :class:`~repro.serve.queueing.QueuePolicy` instance or one of
        ``"auto"``, ``"fifo"``, ``"sjf"``, ``"weighted"``.  ``"auto"``
        resolves to FIFO for single-tenant runs and to weighted-fair
        (weights from the tenant specs) when tenants are configured.
    max_inflight:
        Vectors dispatched but not yet complete.  1 models the paper's
        single sequential scheduling thread; higher values pipeline
        scheduling of one vector under execution of the previous.
    schedule_latency_per_pair_s:
        Simulated scheduling cost per pair (Table V measures ~10µs-scale
        per-pair decision overhead); deterministic by construction so
        repeated runs produce identical latencies.
    recover_faults:
        When a fault plan is active and a device is lost, re-schedule
        the in-flight pairs that were assigned to it onto the survivors
        (default).  With recovery off, affected vectors are shed with
        reason ``"fault-abandoned"`` instead — the baseline a chaos run
        compares against.
    tenants:
        Tenant roster; non-empty enables the multi-tenant serving mode
        (:class:`MultiTenantServer`).
    autoscaler:
        Pool autoscaling policy; ``None`` keeps the pool fixed.
    faults:
        Fault plan injected during the run (an explicit ``faults=``
        argument to :meth:`MiccoServer.run` takes precedence).
    warm_restore:
        Attach a :class:`~repro.faults.journal.ResidencyJournal` to the
        cluster for the run and replay it onto every device that comes
        online (autoscale warm-up, loss replacement): the journal's
        hottest currently-homeless tensors are pre-loaded into free
        memory before the device takes traffic, instead of each being
        re-fetched from the host on the next vectors' critical path.
    journal_capacity:
        Retained residency-delta window of the journal (entries).
    prewarm_fraction:
        At most this fraction of an activating device's memory may be
        filled by warm restore (the rest stays free for live traffic).
    fault_aware_admission:
        Wrap the dispatch policy in
        :class:`~repro.serve.queueing.FaultAware`: vectors whose
        estimated completion probability (from the live fault rate and
        the surviving pool fraction) falls below
        ``admission_min_success`` are shed at admission with reason
        ``"predicted-infeasible"`` instead of burning device time and
        being fault-abandoned mid-run.
    admission_min_success:
        Completion-probability threshold of the fault-aware gate.
    max_batch_vectors:
        Upper bound on queued vectors coalesced into one *scheduling
        round* at dispatch.  1 (default) disables batching; higher
        values let the dispatcher merge compatible vectors (same
        workload shape family, combined footprint within
        ``batch_memory_frac``) into one super-vector scheduled together
        — repeated tensors are placed once and reused across the round
        — then de-multiplexed back into per-vector completions so
        per-ticket latency, SLO and fault accounting stay exact.
    batch_memory_frac:
        Fraction of the *alive* pool's combined device memory a round's
        unique tensor footprint may occupy.  The batch assembler stops
        adding members when the next one would cross this budget.
    sharded:
        Run the two-level sharded control plane
        (:class:`~repro.serve.sharded.ShardedServer`): a global router
        admits and routes tickets to per-node local schedulers, each
        owning only its node's devices.  Requires a multi-node
        :class:`~repro.gpusim.topology.Topology` on the cost model.
    sync_interval_s:
        How often (simulated seconds) node runtimes report load/
        residency digests back to the global router.  Between syncs the
        router works from deliberately stale summaries.
    routing:
        Global routing policy name — one of
        :data:`~repro.serve.sharded.routing.ROUTING_POLICIES`
        (``"least-loaded"``, ``"residency-affinity"``,
        ``"threshold-local"``, ``"learned"``).  Unknown names fail at
        config-parse time, not after the run has started.
    explore_floor:
        Learned routing only: probability in ``[0, 1)`` that a warm
        decision picks a uniform-random candidate instead of the
        argmin predicted latency, so every shard keeps getting sampled
        (a recovered shard can be re-discovered).  Drawn from the
        run-seeded exploration stream — fixed seeds replay
        byte-identically.
    min_samples:
        Learned routing only: observed completions required on *every*
        candidate shard's model before predictions are trusted; below
        it routing falls back to the least-loaded ranking (cold start).
    refit_interval:
        Learned routing only: observations between incremental refits
        of a shard's sliding-window latency model.
    health:
        Gray-failure health subsystem
        (:class:`~repro.serve.health.HealthConfig`): heartbeat-driven
        suspicion tracking, quarantine/probation lifecycle, forwarding
        circuit breakers and (optionally) hedged dispatch on the
        sharded control plane.  ``None`` (default) disables health
        inference — gray faults then go entirely unnoticed by the
        router.
    trace:
        Engine trace recording (:class:`~repro.gpusim.trace.TraceConfig`):
        ``"report"`` (default, lazy report-derived Chrome traces, no
        recorder), ``"full"`` / ``"sampling"`` (attach a recorder with
        the matching sink — opts execution out of the trace-free fast
        path), or ``"off"`` (no traces at all).  ``None`` means
        ``"report"``.
    integrity:
        Result-integrity subsystem
        (:class:`~repro.integrity.IntegrityConfig`): checksum lineage
        over tensor copies, sampled audit recomputation of completed
        pairs on other devices (``spot`` / ``suspect-full``), taint
        invalidation + repair with exact SLO accounting, and per-device
        corruption blame with quarantine.  ``None`` (default) disables
        integrity checking — silent corruption then reaches reported
        completions unnoticed.
    """

    queue_capacity: int = 64
    queue_policy: QueuePolicy | str = "auto"
    max_inflight: int = 1
    schedule_latency_per_pair_s: float = 2e-5
    recover_faults: bool = True
    tenants: tuple[TenantSpec, ...] = ()
    autoscaler: AutoscalerConfig | None = None
    faults: FaultPlan | None = None
    warm_restore: bool = False
    journal_capacity: int = 4096
    prewarm_fraction: float = 0.5
    fault_aware_admission: bool = False
    admission_min_success: float = 0.5
    max_batch_vectors: int = 1
    batch_memory_frac: float = 0.5
    sharded: bool = False
    sync_interval_s: float = 0.05
    routing: str = "least-loaded"
    explore_floor: float = 0.05
    min_samples: int = 24
    refit_interval: int = 16
    health: HealthConfig | None = None
    trace: TraceConfig | None = None
    integrity: IntegrityConfig | None = None

    def __post_init__(self):
        if self.queue_capacity <= 0:
            raise ConfigurationError(f"queue_capacity must be > 0, got {self.queue_capacity}")
        if isinstance(self.queue_policy, str):
            if self.queue_policy not in QUEUE_POLICIES + ("auto",):
                raise ConfigurationError(
                    f"unknown queue policy {self.queue_policy!r}; expected a QueuePolicy "
                    f"or one of {QUEUE_POLICIES + ('auto',)}"
                )
        elif not isinstance(self.queue_policy, QueuePolicy):
            raise ConfigurationError(
                f"queue_policy must be a QueuePolicy or a name, got {self.queue_policy!r}"
            )
        if self.max_inflight < 1:
            raise ConfigurationError(f"max_inflight must be >= 1, got {self.max_inflight}")
        if self.schedule_latency_per_pair_s < 0:
            raise ConfigurationError(
                f"schedule_latency_per_pair_s must be >= 0, got {self.schedule_latency_per_pair_s}"
            )
        if self.journal_capacity < 1:
            raise ConfigurationError(
                f"journal_capacity must be >= 1, got {self.journal_capacity}"
            )
        if not 0 < self.prewarm_fraction <= 1:
            raise ConfigurationError(
                f"prewarm_fraction must be in (0, 1], got {self.prewarm_fraction}"
            )
        if not 0 < self.admission_min_success < 1:
            raise ConfigurationError(
                f"admission_min_success must be in (0, 1), got {self.admission_min_success}"
            )
        if self.max_batch_vectors < 1:
            raise ConfigurationError(
                f"max_batch_vectors must be >= 1, got {self.max_batch_vectors}"
            )
        if not 0 < self.batch_memory_frac <= 1:
            raise ConfigurationError(
                f"batch_memory_frac must be in (0, 1], got {self.batch_memory_frac}"
            )
        if self.sync_interval_s <= 0:
            raise ConfigurationError(
                f"sync_interval_s must be > 0, got {self.sync_interval_s}"
            )
        # Imported lazily: repro.serve.sharded imports this module.
        from repro.serve.sharded.routing import ROUTING_POLICIES

        if self.routing not in ROUTING_POLICIES:
            raise ConfigurationError(
                f"unknown routing policy {self.routing!r}; expected one of {ROUTING_POLICIES}"
            )
        if not 0 <= self.explore_floor < 1:
            raise ConfigurationError(
                f"explore_floor must be in [0, 1), got {self.explore_floor}"
            )
        if self.min_samples < 2:
            raise ConfigurationError(
                f"min_samples must be >= 2, got {self.min_samples}"
            )
        if self.refit_interval < 1:
            raise ConfigurationError(
                f"refit_interval must be >= 1, got {self.refit_interval}"
            )
        if self.health is not None and not isinstance(self.health, HealthConfig):
            raise ConfigurationError(
                f"health must be a HealthConfig or None, got {self.health!r}"
            )
        if self.trace is not None and not isinstance(self.trace, TraceConfig):
            raise ConfigurationError(
                f"trace must be a TraceConfig or None, got {self.trace!r}"
            )
        if self.integrity is not None and not isinstance(self.integrity, IntegrityConfig):
            raise ConfigurationError(
                f"integrity must be an IntegrityConfig or None, got {self.integrity!r}"
            )
        object.__setattr__(self, "tenants", tuple(self.tenants))
        for t in self.tenants:
            if not isinstance(t, TenantSpec):
                raise ConfigurationError(f"tenants entries must be TenantSpec, got {t!r}")
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"tenant names must be unique, got {names}")

    def with_(self, **kwargs) -> "ServeConfig":
        """Copy with overrides (sweep convenience)."""
        return replace(self, **kwargs)

    #: Schema version :meth:`to_json` writes.  Version 2 added the
    #: resilience knobs (``warm_restore``/``journal_capacity``/
    #: ``prewarm_fraction``/``fault_aware_admission``/
    #: ``admission_min_success``); version 3 added the batching knobs
    #: (``max_batch_vectors``/``batch_memory_frac``); version 4 added
    #: the sharded-control-plane knobs (``sharded``/``sync_interval_s``/
    #: ``routing``); version 5 added the ``health`` block (heartbeat
    #: health tracking, circuit breakers, hedged dispatch); version 6
    #: added the ``trace`` block (engine trace sink selection); version
    #: 7 added the ``integrity`` block (checksum lineage, audit
    #: recomputation, blame-driven quarantine); version 8 added the
    #: learned-routing knobs (``explore_floor``/``min_samples``/
    #: ``refit_interval``).  Older files still load with the later
    #: versions' knobs at their defaults.
    CONFIG_VERSION = 8

    # ------------------------------------------------------------ persistence
    def to_dict(self) -> dict:
        policy = self.queue_policy
        return {
            "queue_capacity": self.queue_capacity,
            "queue_policy": policy if isinstance(policy, str) else policy.name,
            "max_inflight": self.max_inflight,
            "schedule_latency_per_pair_s": self.schedule_latency_per_pair_s,
            "recover_faults": self.recover_faults,
            "tenants": [t.to_dict() for t in self.tenants],
            "autoscaler": self.autoscaler.to_dict() if self.autoscaler else None,
            "faults": self.faults.to_dicts() if self.faults else None,
            "warm_restore": self.warm_restore,
            "journal_capacity": self.journal_capacity,
            "prewarm_fraction": self.prewarm_fraction,
            "fault_aware_admission": self.fault_aware_admission,
            "admission_min_success": self.admission_min_success,
            "max_batch_vectors": self.max_batch_vectors,
            "batch_memory_frac": self.batch_memory_frac,
            "sharded": self.sharded,
            "sync_interval_s": self.sync_interval_s,
            "routing": self.routing,
            "explore_floor": self.explore_floor,
            "min_samples": self.min_samples,
            "refit_interval": self.refit_interval,
            "health": self.health.to_dict() if self.health else None,
            "trace": self.trace.to_dict() if self.trace else None,
            "integrity": self.integrity.to_dict() if self.integrity else None,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ServeConfig":
        if not isinstance(d, dict):
            raise ConfigurationError(f"serve config must be a JSON object, got {d!r}")
        version = d.get("version", cls.CONFIG_VERSION)
        if version not in (1, 2, 3, 4, 5, 6, 7, 8):
            raise ConfigurationError(
                f"unsupported serve config version {version!r}; this build reads 1 through 8"
            )
        known = {
            "queue_capacity", "queue_policy", "max_inflight",
            "schedule_latency_per_pair_s", "recover_faults",
            "tenants", "autoscaler", "faults", "version",
        }
        v2_keys = {
            "warm_restore", "journal_capacity", "prewarm_fraction",
            "fault_aware_admission", "admission_min_success",
        }
        v3_keys = {"max_batch_vectors", "batch_memory_frac"}
        v4_keys = {"sharded", "sync_interval_s", "routing"}
        v5_keys = {"health"}
        v6_keys = {"trace"}
        v7_keys = {"integrity"}
        v8_keys = {"explore_floor", "min_samples", "refit_interval"}
        if version >= 2:
            known |= v2_keys
        if version >= 3:
            known |= v3_keys
        if version >= 4:
            known |= v4_keys
        if version >= 5:
            known |= v5_keys
        if version >= 6:
            known |= v6_keys
        if version >= 7:
            known |= v7_keys
        if version >= 8:
            known |= v8_keys
        unknown = set(d) - known
        if unknown:
            raise ConfigurationError(f"unknown serve config keys: {sorted(unknown)}")
        kwargs = {
            k: d[k]
            for k in (
                "queue_capacity", "queue_policy", "max_inflight",
                "schedule_latency_per_pair_s", "recover_faults",
                *sorted(v2_keys),
                *sorted(v3_keys),
                *sorted(v4_keys),
                *sorted(v8_keys),
            )
            if k in d
        }
        if d.get("tenants"):
            kwargs["tenants"] = tuple(TenantSpec.from_dict(t) for t in d["tenants"])
        if d.get("autoscaler"):
            kwargs["autoscaler"] = AutoscalerConfig.from_dict(d["autoscaler"])
        if d.get("faults"):
            kwargs["faults"] = FaultPlan.from_dicts(d["faults"])
        if d.get("health"):
            kwargs["health"] = HealthConfig.from_dict(d["health"])
        if d.get("trace"):
            kwargs["trace"] = TraceConfig.from_dict(d["trace"])
        if d.get("integrity"):
            kwargs["integrity"] = IntegrityConfig.from_dict(d["integrity"])
        return cls(**kwargs)

    def to_json(self, path: str | Path) -> None:
        """Write the full config; :meth:`from_json` round-trips it."""
        dump_json(path, {"version": self.CONFIG_VERSION, **self.to_dict()})

    @classmethod
    def from_json(cls, path: str | Path) -> "ServeConfig":
        return cls.from_dict(json.loads(Path(path).read_text()))


@dataclass
class ServeResult:
    """Outcome of one online serving run."""

    report: LatencyReport
    metrics: ExecutionMetrics
    #: Admission-queue counter snapshot (admitted/dropped/peak depth).
    queue: dict = field(default_factory=dict)
    #: Absolute arrival timestamps actually offered (chronological).
    arrival_s: list[float] = field(default_factory=list)
    #: Fault section (``FaultStats.summary``); ``None`` without a plan.
    faults: dict | None = None
    #: Replayable fault/retry/recovery event log (empty without a plan).
    fault_events: list[dict] = field(default_factory=list)
    #: Per-tenant sections (summary + SLO attainment); ``None`` for
    #: single-tenant runs.
    tenants: dict | None = None
    #: Autoscaler section (actions, scale counts); ``None`` without one.
    autoscale: dict | None = None
    #: Residency-journal section (restores, prewarmed tensors);
    #: ``None`` unless :attr:`ServeConfig.warm_restore` was on.
    journal: dict | None = None
    #: Per-round dispatch log: one record per scheduling round
    #: (``round_id``, member vector ids, pair count, dispatch/sched-done
    #: timestamps).  Singleton rounds are logged too, so the log always
    #: covers every dispatch.
    rounds: list[dict] = field(default_factory=list)
    #: Sharded-control-plane section (routing counters, per-shard
    #: records); ``None`` for single-control-plane runs.
    sharding: dict | None = None
    #: Health-subsystem section (suspicion timeline, quarantine
    #: episodes, hedge/breaker counters); ``None`` unless
    #: :attr:`ServeConfig.health` was set on a sharded run.
    health: dict | None = None
    #: Replayable health/hedge/breaker event log (empty without the
    #: health subsystem).
    health_events: list[dict] = field(default_factory=list)
    #: Result-integrity section (injected/detected/escaped counters,
    #: audit overhead, blame log); ``None`` unless
    #: :attr:`ServeConfig.integrity` enabled a mode other than ``off``.
    integrity: dict | None = None
    #: Timeline events processed by the serving loop (control-plane
    #: work, the denominator of the events/sec benchmark figure).
    events_processed: int = 0
    #: Learned-routing section (decision/exploration counters, per-shard
    #: sample counts, refits and mean absolute prediction error);
    #: ``None`` unless :attr:`ServeConfig.routing` is ``"learned"``.
    routing: dict | None = None
    #: Replayable learned-routing event log — model refits and the
    #: cold-start→warm transition (empty for static policies).
    routing_events: list[dict] = field(default_factory=list)
    #: Engine-level event recorder for the run; populated only when
    #: :attr:`ServeConfig.trace` selects ``"full"`` or ``"sampling"``.
    engine_trace: TraceRecorder | None = None
    #: Trace mode the run was configured with (``TraceConfig.mode``).
    trace_mode: str = "report"

    @property
    def p99(self) -> float:
        return self.report.p99

    @property
    def dropped(self) -> int:
        return len(self.report.dropped)

    def tenant_report(self, name: str) -> LatencyReport:
        """Per-tenant latency-report view (see :meth:`LatencyReport.for_tenant`)."""
        return self.report.for_tenant(name)

    def summary(self) -> dict:
        """Headline SLO numbers plus engine counters."""
        out = self.report.summary()
        out["queue"] = dict(self.queue)
        out["gflops"] = self.metrics.gflops
        out["reuse_hits"] = self.metrics.counts.reuse_hits
        out["transfers"] = self.metrics.counts.input_fetches
        if self.faults is not None:
            out["faults"] = self.faults
        if self.tenants is not None:
            out["tenants"] = self.tenants
        if self.autoscale is not None:
            out["autoscale"] = self.autoscale
        if self.journal is not None:
            out["journal"] = self.journal
        if self.sharding is not None:
            out["sharding"] = self.sharding
        if self.health is not None:
            out["health"] = self.health
        if self.integrity is not None:
            out["integrity"] = self.integrity
        if self.routing is not None:
            out["routing"] = self.routing
        out["events_processed"] = self.events_processed
        return out

    def to_json(self, path: str | Path, *, extra: dict | None = None) -> None:
        """Write the full result: summary, per-vector records, sections."""
        payload = {
            "summary": self.summary(),
            "completed": [asdict(r) for r in self.report.completed],
            "dropped": [asdict(r) for r in self.report.dropped],
        }
        if self.faults is not None:
            payload["faults"] = self.faults
            payload["fault_events"] = self.fault_events
        if self.tenants is not None:
            payload["tenants"] = self.tenants
        if self.autoscale is not None:
            payload["autoscale"] = self.autoscale
        if self.journal is not None:
            payload["journal"] = self.journal
        if self.sharding is not None:
            payload["sharding"] = self.sharding
        if self.health is not None:
            payload["health"] = self.health
            payload["health_events"] = self.health_events
        if self.integrity is not None:
            payload["integrity"] = self.integrity
        if self.routing is not None:
            payload["routing"] = self.routing
            payload["routing_events"] = self.routing_events
        if self.rounds:
            payload["rounds"] = self.rounds
        if extra:
            payload.update(extra)
        dump_json(path, payload)

    def to_trace(self) -> TraceRecorder:
        """Chrome-trace view: vector lifecycle lanes plus pool events.

        Fault and autoscale events render on lane ``-(device + 1)``,
        batched scheduling rounds on a ``batch`` lane block below the
        device lanes (``-(num_devices + 1 + round_id)``), and health /
        hedge / breaker events on a per-node lane block far below both
        (``-(100_000 + node)``), and learned-routing events (refits,
        warm-up) on their own per-node block below that
        (``-(200_000 + node)``), so none of them collide with the
        per-vector lanes (vector ids are non-negative).

        With :attr:`trace_mode` ``"off"`` an empty recorder is returned
        (nothing is rendered).  Engine-level device events, when
        recorded, stay on :attr:`engine_trace` — their device lanes use
        the same ids as the vector lanes, so they are deliberately not
        merged here.
        """
        if self.trace_mode == "off":
            return TraceRecorder()
        trace = self.report.to_trace()
        for rnd in self.rounds:
            if len(rnd["members"]) < 2:
                continue  # singleton rounds add nothing over the vector lanes
            trace.record_at(
                "batch",
                -(self.metrics.num_devices + 1 + rnd["round_id"]),
                rnd["dispatch_s"],
                rnd["sched_done_s"] - rnd["dispatch_s"],
                label=f"round {rnd['round_id']}: v{rnd['members']}",
            )
        for ev in self.fault_events:
            trace.record_at(
                ev["kind"],
                -(ev["device"] + 1),
                ev["time_s"],
                ev["duration_s"],
                label=ev["label"],
            )
        for act in (self.autoscale or {}).get("actions", ()):
            trace.record_at(
                f"scale-{act['action']}",
                -(act["device"] + 1),
                act["time_s"],
                0.0,
                label=act["reason"] or act["action"],
            )
        for ev in self.health_events:
            trace.record_at(
                ev["kind"],
                -(100_000 + ev["node"]),
                ev["time_s"],
                0.0,
                label=ev["label"],
            )
        for ev in self.routing_events:
            trace.record_at(
                f"routing-{ev['kind']}",
                -(200_000 + ev["node"]),
                ev["time_s"],
                0.0,
                label=ev["label"],
            )
        return trace


# Depth counter for the supported construction path: while positive,
# server __init__ skips the direct-construction DeprecationWarning.
# ``repro.serve.api`` wraps every instantiation in ``_api_construction``.
_api_depth = 0


@contextmanager
def _api_construction():
    """Mark server construction as coming through ``repro.serve.api``."""
    global _api_depth
    _api_depth += 1
    try:
        yield
    finally:
        _api_depth -= 1


class MiccoServer:
    """An online serving instance: one scheduler on one simulated node.

    Parameters
    ----------
    scheduler:
        Any pair→GPU scheduler (default: :class:`MiccoScheduler`).
    config:
        Cluster + cost-model configuration shared with the batch path.
    serve:
        Serving-layer configuration (queue, inflight window, dispatch
        latency, tenants, autoscaler, fault plan).
    predictor:
        Optional reuse-bound predictor; consulted per vector when the
        scheduler exposes ``set_bounds`` (MICCO-optimal serving).
    """

    def __init__(
        self,
        scheduler: Scheduler | None = None,
        config: MiccoConfig | None = None,
        serve: ServeConfig | None = None,
        predictor=None,
    ):
        if not _api_depth:
            warnings.warn(
                f"constructing {type(self).__name__} directly is deprecated; "
                "use repro.serve.api.serve() (or make_server()) which picks "
                "the server class from the ServeConfig",
                DeprecationWarning,
                stacklevel=2,
            )
        self.config = config or MiccoConfig()
        self.serve_config = serve or ServeConfig()
        self.scheduler = scheduler if scheduler is not None else MiccoScheduler()
        self.predictor = predictor
        self.cluster = ClusterState(
            mi100_like(
                self.config.num_devices,
                memory_bytes=self.config.memory_bytes,
                peak_gflops=self.config.peak_gflops,
            ),
            eviction_policy=self.config.eviction_policy,
        )
        self.engine = ExecutionEngine(self.cluster, self.config.cost_model)
        # Baseline (bounds, alive count) captured at the start of each
        # run; every pool-size change rescales from this anchor so that
        # repeated shrink/grow cycles cannot compound float drift (see
        # ``_rescale_bounds``).
        self._bounds_anchor: tuple | None = None

    # ------------------------------------------------------------------- run
    def run(
        self,
        vectors: list[VectorSpec],
        arrivals,
        *,
        seed=0,
        reset: bool = True,
        faults: FaultPlan | None = None,
    ) -> ServeResult:
        """Serve ``vectors`` arriving per ``arrivals``; returns SLO metrics.

        Parameters
        ----------
        vectors:
            The request stream, in arrival order.
        arrivals:
            An :class:`~repro.serve.arrivals.ArrivalProcess` (sampled
            with ``seed``) or an explicit sequence of absolute arrival
            timestamps, one per vector.
        reset:
            Start from an empty cluster and idle devices (default).
        faults:
            Optional :class:`~repro.faults.plan.FaultPlan`, taking
            precedence over :attr:`ServeConfig.faults`.  Due faults are
            applied as the event loop advances: transient/transfer
            faults and stragglers are handled inside the engine
            (retry + backoff, host re-fetch, stretched kernels); device
            losses shrink the pool — orphaned in-flight pairs are
            re-scheduled onto survivors (when
            :attr:`ServeConfig.recover_faults`), ``balanceNum`` and the
            reuse bounds are recomputed for the survivors, and the run
            keeps serving.  The result's ``faults`` section reports
            counts, recovery latencies and availability.
        """
        if not vectors:
            raise ConfigurationError("serving run needs at least one vector")
        if isinstance(arrivals, ArrivalProcess):
            times = arrivals.arrival_times(len(vectors), seed)
        else:
            # Explicit timestamps: validate through the trace process.
            times = TraceArrivals(list(arrivals)).arrival_times(len(vectors))
        stream = TenantStream(spec=None, vectors=list(vectors), times=times)
        return self._serve([stream], faults=faults, reset=reset)

    # ------------------------------------------------------------- event loop
    def _serve(
        self,
        streams: list[TenantStream],
        *,
        faults: FaultPlan | None,
        reset: bool = True,
    ) -> ServeResult:
        """Run the discrete-event loop over one or more arrival streams."""
        if reset:
            self.cluster.reset()
            if hasattr(self.scheduler, "reset_stats"):
                self.scheduler.reset_stats()

        cfg = self.serve_config
        if faults is None:
            faults = cfg.faults
        timeline = Timeline()
        queue = AdmissionQueue(cfg.queue_capacity, self._resolve_policy(streams))
        report = LatencyReport()
        tracker = CharacteristicsTracker()
        total = ExecutionMetrics(num_devices=self.cluster.num_devices)
        # Slot-indexed device horizons live on the cluster (shared with
        # introspection/benchmarks); each serve pass starts them fresh.
        busy_until = self.cluster.busy_until
        busy_until.fill(0.0)
        inflight = 0
        wants_bounds = self.predictor is not None and hasattr(self.scheduler, "set_bounds")
        # Arming validates every plan event's device id against this
        # cluster — a plan aimed at a device we don't have fails here.
        injector = (
            FaultInjector(faults, self.cluster.num_devices) if faults is not None else None
        )
        scaler = Autoscaler(cfg.autoscaler) if cfg.autoscaler is not None else None
        journal = ResidencyJournal(cfg.journal_capacity) if cfg.warm_restore else None
        integ = (
            IntegrityState(cfg.integrity, self.cluster.num_devices)
            if cfg.integrity is not None and cfg.integrity.mode != "off"
            else None
        )
        #: Tickets whose completion was already audited and repaired
        #: this epoch (skip re-auditing when the repaired completion
        #: event fires).
        verified: set[int] = set()
        # The fault-aware admission gate, when configured (observe() is
        # fed the live fault picture at every arrival).
        gate = queue.policy if isinstance(queue.policy, FaultAware) else None
        #: Devices scheduled to come online, warm-up still pending.
        pending_online: set[int] = set()
        # Tickets dispatched and executed, completion event still ahead
        # (the set device loss or scale-down can orphan work out of).
        pending: dict[int, Ticket] = {}
        round_ids = itertools.count()
        rounds_log: list[dict] = []
        events_processed = 0

        # Anchor the reuse bounds before any pool-size change so every
        # rescale derives from the run's original (bounds, pool) pair.
        if (
            self.predictor is None
            and hasattr(self.scheduler, "bounds")
            and hasattr(self.scheduler, "set_bounds")
        ):
            self._bounds_anchor = (self.scheduler.bounds, self.cluster.num_alive)
        else:
            self._bounds_anchor = None

        if scaler is not None:
            self._shrink_to_initial(scaler)
        for stream in streams:
            tenant = stream.spec.name if stream.spec is not None else None
            p99_target = stream.spec.slo.p99_s if stream.spec is not None else None
            for t, v in zip(stream.times, stream.vectors):
                deadline = t + p99_target if p99_target is not None else None
                timeline.push(
                    VectorArrival(
                        t,
                        Ticket(vector=v, arrival_s=t, tenant=tenant, deadline_s=deadline),
                    )
                )

        def dispatch(members: list[Ticket], now: float) -> None:
            """Dispatch one scheduling round (``inflight`` counts rounds)."""
            nonlocal inflight
            inflight += 1
            rnd = BatchRound(round_id=next(round_ids), members=members)
            for t in members:
                t.dispatch_s = now
                t.round_id = rnd.round_id
                t.round_size = len(members)
                t.round = rnd
            latency = cfg.schedule_latency_per_pair_s * rnd.num_pairs
            timeline.push(SchedulingDone(now + latency, members[0], round=rnd))
            rounds_log.append(
                {
                    "round_id": rnd.round_id,
                    "members": [t.vector.vector_id for t in members],
                    "pairs": rnd.num_pairs,
                    "dispatch_s": now,
                    "sched_done_s": now + latency,
                }
            )

        def refill(now: float) -> None:
            while inflight < cfg.max_inflight:
                members = self._pop_round(queue, now)
                if not members:
                    break
                dispatch(members, now)

        def settle(ticket: Ticket, now: float) -> None:
            """A round member is done (completed or shed); the round's
            scheduling slot frees only when its last member settles."""
            nonlocal inflight
            pending.pop(id(ticket), None)
            rnd = ticket.round
            ticket.round = None
            if rnd is not None:
                rnd.remaining -= 1
                if rnd.remaining > 0:
                    return
            inflight -= 1
            refill(now)

        def abandon(ticket: Ticket, now: float) -> None:
            """Shed an admitted ticket that can no longer complete."""
            ticket.epoch += 1  # invalidate any queued completion event
            report.add_drop(ticket, reason="fault-abandoned")
            settle(ticket, now)

        # Config-selected engine tracing: "full"/"sampling" attach a
        # recorder for the run (routing execution through the traced
        # path); "report"/"off"/None leave the engine trace-free.
        trace_mode = cfg.trace.mode if cfg.trace is not None else "report"
        recorder = cfg.trace.make_sink() if cfg.trace is not None else None
        if recorder is not None:
            recorder = TraceRecorder(recorder)
        prev_trace = self.engine.trace
        if recorder is not None:
            self.engine.trace = recorder
        self.engine.injector = injector
        self.engine.integrity = integ
        self.cluster.journal = journal
        try:
            while timeline:
                event = timeline.pop()
                now = timeline.now
                events_processed += 1
                if journal is not None:
                    journal.advance(now)
                if injector is not None:
                    for loss in injector.poll(now):
                        if loss.kind is FaultKind.LINK_LOST:
                            self._apply_link_loss(loss, now, injector)
                        elif loss.kind is FaultKind.HEARTBEAT_LOSS:
                            self._apply_heartbeat_loss(loss, now, injector)
                        elif loss.kind is FaultKind.NODE_FLAP:
                            # Transient: the devices come back on their
                            # own, so no replacement warm-up is requested.
                            for dev in self._apply_device_loss(
                                loss, now, injector, pending, busy_until,
                                timeline, total, abandon,
                            ):
                                timeline.push(
                                    DeviceRestore(
                                        max(now, loss.time_s + loss.duration_s),
                                        device=dev,
                                    )
                                )
                        elif loss.kind is FaultKind.TENSOR_BITFLIP:
                            self._apply_bitflip(loss, now, injector, integ)
                        else:
                            self._apply_device_loss(
                                loss, now, injector, pending, busy_until, timeline,
                                total, abandon, scaler=scaler,
                                pending_online=pending_online,
                            )
                if integ is not None:
                    for dev in integ.poll_quarantines():
                        self._quarantine_device(
                            dev, now, injector, integ, pending, verified,
                            busy_until, timeline, total, abandon,
                        )
                if scaler is not None:
                    self._autoscale_step(
                        scaler, now, queue, timeline, pending, pending_online,
                        busy_until, total, injector, abandon,
                    )
                ticket = event.ticket

                if isinstance(event, VectorArrival):
                    if gate is not None:
                        fault_events = 0
                        if injector is not None:
                            s = injector.stats
                            fault_events = (
                                s.transient_failures
                                + s.device_losses
                                + s.transfer_refetches
                            )
                        gate.observe(
                            now, fault_events,
                            self.cluster.num_alive, self.cluster.num_devices,
                        )
                    if self.cluster.num_alive == 0:
                        report.add_drop(ticket, reason="fault-abandoned")
                    elif gate is not None and not gate.admit(ticket, now):
                        report.add_drop(ticket, reason="predicted-infeasible")
                        if injector is not None:
                            injector.stats.predicted_infeasible += 1
                    elif inflight < cfg.max_inflight and not len(queue):
                        dispatch([ticket], now)
                    elif not queue.offer(ticket):
                        report.add_drop(ticket)

                elif isinstance(event, SchedulingDone):
                    members = event.round.members if event.round is not None else [ticket]
                    for t in members:
                        t.sched_done_s = now
                    if self.cluster.num_alive == 0:
                        for t in members:
                            abandon(t, now)
                        continue
                    merged = merge_vectors([t.vector for t in members])
                    try:
                        vec_metrics, assignment = self._schedule_and_execute(
                            merged, tracker, wants_bounds
                        )
                    except FaultError:
                        # Retry budget exhausted (or the pool died under
                        # us): shed the round, keep the cluster serving.
                        for t in members:
                            abandon(t, now)
                        continue
                    # Per-device busy seconds this round added; members
                    # share the round's horizon on the devices they use.
                    delta = vec_metrics.compute_s + vec_metrics.memop_s
                    for dev in sorted(set(assignment)):
                        busy_until[dev] = max(busy_until[dev], now) + delta[dev]
                    total.merge(vec_metrics)
                    # De-multiplex: each member keeps its own assignment
                    # slice and completes when its own devices drain.
                    slices = split_assignment([t.vector for t in members], assignment)
                    for t, sl in zip(members, slices):
                        t.assignment = sl
                        t.devices = sorted(set(sl))
                        complete = max((busy_until[d] for d in t.devices), default=now)
                        pending[id(t)] = t
                        timeline.push(
                            VectorCompletion(max(complete, now), t, epoch=t.epoch)
                        )

                elif isinstance(event, VectorCompletion):
                    if event.epoch != ticket.epoch:
                        continue  # superseded by recovery (or abandoned)
                    if integ is not None and id(ticket) not in verified:
                        action, ready = self._audit_ticket(
                            integ, ticket, now, busy_until, total, injector
                        )
                        if action == "repair":
                            # The audit recomputation on the clean
                            # auditor device *is* the repaired result;
                            # the ticket completes when it lands.
                            verified.add(id(ticket))
                            ticket.epoch += 1
                            timeline.push(
                                VectorCompletion(max(ready, now), ticket, epoch=ticket.epoch)
                            )
                            continue
                        if action == "flag":
                            # Audit budget (or auditor pool) exhausted:
                            # the result cannot be verified — shed it
                            # rather than report a possibly-wrong answer.
                            report.add_drop(ticket, reason="integrity-unverified")
                            settle(ticket, now)
                            continue
                    if integ is not None:
                        verified.discard(id(ticket))
                        integ.note_reported(ticket.vector, ticket.assignment)
                    ticket.complete_s = now
                    rec = report.add_completion(ticket)
                    if scaler is not None:
                        scaler.observe_completion(now, rec.latency_s)
                    settle(ticket, now)

                elif isinstance(event, DeviceOnline):
                    self._bring_online(
                        event.device, now, scaler, pending_online, busy_until, injector
                    )

                elif isinstance(event, DeviceRestore):
                    self._restore_device(event.device, now, busy_until, injector)
        finally:
            self.engine.injector = None
            self.engine.integrity = None
            self.engine.trace = prev_trace
            self.cluster.journal = None

        fault_summary = None
        fault_events: list[dict] = []
        if injector is not None:
            injector.stats.finalize(report.makespan_s, self.cluster.num_devices)
            fault_summary = injector.stats.summary()
            fault_events = list(injector.stats.events)
        specs = [s.spec for s in streams if s.spec is not None]
        return ServeResult(
            report=report,
            metrics=total,
            queue=queue.counters(),
            arrival_s=sorted(t for s in streams for t in s.times),
            faults=fault_summary,
            fault_events=fault_events,
            tenants=tenant_sections(report, specs) if specs else None,
            autoscale=scaler.summary() if scaler is not None else None,
            journal=journal.summary() if journal is not None else None,
            rounds=rounds_log,
            integrity=(
                integ.summary(float(total.compute_s.sum())) if integ is not None else None
            ),
            events_processed=events_processed,
            engine_trace=recorder,
            trace_mode=trace_mode,
        )

    def _pop_round(self, queue: AdmissionQueue, now: float = 0.0) -> list[Ticket]:
        """Pop the next scheduling round's members from the queue.

        With :attr:`ServeConfig.max_batch_vectors` at 1 this is a plain
        policy-order pop.  Otherwise the queue head anchors the round
        and later entries (still visited in policy order, so
        weighted-fair and fault-aware ordering is respected) join it
        while they share the head's workload shape family, the round's
        combined unique-tensor footprint stays within
        :attr:`ServeConfig.batch_memory_frac` of the alive pool's
        memory, and growing the round would not push its
        earliest-deadline member past its SLO (see :meth:`_batch_accept`).
        Incompatible entries are skipped, not dropped — they keep their
        queue position for later rounds.
        """
        cfg = self.serve_config
        if cfg.max_batch_vectors <= 1:
            nxt = queue.pop()
            return [nxt] if nxt is not None else []
        # ``alive_ids`` returns the same cached list object until the
        # alive set changes, so its identity keys the budget cache —
        # steady-state rounds skip the per-device memory sum.
        alive = self.cluster.alive_ids()
        cache = getattr(self, "_budget_cache", None)
        if cache is not None and cache[0] is alive:
            budget = cache[1]
        else:
            budget = cfg.batch_memory_frac * sum(
                self.cluster.devices[d].memory_bytes for d in alive
            )
            self._budget_cache = (alive, budget)
        return queue.pop_batch(cfg.max_batch_vectors, accept=self._batch_accept(budget, now))

    def _batch_accept(self, budget: float, now: float):
        """Build the batch-membership predicate for one round assembly.

        A candidate joins the round only when (a) it shares the head's
        workload shape family, (b) the combined unique-tensor footprint
        stays within ``budget`` bytes, and (c) — the deadline-aware
        cutoff — the grown round's scheduling latency would not push its
        earliest-deadline member past that member's SLO deadline.
        Tickets without a deadline (no tenant p99 target) never
        constrain growth.  Shared by the single-loop and per-shard round
        assemblers.
        """
        latency_per_pair = self.serve_config.schedule_latency_per_pair_s
        # One closure per round: the head's shape key and the accepted
        # members' footprint/deadline state accumulate incrementally
        # instead of being recomputed from scratch per candidate
        # (members only ever grow within one ``pop_batch`` call).  The
        # totals are integer-exact sums, so they match the from-scratch
        # computation term for term.
        head_key = None
        seen: dict[int, int] = {}
        in_bytes = 0
        out_bytes = 0
        pairs_cov = 0
        covered = 0
        min_deadline: float | None = None

        def accept(members: list[Ticket], candidate: Ticket) -> bool:
            nonlocal head_key, in_bytes, out_bytes, pairs_cov, covered, min_deadline
            if head_key is None:
                head_key = batch_shape_key(members[0].vector)
            if batch_shape_key(candidate.vector) != head_key:
                return False
            while covered < len(members):
                t = members[covered]
                covered += 1
                for p in t.vector.pairs:
                    lu = p.left.uid
                    if lu not in seen:
                        seen[lu] = 1
                        in_bytes += p.left.nbytes
                    ru = p.right.uid
                    if ru not in seen:
                        seen[ru] = 1
                        in_bytes += p.right.nbytes
                    out_bytes += p.out.nbytes
                pairs_cov += len(t.vector.pairs)
                dl = t.deadline_s
                if dl is not None and (min_deadline is None or dl < min_deadline):
                    min_deadline = dl
            cv = candidate.vector
            add = 0
            c_out = 0
            c_seen: set[int] = set()
            for p in cv.pairs:
                lu = p.left.uid
                if lu not in seen and lu not in c_seen:
                    c_seen.add(lu)
                    add += p.left.nbytes
                ru = p.right.uid
                if ru not in seen and ru not in c_seen:
                    c_seen.add(ru)
                    add += p.right.nbytes
                c_out += p.out.nbytes
            if in_bytes + add + out_bytes + c_out > budget:
                return False
            c_dl = candidate.deadline_s
            if min_deadline is not None or c_dl is not None:
                worst = (
                    min_deadline
                    if c_dl is None
                    else (c_dl if min_deadline is None else min(min_deadline, c_dl))
                )
                if now + latency_per_pair * (pairs_cov + len(cv.pairs)) > worst:
                    return False
            return True

        return accept

    def _resolve_policy(self, streams: list[TenantStream]) -> QueuePolicy:
        """Build the dispatch policy for this run's streams.

        ``"auto"`` picks weighted-fair when tenants are configured
        (their weights seed the policy) and FIFO otherwise; explicit
        names and :class:`QueuePolicy` instances are honoured as-is.
        With :attr:`ServeConfig.fault_aware_admission` the resolved
        policy is wrapped in :class:`FaultAware` (unless it already is).
        """
        cfg = self.serve_config
        policy = cfg.queue_policy
        if not isinstance(policy, QueuePolicy):
            weights = {s.spec.name: s.spec.weight for s in streams if s.spec is not None}
            if policy == "auto":
                policy = "weighted" if weights else "fifo"
            policy = WeightedFair(weights) if policy == "weighted" else make_policy(policy)
        if cfg.fault_aware_admission and not isinstance(policy, FaultAware):
            policy = FaultAware(policy, min_success_prob=cfg.admission_min_success)
        return policy

    # ------------------------------------------------------------ autoscaling
    def _shrink_to_initial(self, scaler: Autoscaler) -> None:
        """Retire devices down to the autoscaler's initial pool size."""
        c = scaler.config
        target = max(
            c.min_devices,
            min(
                c.initial_devices if c.initial_devices is not None else c.min_devices,
                c.max_devices,
                self.cluster.num_alive,
            ),
        )
        while self.cluster.num_alive > target:
            before = self.cluster.num_alive
            self.cluster.retire_device(self.cluster.alive_ids()[-1])
            self._rescale_bounds(before, self.cluster.num_alive)

    def _autoscale_step(
        self,
        scaler: Autoscaler,
        now: float,
        queue: AdmissionQueue,
        timeline: Timeline,
        pending: dict[int, Ticket],
        pending_online: set[int],
        busy_until,
        total: ExecutionMetrics,
        injector: FaultInjector | None,
        abandon,
    ) -> None:
        """Evaluate the autoscaler and apply its decision, if any."""
        c = scaler.config
        max_devices = min(c.max_devices, self.cluster.num_devices)
        decision = scaler.decide(
            now,
            queue_depth=len(queue),
            num_alive=self.cluster.num_alive + len(pending_online),
        )
        if decision == "up":
            candidates = [d for d in self.cluster.offline_ids() if d not in pending_online]
            if not candidates or self.cluster.num_alive + len(pending_online) >= max_devices:
                return
            dev = candidates[0]
            pending_online.add(dev)
            timeline.push(DeviceOnline(now + c.warmup_s, device=dev))
            scaler.log(
                now, "up", dev, self.cluster.num_alive,
                reason=f"queue depth {len(queue)}, warm-up {c.warmup_s:g}s",
            )
        elif decision == "down":
            # Never shrink below the floor or while a warm-up is pending
            # (mixed signals: the queue says grow, the window says shrink).
            if pending_online or self.cluster.num_alive <= c.min_devices:
                return
            dev = self.cluster.alive_ids()[-1]
            before = self.cluster.num_alive
            self.cluster.retire_device(dev)
            self._rescale_bounds(before, self.cluster.num_alive)
            # Drain: in-flight pairs on the retiring device finish on the
            # survivors through the orphan-rescheduling path.
            moved = 0
            for ticket in [t for t in pending.values() if dev in set(t.assignment)]:
                try:
                    complete = self._reschedule_orphans(
                        ticket, dev, now, busy_until, total,
                        stats=injector.stats if injector is not None else None,
                    )
                except FaultError:
                    abandon(ticket, now)
                    continue
                ticket.epoch += 1
                timeline.push(VectorCompletion(complete, ticket, epoch=ticket.epoch))
                moved += 1
            scaler.log(
                now, "down", dev, self.cluster.num_alive,
                reason=f"drained {moved} in-flight vectors",
            )

    def _bring_online(
        self,
        device: int,
        now: float,
        scaler: Autoscaler | None,
        pending_online: set[int],
        busy_until,
        injector: FaultInjector | None = None,
    ) -> None:
        """A warm-up completed: the device joins the pool.

        Cold by default; with :attr:`ServeConfig.warm_restore` the
        residency journal is replayed onto it first (see
        :meth:`_warm_restore`) and the pre-warm transfer time is charged
        to the device's busy horizon — paid up front, off the next
        vectors' critical path.
        """
        pending_online.discard(device)
        if self.cluster.is_failed(device) or self.cluster.is_alive(device):
            return  # lost while warming up, or a stale event
        before = self.cluster.num_alive
        self.cluster.activate_device(device)
        busy_until[device] = now
        restored = 0
        if self.cluster.journal is not None:
            restored, cost = self._warm_restore(device, now, injector)
            busy_until[device] += cost
        self._rescale_bounds(before, self.cluster.num_alive)
        if scaler is not None:
            reason = "warm-up complete"
            if restored:
                reason += f", {restored} tensors pre-warmed"
            scaler.log(
                now, "online", device, self.cluster.num_alive,
                reason=reason, starts_cooldown=False,
            )

    def _warm_restore(
        self, device: int, now: float, injector: FaultInjector | None
    ) -> tuple[int, float]:
        """Replay the residency journal onto a just-activated device.

        The journal's hottest tensors not yet resident on *this* device
        are pre-loaded — sourced over a D2D link when a live copy
        survives elsewhere, from the host otherwise — until
        :attr:`ServeConfig.prewarm_fraction` of the device's memory is
        used.  The point is to hand the fresh device the pool's hot
        working set while it is still idle: the first vectors it serves
        reuse resident inputs instead of stalling on fetches on their
        critical path.  Returns ``(tensors restored, simulated seconds
        spent)``; the caller charges the seconds to the device's busy
        horizon.
        """
        journal = self.cluster.journal
        cm = self.config.cost_model
        budget = self.serve_config.prewarm_fraction * self.cluster.devices[device].memory_bytes
        restored = 0
        cost = 0.0
        for uid, nbytes in journal.hot_tensors():
            if self.cluster.is_resident(uid, device):
                continue
            if self.cluster.used_bytes(device) + nbytes > budget:
                continue
            holders = self.cluster.devices_holding(uid)
            if not self.cluster.prewarm(uid, nbytes, device):
                continue
            if holders:
                copy_t = cm.d2d_time(nbytes, min(holders), device)
            else:
                copy_t = cm.h2d_time(nbytes)
            cost += copy_t + cm.alloc_time(nbytes)
            restored += 1
        if restored:
            journal.note_restore(device, restored, cost)
            if injector is not None:
                injector.stats.prewarmed_tensors += restored
                injector.stats.record_recovery("warm_restore", cost)
                injector.stats.record_event(
                    "prewarm", device, now, cost,
                    label=f"warm restore: {restored} tensors",
                )
        return restored, cost

    def _rescale_bounds(self, alive_before: int, alive_after: int) -> None:
        """Re-apply the reuse bounds after a pool-size change.

        Rescaling always derives from the *anchor* — the (bounds, pool
        size) pair captured when the run started — never by chaining
        ``rescaled()`` off the previous rescale's output.  Chained
        rescales compound float rounding: after a few shrink/grow
        cycles that return to the original pool size, the bounds end up
        at e.g. ``4.9999999999999964`` instead of ``5.0``, silently
        shifting the availability test.  From the anchor, returning to
        any previously seen pool size reproduces bit-identical bounds
        (rescaling is evaluated once per target size, so it is
        idempotent and composition-free by construction).

        Skipped when a predictor re-derives bounds per vector anyway or
        when the scheduler has no bounds to scale.  An empty *previous*
        pool is fine — the anchor, not the previous size, is the scale
        source — which matters when a fully flapped-down cluster
        restores its first device.
        """
        if (
            alive_before != alive_after
            and alive_after > 0
            and self._bounds_anchor is not None
        ):
            bounds0, alive0 = self._bounds_anchor
            if alive_after == alive0:
                self.scheduler.set_bounds(bounds0)
            else:
                self.scheduler.set_bounds(bounds0.rescaled(alive0, alive_after))

    # ------------------------------------------------------- fault recovery
    def _blast_radius(self, fault: FaultEvent) -> list[int]:
        """Device ids a loss event takes down (or degrades).

        ``device_lost`` names exactly one device.  The node-scoped
        kinds — ``node_lost``, ``link_lost``, ``node_flap`` and
        ``heartbeat_loss`` — name *any* device of the affected node;
        the failure domain expands to every sibling through the
        topology (``node_of`` → ``devices_of_node``).  Without a
        configured topology a node is indistinguishable from a device
        and the event degrades to a single-device radius.
        """
        topo = self.config.cost_model.topology
        node_scoped = (
            FaultKind.NODE_LOST,
            FaultKind.LINK_LOST,
            FaultKind.NODE_FLAP,
            FaultKind.HEARTBEAT_LOSS,
        )
        if (
            fault.kind in node_scoped
            and topo is not None
            and fault.device < topo.num_devices
        ):
            return topo.devices_of_node(topo.node_of(fault.device))
        return [fault.device]

    def _apply_link_loss(self, fault: FaultEvent, now: float, injector: FaultInjector) -> None:
        """Apply a ``link_lost`` fault: the node degrades, devices live on.

        The node's devices stay alive and keep executing, but their
        inter-node links are gone: subsequent cross-node fetches whose
        only holders sit across a severed link are staged through the
        host (counted as ``host_staged_fetches``), and the sharded
        router deprioritises the degraded node.  No orphan recovery is
        needed — nothing dies.
        """
        devices = [d for d in self._blast_radius(fault) if self.cluster.is_alive(d)]
        already = injector.linkless_devices
        devices = [d for d in devices if d not in already]
        if not devices:
            return  # dead node or duplicate plan entry: nothing to degrade
        injector.note_link_lost(devices, now)
        injector.stats.record_event(
            "fault", fault.device, fault.time_s, 0.0,
            label=f"link lost: devices {devices} host-staged",
        )

    def _apply_heartbeat_loss(
        self, fault: FaultEvent, now: float, injector: FaultInjector
    ) -> None:
        """Apply a ``heartbeat_loss`` gray fault: silence, not death.

        The node's devices keep executing; only their *telemetry* goes
        dark for ``duration_s``.  The single control plane colocates
        the scheduler with its devices, so nothing operational changes
        here — the silence window is recorded (for the trace and for
        :meth:`FaultInjector.silent_devices`) so the same plan replays
        identically on the sharded server, where the health monitor
        actually reacts to it.
        """
        devices = [d for d in self._blast_radius(fault) if self.cluster.is_alive(d)]
        if not devices:
            return  # dead node: nothing left to go silent
        injector.note_heartbeat_loss(
            devices, fault.time_s, fault.time_s + fault.duration_s
        )
        injector.stats.record_event(
            "fault", fault.device, fault.time_s, fault.duration_s,
            label=f"heartbeat loss: devices {devices} silent",
        )

    def _restore_device(
        self, device: int, now: float, busy_until, injector: FaultInjector | None
    ) -> None:
        """A flapped device comes back: rejoin the pool, cold (or warm).

        Mirrors :meth:`_bring_online` but for a *failed* device (flap
        cycles go down as failures, not retirements).  A device that is
        no longer marked failed is a stale event — an overlapping
        fail-stop loss or an earlier restore already settled it — and
        is skipped: restores only resurrect flap victims.
        """
        if not self.cluster.is_failed(device):
            return
        before = self.cluster.num_alive
        self.cluster.restore_device(device)
        busy_until[device] = now
        restored = 0
        if self.cluster.journal is not None:
            restored, cost = self._warm_restore(device, now, injector)
            busy_until[device] += cost
        self._rescale_bounds(before, self.cluster.num_alive)
        if injector is not None:
            injector.note_device_restored(device, now)
            label = "node flap up"
            if restored:
                label += f", {restored} tensors pre-warmed"
            injector.stats.record_event("restore", device, now, 0.0, label=label)

    def _apply_device_loss(
        self,
        fault: FaultEvent,
        now: float,
        injector: FaultInjector,
        pending: dict[int, Ticket],
        busy_until,
        timeline: Timeline,
        total: ExecutionMetrics,
        abandon,
        scaler: Autoscaler | None = None,
        pending_online: set[int] | None = None,
    ) -> list[int]:
        """Kill a failure domain and recover (or shed) the work it orphans.

        Returns the sorted device ids that actually died, so callers
        handling transient kinds (``node_flap``) can schedule their
        restores.

        A ``device_lost`` domain is one device; a ``node_lost`` domain is
        every device of the event's node (see :meth:`_blast_radius`).
        All members leave the pool *atomically* — before any
        rescheduling — so orphaned pairs can only land on devices of
        *surviving* nodes (cross-node re-fetches there are charged
        through :meth:`~repro.gpusim.topology.Topology.d2d_time` and
        surface as ``xnode`` trace events).  Then the balanced share and
        the reuse bounds are recomputed for the survivors, and every
        in-flight vector with pairs on a dead device either has those
        pairs re-executed (recovery on) or is shed as
        ``fault-abandoned`` (recovery off).  With
        :attr:`AutoscalerConfig.replace_lost`, one replacement warm-up
        is requested per lost device.
        """
        kind = fault.kind.value
        flap = fault.kind is FaultKind.NODE_FLAP
        members = [d for d in self._blast_radius(fault) if not self.cluster.is_failed(d)]
        if not members:
            return []  # already dead (duplicate plan entry)
        alive_before = self.cluster.num_alive
        orphaned = self.cluster.fail_node(members)
        if not orphaned:
            return []  # only offline (retired) devices died: nothing to recover
        if fault.kind is FaultKind.NODE_LOST:
            injector.stats.node_losses += 1
        for dev, orphans in sorted(orphaned.items()):
            injector.note_device_lost(dev, fault.time_s, len(orphans))
            injector.stats.record_event(
                "fault", dev, fault.time_s,
                fault.duration_s if flap else 0.0,
                label="node flap down" if flap else f"{kind.replace('_', ' ')}",
            )

        if self.cluster.num_alive == 0:
            # Nothing left to serve on: everything admitted is shed.
            for ticket in list(pending.values()):
                abandon(ticket, now)
            return sorted(orphaned)

        # Recompute the reuse bounds for the survivors.
        self._rescale_bounds(alive_before, self.cluster.num_alive)

        dead = set(orphaned)
        affected = [t for t in pending.values() if dead & set(t.assignment)]
        if not self.serve_config.recover_faults:
            for ticket in affected:
                abandon(ticket, now)
            injector.stats.record_recovery(kind, 0.0)
        else:
            latest = now
            for ticket in affected:
                try:
                    complete = self._reschedule_orphans(
                        ticket, dead, now, busy_until, total, stats=injector.stats
                    )
                except FaultError:
                    abandon(ticket, now)
                    continue
                ticket.epoch += 1
                timeline.push(VectorCompletion(complete, ticket, epoch=ticket.epoch))
                latest = max(latest, complete)
            injector.stats.record_recovery(kind, latest - fault.time_s)
            injector.stats.record_event(
                "recovery",
                fault.device,
                now,
                max(latest - now, 0.0),
                label=f"rescheduled {len(affected)} vectors",
            )

        if (
            scaler is not None
            and pending_online is not None
            and scaler.config.replace_lost
        ):
            self._replace_lost(scaler, now, timeline, pending_online, len(orphaned))
        return sorted(orphaned)

    def _replace_lost(
        self,
        scaler: Autoscaler,
        now: float,
        timeline: Timeline,
        pending_online: set[int],
        count: int,
    ) -> None:
        """Request one replacement warm-up per just-lost device.

        Reactive, so it bypasses the cooldown clock (a rack dying is not
        a load signal); replacements still pay ``warmup_s`` and stop at
        ``max_devices`` or when the spare pool runs out.
        """
        c = scaler.config
        max_devices = min(c.max_devices, self.cluster.num_devices)
        for _ in range(count):
            candidates = [d for d in self.cluster.offline_ids() if d not in pending_online]
            if not candidates or self.cluster.num_alive + len(pending_online) >= max_devices:
                return
            dev = candidates[0]
            pending_online.add(dev)
            timeline.push(DeviceOnline(now + c.warmup_s, device=dev))
            scaler.log(
                now, "up", dev, self.cluster.num_alive,
                reason=f"replace lost device, warm-up {c.warmup_s:g}s",
                starts_cooldown=False,
            )

    def _reschedule_orphans(
        self,
        ticket: Ticket,
        dead: int | set[int],
        now: float,
        busy_until,
        total: ExecutionMetrics,
        stats: FaultStats | None = None,
        scheduler: Scheduler | None = None,
        cluster: ClusterState | None = None,
    ) -> float:
        """Re-execute a ticket's dead-device pairs on the survivors.

        ``dead`` is one device id (scale-down drain, single-device loss)
        or the whole failure domain of a node loss.  Shared by
        device-*loss* recovery and autoscale scale-*down* draining
        (``stats`` is only threaded for the former).  Returns the
        vector's new completion timestamp.  The surviving devices'
        original shares are already in ``busy_until``; only the
        re-executed pairs' busy time is appended.

        ``scheduler``/``cluster`` override the server's own (default) —
        the sharded control plane re-homes orphans through a *surviving
        shard's* scheduler and shard-scoped cluster view, so recovered
        pairs land only on that shard's devices.
        """
        scheduler = scheduler if scheduler is not None else self.scheduler
        cluster = cluster if cluster is not None else self.cluster
        dead_set = {dead} if isinstance(dead, int) else set(dead)
        orphan_idx = [i for i, dev in enumerate(ticket.assignment) if dev in dead_set]
        vector = ticket.vector
        # Fresh balance window sized to the re-scheduled slice (two
        # tensor slots per pair, matching record_assignment).
        cluster.begin_vector(2 * len(orphan_idx))
        scheduler.begin_vector(vector, cluster)
        vec_metrics = ExecutionMetrics(num_devices=self.cluster.num_devices)
        for i in orphan_idx:
            pair = vector.pairs[i]
            dev = scheduler.choose(pair, cluster)
            self.engine.execute_pair(pair, dev, vec_metrics)
            ticket.assignment[i] = dev
            if stats is not None:
                stats.rescheduled_pairs += 1
        total.merge(vec_metrics)
        delta = vec_metrics.compute_s + vec_metrics.memop_s
        for dev in sorted({ticket.assignment[i] for i in orphan_idx}):
            busy_until[dev] = max(busy_until[dev], now) + delta[dev]
        ticket.devices = sorted(set(ticket.assignment))
        complete = now
        for dev in ticket.devices:
            if self.cluster.is_alive(dev):
                complete = max(complete, busy_until[dev])
        return complete

    # ------------------------------------------------------- result integrity
    def _pick_auditor(self, producer: int, integ: IntegrityState, busy_until) -> int | None:
        """The device that recomputes a pair for an audit.

        Must be a *different* device than the producer (dual execution
        on the producer would reproduce its own corruption) and not
        itself under suspicion; among candidates the least-busy wins
        (ties on id).  ``None`` when no clean second device is alive.
        """
        best = None
        best_key = None
        for dev in self.cluster.alive_ids():
            if dev == producer or integ.is_suspect(dev):
                continue
            key = (busy_until[dev], dev)
            if best_key is None or key < best_key:
                best, best_key = dev, key
        return best

    def _audit_ticket(
        self,
        integ: IntegrityState,
        ticket: Ticket,
        now: float,
        busy_until,
        total: ExecutionMetrics,
        injector: FaultInjector | None,
    ) -> tuple[str, float]:
        """Audit one completed-but-unreported ticket's pair outputs.

        Builds the audit set — every pair whose producer is already
        suspect (plus, in ``suspect-full`` mode, every pair of a ticket
        that touched a suspect device), plus a deterministic
        ``audit_fraction`` sample of the rest — and recomputes each
        audited pair on a clean auditor device, charging the kernel
        time to that device's busy horizon.  A checksum mismatch
        invalidates every resident copy of the output (journal drop
        reason ``corrupt``), blames the producer, and *escalates*: all
        remaining pairs of the ticket join the mandatory set, so one
        caught taint drags its whole ticket through verification.

        The recomputation on the clean device is itself the repair, so
        a mismatched ticket returns ``("repair", ready_s)`` with
        ``ready_s`` the horizon where the last audit lands — the caller
        re-pushes the completion there.  Audit seconds beyond
        ``audit_budget_frac`` of the run's cumulative compute are not
        spent: sampled audits are silently skipped (counted), mandatory
        ones degrade the ticket to ``("flag", now)`` — shed as
        ``integrity-unverified`` instead of fueling a recompute storm.
        Clean throughout returns ``("clean", now)``.
        """
        cfg = integ.config
        vector = ticket.vector
        assignment = ticket.assignment
        vid = vector.vector_id
        cm = self.config.cost_model
        cluster = self.cluster
        budget_s = cfg.audit_budget_frac * float(total.compute_s.sum())
        suspect_full = cfg.mode == "suspect-full" and any(
            integ.is_suspect(d) for d in ticket.devices
        )
        to_audit: list[tuple[int, bool]] = []
        for i in range(len(vector.pairs)):
            if integ.is_suspect(assignment[i]) or suspect_full:
                to_audit.append((i, True))
            elif integ.sampled(vid, i):
                to_audit.append((i, False))
        audited: set[int] = set()
        detected = 0
        flag = False
        ready = now
        k = 0
        while k < len(to_audit):
            i, mandatory = to_audit[k]
            k += 1
            if i in audited:
                continue
            audited.add(i)
            pair = vector.pairs[i]
            producer = assignment[i]
            auditor = self._pick_auditor(producer, integ, busy_until)
            if auditor is None:
                if mandatory:
                    flag = True
                continue
            cost = cm.kernel_time(pair, cluster.devices[auditor])
            if integ.audit_spent_s + cost > budget_s:
                if mandatory:
                    flag = True
                else:
                    integ.budget_skipped += 1
                continue
            integ.charge_audit(cost)
            busy_until[auditor] = max(busy_until[auditor], now) + cost
            ready = max(ready, busy_until[auditor])
            if integ.output_entry(pair.out.uid, producer) is None:
                integ.clean_audit(producer)
                continue
            detected += 1
            for dev in integ.audit_detected(pair.out.uid, now):
                if cluster.is_resident(pair.out.uid, dev):
                    cluster.drop(pair.out.uid, dev, reason="corrupt")
            if injector is not None:
                injector.stats.record_event(
                    "audit", auditor, now, cost,
                    label=f"audit mismatch: pair {i} of v{vid} (device {producer})",
                )
                injector.stats.record_event(
                    "taint", producer, now, 0.0,
                    label=f"invalidated output {pair.out.uid}",
                )
            for j in range(len(vector.pairs)):
                if j not in audited:
                    to_audit.append((j, True))
        if flag:
            integ.flag_ticket(detected)
            return "flag", now
        if detected:
            return "repair", ready
        return "clean", now

    def _quarantine_device(
        self,
        device: int,
        now: float,
        injector: FaultInjector | None,
        integ: IntegrityState,
        pending: dict[int, Ticket],
        verified: set[int],
        busy_until,
        timeline: Timeline,
        total: ExecutionMetrics,
        abandon,
    ) -> None:
        """Blame crossed the threshold: retire the device from the pool.

        Its resident *corrupt* copies are invalidated first (journal
        drop reason ``corrupt``) so nothing can fetch them over D2D;
        then the device drains like an autoscale scale-down — in-flight
        pairs assigned to it re-execute on the survivors, with their
        tickets' audit status reset so the re-executed work is audited
        again.  The last alive device is never retired (a degraded
        answer beats no answer; mandatory audits of its output will
        flag what cannot be verified).
        """
        for uid in integ.dirty_uids_on(device):
            if self.cluster.is_resident(uid, device):
                self.cluster.drop(uid, device, reason="corrupt")
        if injector is not None:
            injector.stats.record_event(
                "blame", device, now, 0.0,
                label=f"quarantined (corruption ewma {integ.ewma[device]:.3f})",
            )
        if not self.cluster.is_alive(device) or self.cluster.num_alive <= 1:
            return
        before = self.cluster.num_alive
        self.cluster.retire_device(device)
        self._rescale_bounds(before, self.cluster.num_alive)
        for ticket in [t for t in pending.values() if device in set(t.assignment)]:
            try:
                complete = self._reschedule_orphans(
                    ticket, device, now, busy_until, total,
                    stats=injector.stats if injector is not None else None,
                )
            except FaultError:
                abandon(ticket, now)
                continue
            verified.discard(id(ticket))
            ticket.epoch += 1
            timeline.push(VectorCompletion(complete, ticket, epoch=ticket.epoch))

    def _apply_bitflip(
        self,
        fault: FaultEvent,
        now: float,
        injector: FaultInjector,
        integ: IntegrityState | None,
    ) -> None:
        """Apply a ``tensor_bitflip``: corrupt one resident copy in place.

        The victim is the lowest-uid tensor resident on the event's
        device at the fault's time (deterministic).  A dead device or
        an empty pool makes the flip a no-op — there is nothing to
        corrupt — and without an integrity subsystem the flip is
        recorded but untracked (nothing can ever detect it).
        """
        device = fault.device
        uid = None
        if self.cluster.is_alive(device):
            resident = self.cluster.pools[device].resident_uids()
            if resident:
                uid = min(resident)
        if uid is not None and integ is not None:
            integ.flip(uid, device, now)
        injector.stats.record_event(
            "fault", device, fault.time_s, 0.0,
            label=(
                f"tensor bitflip: uid {uid}" if uid is not None
                else "tensor bitflip: no resident tensor"
            ),
        )

    # ---------------------------------------------------------------- helpers
    def _schedule_and_execute(
        self, vector: VectorSpec, tracker: CharacteristicsTracker, wants_bounds: bool
    ) -> tuple[ExecutionMetrics, list[int]]:
        """One vector through the batch machinery; returns its metrics."""
        if wants_bounds:
            # The tracker's running reuse statistics only feed the
            # bounds predictor, so without one the observation (an
            # O(pairs) uid scan per round) is skipped entirely.
            chars = tracker.observe(vector)
            self.scheduler.set_bounds(self.predictor.predict_bounds(chars))
        cluster = self.cluster
        cluster.begin_vector(vector.num_tensors)
        self.scheduler.begin_vector(vector, cluster)
        vec_metrics = ExecutionMetrics(num_devices=cluster.num_devices)
        assignment: list[int] = []
        choose = self.scheduler.choose
        execute = self.engine.pair_runner()
        append = assignment.append
        for pair in vector.pairs:
            dev = choose(pair, cluster)
            execute(pair, dev, vec_metrics)
            append(dev)
        if not self.config.keep_outputs:
            self.engine.drain_outputs(vector, assignment, vec_metrics)
        return vec_metrics, assignment


class MultiTenantServer(MiccoServer):
    """Multi-tenant mode of :class:`MiccoServer`.

    The tenant roster lives in :attr:`ServeConfig.tenants`; each run
    materialises every tenant's vectors and arrival times from the run
    seed (independent per-tenant generators), interleaves them into one
    simulated timeline, and admits via weighted fair queueing across
    the tenants (unless :attr:`ServeConfig.queue_policy` overrides it —
    handy for fairness baselines).  The result carries per-tenant
    p50/p95/p99, throughput, drop rate and SLO attainment alongside the
    global report.

    Example
    -------
    >>> cfg = ServeConfig(tenants=(heavy, light), autoscaler=AutoscalerConfig())
    >>> result = MultiTenantServer(MiccoScheduler(), serve=cfg).run(seed=0)
    >>> result.summary()["tenants"]["heavy"]["slo"]["attained"]
    """

    def __init__(
        self,
        scheduler: Scheduler | None = None,
        config: MiccoConfig | None = None,
        serve: ServeConfig | None = None,
        predictor=None,
    ):
        super().__init__(scheduler, config, serve, predictor)
        if not self.serve_config.tenants:
            raise ConfigurationError(
                "MultiTenantServer needs ServeConfig.tenants; "
                "use MiccoServer for single-stream serving"
            )

    def run(self, *, seed=0, reset: bool = True, faults: FaultPlan | None = None) -> ServeResult:
        """Serve every tenant's stream on the shared cluster.

        ``seed`` drives the per-tenant workload and arrival draws (and
        makes the whole run — scheduling, scaling, percentiles —
        replayable).  ``faults`` takes precedence over
        :attr:`ServeConfig.faults`.
        """
        streams = build_streams(self.serve_config.tenants, seed)
        return self._serve(streams, faults=faults, reset=reset)
