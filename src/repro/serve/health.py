"""Gray-failure health inference for the sharded control plane.

Everything the framework survived before this module was *announced*:
the injector told the server the instant a device or node died, so
recovery was always perfectly informed.  Real clusters mostly suffer
gray failures — nodes that flap, go silent, or stall without ever
reporting dead — and the control plane has to *infer* health from the
one signal it owns: heartbeats on the shared deterministic timeline.

Three deterministic state machines live here:

* :class:`HealthMonitor` — a phi-accrual-style failure detector per
  shard.  Each heartbeat updates an EWMA of inter-arrival gaps; the
  suspicion score is the current silence measured in mean gaps
  (``(now - last_beat) / mean_gap``).  Crossing
  ``suspect_threshold`` demotes a shard to SUSPECT (routing
  deprioritizes it), crossing ``quarantine_threshold`` demotes it to
  QUARANTINED (routing excludes it and its queue is drained through the
  global tier — the shard is *not* killed), and a beat from quarantine
  starts PROBATION: ``probation_beats`` consecutive on-time beats
  re-admit it to HEALTHY.
* :class:`CircuitBreaker` — per-shard breaker on the forwarding path.
  ``breaker_threshold`` consecutive full-queue rejections open it;
  after ``breaker_probe_interval_s`` it half-opens and lets exactly one
  probe ticket through; a successful probe closes it, a rejected probe
  re-opens it.
* :class:`HedgePair` — the linkage for hedged dispatch: a ticket queued
  past ``hedge_deadline_s`` on a non-healthy shard is cloned to the
  next-best shard; first completion wins and the loser is cancelled
  with exactly-once accounting.

Deliberately a leaf module (imports only :mod:`repro.errors`) so the
router, the node runtimes, and the CLI can all use it without cycles.
Every transition is a pure function of (config, observed event times),
so fixed-seed runs replay byte-for-byte.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, replace
from enum import Enum

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class HealthConfig:
    """Knobs for heartbeat health tracking, breakers and hedging.

    Attributes
    ----------
    heartbeat_interval_s:
        Period of the :class:`~repro.serve.timeline.HealthTick` control
        event: reachable shards beat and suspicion is re-evaluated every
        this many simulated seconds.
    alpha:
        EWMA smoothing for heartbeat inter-arrival gaps (higher = more
        reactive to the latest gap).
    suspect_threshold:
        Suspicion level (silence measured in mean gaps) at which a
        HEALTHY shard becomes SUSPECT and routing deprioritizes it.
    quarantine_threshold:
        Suspicion level at which a SUSPECT shard is QUARANTINED: removed
        from routing and its queue drained through the global tier.
        Must exceed ``suspect_threshold``.
    probation_beats:
        Consecutive on-time heartbeats a PROBATION shard needs before
        re-admission to HEALTHY.
    hedging:
        Enable hedged dispatch for tickets stuck on non-healthy shards.
    hedge_deadline_s:
        Queue age past which a ticket on a non-healthy shard is cloned
        to the next-best shard.  With ``adaptive_hedging`` off this is
        the deadline; with it on, this fixed value stays as the
        override/fallback used until a tenant's latency window has
        ``hedge_min_samples`` observations.
    adaptive_hedging:
        Derive the hedge deadline from observed per-tenant completion
        latencies instead of the fixed ``hedge_deadline_s``: each
        tenant keeps a sliding window of its last ``hedge_window``
        latencies and the deadline is ``hedge_multiplier`` times the
        window's ``hedge_quantile`` quantile — so hedging fires when a
        ticket has waited well past what this tenant's traffic
        normally takes, wherever that happens to sit.
    hedge_quantile:
        Latency quantile the adaptive deadline is anchored to.
    hedge_window:
        Sliding-window capacity (latency observations per tenant).
    hedge_multiplier:
        Deadline = this multiple of the windowed quantile.
    hedge_min_samples:
        Observations a tenant's window needs before the adaptive
        deadline replaces the fixed fallback.
    breaker_threshold:
        Consecutive full-queue rejections that open a shard's
        forwarding circuit breaker.
    breaker_probe_interval_s:
        Open time after which the breaker half-opens and admits one
        probe ticket.
    """

    heartbeat_interval_s: float = 0.01
    alpha: float = 0.3
    suspect_threshold: float = 2.0
    quarantine_threshold: float = 4.0
    probation_beats: int = 3
    hedging: bool = False
    hedge_deadline_s: float = 0.05
    adaptive_hedging: bool = False
    hedge_quantile: float = 0.95
    hedge_window: int = 64
    hedge_multiplier: float = 2.0
    hedge_min_samples: int = 8
    breaker_threshold: int = 3
    breaker_probe_interval_s: float = 0.05

    def __post_init__(self):
        if self.heartbeat_interval_s <= 0:
            raise ConfigurationError(
                f"heartbeat_interval_s must be > 0, got {self.heartbeat_interval_s}"
            )
        if not 0.0 < self.alpha <= 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1], got {self.alpha}")
        if self.suspect_threshold <= 1.0:
            raise ConfigurationError(
                f"suspect_threshold must be > 1, got {self.suspect_threshold}"
            )
        if self.quarantine_threshold <= self.suspect_threshold:
            raise ConfigurationError(
                f"quarantine_threshold must exceed suspect_threshold "
                f"({self.suspect_threshold}), got {self.quarantine_threshold}"
            )
        if self.probation_beats < 1:
            raise ConfigurationError(
                f"probation_beats must be >= 1, got {self.probation_beats}"
            )
        if self.hedge_deadline_s <= 0:
            raise ConfigurationError(
                f"hedge_deadline_s must be > 0, got {self.hedge_deadline_s}"
            )
        if not 0.0 < self.hedge_quantile <= 1.0:
            raise ConfigurationError(
                f"hedge_quantile must be in (0, 1], got {self.hedge_quantile}"
            )
        if self.hedge_window < 1:
            raise ConfigurationError(
                f"hedge_window must be >= 1, got {self.hedge_window}"
            )
        if self.hedge_multiplier <= 0:
            raise ConfigurationError(
                f"hedge_multiplier must be > 0, got {self.hedge_multiplier}"
            )
        if self.hedge_min_samples < 1:
            raise ConfigurationError(
                f"hedge_min_samples must be >= 1, got {self.hedge_min_samples}"
            )
        if self.breaker_threshold < 1:
            raise ConfigurationError(
                f"breaker_threshold must be >= 1, got {self.breaker_threshold}"
            )
        if self.breaker_probe_interval_s <= 0:
            raise ConfigurationError(
                f"breaker_probe_interval_s must be > 0, "
                f"got {self.breaker_probe_interval_s}"
            )

    def with_(self, **overrides) -> "HealthConfig":
        """Functional update, re-running validation."""
        return replace(self, **overrides)

    def to_dict(self) -> dict:
        return {
            "heartbeat_interval_s": self.heartbeat_interval_s,
            "alpha": self.alpha,
            "suspect_threshold": self.suspect_threshold,
            "quarantine_threshold": self.quarantine_threshold,
            "probation_beats": self.probation_beats,
            "hedging": self.hedging,
            "hedge_deadline_s": self.hedge_deadline_s,
            "adaptive_hedging": self.adaptive_hedging,
            "hedge_quantile": self.hedge_quantile,
            "hedge_window": self.hedge_window,
            "hedge_multiplier": self.hedge_multiplier,
            "hedge_min_samples": self.hedge_min_samples,
            "breaker_threshold": self.breaker_threshold,
            "breaker_probe_interval_s": self.breaker_probe_interval_s,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "HealthConfig":
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"health config must be an object, got {payload!r}"
            )
        known = set(cls().to_dict())
        unknown = set(payload) - known
        if unknown:
            raise ConfigurationError(
                f"health config has unknown keys {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        return cls(**payload)


class ShardHealthState(str, Enum):
    """Lifecycle of one shard in the health monitor's eyes."""

    HEALTHY = "healthy"
    SUSPECT = "suspect"
    QUARANTINED = "quarantined"
    PROBATION = "probation"
    DEAD = "dead"


class HealthMonitor:
    """Phi-accrual-style suspicion tracking over shard heartbeats.

    One monitor per run; the driver calls :meth:`beat` for every shard
    that was reachable at a health tick, then :meth:`evaluate` once per
    tick.  All iteration is over sorted shard ids, so the transition
    log — and everything downstream of it — is deterministic.
    """

    def __init__(self, nodes, config: HealthConfig):
        self.config = config
        self.nodes = tuple(sorted(nodes))
        self.state: dict[int, ShardHealthState] = {
            n: ShardHealthState.HEALTHY for n in self.nodes
        }
        #: Last heartbeat time per shard (run start counts as a beat).
        self.last_beat: dict[int, float] = {n: 0.0 for n in self.nodes}
        #: EWMA of heartbeat inter-arrival gaps, seeded at the interval.
        self.mean_gap: dict[int, float] = {
            n: config.heartbeat_interval_s for n in self.nodes
        }
        self._clean: dict[int, int] = {n: 0 for n in self.nodes}
        #: External suspicion floor per shard (see :meth:`raise_suspicion`).
        self._floor: dict[int, float] = {n: 0.0 for n in self.nodes}
        self.beats: int = 0
        self.missed: int = 0
        #: ``{time_s, node, from, to, suspicion}`` state transitions.
        self.transitions: list[dict] = []
        #: ``(time_s, node, suspicion)`` samples from :meth:`evaluate`.
        self.suspicion_samples: list[tuple[float, int, float]] = []
        #: ``{node, start_s, end_s}``; ``end_s is None`` while open.
        self.quarantine_episodes: list[dict] = []

    # -------------------------------------------------------------- signals
    def beat(self, node: int, now: float) -> None:
        """Record one delivered heartbeat from ``node`` at ``now``."""
        st = self.state[node]
        if st is ShardHealthState.DEAD:
            return
        self.beats += 1
        gap = now - self.last_beat[node]
        cfg = self.config
        if st in (ShardHealthState.HEALTHY, ShardHealthState.SUSPECT):
            # Outlier rejection: quarantine silences must not inflate
            # the gap estimate, or re-admitted shards start numb.
            a = cfg.alpha
            self.mean_gap[node] = (1 - a) * self.mean_gap[node] + a * max(
                gap, 1e-12
            )
        self.last_beat[node] = now
        if st is ShardHealthState.QUARANTINED:
            self._transition(node, ShardHealthState.PROBATION, now, 0.0)
            self._clean[node] = 0
        elif st is ShardHealthState.PROBATION:
            if gap <= 1.5 * cfg.heartbeat_interval_s:
                self._clean[node] += 1
                if self._clean[node] >= cfg.probation_beats:
                    self._transition(node, ShardHealthState.HEALTHY, now, 0.0)
            else:
                self._clean[node] = 0

    def miss(self) -> None:
        """Count one heartbeat that should have arrived but did not."""
        self.missed += 1

    def mark_dead(self, node: int, now: float) -> None:
        """An announced (fail-stop) death — no inference needed."""
        if self.state[node] is not ShardHealthState.DEAD:
            self._transition(node, ShardHealthState.DEAD, now, float("inf"))

    def raise_suspicion(self, node: int, floor: float) -> None:
        """Raise an external suspicion floor for ``node``.

        Heartbeats cannot see *silent* corruption — a node producing
        garbage still beats on time — so out-of-band evidence (the
        integrity subsystem blaming one of the node's devices, see
        :mod:`repro.integrity`) feeds a floor that :meth:`suspicion`
        folds in with ``max``.  The floor is consumed when the node is
        quarantined: from there the normal probation cycle decides
        re-admission, so a blamed node pays one quarantine per blame
        rather than being exiled forever.
        """
        self._floor[node] = max(self._floor[node], float(floor))

    def suspicion(self, node: int, now: float) -> float:
        """Current silence of ``node`` measured in mean heartbeat gaps.

        Folded with any external floor from :meth:`raise_suspicion`.
        """
        gap = max(self.mean_gap[node], 1e-12)
        return max(
            max(now - self.last_beat[node], 0.0) / gap, self._floor[node]
        )

    # ----------------------------------------------------------- evaluation
    def evaluate(self, now: float) -> list[int]:
        """Re-score every shard; returns shards newly QUARANTINED.

        The caller must drain each returned shard's queue through the
        global tier — quarantine removes a shard from routing without
        killing it, so its queued work has to move.
        """
        cfg = self.config
        newly_quarantined: list[int] = []
        for node in self.nodes:
            st = self.state[node]
            if st is ShardHealthState.DEAD:
                continue
            phi = self.suspicion(node, now)
            self.suspicion_samples.append((now, node, phi))
            if st is ShardHealthState.HEALTHY and phi >= cfg.suspect_threshold:
                self._transition(node, ShardHealthState.SUSPECT, now, phi)
            elif st is ShardHealthState.SUSPECT:
                if phi >= cfg.quarantine_threshold:
                    self._transition(node, ShardHealthState.QUARANTINED, now, phi)
                    newly_quarantined.append(node)
                elif phi < cfg.suspect_threshold:
                    self._transition(node, ShardHealthState.HEALTHY, now, phi)
            elif st is ShardHealthState.PROBATION and phi >= cfg.suspect_threshold:
                # Went silent again mid-probation: straight back out.
                self._transition(node, ShardHealthState.QUARANTINED, now, phi)
                newly_quarantined.append(node)
        return newly_quarantined

    def _transition(
        self, node: int, to: ShardHealthState, now: float, phi: float
    ) -> None:
        frm = self.state[node]
        self.state[node] = to
        self.transitions.append(
            {
                "time_s": float(now),
                "node": node,
                "from": frm.value,
                "to": to.value,
                "suspicion": phi if phi != float("inf") else -1.0,
            }
        )
        if to is ShardHealthState.QUARANTINED:
            # The floor's purpose (force one quarantine) is served; from
            # here probation beats decide re-admission on merit.
            self._floor[node] = 0.0
            self.quarantine_episodes.append(
                {"node": node, "start_s": float(now), "end_s": None}
            )
        elif frm is ShardHealthState.QUARANTINED:
            for ep in reversed(self.quarantine_episodes):
                if ep["node"] == node and ep["end_s"] is None:
                    ep["end_s"] = float(now)
                    break

    # -------------------------------------------------------------- queries
    def is_unroutable(self, node: int) -> bool:
        """Quarantined/probation/dead shards take no *new* primary traffic.

        Probation shards keep serving what they already hold but must
        prove themselves over ``probation_beats`` ticks before routing
        trusts them again.
        """
        return self.state[node] in (
            ShardHealthState.QUARANTINED,
            ShardHealthState.PROBATION,
            ShardHealthState.DEAD,
        )

    def is_suspect(self, node: int) -> bool:
        """Anything short of HEALTHY is deprioritized by routing."""
        return self.state[node] is not ShardHealthState.HEALTHY

    def quarantine_count(self, node: int) -> int:
        """Times ``node`` has entered quarantine so far (routing feature)."""
        return sum(1 for ep in self.quarantine_episodes if ep["node"] == node)

    def summary(self) -> dict:
        """JSON-ready health section for the serve report."""
        return {
            "states": {str(n): self.state[n].value for n in self.nodes},
            "beats": self.beats,
            "missed": self.missed,
            "transitions": list(self.transitions),
            "suspicion_timeline": [
                {"time_s": t, "node": n, "suspicion": phi}
                for t, n, phi in self.suspicion_samples
            ],
            "quarantine_episodes": [dict(ep) for ep in self.quarantine_episodes],
        }


class CircuitBreaker:
    """Per-shard breaker on the global router's forwarding path.

    A shard whose queue keeps rejecting forwards is wasting routing
    attempts every ticket; after ``threshold`` *consecutive* rejections
    the breaker opens and the router stops offering to that shard.
    After ``probe_interval_s`` it half-opens: exactly one probe ticket
    is allowed through, and its fate decides — success closes the
    breaker, rejection re-opens it (restarting the probe clock).
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        node: int,
        threshold: int,
        probe_interval_s: float,
        transitions: list | None = None,
    ):
        self.node = node
        self.threshold = threshold
        self.probe_interval_s = probe_interval_s
        self.state = self.CLOSED
        self.failures = 0
        self.opened_at = 0.0
        self.opens = 0
        #: Shared transition log (``{time_s, node, from, to}``).
        self.transitions = transitions if transitions is not None else []

    def allow(self, now: float) -> bool:
        """May the router offer a ticket to this shard right now?"""
        if self.state == self.CLOSED:
            return True
        if self.state == self.OPEN:
            if now - self.opened_at >= self.probe_interval_s:
                self._transition(self.HALF_OPEN, now)
                return True
            return False
        # HALF_OPEN: the single probe is already in flight this attempt.
        return False

    def record_rejection(self, now: float) -> None:
        """The shard's queue rejected an offered ticket (full)."""
        self.failures += 1
        if self.state == self.HALF_OPEN or (
            self.state == self.CLOSED and self.failures >= self.threshold
        ):
            self._transition(self.OPEN, now)
            self.opened_at = now
            self.opens += 1

    def record_success(self, now: float) -> None:
        """The shard accepted an offered ticket."""
        self.failures = 0
        if self.state == self.HALF_OPEN:
            self._transition(self.CLOSED, now)

    def _transition(self, to: str, now: float) -> None:
        self.transitions.append(
            {"time_s": float(now), "node": self.node, "from": self.state, "to": to}
        )
        self.state = to


@dataclass
class HedgePair:
    """Linkage between a hedged ticket and its speculative clone.

    Both tickets point at the same pair; the first completion resolves
    it (``winner`` set, ``resolved`` True) and the loser is cancelled —
    it settles its round slot but records neither a completion nor a
    drop, keeping SLO accounting exactly-once.
    """

    primary: object
    clone: object
    resolved: bool = False
    winner: object | None = None

    def other(self, ticket) -> object:
        return self.clone if ticket is self.primary else self.primary


class LatencyWindow:
    """Sliding window of observed latencies with nearest-rank quantiles.

    Bounded (``capacity`` most recent observations) and fully
    deterministic: the quantile is the classic nearest-rank statistic
    over a sorted copy of the window, so replays see identical values.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ConfigurationError(f"window capacity must be >= 1, got {capacity}")
        self._values: deque[float] = deque(maxlen=capacity)

    def __len__(self) -> int:
        return len(self._values)

    def observe(self, latency_s: float) -> None:
        self._values.append(latency_s)

    def quantile(self, q: float) -> float:
        """Nearest-rank ``q``-quantile of the window (window non-empty)."""
        if not self._values:
            raise ConfigurationError("quantile of an empty window")
        ordered = sorted(self._values)
        # ceil(q*n) as int arithmetic; rank is 1-based, clamp to bounds.
        n = len(ordered)
        rank = -(-int(q * n * 10**9) // 10**9)  # ceil without float drift
        return ordered[min(max(rank, 1), n) - 1]


class AdaptiveHedgeDeadline:
    """Per-tenant hedge deadlines from observed completion latencies.

    The serving loop feeds every completion's latency into the owning
    tenant's :class:`LatencyWindow`; :meth:`deadline_for` answers with
    ``hedge_multiplier × quantile`` once the window holds
    ``hedge_min_samples`` observations, and with the fixed
    ``hedge_deadline_s`` fallback until then.  Single-stream runs (no
    tenants) share one window under the ``None`` key.
    """

    def __init__(self, config: HealthConfig):
        self.config = config
        self._windows: dict[str | None, LatencyWindow] = {}

    def observe(self, tenant: str | None, latency_s: float) -> None:
        window = self._windows.get(tenant)
        if window is None:
            window = self._windows[tenant] = LatencyWindow(self.config.hedge_window)
        window.observe(latency_s)

    def deadline_for(self, tenant: str | None) -> float:
        cfg = self.config
        window = self._windows.get(tenant)
        if window is None or len(window) < cfg.hedge_min_samples:
            return cfg.hedge_deadline_s
        return cfg.hedge_multiplier * window.quantile(cfg.hedge_quantile)

    def summary(self) -> dict:
        """Current per-tenant deadlines for the health report."""
        return {
            str(tenant): {
                "samples": len(window),
                "deadline_s": self.deadline_for(tenant),
            }
            for tenant, window in sorted(
                self._windows.items(), key=lambda kv: str(kv[0])
            )
        }


def hedge_shielded(ticket) -> bool:
    """Would dropping ``ticket`` lose work its hedge partner still covers?

    True while the pair is unresolved and the partner is still live —
    the drop becomes a silent cancellation instead of an SLO drop, since
    the vector's other copy is still racing toward completion.
    """
    pair = ticket.hedge
    if pair is None or pair.resolved:
        return False
    return not pair.other(ticket).cancelled
