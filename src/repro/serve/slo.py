"""Latency accounting and SLO metrics for online serving runs.

Each completed vector yields a :class:`VectorLatency` splitting its
sojourn time into queue wait, scheduling and execution; shed vectors
are recorded separately.  :class:`LatencyReport` aggregates them into
tail percentiles (p50/p95/p99), windowed throughput and drop rate, and
exports to JSON or to the existing Chrome-trace format
(:class:`~repro.gpusim.trace.TraceRecorder`) where every vector is one
lane showing its wait → schedule → execute spans.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from repro.errors import ConfigurationError
from repro.gpusim.trace import TraceRecorder
from repro.reporting import dump_json
from repro.serve.timeline import Ticket


@dataclass(frozen=True)
class VectorLatency:
    """Latency breakdown of one served vector (simulated seconds)."""

    vector_id: int
    arrival_s: float
    dispatch_s: float
    sched_done_s: float
    complete_s: float
    pairs: int
    devices: tuple[int, ...] = ()
    #: Owning tenant name (``None`` for single-tenant runs).
    tenant: str | None = None
    #: Scheduling round the vector was dispatched in (``None`` for runs
    #: predating batched rounds) and how many vectors that round held.
    round_id: int | None = None
    round_size: int = 1

    @property
    def queue_wait_s(self) -> float:
        return self.dispatch_s - self.arrival_s

    @property
    def schedule_s(self) -> float:
        return self.sched_done_s - self.dispatch_s

    @property
    def execute_s(self) -> float:
        return self.complete_s - self.sched_done_s

    @property
    def latency_s(self) -> float:
        """End-to-end sojourn time: arrival → completion."""
        return self.complete_s - self.arrival_s


@dataclass(frozen=True)
class DroppedVector:
    """A vector shed without completing, with the reason it was shed.

    ``"queue-full"`` vectors were rejected at admission and never
    executed; ``"predicted-infeasible"`` vectors were shed by the
    fault-aware admission gate (completion probability under the live
    fault rate fell below threshold, see
    :class:`~repro.serve.queueing.FaultAware`) and never executed
    either; ``"fault-abandoned"`` vectors were admitted but could not
    be completed (retry budget exhausted, or no devices left).
    """

    vector_id: int
    arrival_s: float
    pairs: int
    reason: str = "queue-full"
    tenant: str | None = None


class LatencyReport:
    """Aggregated per-vector latency records of one serving run."""

    def __init__(self):
        self.completed: list[VectorLatency] = []
        self.dropped: list[DroppedVector] = []

    # ------------------------------------------------------------- recording
    def add_completion(self, ticket: Ticket) -> VectorLatency:
        rec = VectorLatency(
            vector_id=ticket.vector.vector_id,
            arrival_s=ticket.arrival_s,
            dispatch_s=ticket.dispatch_s,
            sched_done_s=ticket.sched_done_s,
            complete_s=ticket.complete_s,
            pairs=len(ticket.vector.pairs),
            devices=tuple(ticket.devices),
            tenant=ticket.tenant,
            round_id=ticket.round_id,
            round_size=ticket.round_size,
        )
        self.completed.append(rec)
        return rec

    def add_drop(self, ticket: Ticket, reason: str = "queue-full") -> DroppedVector:
        rec = DroppedVector(
            vector_id=ticket.vector.vector_id,
            arrival_s=ticket.arrival_s,
            pairs=len(ticket.vector.pairs),
            reason=reason,
            tenant=ticket.tenant,
        )
        self.dropped.append(rec)
        return rec

    # ---------------------------------------------------------- tenant views
    def tenant_names(self) -> list[str]:
        """Distinct tenant names seen in the records, sorted."""
        names = {r.tenant for r in self.completed} | {r.tenant for r in self.dropped}
        return sorted(n for n in names if n is not None)

    def for_tenant(self, tenant: str | None) -> "LatencyReport":
        """Sub-report holding only ``tenant``'s records.

        The returned report shares record objects with the parent (it
        is a filtered view, cheap to build per tenant).
        """
        sub = LatencyReport()
        sub.completed = [r for r in self.completed if r.tenant == tenant]
        sub.dropped = [r for r in self.dropped if r.tenant == tenant]
        return sub

    def completed_after(self, t_s: float) -> "LatencyReport":
        """Sub-report of vectors that *completed* at or after ``t_s``.

        A filtered view sharing record objects with the parent, like
        :meth:`for_tenant`.  Chaos analyses use it to compare post-loss
        recovery latency (e.g. warm vs cold restore after a node dies)
        without the pre-fault steady state diluting the tail.  Drops
        are filtered on arrival time (a shed vector never completes).
        """
        sub = LatencyReport()
        sub.completed = [r for r in self.completed if r.complete_s >= t_s]
        sub.dropped = [r for r in self.dropped if r.arrival_s >= t_s]
        return sub

    def drops_by_reason(self) -> dict[str, int]:
        """Shed counts keyed by reason, keys sorted for stable JSON."""
        counts: dict[str, int] = {}
        for r in self.dropped:
            counts[r.reason] = counts.get(r.reason, 0) + 1
        return {k: counts[k] for k in sorted(counts)}

    # ------------------------------------------------------------ aggregates
    @property
    def offered(self) -> int:
        """Vectors that arrived (completed + shed)."""
        return len(self.completed) + len(self.dropped)

    @property
    def drop_rate(self) -> float:
        return len(self.dropped) / self.offered if self.offered else 0.0

    def latencies(self) -> np.ndarray:
        return np.array([r.latency_s for r in self.completed])

    def percentile(self, p: float) -> float:
        """End-to-end latency percentile ``p`` (0–100); NaN when empty."""
        if not 0 <= p <= 100:
            raise ConfigurationError(f"percentile must be in [0, 100], got {p}")
        if not self.completed:
            return float("nan")
        return float(np.percentile(self.latencies(), p))

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p95(self) -> float:
        return self.percentile(95)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    @property
    def mean_latency_s(self) -> float:
        return float(self.latencies().mean()) if self.completed else float("nan")

    @property
    def makespan_s(self) -> float:
        """Last completion timestamp (0 when nothing completed)."""
        return max((r.complete_s for r in self.completed), default=0.0)

    def throughput_timeline(self, window_s: float) -> list[dict]:
        """Completions bucketed into ``window_s``-wide time windows.

        Returns one record per window from t=0 through the makespan:
        ``{"t_start_s", "t_end_s", "completions", "rate"}``.
        """
        if window_s <= 0:
            raise ConfigurationError(f"window_s must be > 0, got {window_s}")
        span = self.makespan_s
        if span <= 0:
            return []
        n_windows = int(np.ceil(span / window_s))
        counts = [0] * n_windows
        for r in self.completed:
            counts[min(int(r.complete_s // window_s), n_windows - 1)] += 1
        return [
            {
                "t_start_s": i * window_s,
                "t_end_s": (i + 1) * window_s,
                "completions": c,
                "rate": c / window_s,
            }
            for i, c in enumerate(counts)
        ]

    def batching_summary(self) -> dict:
        """Batched-round occupancy and amortized-dispatch metrics.

        ``rounds`` counts distinct scheduling rounds among the
        completions; ``mean_round_vectors`` is the mean batch occupancy
        (vectors coalesced per round); ``amortized_schedule_s`` is the
        mean scheduling latency a vector pays *divided by its round's
        occupancy* — the per-vector dispatch cost after amortization
        across the round.  Unbatched runs degenerate to one round per
        vector and an amortized cost equal to the plain mean.
        """
        rounds: dict[int, int] = {}
        for r in self.completed:
            if r.round_id is not None:
                rounds[r.round_id] = max(rounds.get(r.round_id, 0), r.round_size)
        n = len(rounds)
        return {
            "rounds": n,
            "batched_rounds": sum(1 for size in rounds.values() if size > 1),
            "mean_round_vectors": (sum(rounds.values()) / n) if n else 0.0,
            "max_round_vectors": max(rounds.values(), default=0),
            "amortized_schedule_s": (
                float(np.mean([r.schedule_s / r.round_size for r in self.completed]))
                if self.completed
                else float("nan")
            ),
        }

    def summary(self) -> dict:
        """Flat dict of the headline SLO numbers."""
        span = self.makespan_s
        return {
            "offered": self.offered,
            "completed": len(self.completed),
            "dropped": len(self.dropped),
            "dropped_by_reason": self.drops_by_reason(),
            "drop_rate": self.drop_rate,
            "p50_s": self.p50,
            "p95_s": self.p95,
            "p99_s": self.p99,
            "mean_latency_s": self.mean_latency_s,
            "mean_queue_wait_s": (
                float(np.mean([r.queue_wait_s for r in self.completed]))
                if self.completed
                else float("nan")
            ),
            "makespan_s": span,
            "throughput_vps": len(self.completed) / span if span > 0 else 0.0,
            "batching": self.batching_summary(),
        }

    # --------------------------------------------------------------- exports
    def to_json(self, path: str | Path, *, extra: dict | None = None) -> None:
        """Write summary + per-vector records (and optional extras)."""
        payload = {
            "summary": self.summary(),
            "completed": [asdict(r) for r in self.completed],
            "dropped": [asdict(r) for r in self.dropped],
        }
        if extra:
            payload.update(extra)
        dump_json(path, payload)

    def to_trace(self) -> TraceRecorder:
        """Chrome-trace view: one lane per vector, wait→schedule→execute."""
        trace = TraceRecorder()
        for r in self.completed:
            lane = r.vector_id
            label = f"v{r.vector_id}"
            trace.record_at("wait", lane, r.arrival_s, r.queue_wait_s, label=label)
            trace.record_at("schedule", lane, r.dispatch_s, r.schedule_s, label=label)
            trace.record_at("execute", lane, r.sched_done_s, r.execute_s, label=label)
        return trace
