"""Online serving layer: event-driven simulation of live vector traffic.

The batch experiments replay a pre-collected vector stream; this
package answers the operational question instead — how does a scheduler
behave when vectors *arrive over time*?  It wires an arrival process
(:mod:`repro.serve.arrivals`), a bounded admission queue with pluggable
dispatch policies (:mod:`repro.serve.queueing`), any existing scheduler
and the execution engine into one deterministic discrete-event loop
(:mod:`repro.serve.timeline`, :mod:`repro.serve.server`), and reports
latency SLO metrics — tail percentiles, windowed throughput, drop rate
(:mod:`repro.serve.slo`).

Multi-tenant mode (:mod:`repro.serve.tenancy`,
:class:`repro.serve.MultiTenantServer`) interleaves several weighted
tenant streams into one timeline with weighted-fair admission and
per-tenant SLO attainment, and an optional p99-driven autoscaler
(:mod:`repro.serve.autoscale`) grows and shrinks the device pool.

Failure-domain resilience rides on top: correlated ``node_lost`` faults
kill whole nodes atomically (survivor rescheduling pays the slow
inter-node link), :class:`~repro.faults.journal.ResidencyJournal`
replay warm-restores replacement devices, and the
:class:`repro.serve.FaultAware` admission gate sheds vectors unlikely
to complete under the live fault rate (``"predicted-infeasible"``).

The two-level sharded control plane (:mod:`repro.serve.sharded`,
enabled with ``ServeConfig(sharded=True)``) replaces the single loop
with a global router over per-node local schedulers coordinated through
periodically synced load/residency digests — same timeline, same
determinism, distributed control decisions.  Routing is pluggable:
three static digest heuristics plus ``"learned"``
(:mod:`repro.serve.sharded.learned`), an online per-shard
completion-latency predictor that routes to the argmin predicted
latency with a seeded exploration floor.

Gray-failure resilience (:mod:`repro.serve.health`, enabled with
``ServeConfig(health=HealthConfig())`` on sharded runs) handles the
faults that are *not* announced: ``heartbeat_loss`` (a node alive but
silent) and ``node_flap`` (repeated short down/up cycles).  A
phi-accrual-style :class:`repro.serve.HealthMonitor` on the global tier
turns missed heartbeats into a healthy → suspect → quarantined →
probation lifecycle, quarantined shards drain their queues through the
router without being killed, per-shard forwarding circuit breakers stop
hammering full shards, and optional hedged dispatch clones tickets
stuck on suspect shards (first completion wins, exactly-once
accounting).

Result integrity (:mod:`repro.integrity`, enabled with
``ServeConfig(integrity=IntegrityConfig(mode="spot"))``) closes the
last gap: faults that corrupt *data* instead of killing devices.
Checksum lineage tracks tainted copies through D2D propagation, spot
audits recompute sampled pair outputs on a second device (the
recompute doubling as the repair), and per-device blame EWMAs drive a
trusted → suspect → quarantined device lifecycle that feeds back into
health-aware routing.
"""

from repro.serve.arrivals import (
    ArrivalProcess,
    BurstyArrivals,
    PoissonArrivals,
    TraceArrivals,
    arrivals_from_dict,
)
from repro.serve.autoscale import Autoscaler, AutoscalerConfig
from repro.serve.health import (
    AdaptiveHedgeDeadline,
    CircuitBreaker,
    HealthConfig,
    HealthMonitor,
    HedgePair,
    LatencyWindow,
    ShardHealthState,
)
from repro.integrity import IntegrityConfig, IntegrityState
from repro.serve.queueing import (
    QUEUE_POLICIES,
    AdmissionQueue,
    FaultAware,
    Fifo,
    QueuePolicy,
    Sjf,
    WeightedFair,
    make_policy,
)
from repro.serve.server import MiccoServer, MultiTenantServer, ServeConfig, ServeResult
from repro.serve.sharded import (
    ROUTING_POLICIES,
    GlobalScheduler,
    LearnedRouting,
    NodeRuntime,
    RoutingPolicy,
    ShardSnapshot,
    ShardView,
    ShardedServer,
    make_routing_policy,
)
from repro.serve.api import make_server, serve
from repro.serve.slo import DroppedVector, LatencyReport, VectorLatency
from repro.serve.tenancy import (
    SloTargets,
    TenantSpec,
    TenantStream,
    build_streams,
)
from repro.serve.timeline import (
    DeviceOnline,
    DeviceRestore,
    DigestSync,
    Event,
    HealthTick,
    SchedulingDone,
    Ticket,
    Timeline,
    VectorArrival,
    VectorCompletion,
)

__all__ = [
    "serve",
    "make_server",
    "ArrivalProcess",
    "PoissonArrivals",
    "BurstyArrivals",
    "TraceArrivals",
    "arrivals_from_dict",
    "AdmissionQueue",
    "QUEUE_POLICIES",
    "QueuePolicy",
    "Fifo",
    "Sjf",
    "WeightedFair",
    "FaultAware",
    "make_policy",
    "MiccoServer",
    "MultiTenantServer",
    "ServeConfig",
    "ServeResult",
    "TenantSpec",
    "TenantStream",
    "SloTargets",
    "build_streams",
    "Autoscaler",
    "AutoscalerConfig",
    "LatencyReport",
    "VectorLatency",
    "DroppedVector",
    "Timeline",
    "Ticket",
    "Event",
    "VectorArrival",
    "SchedulingDone",
    "VectorCompletion",
    "DeviceOnline",
    "DeviceRestore",
    "DigestSync",
    "HealthTick",
    "IntegrityConfig",
    "IntegrityState",
    "HealthConfig",
    "HealthMonitor",
    "ShardHealthState",
    "CircuitBreaker",
    "HedgePair",
    "AdaptiveHedgeDeadline",
    "LatencyWindow",
    "ShardedServer",
    "GlobalScheduler",
    "NodeRuntime",
    "ShardView",
    "ShardSnapshot",
    "RoutingPolicy",
    "ROUTING_POLICIES",
    "LearnedRouting",
    "make_routing_policy",
]
