"""Online serving layer: event-driven simulation of live vector traffic.

The batch experiments replay a pre-collected vector stream; this
package answers the operational question instead — how does a scheduler
behave when vectors *arrive over time*?  It wires an arrival process
(:mod:`repro.serve.arrivals`), a bounded admission queue
(:mod:`repro.serve.queueing`), any existing scheduler and the execution
engine into one deterministic discrete-event loop
(:mod:`repro.serve.timeline`, :mod:`repro.serve.server`), and reports
latency SLO metrics — tail percentiles, windowed throughput, drop rate
(:mod:`repro.serve.slo`).
"""

from repro.serve.arrivals import (
    ArrivalProcess,
    BurstyArrivals,
    PoissonArrivals,
    TraceArrivals,
)
from repro.serve.queueing import QUEUE_POLICIES, AdmissionQueue
from repro.serve.server import MiccoServer, ServeConfig, ServeResult
from repro.serve.slo import DroppedVector, LatencyReport, VectorLatency
from repro.serve.timeline import (
    Event,
    SchedulingDone,
    Ticket,
    Timeline,
    VectorArrival,
    VectorCompletion,
)

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "BurstyArrivals",
    "TraceArrivals",
    "AdmissionQueue",
    "QUEUE_POLICIES",
    "MiccoServer",
    "ServeConfig",
    "ServeResult",
    "LatencyReport",
    "VectorLatency",
    "DroppedVector",
    "Timeline",
    "Ticket",
    "Event",
    "VectorArrival",
    "SchedulingDone",
    "VectorCompletion",
]
