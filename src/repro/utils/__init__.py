"""Shared utilities: RNG handling, validation helpers, timers."""

from repro.utils.rng import as_generator, spawn_generators
from repro.utils.timing import Stopwatch
from repro.utils.validation import (
    check_positive,
    check_non_negative,
    check_in,
    check_fraction,
)

__all__ = [
    "as_generator",
    "spawn_generators",
    "Stopwatch",
    "check_positive",
    "check_non_negative",
    "check_in",
    "check_fraction",
]
