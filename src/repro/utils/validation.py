"""Small argument-validation helpers with consistent error messages."""

from __future__ import annotations

from repro.errors import ConfigurationError


def check_positive(name: str, value) -> None:
    """Raise :class:`ConfigurationError` unless ``value > 0``."""
    if not value > 0:
        raise ConfigurationError(f"{name} must be > 0, got {value!r}")


def check_non_negative(name: str, value) -> None:
    """Raise :class:`ConfigurationError` unless ``value >= 0``."""
    if not value >= 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value!r}")


def check_fraction(name: str, value, *, inclusive: bool = True) -> None:
    """Raise unless ``value`` lies in ``[0, 1]`` (or ``(0, 1)``)."""
    lo_ok = value >= 0 if inclusive else value > 0
    hi_ok = value <= 1 if inclusive else value < 1
    if not (lo_ok and hi_ok):
        raise ConfigurationError(f"{name} must be a fraction in [0, 1], got {value!r}")


def check_in(name: str, value, allowed) -> None:
    """Raise unless ``value`` is one of ``allowed``."""
    if value not in allowed:
        raise ConfigurationError(f"{name} must be one of {sorted(map(str, allowed))}, got {value!r}")
