"""Deterministic random-number plumbing.

Every stochastic component in this library takes either a seed or a
:class:`numpy.random.Generator`.  Nothing touches NumPy's legacy global
state, so two runs with the same seeds are bit-identical — a requirement
for the scheduler-comparison experiments to be meaningful.
"""

from __future__ import annotations

import numpy as np

SeedLike = "int | np.random.Generator | np.random.SeedSequence | None"


def as_generator(seed=None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts an existing generator (returned as-is), an integer, a
    ``SeedSequence`` or ``None`` (OS entropy).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_generators(seed, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent generators from one seed.

    Used to give each parallel worker / each experiment cell its own
    stream without correlations between them.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    if isinstance(seed, np.random.Generator):
        # Child streams drawn through the parent's bit generator.
        seeds = seed.integers(0, 2**63 - 1, size=n)
        return [np.random.default_rng(int(s)) for s in seeds]
    seq = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(n)]
