"""Wall-clock accounting used to reproduce Table V (scheduling overhead)."""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class Stopwatch:
    """Accumulating stopwatch with named buckets.

    The MICCO session clocks scheduler decisions separately from
    simulated execution so that Table V's "scheduling overhead vs total
    time" split can be reported from real measurements.

    Example
    -------
    >>> sw = Stopwatch()
    >>> with sw.measure("schedule"):
    ...     pass
    >>> sw.total("schedule") >= 0.0
    True
    """

    buckets: dict[str, float] = field(default_factory=dict)
    counts: dict[str, int] = field(default_factory=dict)

    def measure(self, bucket: str):
        """Context manager adding the elapsed time to ``bucket``."""
        return _Measurement(self, bucket)

    def add(self, bucket: str, seconds: float) -> None:
        self.buckets[bucket] = self.buckets.get(bucket, 0.0) + seconds
        self.counts[bucket] = self.counts.get(bucket, 0) + 1

    def total(self, bucket: str) -> float:
        return self.buckets.get(bucket, 0.0)

    def count(self, bucket: str) -> int:
        return self.counts.get(bucket, 0)

    def reset(self) -> None:
        self.buckets.clear()
        self.counts.clear()


class _Measurement:
    __slots__ = ("_sw", "_bucket", "_start")

    def __init__(self, sw: Stopwatch, bucket: str):
        self._sw = sw
        self._bucket = bucket
        self._start = 0.0

    def __enter__(self):
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc):
        self._sw.add(self._bucket, time.perf_counter() - self._start)
        return False
