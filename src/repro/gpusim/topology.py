"""Multi-node GPU topology (the paper's future-work extension).

The paper's conclusion plans to "extend the design of MICCO to a
multi-node cluster with GPUs" and to optimize "both intra-node and
inter-node communications".  :class:`Topology` models that setting:
devices are grouped into nodes; device-to-device transfers within a
node use the fast local link, transfers across nodes pay network
bandwidth and extra latency.  Host↔device traffic is node-local and
unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.utils.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class Topology:
    """Node grouping and link speeds of a GPU cluster.

    Parameters
    ----------
    num_devices:
        Total devices across the cluster.
    devices_per_node:
        Devices per node; node id = device id // devices_per_node.
    intra_node_bandwidth:
        Bytes/second between devices of one node (PCIe/xGMI class).
    inter_node_bandwidth:
        Bytes/second across nodes (InfiniBand class; typically several
        times slower than the local link).
    inter_node_extra_latency_s:
        Additional fixed latency per cross-node transfer.
    """

    num_devices: int
    devices_per_node: int
    intra_node_bandwidth: float = 18e9
    inter_node_bandwidth: float = 6e9
    inter_node_extra_latency_s: float = 5e-6

    def __post_init__(self):
        check_positive("num_devices", self.num_devices)
        check_positive("devices_per_node", self.devices_per_node)
        check_positive("intra_node_bandwidth", self.intra_node_bandwidth)
        check_positive("inter_node_bandwidth", self.inter_node_bandwidth)
        check_non_negative("inter_node_extra_latency_s", self.inter_node_extra_latency_s)
        if self.num_devices % self.devices_per_node:
            raise ConfigurationError(
                f"num_devices ({self.num_devices}) must be a multiple of "
                f"devices_per_node ({self.devices_per_node})"
            )

    @property
    def num_nodes(self) -> int:
        return self.num_devices // self.devices_per_node

    def node_of(self, device_id: int) -> int:
        """Node index hosting ``device_id``."""
        if not 0 <= device_id < self.num_devices:
            raise ConfigurationError(f"device id {device_id} outside 0..{self.num_devices - 1}")
        return device_id // self.devices_per_node

    def same_node(self, a: int, b: int) -> bool:
        return self.node_of(a) == self.node_of(b)

    def devices_of_node(self, node: int) -> list[int]:
        """Device ids hosted by ``node``, ascending.

        The inverse of :meth:`node_of`; failure-domain faults use it to
        expand one ``node_lost`` event into the full blast radius.
        """
        if not 0 <= node < self.num_nodes:
            raise ConfigurationError(f"node id {node} outside 0..{self.num_nodes - 1}")
        start = node * self.devices_per_node
        return list(range(start, start + self.devices_per_node))

    def d2d_time(self, src: int, dst: int, nbytes: int, base_latency_s: float) -> float:
        """Seconds to move ``nbytes`` from ``src`` to ``dst``."""
        if self.same_node(src, dst):
            return base_latency_s + nbytes / self.intra_node_bandwidth
        return (
            base_latency_s
            + self.inter_node_extra_latency_s
            + nbytes / self.inter_node_bandwidth
        )
