"""Simulated GPU device descriptions.

Defaults are calibrated to the paper's testbed: AMD MI100 accelerators
(32 GB HBM2, ~23 TFLOP/s FP32 peak / 11.5 FP64) attached to an EPYC
host over PCIe 4.0, with xGMI links between devices.  Absolute numbers
only set the time *scale*; the experiments compare schedulers on the
same hardware model, so relative results are insensitive to moderate
miscalibration (see DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_positive

GIB = 1024**3


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of one simulated GPU.

    Parameters
    ----------
    device_id:
        Index within the cluster, ``0 .. num_devices-1``.
    memory_bytes:
        Usable device memory capacity.
    peak_gflops:
        Peak arithmetic rate in GFLOP/s for the workload's precision.
    """

    device_id: int
    memory_bytes: int = 32 * GIB
    peak_gflops: float = 23_000.0

    def __post_init__(self):
        if self.device_id < 0:
            raise ValueError(f"device_id must be >= 0, got {self.device_id}")
        check_positive("memory_bytes", self.memory_bytes)
        check_positive("peak_gflops", self.peak_gflops)


def mi100_like(num_devices: int, memory_bytes: int = 32 * GIB, peak_gflops: float = 23_000.0) -> list[DeviceSpec]:
    """A homogeneous cluster of MI100-class devices."""
    check_positive("num_devices", num_devices)
    return [
        DeviceSpec(device_id=i, memory_bytes=memory_bytes, peak_gflops=peak_gflops)
        for i in range(num_devices)
    ]
