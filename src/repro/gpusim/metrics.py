"""Execution counters and simulated timing.

Counters are integer-exact and independent of the float cost model, so
invariant tests can assert on them without tolerance games: e.g.
``reuse_hits + h2d_transfers + d2d_transfers == input slots``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class MemoryOpCounts:
    """Integer-exact memory-operation counters."""

    reuse_hits: int = 0
    h2d_transfers: int = 0
    d2d_transfers: int = 0
    allocations: int = 0
    evictions: int = 0
    eviction_bytes: int = 0
    transferred_bytes: int = 0
    #: D2D transfers that crossed a node boundary (multi-node topology
    #: only; a subset of ``d2d_transfers``).  In sharded serving this is
    #: the cost a mis-routed or forwarded vector pays for fetching
    #: tensors resident on another shard's node.
    cross_node_fetches: int = 0

    def merge(self, other: "MemoryOpCounts") -> None:
        self.reuse_hits += other.reuse_hits
        self.h2d_transfers += other.h2d_transfers
        self.d2d_transfers += other.d2d_transfers
        self.allocations += other.allocations
        self.evictions += other.evictions
        self.eviction_bytes += other.eviction_bytes
        self.transferred_bytes += other.transferred_bytes
        self.cross_node_fetches += other.cross_node_fetches

    @property
    def input_fetches(self) -> int:
        """Input-slot resolutions that required a copy."""
        return self.h2d_transfers + self.d2d_transfers


@dataclass
class ExecutionMetrics:
    """Per-run metrics for one scheduled workload.

    Timing is *simulated* seconds per device, split into compute and
    memory-operation buckets.  The headline figure matches the paper's:
    ``GFLOPS = total_flops / makespan``.
    """

    num_devices: int
    compute_s: np.ndarray = field(default=None)  # type: ignore[assignment]
    memop_s: np.ndarray = field(default=None)  # type: ignore[assignment]
    counts: MemoryOpCounts = field(default_factory=MemoryOpCounts)
    total_flops: int = 0
    pairs_executed: int = 0
    pairs_per_device: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self):
        if self.compute_s is None:
            self.compute_s = np.zeros(self.num_devices)
        if self.memop_s is None:
            self.memop_s = np.zeros(self.num_devices)
        if self.pairs_per_device is None:
            self.pairs_per_device = np.zeros(self.num_devices, dtype=np.int64)

    # --------------------------------------------------------------- derived
    @property
    def device_time_s(self) -> np.ndarray:
        """Total busy time per device (compute + memory ops)."""
        return self.compute_s + self.memop_s

    @property
    def makespan_s(self) -> float:
        """Simulated wall-clock: slowest device's busy time."""
        return float(self.device_time_s.max()) if self.num_devices else 0.0

    @property
    def gflops(self) -> float:
        """Throughput: total flops over makespan, in GFLOP/s."""
        span = self.makespan_s
        return self.total_flops / span / 1e9 if span > 0 else 0.0

    @property
    def load_imbalance(self) -> float:
        """max/mean device busy time; 1.0 is perfectly balanced."""
        t = self.device_time_s
        mean = float(t.mean())
        return float(t.max()) / mean if mean > 0 else 1.0

    @property
    def memop_fraction(self) -> float:
        """Fraction of total busy time spent on memory operations."""
        busy = float(self.device_time_s.sum())
        return float(self.memop_s.sum()) / busy if busy > 0 else 0.0

    def merge(self, other: "ExecutionMetrics") -> None:
        """Accumulate another run executed on the same cluster."""
        if other.num_devices != self.num_devices:
            raise ValueError("cannot merge metrics from different cluster sizes")
        self.compute_s += other.compute_s
        self.memop_s += other.memop_s
        self.counts.merge(other.counts)
        self.total_flops += other.total_flops
        self.pairs_executed += other.pairs_executed
        self.pairs_per_device += other.pairs_per_device

    def summary(self) -> dict:
        """Flat dict for experiment tables / JSON dumps."""
        return {
            "gflops": self.gflops,
            "makespan_s": self.makespan_s,
            "total_flops": self.total_flops,
            "pairs": self.pairs_executed,
            "reuse_hits": self.counts.reuse_hits,
            "h2d": self.counts.h2d_transfers,
            "d2d": self.counts.d2d_transfers,
            "allocations": self.counts.allocations,
            "evictions": self.counts.evictions,
            "load_imbalance": self.load_imbalance,
            "memop_fraction": self.memop_fraction,
        }
