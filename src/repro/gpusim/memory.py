"""Per-device memory pool with pluggable eviction policy (LRU default).

Models the behaviour MICCO's memory-eviction-sensitive policy reacts
to: when a device is oversubscribed, allocating a new tensor forces
resident tensors out (they must be re-fetched from the host if needed
again).  Tensors participating in the current contraction are
*protected* and never evicted mid-kernel.

Eviction policies (the ablation bench compares them):

* ``"lru"`` — least recently used first (production default),
* ``"fifo"`` — oldest allocation first, recency ignored,
* ``"largest"`` — biggest tensor first (frees space fastest).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro import compat
from repro.errors import CapacityError
from repro.utils.validation import check_in, check_positive

EVICTION_POLICIES = ("lru", "fifo", "largest")


@dataclass(frozen=True, slots=True)
class Residency:
    """One resident tensor: identity plus footprint."""

    uid: int
    nbytes: int


class MemoryPool:
    """Policy-managed device memory.

    Parameters
    ----------
    capacity_bytes:
        Usable capacity.  Allocations beyond it trigger evictions.
    policy:
        Victim-selection policy; one of :data:`EVICTION_POLICIES`.
    """

    def __init__(self, capacity_bytes: int, policy: str = "lru"):
        check_positive("capacity_bytes", capacity_bytes)
        check_in("policy", policy, EVICTION_POLICIES)
        self.capacity_bytes = int(capacity_bytes)
        self.policy = policy
        self._resident: OrderedDict[int, int] = OrderedDict()  # uid -> nbytes, LRU first
        self._used = 0
        self._insertion: dict[int, int] = {}  # uid -> insertion counter (fifo)
        self._clock = 0
        # LRU never reads insertion stamps (recency order lives in the
        # OrderedDict itself), so skip maintaining them on that policy's
        # hot path.
        self._track_insertion = policy != "lru"

    # ------------------------------------------------------------------ reads
    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self._used

    def __contains__(self, uid: int) -> bool:
        return uid in self._resident

    def __len__(self) -> int:
        return len(self._resident)

    def resident_uids(self) -> list[int]:
        """Resident tensor uids, least recently used first."""
        return list(self._resident)

    def nbytes_of(self, uid: int) -> int:
        return self._resident[uid]

    def would_evict(self, nbytes: int, protect: frozenset[int] | set[int] = frozenset()) -> bool:
        """True if allocating ``nbytes`` now would force evictions."""
        return nbytes > self.free_bytes and any(u not in protect for u in self._resident)

    def fits(self, nbytes: int) -> bool:
        """True if ``nbytes`` fits without any eviction."""
        return nbytes <= self.free_bytes

    # ----------------------------------------------------------------- writes
    def touch(self, uid: int) -> None:
        """Mark ``uid`` most-recently-used (a reuse hit)."""
        self._resident.move_to_end(uid)

    def _victim_order(self, protect) -> list[int]:
        """Unprotected uids in eviction-preference order for the policy."""
        candidates = [u for u in self._resident if u not in protect]
        if self.policy == "lru":
            return candidates  # OrderedDict iterates LRU first
        if self.policy == "fifo":
            return sorted(candidates, key=lambda u: self._insertion[u])
        # "largest": biggest footprint first; ties oldest-first.
        return sorted(candidates, key=lambda u: (-self._resident[u], self._insertion[u]))

    def _victim_iter(self, protect):
        """Lazy :meth:`_victim_order` — same sequence, no full scan.

        Eviction loops usually stop after a handful of victims, so for
        LRU (iteration order *is* preference order) a generator avoids
        rebuilding the whole candidate list per oversubscribed
        allocation.  FIFO/largest need the global sort either way.
        """
        if self.policy == "lru" and not compat.REFERENCE_CORE:
            return (u for u in self._resident if u not in protect)
        return iter(self._victim_order(protect))

    def allocate(self, uid: int, nbytes: int, protect: set[int] | frozenset[int] = frozenset()) -> list[Residency]:
        """Allocate ``nbytes`` for ``uid``, evicting victims if needed.

        Returns the list of evicted residencies (possibly empty), in
        eviction order.  Raises :class:`CapacityError` if the tensor
        cannot fit even after evicting every unprotected tensor.
        """
        resident = self._resident
        if uid in resident:
            # Idempotent: already resident, just refresh recency.
            resident.move_to_end(uid)
            return []
        capacity = self.capacity_bytes
        if nbytes > capacity:
            raise CapacityError(
                f"tensor of {nbytes} bytes exceeds device capacity {capacity}"
            )
        evicted: list[Residency] = []
        if nbytes > capacity - self._used:
            # Two-phase: pick victims first (no mutation while the scan
            # walks the resident dict), then evict them.
            short = nbytes - (capacity - self._used)
            victims: list[int] = []
            if self.policy == "lru" and not compat.REFERENCE_CORE:
                # Inline LRU scan: OrderedDict order *is* preference order.
                for victim in resident:
                    if victim in protect:
                        continue
                    victims.append(victim)
                    short -= resident[victim]
                    if short <= 0:
                        break
            else:
                for victim in self._victim_iter(protect):
                    victims.append(victim)
                    short -= resident[victim]
                    if short <= 0:
                        break
            insertion = self._insertion
            for victim in victims:
                vb = resident.pop(victim)
                if insertion:
                    insertion.pop(victim, None)
                self._used -= vb
                evicted.append(Residency(uid=victim, nbytes=vb))
            if nbytes > capacity - self._used:
                # Roll back is unnecessary: evictions already happened on the
                # simulated device; report the capacity failure.
                raise CapacityError(
                    f"cannot fit {nbytes} bytes: only {self.free_bytes} free after "
                    f"evicting all unprotected tensors (capacity {capacity})"
                )
        resident[uid] = nbytes
        if self._track_insertion:
            self._insertion[uid] = self._clock
            self._clock += 1
        self._used += nbytes
        return evicted

    def check_invariants(self) -> None:
        """Assert the pool's internal accounting is consistent.

        Recovery paths free tensors out-of-band (device loss wipes a
        pool while the engine holds references), so the accounting must
        stay airtight under any alloc/evict/free interleaving:

        * ``used_bytes`` equals the sum of resident footprints,
        * usage never exceeds capacity,
        * the insertion map covers exactly the resident set,
        * the insertion clock is monotone (every stamp is in the past).

        Raises :class:`AssertionError` on the first violation.
        """
        resident_sum = sum(self._resident.values())
        assert self._used == resident_sum, (
            f"used_bytes {self._used} != sum of residencies {resident_sum}"
        )
        assert 0 <= self._used <= self.capacity_bytes, (
            f"used_bytes {self._used} outside [0, {self.capacity_bytes}]"
        )
        if self._track_insertion:
            assert set(self._insertion) == set(self._resident), (
                "insertion map out of sync with resident set: "
                f"{sorted(self._insertion)} vs {sorted(self._resident)}"
            )
            assert all(stamp < self._clock for stamp in self._insertion.values()), (
                f"insertion clock {self._clock} not monotone over {self._insertion}"
            )
        else:
            assert not self._insertion, (
                f"LRU pool should not track insertion stamps, found {self._insertion}"
            )

    def free(self, uid: int) -> int:
        """Explicitly release a tensor; returns its size (0 if absent)."""
        nbytes = self._resident.pop(uid, None)
        if nbytes is None:
            return 0
        self._insertion.pop(uid, None)
        self._used -= nbytes
        return nbytes

    def clear(self) -> None:
        self._resident.clear()
        self._insertion.clear()
        self._used = 0
