"""Multi-GPU simulator substrate.

The paper evaluates on eight AMD MI100 GPUs.  This package replaces the
hardware with a deterministic simulator that models exactly the
quantities MICCO's scheduling decisions control:

* per-device memory pools with LRU eviction under oversubscription
  (:mod:`repro.gpusim.memory`),
* host↔device and device↔device transfer costs
  (:mod:`repro.gpusim.interconnect`),
* kernel compute time as a function of tensor size
  (:mod:`repro.gpusim.costmodel`),
* the shared cluster state the schedulers read — the paper's
  ``mapGPUTensor`` / ``mapGPUCom`` / ``mapGPUMem``
  (:mod:`repro.gpusim.cluster`),
* an execution engine that replays a pair→GPU assignment and produces
  counters + simulated timing (:mod:`repro.gpusim.engine`).
"""

from repro.gpusim.device import DeviceSpec, mi100_like
from repro.gpusim.memory import MemoryPool, Residency, EVICTION_POLICIES
from repro.gpusim.interconnect import Interconnect
from repro.gpusim.topology import Topology
from repro.gpusim.costmodel import CostModel
from repro.gpusim.cluster import ClusterState
from repro.gpusim.metrics import ExecutionMetrics, MemoryOpCounts
from repro.gpusim.engine import ExecutionEngine
from repro.gpusim.trace import (
    FullSink,
    NullSink,
    SamplingSink,
    TraceConfig,
    TraceEvent,
    TraceRecorder,
    TraceSink,
)

__all__ = [
    "DeviceSpec",
    "mi100_like",
    "MemoryPool",
    "Residency",
    "EVICTION_POLICIES",
    "Interconnect",
    "Topology",
    "CostModel",
    "ClusterState",
    "ExecutionMetrics",
    "MemoryOpCounts",
    "ExecutionEngine",
    "TraceRecorder",
    "TraceEvent",
    "TraceSink",
    "TraceConfig",
    "FullSink",
    "SamplingSink",
    "NullSink",
]
