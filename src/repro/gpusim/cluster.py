"""Shared multi-GPU cluster state read by schedulers, written by the engine.

This is the concrete realisation of the paper's three scheduler maps
(Table III):

* ``mapGPUTensor`` — which tensors are resident on which GPU
  (here: each device's :class:`~repro.gpusim.memory.MemoryPool`),
* ``mapGPUCom``   — accumulated computation cost per GPU,
* ``mapGPUMem``   — memory bytes used per GPU,

plus the per-vector tensor-slot counters the availability test
``assigned[g] < reuseBd[k] + balanceNum`` is evaluated against
(reuse bounds cap a GPU's *share of the current vector*, see
DESIGN.md §5).
"""

from __future__ import annotations

import numpy as np

from repro.errors import SchedulingError
from repro.gpusim.device import DeviceSpec, mi100_like
from repro.gpusim.memory import MemoryPool
from repro.tensor.spec import TensorSpec


class ClusterState:
    """Mutable state of a simulated multi-GPU node.

    Parameters
    ----------
    devices:
        Device specs; one :class:`MemoryPool` is created per device.
    """

    def __init__(self, devices: list[DeviceSpec], eviction_policy: str = "lru"):
        if not devices:
            raise SchedulingError("cluster needs at least one device")
        ids = [d.device_id for d in devices]
        if ids != list(range(len(devices))):
            raise SchedulingError(f"device ids must be 0..n-1 in order, got {ids}")
        self.devices = list(devices)
        self.eviction_policy = eviction_policy
        self.pools = [MemoryPool(d.memory_bytes, policy=eviction_policy) for d in devices]
        # mapGPUCom: accumulated simulated compute seconds per device.
        self.compute_s = np.zeros(len(devices))
        # Accumulated memory-operation seconds per device (for
        # earliest-available-device baselines that watch busy time).
        self.memop_s = np.zeros(len(devices))
        # uid -> set of device ids currently holding a copy.
        self._holders: dict[int, set[int]] = {}
        # Per-vector load counters (the paper's availability test).
        self.assigned_slots = np.zeros(len(devices), dtype=np.int64)
        self.balance_num: float = 0.0
        # Slot-indexed device horizon: the simulated time until which
        # each device is busy.  Owned by the serving loop (one shared
        # preallocated array instead of per-event allocation); the
        # batch paths leave it at zero.
        self.busy_until = np.zeros(len(devices))
        # Device health: offline devices stay in ``devices`` (ids keep
        # their meaning) but leave this set.  A device goes offline by
        # *failing* (permanent, also enters ``_failed``) or by being
        # *retired* (autoscaler scale-down; may come back online cold
        # via :meth:`activate_device`).
        self._alive: set[int] = set(range(len(devices)))
        self._failed: set[int] = set()
        # Slot-indexed alive mask + cached ascending id list, kept in
        # sync with ``_alive`` by the lifecycle methods (``alive_ids``
        # sits on every scheduler's hot path).
        self.alive_mask = np.ones(len(devices), dtype=bool)
        self._alive_cache: list[int] | None = list(range(len(devices)))
        #: Optional :class:`~repro.faults.journal.ResidencyJournal`
        #: observing residency deltas (attached per run by the serving
        #: loop; ``None`` keeps the batch paths journal-free).
        self.journal = None

    # ------------------------------------------------------------------ reads
    @property
    def num_devices(self) -> int:
        return len(self.devices)

    @property
    def num_alive(self) -> int:
        """Devices still healthy (total minus permanently lost)."""
        return len(self._alive)

    def is_alive(self, device_id: int) -> bool:
        return device_id in self._alive

    def alive_ids(self) -> list[int]:
        """Healthy device ids, ascending (the schedulable pool).

        The list is cached between alive-set changes — callers must
        treat it as read-only.
        """
        if self._alive_cache is None:
            self._alive_cache = sorted(self._alive)
        return self._alive_cache

    def _alive_changed(self) -> None:
        """Invalidate alive-set caches after a lifecycle transition."""
        self._alive_cache = None
        for d in range(self.num_devices):
            self.alive_mask[d] = d in self._alive

    def is_failed(self, device_id: int) -> bool:
        """True when the device was permanently lost (never reactivatable)."""
        return device_id in self._failed

    def offline_ids(self) -> list[int]:
        """Retired-but-healthy device ids, ascending (scale-up candidates)."""
        return sorted(
            d for d in range(self.num_devices)
            if d not in self._alive and d not in self._failed
        )

    def devices_holding(self, uid: int) -> frozenset[int]:
        """``mapGPUTensor.find(tensor)``: devices with a resident copy."""
        return frozenset(self._holders.get(uid, ()))

    def is_resident(self, uid: int, device_id: int) -> bool:
        return device_id in self._holders.get(uid, ())

    def resident_count(self, device_id: int) -> int:
        """Number of tensors resident on a device."""
        return len(self.pools[device_id])

    def used_bytes(self, device_id: int) -> int:
        """``mapGPUMem``: bytes used on a device."""
        return self.pools[device_id].used_bytes

    def free_bytes(self, device_id: int) -> int:
        return self.pools[device_id].free_bytes

    def free_bytes_batch(self, device_ids) -> np.ndarray:
        """Free bytes for every device in ``device_ids``, as one array.

        Batch counterpart of :meth:`free_bytes` for the vectorised
        scoring path (:meth:`~repro.gpusim.costmodel.CostModel.score_batch`).
        """
        pools = self.pools
        return np.fromiter(
            (pools[g].free_bytes for g in device_ids),
            dtype=np.int64,
            count=len(device_ids),
        )

    def total_resident_tensors(self) -> int:
        return sum(len(p) for p in self.pools)

    # ------------------------------------------------------- vector lifecycle
    def begin_vector(self, num_tensors: int) -> None:
        """Reset per-vector balance counters for a vector of ``num_tensors`` slots.

        ``balanceNum`` spreads the vector over the *surviving* pool:
        after a device loss the balanced share is recomputed as
        ``numTensor / numAliveGPU`` so the remaining devices absorb the
        lost capacity instead of chasing an unreachable target.
        """
        if num_tensors <= 0:
            raise SchedulingError(f"vector must have positive tensor slots, got {num_tensors}")
        if not self._alive:
            raise SchedulingError("cannot begin a vector: every device has been lost")
        self.assigned_slots[:] = 0
        self.balance_num = num_tensors / self.num_alive

    def record_assignment(self, device_id: int, slots: int = 2) -> None:
        """Charge ``slots`` tensor slots of the current vector to a device."""
        self.assigned_slots[device_id] += slots

    # ------------------------------------------------------ residency updates
    def register(self, spec: TensorSpec, device_id: int, protect: set[int] | frozenset[int] = frozenset()):
        """Make ``spec`` resident on ``device_id``; returns evicted residencies."""
        uid = spec.uid
        holders_map = self._holders
        evicted = self.pools[device_id].allocate(uid, spec.nbytes, protect=protect)
        if evicted:
            for r in evicted:
                holders = holders_map.get(r.uid)
                if holders is not None:
                    holders.discard(device_id)
                    if not holders:
                        del holders_map[r.uid]
                if self.journal is not None:
                    self.journal.note_drop(r.uid, device_id, "evict")
        h = holders_map.get(uid)
        if h is None:
            holders_map[uid] = {device_id}
        else:
            h.add(device_id)
        if self.journal is not None:
            self.journal.note_put(uid, device_id, spec.nbytes)
        return evicted

    def touch(self, uid: int, device_id: int) -> None:
        """Refresh LRU recency of a reused tensor."""
        self.pools[device_id].touch(uid)

    def drop(self, uid: int, device_id: int, reason: str = "drain") -> int:
        """Explicitly free a tensor from one device; returns bytes freed.

        ``reason`` is journaled verbatim (see
        :attr:`~repro.faults.ResidencyJournal.DROP_REASONS`): the default
        ``"drain"`` means the data is finished with (completed outputs),
        while a copy freed because it moved elsewhere should pass
        ``"migrate"`` so the hot-set estimate keeps ranking it.
        """
        nbytes = self.pools[device_id].free(uid)
        if nbytes:
            holders = self._holders.get(uid)
            if holders is not None:
                holders.discard(device_id)
                if not holders:
                    del self._holders[uid]
            if self.journal is not None:
                self.journal.note_drop(uid, device_id, reason)
        return nbytes

    def drop_everywhere(self, uid: int, reason: str = "drain") -> int:
        """Free a tensor from every device; returns total bytes freed."""
        total = 0
        for dev in list(self._holders.get(uid, ())):
            total += self.drop(uid, dev, reason)
        return total

    def _take_offline(self, device_id: int) -> list[int]:
        """Remove a device from the alive set and clear its residency.

        Returns the orphaned tensor uids (uids whose *only* copy lived
        there must be re-fetched from the host if referenced again).
        No-op returning ``[]`` when the device is already offline.
        """
        if not (0 <= device_id < self.num_devices):
            raise SchedulingError(
                f"device id {device_id} out of range 0..{self.num_devices - 1}"
            )
        if device_id not in self._alive:
            return []
        self._alive.discard(device_id)
        self._alive_changed()
        orphans = list(self.pools[device_id].resident_uids())
        for uid in orphans:
            self.pools[device_id].free(uid)
            holders = self._holders.get(uid)
            if holders is not None:
                holders.discard(device_id)
                if not holders:
                    del self._holders[uid]
            if self.journal is not None:
                self.journal.note_drop(uid, device_id, "lost")
        return orphans

    def fail_device(self, device_id: int) -> list[int]:
        """Permanently lose a device; returns the orphaned tensor uids.

        The device keeps its id (and its accumulated time counters, for
        reporting) but is excluded from ``alive_ids``, rejected by the
        engine, and can never be reactivated.  Failing an already-dead
        device is a no-op returning ``[]`` (but still marks it failed,
        so a retired device that dies stays dead).
        """
        orphans = self._take_offline(device_id)
        self._failed.add(device_id)
        return orphans

    def fail_node(self, device_ids) -> dict[int, list[int]]:
        """Atomically lose a whole failure domain (every device of a node).

        All member devices leave the alive set *before* any recovery can
        run, so orphaned work cannot be re-scheduled onto a doomed
        sibling of the same rack.  Returns ``{device: orphan uids}`` for
        the members that were actually alive (already-dead members
        contribute nothing, like :meth:`fail_device`).
        """
        orphaned: dict[int, list[int]] = {}
        for device_id in device_ids:
            was_alive = self.is_alive(device_id)
            orphans = self.fail_device(device_id)
            if was_alive:
                orphaned[device_id] = orphans
        return orphaned

    def prewarm(self, uid: int, nbytes: int, device_id: int) -> bool:
        """Pre-load a journal-replayed tensor onto an alive device.

        Used by warm restore: the tensor becomes resident as if fetched,
        but only while it fits in free memory — pre-warming must never
        evict live residency.  Returns False (no-op) when the device is
        offline, the tensor is already resident there, or space is
        short.
        """
        if not self.is_alive(device_id):
            return False
        pool = self.pools[device_id]
        if uid in pool or nbytes > pool.free_bytes:
            return False
        pool.allocate(uid, nbytes)
        self._holders.setdefault(uid, set()).add(device_id)
        if self.journal is not None:
            self.journal.note_put(uid, device_id, nbytes)
        return True

    def retire_device(self, device_id: int) -> list[int]:
        """Gracefully take a healthy device offline (scale-down).

        Same residency consequences as :meth:`fail_device` — resident
        tensors are dropped, orphan uids returned — but the device stays
        healthy and can rejoin the pool later via
        :meth:`activate_device`.  Retiring a failed or already-offline
        device is a no-op returning ``[]``.
        """
        return self._take_offline(device_id)

    def activate_device(self, device_id: int) -> None:
        """Bring a retired device back online with a cold memory pool.

        The device rejoins ``alive_ids`` holding no resident tensors
        (warm-up happened off-pool; nothing survives it).  Activating an
        alive device is a no-op; activating a permanently failed device
        raises.
        """
        if not (0 <= device_id < self.num_devices):
            raise SchedulingError(
                f"device id {device_id} out of range 0..{self.num_devices - 1}"
            )
        if device_id in self._failed:
            raise SchedulingError(
                f"device {device_id} was permanently lost and cannot be reactivated"
            )
        if device_id in self._alive:
            return
        self.pools[device_id].clear()
        self._alive.add(device_id)
        self._alive_changed()

    def restore_device(self, device_id: int) -> None:
        """Bring a *failed* device back online with a cold memory pool.

        The flap-recovery counterpart of :meth:`activate_device`: a
        device that died in a ``node_flap`` down phase rejoins the pool
        when the node comes back.  The failure mark is cleared — the
        device is healthy again — but nothing survives the bounce: the
        pool restarts cold and residency must be re-fetched (or
        pre-warmed via journal replay).  Restoring an alive device is a
        no-op.
        """
        if not (0 <= device_id < self.num_devices):
            raise SchedulingError(
                f"device id {device_id} out of range 0..{self.num_devices - 1}"
            )
        if device_id in self._alive:
            return
        self._failed.discard(device_id)
        self.pools[device_id].clear()
        self._alive.add(device_id)
        self._alive_changed()

    def check_invariants(self) -> None:
        """Assert pool accounting and the residency index agree.

        Each pool's own invariants must hold, and the ``_holders``
        reverse index must name exactly the devices whose pools contain
        each uid.  Raises :class:`AssertionError` on violation.
        """
        for pool in self.pools:
            pool.check_invariants()
        from_pools: dict[int, set[int]] = {}
        for dev, pool in enumerate(self.pools):
            for uid in pool.resident_uids():
                from_pools.setdefault(uid, set()).add(dev)
        assert from_pools == self._holders, (
            f"holders index out of sync: pools say {from_pools}, index says {self._holders}"
        )

    def add_compute(self, device_id: int, seconds: float) -> None:
        self.compute_s[device_id] += seconds

    def add_memop(self, device_id: int, seconds: float) -> None:
        self.memop_s[device_id] += seconds

    @property
    def busy_s(self) -> np.ndarray:
        """Total accumulated busy time per device."""
        return self.compute_s + self.memop_s

    def reset(self) -> None:
        """Clear all residency and counters (fresh cluster)."""
        for p in self.pools:
            p.clear()
        self.compute_s[:] = 0.0
        self.memop_s[:] = 0.0
        self._holders.clear()
        self.assigned_slots[:] = 0
        self.balance_num = 0.0
        self.busy_until[:] = 0.0
        self._alive = set(range(self.num_devices))
        self._failed = set()
        self._alive_changed()

    def clone(self) -> "ClusterState":
        """Deep copy — used by look-ahead / exhaustive oracles."""
        import copy

        other = ClusterState(self.devices, eviction_policy=self.eviction_policy)
        other.compute_s = self.compute_s.copy()
        other.memop_s = self.memop_s.copy()
        other.pools = copy.deepcopy(self.pools)
        other._holders = {uid: set(devs) for uid, devs in self._holders.items()}
        other.assigned_slots = self.assigned_slots.copy()
        other.balance_num = self.balance_num
        other.busy_until = self.busy_until.copy()
        other._alive = set(self._alive)
        other._failed = set(self._failed)
        other._alive_changed()
        # Look-ahead clones must not pollute the real run's journal.
        other.journal = None
        return other

    # -------------------------------------------------------------- factories
    @classmethod
    def homogeneous(cls, num_devices: int, memory_bytes: int, peak_gflops: float = 23_000.0) -> "ClusterState":
        return cls(mi100_like(num_devices, memory_bytes=memory_bytes, peak_gflops=peak_gflops))
