"""Execution tracing: per-event records and Chrome-trace export.

Attach a :class:`TraceRecorder` to an :class:`ExecutionEngine` to
capture every simulated event (fetches, evictions, kernels) with its
device placement and simulated timestamps.  ``to_chrome_trace`` writes
the standard ``chrome://tracing`` / Perfetto JSON so schedules can be
inspected visually; ``summary_by_device`` gives quick aggregates.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

#: Event kinds emitted by the engine, plus the serving layer's
#: per-vector lifecycle spans (wait → schedule → execute), the chaos
#: layer's fault lifecycle (fault → retry → recovery) and flap-cycle
#: restores (restore), the failure-domain layer's cross-node
#: re-fetches (xnode) and warm restores (prewarm), the autoscaler's
#: pool changes (scale-up → scale-online → scale-down), the
#: dispatcher's batched scheduling rounds (batch), and the health
#: subsystem's lifecycle / hedge / breaker transitions
#: (health, hedge, breaker).
EVENT_KINDS = (
    "batch",
    "h2d",
    "d2d",
    "alloc",
    "evict",
    "kernel",
    "drain",
    "wait",
    "schedule",
    "execute",
    "fault",
    "retry",
    "recovery",
    "restore",
    "xnode",
    "prewarm",
    "scale-up",
    "scale-down",
    "scale-online",
    "health",
    "hedge",
    "breaker",
)


@dataclass(frozen=True)
class TraceEvent:
    """One simulated device event."""

    kind: str
    device: int
    start_s: float
    duration_s: float
    uid: int = -1
    nbytes: int = 0
    label: str = ""

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s


class TraceRecorder:
    """Collects :class:`TraceEvent` records during a run.

    The engine clocks each device independently (events on one device
    are serialized; devices run in parallel), matching how the
    simulator accumulates time.
    """

    def __init__(self):
        self.events: list[TraceEvent] = []
        self._device_clock: dict[int, float] = {}

    def __len__(self) -> int:
        return len(self.events)

    def record(self, kind: str, device: int, duration_s: float, *, uid: int = -1, nbytes: int = 0, label: str = "") -> None:
        """Append an event at the device's current simulated time."""
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown trace event kind {kind!r}; expected one of {EVENT_KINDS}")
        start = self._device_clock.get(device, 0.0)
        self.events.append(
            TraceEvent(kind=kind, device=device, start_s=start, duration_s=duration_s, uid=uid, nbytes=nbytes, label=label)
        )
        self._device_clock[device] = start + duration_s

    def record_at(
        self, kind: str, device: int, start_s: float, duration_s: float, *, uid: int = -1, nbytes: int = 0, label: str = ""
    ) -> None:
        """Append an event with an explicit start time.

        Used by externally clocked producers (the serving simulator's
        wall-clock spans) instead of the per-device running clock.  The
        device clock is still advanced past the event's end so that
        later :meth:`record` calls on the same lane never run backwards.
        """
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown trace event kind {kind!r}; expected one of {EVENT_KINDS}")
        if duration_s < 0:
            raise ValueError(f"event duration must be >= 0, got {duration_s}")
        self.events.append(
            TraceEvent(kind=kind, device=device, start_s=start_s, duration_s=duration_s, uid=uid, nbytes=nbytes, label=label)
        )
        end = start_s + duration_s
        if end > self._device_clock.get(device, 0.0):
            self._device_clock[device] = end

    def clear(self) -> None:
        self.events.clear()
        self._device_clock.clear()

    # ------------------------------------------------------------- summaries
    def events_of(self, kind: str) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def summary_by_device(self) -> dict[int, dict[str, float]]:
        """Per-device totals: seconds per event kind plus event count."""
        out: dict[int, dict[str, float]] = {}
        for e in self.events:
            dev = out.setdefault(e.device, {k: 0.0 for k in EVENT_KINDS} | {"events": 0})
            dev[e.kind] += e.duration_s
            dev["events"] += 1
        return out

    # -------------------------------------------------------------- exports
    def to_chrome_trace(self) -> list[dict]:
        """Chrome-tracing 'X' (complete) events, microsecond timestamps."""
        return [
            {
                "name": f"{e.kind}" + (f" {e.label}" if e.label else ""),
                "cat": e.kind,
                "ph": "X",
                "ts": e.start_s * 1e6,
                "dur": e.duration_s * 1e6,
                "pid": 0,
                "tid": e.device,
                "args": {"uid": e.uid, "nbytes": e.nbytes},
            }
            for e in self.events
        ]

    def save_chrome_trace(self, path: str | Path) -> None:
        """Write a ``chrome://tracing``-loadable JSON file."""
        Path(path).write_text(json.dumps({"traceEvents": self.to_chrome_trace()}))

    def to_records(self) -> list[dict]:
        """Plain dict records (e.g. for DataFrame construction)."""
        return [asdict(e) for e in self.events]
