"""Execution tracing: columnar event recording and Chrome-trace export.

Attach a :class:`TraceRecorder` to an :class:`ExecutionEngine` to
capture every simulated event (fetches, evictions, kernels) with its
device placement and simulated timestamps.  ``to_chrome_trace`` writes
the standard ``chrome://tracing`` / Perfetto JSON so schedules can be
inspected visually; ``summary_by_device`` gives quick aggregates.

Recording is *columnar*: each event appends one element to a set of
parallel arrays (kind, device, start, duration, uid, nbytes, label)
instead of constructing a :class:`TraceEvent` object per event.  The
object view (:attr:`TraceRecorder.events`) and every rendered export
(Chrome trace, records) are materialized lazily on first access — a
run that records a million events but never renders them pays only the
appends.

What gets recorded is governed by a :class:`TraceSink`:

* :class:`FullSink` — keep every event (default),
* :class:`SamplingSink` — keep a deterministic 1-in-``stride`` subset,
* :class:`NullSink` — keep nothing (clock bookkeeping only).

Serving surfaces the same choice through :class:`TraceConfig` (the
``trace`` block of ``ServeConfig``, schema v6).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Protocol, runtime_checkable

from repro.errors import ConfigurationError

#: Event kinds emitted by the engine, plus the serving layer's
#: per-vector lifecycle spans (wait → schedule → execute), the chaos
#: layer's fault lifecycle (fault → retry → recovery) and flap-cycle
#: restores (restore), the failure-domain layer's cross-node
#: re-fetches (xnode) and warm restores (prewarm), the autoscaler's
#: pool changes (scale-up → scale-online → scale-down), the
#: dispatcher's batched scheduling rounds (batch), the health
#: subsystem's lifecycle / hedge / breaker transitions
#: (health, hedge, breaker), the integrity subsystem's audit
#: recomputations, taint invalidations and blame transitions
#: (audit, taint, blame), and the learned routing policy's per-shard
#: predictor refits and warm-up transition (routing-refit,
#: routing-warm).
EVENT_KINDS = (
    "batch",
    "h2d",
    "d2d",
    "alloc",
    "evict",
    "kernel",
    "drain",
    "wait",
    "schedule",
    "execute",
    "fault",
    "retry",
    "recovery",
    "restore",
    "xnode",
    "prewarm",
    "scale-up",
    "scale-down",
    "scale-online",
    "health",
    "hedge",
    "breaker",
    "audit",
    "taint",
    "blame",
    "routing-refit",
    "routing-warm",
)

#: Kinds a sampling sink must never thin: fault and integrity events are
#: rare, individually meaningful (one event = one injected fault, one
#: audit, one taint invalidation, one blame transition), and consumed by
#: accounting — dropping any of them would make a sampled trace lie.
ALWAYS_KEPT_KINDS = frozenset({"fault", "audit", "taint", "blame"})

_EVENT_KIND_SET = frozenset(EVENT_KINDS)


@dataclass(frozen=True)
class TraceEvent:
    """One simulated device event."""

    kind: str
    device: int
    start_s: float
    duration_s: float
    uid: int = -1
    nbytes: int = 0
    label: str = ""

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s


# ------------------------------------------------------------------ sinks
@runtime_checkable
class TraceSink(Protocol):
    """Decides, per event, whether the recorder keeps it.

    ``keep()`` is consulted once per recorded event *after* validation
    but before the columnar append; rejected events still advance the
    device clock (simulated time is not a function of what is kept).
    Implementations must be deterministic — replaying the same event
    sequence must keep the same subset — so fixed-seed runs stay
    reproducible.
    """

    def keep(self, kind: str, device: int) -> bool: ...


class FullSink:
    """Keep every event (the default sink)."""

    name = "full"

    def keep(self, kind: str, device: int) -> bool:
        return True


class NullSink:
    """Keep nothing — device clocks advance, columns stay empty."""

    name = "null"

    def keep(self, kind: str, device: int) -> bool:
        return False


class SamplingSink:
    """Keep a deterministic 1-in-``stride`` subset of events.

    The counter is global across devices (not per-kind), so the kept
    subset is a uniform thinning of the event stream in record order —
    and, being a plain counter, identical across replays.

    :data:`ALWAYS_KEPT_KINDS` (``fault``/``audit``/``taint``/``blame``)
    bypass the counter entirely: they are always kept and do not advance
    the stride position, so the thinned subset of the remaining kinds is
    unaffected by how many fault/integrity events interleave with them.
    """

    name = "sampling"

    def __init__(self, stride: int = 16):
        if stride < 1:
            raise ConfigurationError(f"sampling stride must be >= 1, got {stride}")
        self.stride = stride
        self._count = 0

    def keep(self, kind: str, device: int) -> bool:
        if kind in ALWAYS_KEPT_KINDS:
            return True
        kept = self._count % self.stride == 0
        self._count += 1
        return kept


#: Serving-layer trace modes (the ``TraceConfig.mode`` values).
TRACE_MODES = ("report", "full", "sampling", "off")


@dataclass(frozen=True)
class TraceConfig:
    """The ``trace`` block of ``ServeConfig`` (schema v6).

    Parameters
    ----------
    mode:
        * ``"report"`` (default) — no recorder is attached to the
          engine; Chrome traces are rendered lazily from the latency
          report, exactly as before this block existed.
        * ``"full"`` — attach a :class:`TraceRecorder` with a
          :class:`FullSink` for the run; every engine event is kept
          (``ServeResult.engine_trace``).  Opting in routes execution
          through the traced (reference) engine path.
        * ``"sampling"`` — as ``"full"`` but with a
          :class:`SamplingSink` keeping 1 in ``sample_stride`` events.
        * ``"off"`` — no recorder *and* ``ServeResult.to_trace()``
          renders nothing (the fully trace-free fast path).
    sample_stride:
        Thinning factor for ``"sampling"`` mode.
    """

    mode: str = "report"
    sample_stride: int = 16

    def __post_init__(self):
        if self.mode not in TRACE_MODES:
            raise ConfigurationError(
                f"unknown trace mode {self.mode!r}; expected one of {TRACE_MODES}"
            )
        if self.sample_stride < 1:
            raise ConfigurationError(
                f"sample_stride must be >= 1, got {self.sample_stride}"
            )

    def make_sink(self) -> "TraceSink | None":
        """The sink for this mode; ``None`` when no recorder attaches."""
        if self.mode == "full":
            return FullSink()
        if self.mode == "sampling":
            return SamplingSink(self.sample_stride)
        return None

    def to_dict(self) -> dict:
        return {"mode": self.mode, "sample_stride": self.sample_stride}

    @classmethod
    def from_dict(cls, d: dict) -> "TraceConfig":
        if not isinstance(d, dict):
            raise ConfigurationError(f"trace config must be a JSON object, got {d!r}")
        unknown = set(d) - {"mode", "sample_stride"}
        if unknown:
            raise ConfigurationError(f"unknown trace config keys: {sorted(unknown)}")
        return cls(
            mode=d.get("mode", "report"),
            sample_stride=d.get("sample_stride", 16),
        )


# --------------------------------------------------------------- recorder
class TraceRecorder:
    """Collects simulated events during a run, column-wise.

    The engine clocks each device independently (events on one device
    are serialized; devices run in parallel), matching how the
    simulator accumulates time.

    Parameters
    ----------
    sink:
        Event filter; defaults to :class:`FullSink` (keep everything).
    """

    def __init__(self, sink: "TraceSink | None" = None):
        self.sink = sink if sink is not None else FullSink()
        self._kinds: list[str] = []
        self._devices: list[int] = []
        self._starts: list[float] = []
        self._durations: list[float] = []
        self._uids: list[int] = []
        self._nbytes: list[int] = []
        self._labels: list[str] = []
        self._device_clock: dict[int, float] = {}
        #: Cached object view (invalidated by length change).
        self._events_cache: list[TraceEvent] | None = None

    def __len__(self) -> int:
        return len(self._kinds)

    @property
    def events(self) -> list[TraceEvent]:
        """Object view of the recorded events (materialized lazily).

        Treat as read-only: it is rebuilt from the columns whenever
        events were recorded since the last access.
        """
        cache = self._events_cache
        if cache is None or len(cache) != len(self._kinds):
            cache = [
                TraceEvent(
                    kind=k, device=d, start_s=s, duration_s=du,
                    uid=u, nbytes=nb, label=lb,
                )
                for k, d, s, du, u, nb, lb in zip(
                    self._kinds, self._devices, self._starts, self._durations,
                    self._uids, self._nbytes, self._labels,
                )
            ]
            self._events_cache = cache
        return cache

    def record(self, kind: str, device: int, duration_s: float, *, uid: int = -1, nbytes: int = 0, label: str = "") -> None:
        """Append an event at the device's current simulated time."""
        if kind not in _EVENT_KIND_SET:
            raise ValueError(f"unknown trace event kind {kind!r}; expected one of {EVENT_KINDS}")
        clock = self._device_clock
        start = clock.get(device, 0.0)
        clock[device] = start + duration_s
        if not self.sink.keep(kind, device):
            return
        self._kinds.append(kind)
        self._devices.append(device)
        self._starts.append(start)
        self._durations.append(duration_s)
        self._uids.append(uid)
        self._nbytes.append(nbytes)
        self._labels.append(label)

    def record_at(
        self, kind: str, device: int, start_s: float, duration_s: float, *, uid: int = -1, nbytes: int = 0, label: str = ""
    ) -> None:
        """Append an event with an explicit start time.

        Used by externally clocked producers (the serving simulator's
        wall-clock spans) instead of the per-device running clock.  The
        device clock is still advanced past the event's end so that
        later :meth:`record` calls on the same lane never run backwards.
        """
        if kind not in _EVENT_KIND_SET:
            raise ValueError(f"unknown trace event kind {kind!r}; expected one of {EVENT_KINDS}")
        if duration_s < 0:
            raise ValueError(f"event duration must be >= 0, got {duration_s}")
        clock = self._device_clock
        end = start_s + duration_s
        if end > clock.get(device, 0.0):
            clock[device] = end
        if not self.sink.keep(kind, device):
            return
        self._kinds.append(kind)
        self._devices.append(device)
        self._starts.append(start_s)
        self._durations.append(duration_s)
        self._uids.append(uid)
        self._nbytes.append(nbytes)
        self._labels.append(label)

    def clear(self) -> None:
        self._kinds.clear()
        self._devices.clear()
        self._starts.clear()
        self._durations.clear()
        self._uids.clear()
        self._nbytes.clear()
        self._labels.clear()
        self._device_clock.clear()
        self._events_cache = None

    # ------------------------------------------------------------- summaries
    def events_of(self, kind: str) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def summary_by_device(self) -> dict[int, dict[str, float]]:
        """Per-device totals: seconds per event kind plus event count."""
        out: dict[int, dict[str, float]] = {}
        for k, d, du in zip(self._kinds, self._devices, self._durations):
            dev = out.get(d)
            if dev is None:
                dev = out[d] = {kind: 0.0 for kind in EVENT_KINDS} | {"events": 0}
            dev[k] += du
            dev["events"] += 1
        return out

    # -------------------------------------------------------------- exports
    def to_chrome_trace(self) -> list[dict]:
        """Chrome-tracing 'X' (complete) events, microsecond timestamps.

        Rendered from the columns on call — nothing is pre-formatted at
        record time.
        """
        return [
            {
                "name": f"{k}" + (f" {lb}" if lb else ""),
                "cat": k,
                "ph": "X",
                "ts": s * 1e6,
                "dur": du * 1e6,
                "pid": 0,
                "tid": d,
                "args": {"uid": u, "nbytes": nb},
            }
            for k, d, s, du, u, nb, lb in zip(
                self._kinds, self._devices, self._starts, self._durations,
                self._uids, self._nbytes, self._labels,
            )
        ]

    def save_chrome_trace(self, path: str | Path) -> None:
        """Write a ``chrome://tracing``-loadable JSON file."""
        Path(path).write_text(json.dumps({"traceEvents": self.to_chrome_trace()}))

    def to_records(self) -> list[dict]:
        """Plain dict records (e.g. for DataFrame construction)."""
        return [asdict(e) for e in self.events]
