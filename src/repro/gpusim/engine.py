"""Execution engine: replays pair→GPU assignments against the cluster.

The engine is the simulated runtime under every scheduler.  For each
assigned pair it resolves both inputs (reuse hit / D2D fetch / H2D
fetch), allocates the output, applies LRU evictions when the device is
oversubscribed, and charges the cost model's simulated seconds to the
owning device.  Optionally it also runs the *real* NumPy contraction
through a :class:`~repro.tensor.storage.TensorStore` so numeric
correctness can be asserted end-to-end.
"""

from __future__ import annotations

from repro import compat
from repro.errors import DeviceLostError, SchedulingError, TransientFaultError
from repro.faults.injector import FaultInjector
from repro.faults.recovery import RetryPolicy
from repro.gpusim.cluster import ClusterState
from repro.gpusim.costmodel import CostModel
from repro.gpusim.metrics import ExecutionMetrics
from repro.gpusim.trace import TraceRecorder
from repro.tensor.flops import pair_flops
from repro.tensor.spec import TensorPair, VectorSpec
from repro.tensor.storage import TensorStore


class ExecutionEngine:
    """Applies assignments to a :class:`ClusterState` and accounts costs.

    Parameters
    ----------
    cluster:
        Shared cluster state (mutated in place).
    cost_model:
        Maps events to simulated seconds.
    store:
        Optional host tensor store; when given, every pair's contraction
        is actually computed with NumPy (slow, for validation/examples).
    injector:
        Optional :class:`~repro.faults.injector.FaultInjector`; when
        set, kernels and fetches consult it for armed faults and
        straggler slowdowns, and recovery costs (retries, backoff,
        host re-fetches) are charged in simulated time.
    retry:
        Transient-fault retry budget (defaults to
        :class:`~repro.faults.recovery.RetryPolicy`'s defaults); only
        consulted when an injector is present.
    """

    def __init__(
        self,
        cluster: ClusterState,
        cost_model: CostModel | None = None,
        store: TensorStore | None = None,
        trace: "TraceRecorder | None" = None,
        injector: "FaultInjector | None" = None,
        retry: RetryPolicy | None = None,
    ):
        self.cluster = cluster
        self.cost_model = cost_model or CostModel()
        self.store = store
        #: Optional event recorder; events carry raw (pre-overlap) durations.
        self.trace = trace
        #: Optional fault source; set per run by chaos drivers.
        self.injector = injector
        #: Optional :class:`~repro.integrity.IntegrityState`; set per run
        #: by serving loops running with an ``integrity`` block.  When
        #: attached alongside an injector, kernels draw silent-corruption
        #: Bernoullis, the checksum ledger tracks tainted copies, and
        #: D2D fetches verify-on-receipt (a mismatch falls back to a
        #: clean host fetch, like a detected transfer fault).
        self.integrity = None
        self.retry = retry or RetryPolicy()
        #: Per-device ``peak_gflops * 1e9`` cache for the fast path,
        #: keyed on the cluster's device-list identity (device specs are
        #: immutable; the list is only ever replaced wholesale).
        self._peak9: list[float] | None = None
        self._peak9_devices = None

    # ------------------------------------------------------------- single pair
    def execute_pair(self, pair: TensorPair, device_id: int, metrics: ExecutionMetrics) -> None:
        """Run one contraction on ``device_id``, accumulating into ``metrics``."""
        if (
            self.injector is None
            and self.trace is None
            and self.store is None
            and not compat.REFERENCE_CORE
        ):
            return self._execute_pair_fast(pair, device_id, metrics)
        return self._execute_pair_full(pair, device_id, metrics)

    def pair_runner(self):
        """The per-pair executor for the engine's *current* attachments.

        Serving loops bind this once per scheduling round instead of
        paying the dispatch check on every pair.  Must be re-fetched
        whenever ``injector``/``trace``/``store`` change.
        """
        if (
            self.injector is None
            and self.trace is None
            and self.store is None
            and not compat.REFERENCE_CORE
        ):
            return self._execute_pair_fast
        return self._execute_pair_full

    def _execute_pair_full(self, pair: TensorPair, device_id: int, metrics: ExecutionMetrics) -> None:
        """General path: fault injection, tracing, and real math."""
        cl = self.cluster
        if not (0 <= device_id < cl.num_devices):
            raise SchedulingError(f"device id {device_id} out of range 0..{cl.num_devices - 1}")
        if not cl.is_alive(device_id):
            raise DeviceLostError(device_id)
        cm = self.cost_model
        protect = {pair.left.uid, pair.right.uid, pair.out.uid}

        # Memory-op seconds of this pair, accumulated locally so the
        # async-copy model can overlap them with the pair's kernel.
        pair_memop_s = 0.0

        # Resolve inputs.  A pair may reference the same tensor twice
        # (e.g. a hadron contracted with itself); fetch it once.
        resolved: set[int] = set()
        for spec in pair.inputs:
            if spec.uid in resolved:
                metrics.counts.reuse_hits += 1
                continue
            resolved.add(spec.uid)
            if cl.is_resident(spec.uid, device_id):
                metrics.counts.reuse_hits += 1
                cl.touch(spec.uid, device_id)
                continue
            holders = cl.devices_holding(spec.uid)
            host_staged = False
            if holders and self.injector is not None and cm.topology is not None:
                # Partial-node degradation: a ``link_lost`` fault severs
                # a node's inter-node links while its devices stay
                # alive.  Holders unreachable over D2D are dropped; if
                # that empties the set the fetch is staged through the
                # host instead (the copy exists on-device, but only the
                # PCIe path can reach it).
                reachable = self.injector.reachable_holders(holders, device_id, cm.topology)
                if not reachable:
                    host_staged = True
                    self.injector.stats.host_staged_fetches += 1
                holders = reachable
            if holders:
                # Fetch from the cheapest holder (ties break on lowest
                # id) — on a multi-node Topology an intra-node peer
                # beats a remote one.
                source = min(holders, key=lambda h: (cm.d2d_time(spec.nbytes, src=h, dst=device_id), h))
                copy_t = cm.d2d_time(spec.nbytes, src=source, dst=device_id)
                copy_kind = "d2d"
            else:
                source = None
                copy_t = cm.h2d_time(spec.nbytes)
                copy_kind = "h2d"
                if host_staged:
                    self._note_fault(
                        "xnode", device_id, copy_t, f"host-staged fetch {spec.uid} (links down)"
                    )
            if self.injector is not None and self.injector.take_transfer_fault(device_id):
                # The fetch failed mid-flight: the attempt's link time
                # is wasted (the source keeps its copy) and the tensor
                # is recovered with a fresh fetch from the host.
                wasted_t = copy_t
                self._note_fault("fault", device_id, wasted_t, f"transfer {spec.uid}")
                copy_t = cm.h2d_time(spec.nbytes)
                copy_kind = "h2d"
                pair_memop_s += wasted_t
                self.injector.stats.transfer_refetches += 1
                self.injector.stats.record_recovery("transfer", wasted_t + copy_t)
                self._note_fault("retry", device_id, copy_t, f"refetch {spec.uid}")
            elif copy_kind == "d2d" and cm.d2d_moves:
                # Single-residency runtime: the source copy migrates.
                cl.drop(spec.uid, source, reason="migrate")
            if self.integrity is not None:
                if copy_kind == "h2d":
                    # Host copies are ground truth: a fresh H2D fetch
                    # replaces whatever (possibly tainted) copy the
                    # device had.
                    self.integrity.note_h2d(spec.uid, device_id)
                else:
                    entry = self.integrity.note_d2d(spec.uid, source, device_id)
                    if entry is not None and self.integrity.verify_transfers_active:
                        # Verify-on-receipt caught a checksum mismatch:
                        # the D2D attempt is wasted, both copies are
                        # invalidated, and the tensor is re-fetched from
                        # the host (clean), like a detected transfer
                        # fault.
                        wasted_t = copy_t
                        pair_memop_s += wasted_t
                        copy_t = cm.h2d_time(spec.nbytes)
                        copy_kind = "h2d"
                        if cl.is_resident(spec.uid, source):
                            cl.drop(spec.uid, source, reason="corrupt")
                        now = self.injector.now if self.injector is not None else 0.0
                        self.integrity.transfer_detected(
                            spec.uid, source, device_id, entry, now
                        )
                        self._note_fault(
                            "taint",
                            device_id,
                            wasted_t,
                            f"corrupt transfer {spec.uid} from {source}",
                        )
            if (
                copy_kind == "d2d"
                and cm.topology is not None
                and not cm.topology.same_node(source, device_id)
            ):
                metrics.counts.cross_node_fetches += 1
                if self.injector is not None:
                    # Traffic on the slow inter-node link: make the
                    # cross-node cost visible in the fault trace lanes.
                    self.injector.stats.cross_node_fetches += 1
                    self._note_fault(
                        "xnode", device_id, copy_t, f"cross-node fetch {spec.uid} from {source}"
                    )
            if copy_kind == "d2d":
                metrics.counts.d2d_transfers += 1
            else:
                metrics.counts.h2d_transfers += 1
            evicted = cl.register(spec, device_id, protect=protect)
            pair_memop_s += self._charge_evictions(evicted, metrics, device_id)
            alloc_t = cm.alloc_time(spec.nbytes)
            pair_memop_s += alloc_t + copy_t
            metrics.counts.allocations += 1
            metrics.counts.transferred_bytes += spec.nbytes
            if self.trace is not None:
                self.trace.record("alloc", device_id, alloc_t, uid=spec.uid, nbytes=spec.nbytes)
                self.trace.record(copy_kind, device_id, copy_t, uid=spec.uid, nbytes=spec.nbytes, label=spec.label)

        # Allocate the output on the same device.
        evicted = cl.register(pair.out, device_id, protect=protect)
        pair_memop_s += self._charge_evictions(evicted, metrics, device_id)
        out_alloc_t = cm.alloc_time(pair.out.nbytes)
        pair_memop_s += out_alloc_t
        metrics.counts.allocations += 1
        if self.trace is not None:
            self.trace.record("alloc", device_id, out_alloc_t, uid=pair.out.uid, nbytes=pair.out.nbytes)

        # Kernel; memory ops may overlap it (async-copy model).
        kt = cm.kernel_time(pair, cl.devices[device_id])
        fault_extra_s = 0.0
        if self.injector is not None:
            # Stragglers stretch the kernel for the window's duration.
            kt *= self.injector.compute_factor(device_id)
            # Transient faults: each armed failure wastes one kernel
            # attempt plus an exponential backoff, all in simulated
            # time; past the retry budget the pair is abandoned.
            attempt = 0
            while self.injector.take_kernel_fault(device_id):
                attempt += 1
                backoff = self.retry.backoff_s(attempt)
                fault_extra_s += kt + backoff
                self.injector.stats.transient_failures += 1
                self._note_fault("fault", device_id, kt, f"kernel attempt {attempt}")
                self._note_fault("retry", device_id, backoff, f"backoff {attempt}")
                if attempt >= self.retry.max_attempts:
                    self.injector.stats.transient_abandoned += 1
                    # The wasted attempts still occupied the device.
                    metrics.compute_s[device_id] += fault_extra_s
                    cl.add_compute(device_id, fault_extra_s)
                    raise TransientFaultError(
                        f"kernel on device {device_id} failed {attempt} times "
                        f"(retry budget {self.retry.max_attempts})"
                    )
            if attempt:
                self.injector.stats.transient_recovered += 1
                self.injector.stats.record_recovery("transient", fault_extra_s)
        effective_memop = cm.effective_memop_time(pair_memop_s, kt)
        metrics.compute_s[device_id] += kt + fault_extra_s
        metrics.memop_s[device_id] += effective_memop
        cl.add_compute(device_id, kt + fault_extra_s)
        cl.add_memop(device_id, effective_memop)
        metrics.total_flops += pair_flops(pair)
        metrics.pairs_executed += 1
        metrics.pairs_per_device[device_id] += 1
        cl.record_assignment(device_id, 2)
        if self.integrity is not None:
            # Silent-corruption draw: inside an armed window the kernel
            # may succeed while emitting a wrong output; the ledger
            # records where the output's checksum diverges (dirt also
            # derives from tainted inputs even without a fresh draw).
            corrupt = self.injector is not None and self.injector.take_corruption(device_id)
            self.integrity.note_compute(
                pair,
                device_id,
                corrupt,
                self.injector.now if self.injector is not None else 0.0,
            )
        if self.trace is not None:
            self.trace.record("kernel", device_id, kt, uid=pair.out.uid, label=pair.out.label)

        if self.store is not None:
            self.store.execute_pair(pair)

    def _execute_pair_fast(self, pair: TensorPair, device_id: int, metrics: ExecutionMetrics) -> None:
        """:meth:`execute_pair` fused for the serving hot path.

        Active when no injector, trace recorder, or tensor store is
        attached (the serving-loop configuration).  Bit-identical
        accounting to the general path — the same cost expressions in
        the same evaluation order — with per-pair invariants hoisted,
        holder sets read in place instead of copied, and fault/trace
        branches dropped.
        """
        cl = self.cluster
        if not (0 <= device_id < cl.num_devices):
            raise SchedulingError(f"device id {device_id} out of range 0..{cl.num_devices - 1}")
        if device_id not in cl._alive:
            raise DeviceLostError(device_id)
        cm = self.cost_model
        counts = metrics.counts
        pools = cl.pools
        pool = pools[device_id]
        holders_map = cl._holders
        journal = cl.journal
        interconnect = cm.interconnect
        topo = cm.topology
        alloc_latency = cm.alloc_latency_s
        alloc_bw = cm.alloc_bandwidth
        left, right, out = pair.left, pair.right, pair.out
        # A tuple is cheaper to build than a set and `in` over three
        # elements beats hashing at this size.
        protect = (left.uid, right.uid, out.uid)
        pair_memop_s = 0.0

        # Resolve inputs; a duplicated input resolves once and the
        # second slot counts as a reuse hit (same as the general path's
        # ``resolved`` set, without building it).
        if right.uid == left.uid:
            inputs = (left,)
            counts.reuse_hits += 1
        else:
            inputs = (left, right)
        for spec in inputs:
            uid = spec.uid
            holders = holders_map.get(uid)
            if holders is not None and device_id in holders:
                counts.reuse_hits += 1
                pool.touch(uid)
                continue
            nb = spec.nbytes
            if holders:
                if topo is None:
                    # Constant D2D cost: the tie break picks the lowest id.
                    source = min(holders)
                    copy_t = interconnect.d2d_time(nb)
                else:
                    if len(holders) == 1:
                        # Single holder (the common case under
                        # ``d2d_moves``): no tie break to run.
                        source = next(iter(holders))
                    else:
                        lat = interconnect.latency_s
                        source = min(
                            holders, key=lambda h: (topo.d2d_time(h, device_id, nb, lat), h)
                        )
                    copy_t = topo.d2d_time(source, device_id, nb, interconnect.latency_s)
                if cm.d2d_moves:
                    cl.drop(uid, source, reason="migrate")
                if topo is not None and not topo.same_node(source, device_id):
                    counts.cross_node_fetches += 1
                counts.d2d_transfers += 1
            else:
                copy_t = interconnect.h2d_time(nb)
                counts.h2d_transfers += 1
            # Inline ClusterState.register: pool allocation plus holder-
            # index and journal maintenance, without the call layers.
            # The non-evicting insert (fits, not yet resident) skips the
            # allocate() call entirely; anything else — oversubscribed
            # or idempotent — takes the full path.
            resident = pool._resident
            if nb <= pool.capacity_bytes - pool._used and uid not in resident:
                resident[uid] = nb
                pool._used += nb
                if pool._track_insertion:
                    pool._insertion[uid] = pool._clock
                    pool._clock += 1
            else:
                evicted = pool.allocate(uid, nb, protect)
                if evicted:
                    pair_memop_s += self._settle_evictions(
                        evicted, metrics, device_id, holders_map, journal, cm
                    )
            h = holders_map.get(uid)
            if h is None:
                holders_map[uid] = {device_id}
            else:
                h.add(device_id)
            if journal is not None:
                journal.note_put(uid, device_id, nb)
            pair_memop_s += alloc_latency + nb / alloc_bw + copy_t
            counts.allocations += 1
            counts.transferred_bytes += nb

        # Allocate the output on the same device (same inline shape as
        # the inputs; a hedged re-execution's already-resident output
        # falls through to allocate()'s idempotent branch).
        out_uid = out.uid
        out_nb = out.nbytes
        resident = pool._resident
        if out_nb <= pool.capacity_bytes - pool._used and out_uid not in resident:
            resident[out_uid] = out_nb
            pool._used += out_nb
            if pool._track_insertion:
                pool._insertion[out_uid] = pool._clock
                pool._clock += 1
        else:
            evicted = pool.allocate(out_uid, out_nb, protect)
            if evicted:
                pair_memop_s += self._settle_evictions(
                    evicted, metrics, device_id, holders_map, journal, cm
                )
        h = holders_map.get(out_uid)
        if h is None:
            holders_map[out_uid] = {device_id}
        else:
            h.add(device_id)
        if journal is not None:
            journal.note_put(out_uid, device_id, out_nb)
        pair_memop_s += alloc_latency + out_nb / alloc_bw
        counts.allocations += 1

        # Kernel; flops are computed once and reused for the
        # throughput counter.
        flops = pair_flops(pair)
        size = left.size
        devices = cl.devices
        if self._peak9_devices is not devices:
            self._peak9 = [d.peak_gflops * 1e9 for d in devices]
            self._peak9_devices = devices
        # ``peak * 1e9 * eff`` associates left-to-right, so hoisting the
        # first product preserves the exact float result.
        rate = self._peak9[device_id] * (size / (size + cm.efficiency_half_size))
        kt = cm.kernel_launch_s + flops / rate
        if cm.overlap_fraction == 0.0:
            effective_memop = pair_memop_s
        else:
            effective_memop = cm.effective_memop_time(pair_memop_s, kt)
        metrics.compute_s[device_id] += kt
        metrics.memop_s[device_id] += effective_memop
        cl.compute_s[device_id] += kt
        cl.memop_s[device_id] += effective_memop
        metrics.total_flops += flops
        metrics.pairs_executed += 1
        metrics.pairs_per_device[device_id] += 1
        cl.assigned_slots[device_id] += 2

    def _settle_evictions(self, evicted, metrics, device_id, holders_map, journal, cm) -> float:
        """Fast-path eviction settlement: holder index + counters + cost.

        Fuses what the general path splits between
        :meth:`ClusterState.register` (holder/journal bookkeeping) and
        :meth:`_charge_evictions` (cost + counters), with the eviction
        cost expression inlined — same terms, same order.
        """
        counts = metrics.counts
        writeback = cm.eviction_writeback
        ev_lat = cm.eviction_latency_s
        interconnect = cm.interconnect
        total = 0.0
        for r in evicted:
            r_uid = r.uid
            holders = holders_map.get(r_uid)
            if holders is not None:
                holders.discard(device_id)
                if not holders:
                    del holders_map[r_uid]
            if journal is not None:
                journal.note_drop(r_uid, device_id, "evict")
            nb = r.nbytes
            ev_t = ev_lat
            if writeback:
                ev_t += interconnect.d2h_time(nb)
            total += ev_t
            counts.evictions += 1
            counts.eviction_bytes += nb
        return total

    def _note_fault(self, kind: str, device_id: int, duration_s: float, label: str) -> None:
        """Log a fault-lifecycle event to the injector stats and the trace."""
        self.injector.stats.record_event(kind, device_id, self.injector.now, duration_s, label)
        if self.trace is not None:
            self.trace.record(kind, device_id, duration_s, label=label)

    def _charge_evictions(self, evicted, metrics: ExecutionMetrics, device_id: int) -> float:
        """Account eviction counters; returns their memory-op seconds."""
        total = 0.0
        for r in evicted:
            ev_t = self.cost_model.eviction_time(r.nbytes)
            total += ev_t
            metrics.counts.evictions += 1
            metrics.counts.eviction_bytes += r.nbytes
            if self.trace is not None:
                self.trace.record("evict", device_id, ev_t, uid=r.uid, nbytes=r.nbytes)
        return total

    # ------------------------------------------------------------ full vector
    def execute_vector(
        self,
        vector: VectorSpec,
        assignment: list[int],
        *,
        keep_outputs: bool = False,
    ) -> ExecutionMetrics:
        """Execute every pair of ``vector`` per ``assignment``.

        ``assignment[i]`` is the device for ``vector.pairs[i]``.  With
        ``keep_outputs=False`` (the synthetic-benchmark default) outputs
        are drained back to the host after the vector — paying one D2H
        transfer each — and freed; with ``keep_outputs=True`` (the
        Redstar multi-stage pipeline) they stay resident to be reused as
        next-stage inputs.
        """
        if len(assignment) != len(vector.pairs):
            raise SchedulingError(
                f"assignment length {len(assignment)} != vector pairs {len(vector.pairs)}"
            )
        metrics = ExecutionMetrics(num_devices=self.cluster.num_devices)
        self.cluster.begin_vector(vector.num_tensors)
        for i, (pair, dev) in enumerate(zip(vector.pairs, assignment)):
            try:
                self.execute_pair(pair, int(dev), metrics)
            except DeviceLostError as exc:
                # Point at the offending slot so recovery (or a human)
                # knows exactly which pairs are orphaned.
                raise DeviceLostError(exc.device_id, pair_index=i) from None
        if not keep_outputs:
            self.drain_outputs(vector, assignment, metrics)
        return metrics

    def drain_outputs(self, vector: VectorSpec, assignment: list[int], metrics: ExecutionMetrics) -> None:
        """Copy every vector output back to the host and free it.

        The output may already have been evicted (oversubscription); in
        that case the writeback happened at eviction time and only the
        free is skipped here.
        """
        cm = self.cost_model
        if self.trace is None and not cm.drain_writeback and not compat.REFERENCE_CORE:
            # No cost is charged and nothing is recorded: drop each
            # still-resident output directly against the pool and the
            # holder index (same effect as ``is_resident`` + ``drop``).
            cl = self.cluster
            holders_map = cl._holders
            pools = cl.pools
            journal = cl.journal
            for pair, dev in zip(vector.pairs, assignment):
                uid = pair.out.uid
                dev = int(dev)
                holders = holders_map.get(uid)
                if holders is None or dev not in holders:
                    continue
                if pools[dev].free(uid):
                    holders.discard(dev)
                    if not holders:
                        del holders_map[uid]
                    if journal is not None:
                        journal.note_drop(uid, dev, "drain")
            return
        for pair, dev in zip(vector.pairs, assignment):
            dev = int(dev)
            if self.cluster.is_resident(pair.out.uid, dev):
                if cm.drain_writeback:
                    d2h_t = cm.interconnect.d2h_time(pair.out.nbytes)
                    metrics.memop_s[dev] += d2h_t
                    self.cluster.add_memop(dev, d2h_t)
                    if self.trace is not None:
                        self.trace.record("drain", dev, d2h_t, uid=pair.out.uid, nbytes=pair.out.nbytes)
                self.cluster.drop(pair.out.uid, dev)
