"""Host↔device and device↔device transfer cost model.

Calibrated to the paper's platform: PCIe 4.0 x16 between the EPYC host
and each MI100 (~16 GB/s effective) and xGMI bridges between GPUs
(~46 GB/s effective).  Each transfer pays a fixed launch latency plus a
bandwidth term — the standard alpha–beta model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class Interconnect:
    """Alpha–beta transfer model for a multi-GPU node.

    Parameters
    ----------
    h2d_bandwidth:
        Host→device bytes/second (PCIe).
    d2d_bandwidth:
        Device→device bytes/second.  The default matches PCIe-staged
        peer copies (the paper's cost analysis prices every non-reuse
        mapping as "one allocation + one communication", not cheaper
        for D2D); raise it to model xGMI/NVLink-bridged nodes.
    latency_s:
        Fixed per-transfer setup latency in seconds.
    """

    h2d_bandwidth: float = 16e9
    d2d_bandwidth: float = 18e9
    latency_s: float = 10e-6

    def __post_init__(self):
        check_positive("h2d_bandwidth", self.h2d_bandwidth)
        check_positive("d2d_bandwidth", self.d2d_bandwidth)
        check_non_negative("latency_s", self.latency_s)

    def h2d_time(self, nbytes: int) -> float:
        """Seconds to copy ``nbytes`` host → device."""
        return self.latency_s + nbytes / self.h2d_bandwidth

    def d2h_time(self, nbytes: int) -> float:
        """Seconds to copy ``nbytes`` device → host (eviction writeback)."""
        return self.latency_s + nbytes / self.h2d_bandwidth

    def d2d_time(self, nbytes: int) -> float:
        """Seconds to copy ``nbytes`` between two devices."""
        return self.latency_s + nbytes / self.d2d_bandwidth
