"""Kernel and memory-operation cost model.

Three cost families, matching the paper's breakdown (§III-B): *kernel
computation*, *memory allocation*, and *data communication*.  Kernel
time uses a saturation model — small tensors achieve a fraction of
peak because launch overhead and low arithmetic intensity dominate;
the fraction approaches 1 as the tensor size grows.  This reproduces
the paper's observation that at tensor size 384 "memory operation
impacts more than computation".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.gpusim.device import DeviceSpec
from repro.gpusim.interconnect import Interconnect
from repro.gpusim.topology import Topology
from repro.tensor.spec import TensorPair, TensorSpec
from repro.tensor.flops import pair_flops
from repro.utils.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class CostModel:
    """Maps scheduling events to simulated seconds.

    Parameters
    ----------
    interconnect:
        Transfer model (H2D / D2D / D2H).
    kernel_launch_s:
        Fixed overhead per contraction kernel.
    alloc_latency_s:
        Fixed overhead per device allocation.
    alloc_bandwidth:
        Bytes/second cost of touching freshly allocated memory.
    efficiency_half_size:
        Tensor size at which kernels reach 50 % of peak (saturation
        half-point of the efficiency curve).
    eviction_writeback:
        If True, evicting a tensor pays a D2H writeback; otherwise only
        a free-latency cost (clean pages dropped).
    eviction_latency_s:
        Fixed bookkeeping cost per eviction.
    drain_writeback:
        If True, draining a vector's outputs to the host charges a D2H
        transfer each.  Off by default: result collection overlaps with
        the next vector's compute in real runtimes and is identical for
        every scheduler, so it only dilutes comparisons.
    d2d_moves:
        If True (default), a device-to-device fetch *moves* the tensor —
        the source copy is freed.  This matches the paper's single-
        residency model (each tensor lives on one GPU; Fig. 2 and the
        local-reuse-pattern definitions assume it).  Set False for a
        replicating runtime.
    topology:
        Optional multi-node :class:`~repro.gpusim.topology.Topology`.
        When set, device-to-device cost depends on whether source and
        destination share a node (the paper's multi-node future work).
    overlap_fraction:
        Async-copy/prefetch model (the paper's other future-work item):
        a pair's memory operations overlap with its kernel, hiding up
        to ``overlap_fraction × kernel_time`` of memory-op time.  0.0
        (default) is fully synchronous; 1.0 is a perfect pipeline.
    """

    interconnect: Interconnect = field(default_factory=Interconnect)
    kernel_launch_s: float = 5e-6
    alloc_latency_s: float = 8e-6
    alloc_bandwidth: float = 400e9
    efficiency_half_size: int = 256
    eviction_writeback: bool = True
    eviction_latency_s: float = 8e-6
    drain_writeback: bool = False
    d2d_moves: bool = True
    topology: "Topology | None" = None
    overlap_fraction: float = 0.0

    def __post_init__(self):
        check_non_negative("kernel_launch_s", self.kernel_launch_s)
        check_non_negative("alloc_latency_s", self.alloc_latency_s)
        check_positive("alloc_bandwidth", self.alloc_bandwidth)
        check_positive("efficiency_half_size", self.efficiency_half_size)
        check_non_negative("eviction_latency_s", self.eviction_latency_s)
        if not 0.0 <= self.overlap_fraction <= 1.0:
            raise ConfigurationError(
                f"overlap_fraction must be in [0, 1], got {self.overlap_fraction}"
            )

    # ---------------------------------------------------------------- kernels
    def kernel_efficiency(self, size: int) -> float:
        """Fraction of peak achieved at tensor size ``size`` (in (0, 1))."""
        return size / (size + self.efficiency_half_size)

    def kernel_time(self, pair: TensorPair, device: DeviceSpec) -> float:
        """Seconds to run ``pair``'s contraction on ``device``."""
        flops = pair_flops(pair)
        rate = device.peak_gflops * 1e9 * self.kernel_efficiency(pair.left.size)
        return self.kernel_launch_s + flops / rate

    # ------------------------------------------------------------- memory ops
    def alloc_time(self, nbytes: int) -> float:
        """Seconds to allocate (and fault in) ``nbytes`` on a device."""
        return self.alloc_latency_s + nbytes / self.alloc_bandwidth

    def h2d_time(self, nbytes: int) -> float:
        return self.interconnect.h2d_time(nbytes)

    def d2d_time(self, nbytes: int, src: int | None = None, dst: int | None = None) -> float:
        """Device-to-device copy time; topology-aware when endpoints are
        known and a :class:`Topology` is configured."""
        if self.topology is not None and src is not None and dst is not None:
            return self.topology.d2d_time(src, dst, nbytes, self.interconnect.latency_s)
        return self.interconnect.d2d_time(nbytes)

    def effective_memop_time(self, memop_s: float, kernel_s: float) -> float:
        """Memory-op seconds visible on the device timeline after
        overlapping with the pair's kernel (async-copy model)."""
        return max(memop_s - self.overlap_fraction * kernel_s, 0.0)

    def eviction_time(self, nbytes: int) -> float:
        """Seconds to evict ``nbytes`` (optionally writing back to host)."""
        t = self.eviction_latency_s
        if self.eviction_writeback:
            t += self.interconnect.d2h_time(nbytes)
        return t

    # ----------------------------------------------------------- composite
    def fetch_time(self, spec: TensorSpec, *, from_device: bool) -> float:
        """Alloc + copy cost of bringing ``spec`` onto a device."""
        copy = self.d2d_time(spec.nbytes) if from_device else self.h2d_time(spec.nbytes)
        return self.alloc_time(spec.nbytes) + copy

    # ------------------------------------------------------- batch scoring
    def score_batch(
        self,
        device_ids: np.ndarray,
        incoming_bytes: np.ndarray,
        free_bytes: np.ndarray,
        compute_s: np.ndarray,
        *,
        eviction_sensitive: bool = True,
    ) -> int:
        """Vectorised Alg. 2 selection over all candidate devices at once.

        All four arrays are parallel over the candidate set:
        ``device_ids`` the candidate device ids, ``incoming_bytes`` the
        new bytes the pair would bring to each candidate,
        ``free_bytes`` each candidate's free memory, ``compute_s`` its
        accumulated computation.  Returns the winning *device id*.

        The decision is exactly the paper's: normally least computation
        (ties → most free memory → lowest id); when placing the pair
        would evict on some candidate and ``eviction_sensitive`` is on,
        most free memory (ties → least computation → lowest id).  All
        comparisons are on the same scalar values the object path uses,
        so the pick is bit-identical — just computed in array ops
        instead of per-candidate Python tuples.
        """
        if device_ids.size == 0:
            raise ConfigurationError("score_batch needs at least one candidate")
        evict = eviction_sensitive and bool(np.any(incoming_bytes > free_bytes))
        if evict:
            keys = (-free_bytes, compute_s, device_ids)
        else:
            keys = (compute_s, -free_bytes, device_ids)
        return int(device_ids[lex_argmin(*keys)])


def lex_argmin(*keys: np.ndarray) -> int:
    """Index of the lexicographically smallest tuple across key arrays.

    ``keys`` are parallel arrays, most significant first — the
    vectorised equivalent of ``min(range(n), key=lambda i: tuple_i)``.
    Shared by the schedulers' batch placement and the sharded router's
    digest scoring.
    """
    idx = None
    for key in keys:
        k = key if idx is None else key[idx]
        m = np.flatnonzero(k == k.min())
        idx = m if idx is None else idx[m]
        if idx.size == 1:
            break
    return int(idx[0])
