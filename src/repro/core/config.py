"""Top-level configuration for a MICCO run."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.gpusim.costmodel import CostModel
from repro.gpusim.device import GIB
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class MiccoConfig:
    """Cluster + cost-model configuration.

    Defaults mirror the paper's platform: eight 32 GB MI100-class GPUs.

    Parameters
    ----------
    num_devices:
        GPUs in the simulated node.
    memory_bytes:
        Usable memory per device (lowered by the oversubscription
        experiments).
    peak_gflops:
        Per-device peak arithmetic rate.
    cost_model:
        Event→seconds mapping; shared by every scheduler under test.
    keep_outputs:
        If True, contraction outputs stay device-resident after their
        vector (multi-stage pipelines); otherwise they drain to host.
    eviction_policy:
        Per-device victim selection: ``"lru"`` (default), ``"fifo"``,
        or ``"largest"`` (see :mod:`repro.gpusim.memory`).
    """

    num_devices: int = 8
    memory_bytes: int = 32 * GIB
    peak_gflops: float = 23_000.0
    cost_model: CostModel = field(default_factory=CostModel)
    keep_outputs: bool = False
    eviction_policy: str = "lru"

    def __post_init__(self):
        check_positive("num_devices", self.num_devices)
        check_positive("memory_bytes", self.memory_bytes)
        check_positive("peak_gflops", self.peak_gflops)

    def with_(self, **kwargs) -> "MiccoConfig":
        """Copy with overrides (sweep convenience)."""
        return replace(self, **kwargs)
