"""Core framework: the MICCO system of Fig. 6.

Ties together the regression model (reuse-bound prediction), the
heuristic scheduler, and the simulated multi-GPU execution engine, and
provides the run-session driver every experiment uses.
"""

from repro.core.config import MiccoConfig
from repro.core.session import RunResult, run_stream
from repro.core.framework import Micco, compare

__all__ = ["MiccoConfig", "RunResult", "run_stream", "Micco", "compare"]
