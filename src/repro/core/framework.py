"""The MICCO facade — public entry point of the library.

``Micco`` wires a simulated cluster, the heuristic scheduler, and
(optionally) a trained reuse-bound predictor into one object that runs
vector streams, in the three configurations the paper evaluates:

* ``Micco.naive(config)``   — reuse bounds pinned to zero,
* ``Micco.optimal(config, predictor)`` — per-vector predicted bounds,
* ``Micco.with_bounds(config, bounds)`` — a fixed bound triple
  (used by the Fig. 8 sweep and the offline tuner).

Baselines run through the same machinery via ``Micco.baseline``.
"""

from __future__ import annotations

from repro.core.config import MiccoConfig
from repro.core.session import RunResult, run_stream
from repro.gpusim.cluster import ClusterState
from repro.gpusim.device import mi100_like
from repro.gpusim.engine import ExecutionEngine
from repro.schedulers.base import Scheduler
from repro.schedulers.bounds import ReuseBounds
from repro.schedulers.groute import GrouteScheduler
from repro.schedulers.micco import MiccoScheduler
from repro.tensor.spec import VectorSpec
from repro.tensor.storage import TensorStore


class Micco:
    """A configured scheduling system, ready to run vector streams.

    Most users want one of the class-method constructors; the raw
    constructor accepts any :class:`Scheduler` for apples-to-apples
    baseline comparisons on identical simulated hardware.
    """

    def __init__(
        self,
        config: MiccoConfig | None = None,
        scheduler: Scheduler | None = None,
        predictor=None,
        store: TensorStore | None = None,
    ):
        self.config = config or MiccoConfig()
        self.scheduler = scheduler if scheduler is not None else MiccoScheduler()
        self.predictor = predictor
        self.cluster = ClusterState(
            mi100_like(
                self.config.num_devices,
                memory_bytes=self.config.memory_bytes,
                peak_gflops=self.config.peak_gflops,
            ),
            eviction_policy=self.config.eviction_policy,
        )
        self.engine = ExecutionEngine(self.cluster, self.config.cost_model, store=store)

    # ------------------------------------------------------------ constructors
    @classmethod
    def naive(cls, config: MiccoConfig | None = None, **kwargs) -> "Micco":
        """MICCO-naive: heuristic with all reuse bounds at zero."""
        return cls(config, scheduler=MiccoScheduler(ReuseBounds.zeros()), **kwargs)

    @classmethod
    def optimal(cls, predictor, config: MiccoConfig | None = None, **kwargs) -> "Micco":
        """MICCO-optimal: per-vector bounds from a trained predictor."""
        return cls(config, scheduler=MiccoScheduler(), predictor=predictor, **kwargs)

    @classmethod
    def with_bounds(cls, bounds: ReuseBounds, config: MiccoConfig | None = None, **kwargs) -> "Micco":
        """MICCO with a fixed reuse-bound triple (no predictor)."""
        return cls(config, scheduler=MiccoScheduler(bounds), **kwargs)

    @classmethod
    def baseline(cls, scheduler: Scheduler | None = None, config: MiccoConfig | None = None, **kwargs) -> "Micco":
        """Any baseline scheduler on the same simulated hardware."""
        return cls(config, scheduler=scheduler or GrouteScheduler(), **kwargs)

    # ------------------------------------------------------------------- runs
    def run(self, vectors: list[VectorSpec], *, reset: bool = True) -> RunResult:
        """Schedule and execute a stream; returns metrics + overheads."""
        return run_stream(
            vectors,
            self.scheduler,
            self.cluster,
            self.engine,
            predictor=self.predictor,
            keep_outputs=self.config.keep_outputs,
            reset_cluster=reset,
        )

    def reset(self) -> None:
        """Clear device residency and accumulated load."""
        self.cluster.reset()


def compare(
    vectors: list[VectorSpec],
    systems: dict[str, "Micco"],
    *,
    baseline: str | None = None,
) -> "Table":
    """Run several systems on one stream; return a comparison table.

    ``baseline`` names the row the speedup column is relative to
    (default: the first system).  Convenience wrapper over
    :meth:`Micco.run` for quick interactive comparisons:

    >>> from repro import Micco, MiccoConfig, GrouteScheduler
    >>> from repro.core.framework import compare  # doctest: +SKIP
    >>> print(compare(vectors, {
    ...     "groute": Micco.baseline(GrouteScheduler(), cfg),
    ...     "micco": Micco.naive(cfg),
    ... }))  # doctest: +SKIP
    """
    from repro.experiments.report import Table

    if not systems:
        raise ValueError("compare() needs at least one system")
    baseline = baseline if baseline is not None else next(iter(systems))
    if baseline not in systems:
        raise ValueError(f"baseline {baseline!r} is not among the systems {list(systems)}")
    results = {name: system.run(vectors) for name, system in systems.items()}
    base_gflops = results[baseline].gflops
    table = Table(
        "Scheduler comparison",
        ["system", "gflops", "speedup", "reuse hits", "transfers", "evictions", "imbalance"],
    )
    for name, r in results.items():
        c = r.metrics.counts
        table.add_row(
            name,
            r.gflops,
            r.gflops / base_gflops if base_gflops > 0 else float("nan"),
            c.reuse_hits,
            c.input_fetches,
            c.evictions,
            r.metrics.load_imbalance,
        )
    return table
