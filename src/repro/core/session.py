"""Run-session driver: schedule and execute a vector stream.

Implements the Fig. 6 workflow: per vector, (1) measure data
characteristics, (2) run regression inference to obtain reuse bounds
(when a predictor is attached and the scheduler accepts bounds), then
(3) schedule pair-by-pair and execute on the simulated cluster.

Real wall-clock time of the scheduling decisions and of the model
inference is measured separately (Table V's overhead split); simulated
device time comes from the execution metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpusim.cluster import ClusterState
from repro.gpusim.engine import ExecutionEngine
from repro.gpusim.metrics import ExecutionMetrics
from repro.schedulers.base import Scheduler
from repro.tensor.spec import VectorSpec
from repro.utils.timing import Stopwatch
from repro.workloads.characteristics import CharacteristicsTracker


@dataclass
class RunResult:
    """Outcome of one scheduled stream."""

    metrics: ExecutionMetrics
    #: Real seconds spent inside scheduler decisions (Alg. 1 + Alg. 2).
    schedule_overhead_s: float = 0.0
    #: Real seconds spent in regression-model inference.
    inference_overhead_s: float = 0.0
    #: Per-vector summaries (gflops, counters, bounds used).
    per_vector: list[dict] = field(default_factory=list)
    #: Local-reuse-pattern histogram ({pattern name: count}) when the
    #: scheduler classifies pairs (MICCO); empty otherwise.
    pattern_counts: dict[str, int] = field(default_factory=dict)

    @property
    def total_overhead_s(self) -> float:
        return self.schedule_overhead_s + self.inference_overhead_s

    @property
    def gflops(self) -> float:
        return self.metrics.gflops

    @property
    def makespan_s(self) -> float:
        return self.metrics.makespan_s


def run_stream(
    vectors: list[VectorSpec],
    scheduler: Scheduler,
    cluster: ClusterState,
    engine: ExecutionEngine,
    *,
    predictor=None,
    keep_outputs: bool = False,
    reset_cluster: bool = True,
) -> RunResult:
    """Schedule and execute ``vectors`` with ``scheduler`` on ``cluster``.

    Parameters
    ----------
    predictor:
        Optional object with ``predict_bounds(chars) -> ReuseBounds``;
        used only if the scheduler exposes ``set_bounds`` (i.e. MICCO).
    keep_outputs:
        Forwarded to the engine's output-drain behaviour.
    reset_cluster:
        Start from an empty cluster (the default for experiments).
    """
    if reset_cluster:
        cluster.reset()
        if hasattr(scheduler, "reset_stats"):
            scheduler.reset_stats()
    sw = Stopwatch()
    tracker = CharacteristicsTracker()
    total = ExecutionMetrics(num_devices=cluster.num_devices)
    per_vector: list[dict] = []
    wants_bounds = predictor is not None and hasattr(scheduler, "set_bounds")

    for vector in vectors:
        chars = tracker.observe(vector)
        bounds_used = None
        if wants_bounds:
            with sw.measure("inference"):
                bounds = predictor.predict_bounds(chars)
            scheduler.set_bounds(bounds)
            bounds_used = bounds.as_tuple()

        cluster.begin_vector(vector.num_tensors)
        with sw.measure("schedule"):
            scheduler.begin_vector(vector, cluster)
        vec_metrics = ExecutionMetrics(num_devices=cluster.num_devices)
        assignment: list[int] = []
        for pair in vector.pairs:
            with sw.measure("schedule"):
                g = scheduler.choose(pair, cluster)
            engine.execute_pair(pair, g, vec_metrics)
            assignment.append(g)
        if not keep_outputs:
            engine.drain_outputs(vector, assignment, vec_metrics)

        summary = vec_metrics.summary()
        summary["vector_id"] = vector.vector_id
        summary["characteristics"] = chars
        summary["bounds"] = bounds_used
        summary["assignment"] = assignment
        per_vector.append(summary)
        total.merge(vec_metrics)

    pattern_counts: dict[str, int] = {}
    if hasattr(scheduler, "pattern_counts"):
        pattern_counts = {p.value: n for p, n in scheduler.pattern_counts.items()}
    return RunResult(
        metrics=total,
        schedule_overhead_s=sw.total("schedule"),
        inference_overhead_s=sw.total("inference"),
        per_vector=per_vector,
        pattern_counts=pattern_counts,
    )
