"""JSON persistence for the from-scratch models.

Training the reuse-bound model is an offline step (the paper trains
once up front); these helpers let a trained model ship with an
application and load in milliseconds.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.errors import ModelError
from repro.ml.forest import RandomForestRegressor
from repro.ml.gbm import GradientBoostingRegressor
from repro.ml.linear import LinearRegression
from repro.ml.predictor import ReuseBoundPredictor
from repro.ml.tree import DecisionTreeRegressor, _Node


# ------------------------------------------------------------------ tree <-> dict
def _node_to_dict(node: _Node) -> dict:
    if node.is_leaf:
        return {"value": [float(v) for v in node.value]}
    return {
        "feature": node.feature,
        "threshold": node.threshold,
        "left": _node_to_dict(node.left),
        "right": _node_to_dict(node.right),
    }


def _node_from_dict(d: dict) -> _Node:
    if "value" in d:
        return _Node(value=np.asarray(d["value"], dtype=np.float64))
    return _Node(
        feature=int(d["feature"]),
        threshold=float(d["threshold"]),
        left=_node_from_dict(d["left"]),
        right=_node_from_dict(d["right"]),
    )


def tree_to_dict(tree: DecisionTreeRegressor) -> dict:
    if tree._root is None:
        raise ModelError("cannot serialize an unfitted tree")
    return {
        "kind": "tree",
        "n_features": tree.n_features_,
        "n_outputs": tree.n_outputs_,
        "root": _node_to_dict(tree._root),
    }


def tree_from_dict(d: dict) -> DecisionTreeRegressor:
    tree = DecisionTreeRegressor()
    tree.n_features_ = int(d["n_features"])
    tree.n_outputs_ = int(d["n_outputs"])
    tree._root = _node_from_dict(d["root"])
    return tree


# ---------------------------------------------------------------- model <-> dict
def model_to_dict(model) -> dict:
    """Serialize any of the four regressors to a JSON-safe dict."""
    if isinstance(model, DecisionTreeRegressor):
        return tree_to_dict(model)
    if isinstance(model, RandomForestRegressor):
        return {
            "kind": "forest",
            "n_outputs": model.n_outputs_,
            "trees": [tree_to_dict(t) for t in model.trees_],
        }
    if isinstance(model, GradientBoostingRegressor):
        return {
            "kind": "gbm",
            "learning_rate": model.learning_rate,
            "base": [float(v) for v in model.base_],
            "stages": [tree_to_dict(t) for t in model.stages_],
        }
    if isinstance(model, LinearRegression):
        return {
            "kind": "linear",
            "coef": np.asarray(model.coef_).tolist(),
            "intercept": np.asarray(model.intercept_).tolist(),
        }
    raise ModelError(f"cannot serialize model of type {type(model).__name__}")


def model_from_dict(d: dict):
    """Inverse of :func:`model_to_dict`."""
    kind = d.get("kind")
    if kind == "tree":
        return tree_from_dict(d)
    if kind == "forest":
        model = RandomForestRegressor()
        model.trees_ = [tree_from_dict(t) for t in d["trees"]]
        model.n_outputs_ = int(d["n_outputs"])
        return model
    if kind == "gbm":
        model = GradientBoostingRegressor(learning_rate=float(d["learning_rate"]))
        model.base_ = np.asarray(d["base"], dtype=np.float64)
        model.stages_ = [tree_from_dict(t) for t in d["stages"]]
        return model
    if kind == "linear":
        model = LinearRegression()
        model.coef_ = np.asarray(d["coef"], dtype=np.float64)
        model.intercept_ = np.asarray(d["intercept"], dtype=np.float64)
        return model
    raise ModelError(f"unknown serialized model kind {kind!r}")


# -------------------------------------------------------------------- file I/O
def save_predictor(predictor: ReuseBoundPredictor, path: str | Path) -> None:
    """Write a predictor (model + clip ceiling) to a JSON file."""
    payload = {
        "clip_max": predictor.clip_max,
        "model": model_to_dict(predictor.model),
    }
    Path(path).write_text(json.dumps(payload))


def load_predictor(path: str | Path) -> ReuseBoundPredictor:
    """Load a predictor saved by :func:`save_predictor`."""
    payload = json.loads(Path(path).read_text())
    return ReuseBoundPredictor(
        model_from_dict(payload["model"]),
        clip_max=payload.get("clip_max"),
    )
