"""Incremental refit support: a sliding-window online regressor.

The offline models in this package (:mod:`repro.ml.linear`,
:mod:`repro.ml.forest`, ...) are batch learners: one ``fit`` over a
materialized training set.  Online consumers — the learned routing
policy in :mod:`repro.serve.sharded.learned` — instead observe one
``(features, target)`` sample at a time and want predictions that
track a drifting target (a shard slowing down mid-run) without paying
a full refit per observation.

:class:`SlidingWindowRegressor` wraps any batch model behind a bounded
sample window and an amortized refit schedule: samples accumulate in a
``deque(maxlen=window)`` and the wrapped model is refit from the
current window every ``refit_interval`` observations (and once
immediately when ``min_samples`` is first reached).  Everything is
deterministic: no RNG is drawn, and the refit cadence is a pure
function of the observation sequence.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.errors import ModelError
from repro.ml.linear import LinearRegression


class SlidingWindowRegressor:
    """A batch regressor refit incrementally over a bounded window.

    Parameters
    ----------
    model_factory:
        Zero-argument callable returning a fresh batch model with
        ``fit(X, y)`` / ``predict(X)`` (default
        :class:`~repro.ml.linear.LinearRegression`).  A fresh model is
        built per refit so stale coefficients never leak across
        windows.
    window:
        Maximum samples retained; older samples fall off the far end.
    refit_interval:
        Observations between refits once the model is warm.
    min_samples:
        Observations required before the first fit (at least 2 — the
        linear model refuses to fit a line through fewer points).
    """

    def __init__(
        self,
        model_factory=LinearRegression,
        *,
        window: int = 512,
        refit_interval: int = 16,
        min_samples: int = 8,
    ):
        if window < 2:
            raise ModelError(f"window must be >= 2, got {window}")
        if refit_interval < 1:
            raise ModelError(
                f"refit_interval must be >= 1, got {refit_interval}"
            )
        if min_samples < 2:
            raise ModelError(f"min_samples must be >= 2, got {min_samples}")
        if min_samples > window:
            raise ModelError(
                f"min_samples ({min_samples}) cannot exceed window ({window})"
            )
        self._factory = model_factory
        self._window: deque[tuple[np.ndarray, float]] = deque(maxlen=window)
        self.refit_interval = int(refit_interval)
        self.min_samples = int(min_samples)
        self._model = None
        self._since_fit = 0
        self.samples = 0  #: total observations ever fed in
        self.refits = 0  #: completed refits

    @property
    def fitted(self) -> bool:
        return self._model is not None

    def observe(self, x, y: float) -> bool:
        """Feed one sample; returns ``True`` when a refit happened."""
        self._window.append((np.asarray(x, dtype=np.float64), float(y)))
        self.samples += 1
        self._since_fit += 1
        warm_enough = len(self._window) >= self.min_samples
        due = self._model is None or self._since_fit >= self.refit_interval
        if not (warm_enough and due):
            return False
        X = np.stack([x for x, _ in self._window])
        Y = np.array([y for _, y in self._window])
        self._model = self._factory().fit(X, Y)
        self._since_fit = 0
        self.refits += 1
        return True

    def predict_one(self, x) -> float | None:
        """Predicted target for one feature row, ``None`` while cold."""
        if self._model is None:
            return None
        out = self._model.predict(np.asarray(x, dtype=np.float64))
        return float(np.asarray(out).reshape(-1)[0])
