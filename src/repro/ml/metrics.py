"""Model-quality and correlation metrics: R² and Spearman's rank.

Both implemented directly (scipy's versions exist, but the paper's
Fig. 5 heatmap needs a full pairwise matrix and the tests cross-check
against :func:`scipy.stats.spearmanr`).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError


def r2_score(y_true, y_pred) -> float:
    """Coefficient of determination over all outputs jointly.

    1.0 is a perfect fit; 0.0 matches predicting the mean; negative is
    worse than the mean.
    """
    yt = np.asarray(y_true, dtype=np.float64)
    yp = np.asarray(y_pred, dtype=np.float64)
    if yt.shape != yp.shape:
        raise ModelError(f"shape mismatch: y_true {yt.shape}, y_pred {yp.shape}")
    if yt.ndim == 1:
        yt = yt[:, None]
        yp = yp[:, None]
    ss_res = float(((yt - yp) ** 2).sum())
    ss_tot = float(((yt - yt.mean(axis=0)) ** 2).sum())
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def _rank(a: np.ndarray) -> np.ndarray:
    """Fractional ranks (average ties), like scipy's rankdata."""
    order = np.argsort(a, kind="stable")
    ranks = np.empty(len(a), dtype=np.float64)
    sorted_a = a[order]
    i = 0
    while i < len(a):
        j = i
        while j + 1 < len(a) and sorted_a[j + 1] == sorted_a[i]:
            j += 1
        ranks[order[i : j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    return ranks


def spearmanr(x, y) -> float:
    """Spearman rank correlation between two 1-d samples.

    Pearson correlation of the fractional ranks; ties averaged.
    Returns 0.0 when either sample is constant.
    """
    xa = np.asarray(x, dtype=np.float64).ravel()
    ya = np.asarray(y, dtype=np.float64).ravel()
    if xa.shape != ya.shape:
        raise ModelError(f"shape mismatch: x {xa.shape}, y {ya.shape}")
    if xa.size < 2:
        raise ModelError("spearmanr needs at least 2 observations")
    rx = _rank(xa)
    ry = _rank(ya)
    sx = rx.std()
    sy = ry.std()
    if sx == 0.0 or sy == 0.0:
        return 0.0
    return float(((rx - rx.mean()) * (ry - ry.mean())).mean() / (sx * sy))


def spearman_matrix(columns: dict[str, np.ndarray]) -> tuple[list[str], np.ndarray]:
    """Pairwise Spearman matrix over named columns (Fig. 5 heatmap).

    Returns the column names (in input order) and the symmetric
    correlation matrix with unit diagonal.
    """
    names = list(columns)
    k = len(names)
    mat = np.eye(k)
    for i in range(k):
        for j in range(i + 1, k):
            rho = spearmanr(columns[names[i]], columns[names[j]])
            mat[i, j] = mat[j, i] = rho
    return names, mat
