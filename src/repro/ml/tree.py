"""CART regression tree (multi-output, variance-reduction splits).

Implementation notes (per the HPC guides: vectorize, avoid per-row
Python work): split search evaluates every threshold of a feature in
one vectorized pass using prefix sums of the sorted targets, giving
O(n_features · n · log n) per node instead of O(n_features · n²).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError


@dataclass
class _Node:
    """One tree node; leaves carry the mean target vector."""

    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    value: np.ndarray | None = None

    @property
    def is_leaf(self) -> bool:
        return self.value is not None


def _best_split(X: np.ndarray, Y: np.ndarray, feature_ids: np.ndarray, min_leaf: int):
    """Find the (feature, threshold) minimizing summed child SSE.

    Returns ``(feature, threshold, gain)`` or ``None`` if no valid
    split exists.  SSE is computed over all output columns jointly.
    """
    n = X.shape[0]
    total_sse = float(((Y - Y.mean(axis=0)) ** 2).sum())
    best = None
    best_sse = total_sse
    for f in feature_ids:
        order = np.argsort(X[:, f], kind="stable")
        xs = X[order, f]
        ys = Y[order]
        # Prefix sums over sorted targets: child SSEs for every cut in O(n).
        csum = np.cumsum(ys, axis=0)
        csum2 = np.cumsum(ys**2, axis=0)
        tot = csum[-1]
        tot2 = csum2[-1]
        counts = np.arange(1, n + 1, dtype=np.float64)
        left_sse = (csum2 - csum**2 / counts[:, None]).sum(axis=1)
        rc = n - counts
        with np.errstate(divide="ignore", invalid="ignore"):
            right_sse = ((tot2 - csum2) - (tot - csum) ** 2 / rc[:, None]).sum(axis=1)
        # Valid cut positions: between distinct x values, leaves >= min_leaf.
        cut = np.arange(1, n)  # left gets rows [0, cut), i.e. cut rows
        valid = (xs[cut] > xs[cut - 1]) & (cut >= min_leaf) & ((n - cut) >= min_leaf)
        if not valid.any():
            continue
        sse = left_sse[cut - 1] + right_sse[cut - 1]
        sse = np.where(valid, sse, np.inf)
        i = int(np.argmin(sse))
        if sse[i] < best_sse - 1e-12:
            best_sse = float(sse[i])
            thr = 0.5 * (xs[cut[i]] + xs[cut[i] - 1])
            best = (int(f), float(thr), total_sse - best_sse)
    return best


class DecisionTreeRegressor:
    """Multi-output CART regressor.

    Parameters
    ----------
    max_depth:
        Maximum tree depth (root = depth 0).
    min_samples_leaf:
        Minimum rows per leaf.
    max_features:
        Features considered per split: ``None`` (all), an int, or a
        fraction in (0, 1].  Randomized subsets need ``rng``.
    rng:
        Generator for feature subsampling (random-forest use).
    """

    def __init__(self, max_depth: int = 8, min_samples_leaf: int = 2, max_features=None, rng=None):
        if max_depth < 0:
            raise ModelError(f"max_depth must be >= 0, got {max_depth}")
        if min_samples_leaf < 1:
            raise ModelError(f"min_samples_leaf must be >= 1, got {min_samples_leaf}")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.rng = rng
        self._root: _Node | None = None
        self.n_outputs_: int | None = None
        self.n_features_: int | None = None

    def _n_split_features(self, n_features: int) -> int:
        mf = self.max_features
        if mf is None:
            return n_features
        if isinstance(mf, float):
            return max(1, int(round(mf * n_features)))
        return max(1, min(int(mf), n_features))

    def fit(self, X, y) -> "DecisionTreeRegressor":
        X = np.asarray(X, dtype=np.float64)
        Y = np.asarray(y, dtype=np.float64)
        if Y.ndim == 1:
            Y = Y[:, None]
        if X.ndim != 2 or X.shape[0] != Y.shape[0]:
            raise ModelError(f"shape mismatch: X {X.shape}, y {Y.shape}")
        if X.shape[0] == 0:
            raise ModelError("cannot fit on an empty dataset")
        self.n_features_ = X.shape[1]
        self.n_outputs_ = Y.shape[1]
        self._root = self._grow(X, Y, depth=0)
        return self

    def _grow(self, X: np.ndarray, Y: np.ndarray, depth: int) -> _Node:
        n = X.shape[0]
        if (
            depth >= self.max_depth
            or n < 2 * self.min_samples_leaf
            or np.allclose(Y, Y[0])
        ):
            return _Node(value=Y.mean(axis=0))
        k = self._n_split_features(X.shape[1])
        if k < X.shape[1]:
            if self.rng is None:
                raise ModelError("max_features subsampling requires an rng")
            feats = self.rng.choice(X.shape[1], size=k, replace=False)
        else:
            feats = np.arange(X.shape[1])
        split = _best_split(X, Y, feats, self.min_samples_leaf)
        if split is None:
            return _Node(value=Y.mean(axis=0))
        f, thr, _gain = split
        mask = X[:, f] <= thr
        return _Node(
            feature=f,
            threshold=thr,
            left=self._grow(X[mask], Y[mask], depth + 1),
            right=self._grow(X[~mask], Y[~mask], depth + 1),
        )

    def predict(self, X) -> np.ndarray:
        if self._root is None:
            raise ModelError("predict called before fit")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[None, :]
        if X.shape[1] != self.n_features_:
            raise ModelError(f"expected {self.n_features_} features, got {X.shape[1]}")
        out = np.empty((X.shape[0], self.n_outputs_))
        # Route all rows through the tree level by level (vectorized
        # masks instead of per-row descent).
        idx = np.arange(X.shape[0])
        stack = [(self._root, idx)]
        while stack:
            node, rows = stack.pop()
            if rows.size == 0:
                continue
            if node.is_leaf:
                out[rows] = node.value
                continue
            mask = X[rows, node.feature] <= node.threshold
            stack.append((node.left, rows[mask]))
            stack.append((node.right, rows[~mask]))
        return out

    def depth(self) -> int:
        """Actual depth of the fitted tree."""
        if self._root is None:
            raise ModelError("depth() called before fit")

        def d(node: _Node) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(d(node.left), d(node.right))

        return d(self._root)

    def node_count(self) -> int:
        """Total nodes (internal + leaves) of the fitted tree."""
        if self._root is None:
            raise ModelError("node_count() called before fit")

        def c(node: _Node) -> int:
            if node.is_leaf:
                return 1
            return 1 + c(node.left) + c(node.right)

        return c(self._root)
