"""Ordinary-least-squares linear regression (multi-output).

The paper's weakest baseline model (Table IV, R² ≈ 0.57): the
characteristics→bounds relationship is non-linear, which is the whole
argument for the tree ensembles.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError


class LinearRegression:
    """``y = X w + b`` fit by ``numpy.linalg.lstsq``.

    Features are standardized internally for numerical conditioning;
    coefficients are reported in original units via ``coef_`` /
    ``intercept_``.
    """

    def __init__(self):
        self.coef_: np.ndarray | None = None
        self.intercept_: np.ndarray | None = None

    def fit(self, X, y) -> "LinearRegression":
        X = np.asarray(X, dtype=np.float64)
        Y = np.asarray(y, dtype=np.float64)
        if Y.ndim == 1:
            Y = Y[:, None]
        if X.ndim != 2 or X.shape[0] != Y.shape[0]:
            raise ModelError(f"shape mismatch: X {X.shape}, y {Y.shape}")
        if X.shape[0] < 2:
            raise ModelError("need at least 2 samples to fit a line")
        mu = X.mean(axis=0)
        sd = X.std(axis=0)
        sd[sd == 0] = 1.0
        Xs = (X - mu) / sd
        A = np.hstack([Xs, np.ones((X.shape[0], 1))])
        W, *_ = np.linalg.lstsq(A, Y, rcond=None)
        w_std = W[:-1]
        b_std = W[-1]
        self.coef_ = (w_std.T / sd).T
        self.intercept_ = b_std - (mu / sd) @ w_std
        return self

    def predict(self, X) -> np.ndarray:
        if self.coef_ is None:
            raise ModelError("predict called before fit")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[None, :]
        return X @ self.coef_ + self.intercept_
