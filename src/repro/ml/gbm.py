"""Gradient-boosting regressor: shallow trees on squared-loss residuals.

The paper's runner-up model (Table IV, R² ≈ 0.91, 150 stages,
learning rate 0.1).  Multi-output: one boosted ensemble per target
column, all trained in a single residual loop.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError
from repro.ml.tree import DecisionTreeRegressor
from repro.utils.rng import spawn_generators


class GradientBoostingRegressor:
    """Boosted regression trees for (possibly multi-output) targets.

    Parameters
    ----------
    n_estimators:
        Boosting stages (paper: 150).
    learning_rate:
        Shrinkage per stage (paper: 0.1).
    max_depth:
        Depth of each weak learner.  The default (5) is deeper than
        the textbook 3: the 4-feature bound-prediction target is
        dominated by 3–4-way feature interactions.
    subsample:
        Row fraction per stage (stochastic gradient boosting).
    seed:
        Reproducible subsampling.
    """

    def __init__(
        self,
        n_estimators: int = 150,
        learning_rate: float = 0.1,
        max_depth: int = 5,
        min_samples_leaf: int = 2,
        subsample: float = 1.0,
        seed=0,
    ):
        if n_estimators < 1:
            raise ModelError(f"n_estimators must be >= 1, got {n_estimators}")
        if not 0 < learning_rate <= 1:
            raise ModelError(f"learning_rate must be in (0, 1], got {learning_rate}")
        if not 0 < subsample <= 1:
            raise ModelError(f"subsample must be in (0, 1], got {subsample}")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.seed = seed
        self.base_: np.ndarray | None = None
        self.stages_: list[DecisionTreeRegressor] = []

    def fit(self, X, y) -> "GradientBoostingRegressor":
        X = np.asarray(X, dtype=np.float64)
        Y = np.asarray(y, dtype=np.float64)
        if Y.ndim == 1:
            Y = Y[:, None]
        if X.shape[0] != Y.shape[0]:
            raise ModelError(f"shape mismatch: X {X.shape}, y {Y.shape}")
        n = X.shape[0]
        self.base_ = Y.mean(axis=0)
        pred = np.tile(self.base_, (n, 1))
        self.stages_ = []
        rngs = spawn_generators(self.seed, self.n_estimators)
        for rng in rngs:
            residual = Y - pred
            if self.subsample < 1.0:
                rows = rng.choice(n, size=max(2, int(self.subsample * n)), replace=False)
            else:
                rows = np.arange(n)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth, min_samples_leaf=self.min_samples_leaf
            )
            tree.fit(X[rows], residual[rows])
            pred += self.learning_rate * tree.predict(X)
            self.stages_.append(tree)
        return self

    def predict(self, X) -> np.ndarray:
        if self.base_ is None:
            raise ModelError("predict called before fit")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[None, :]
        pred = np.tile(self.base_, (X.shape[0], 1))
        for tree in self.stages_:
            pred += self.learning_rate * tree.predict(X)
        return pred
