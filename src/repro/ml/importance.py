"""Permutation feature importance for the reuse-bound models.

Explains *why* the model predicts what it does — the quantitative
companion to the paper's Fig. 5 narrative (which characteristics drive
the optimal bounds).  Importance of a feature = the drop in R² when
that feature's column is shuffled, averaged over repeats.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError
from repro.ml.metrics import r2_score
from repro.utils.rng import as_generator


def permutation_importance(
    model,
    X,
    y,
    *,
    n_repeats: int = 10,
    seed=0,
) -> np.ndarray:
    """Mean R² drop per feature when it is permuted.

    Parameters
    ----------
    model:
        Fitted regressor with ``predict``.
    X, y:
        Held-out evaluation data.
    n_repeats:
        Shuffles averaged per feature.

    Returns
    -------
    Array of shape ``(n_features,)``; larger = more important.  Values
    can be slightly negative for irrelevant features (noise).
    """
    X = np.asarray(X, dtype=np.float64)
    Y = np.asarray(y, dtype=np.float64)
    if Y.ndim == 1:
        # Models in this package always predict 2-d; align the target.
        Y = Y[:, None]
    if X.ndim != 2 or X.shape[0] != Y.shape[0]:
        raise ModelError(f"shape mismatch: X {X.shape}, y {Y.shape}")
    if n_repeats < 1:
        raise ModelError(f"n_repeats must be >= 1, got {n_repeats}")
    rng = as_generator(seed)
    base = r2_score(Y, model.predict(X))
    importances = np.zeros(X.shape[1])
    for j in range(X.shape[1]):
        drops = []
        for _ in range(n_repeats):
            Xp = X.copy()
            Xp[:, j] = rng.permutation(Xp[:, j])
            drops.append(base - r2_score(Y, model.predict(Xp)))
        importances[j] = float(np.mean(drops))
    return importances


def rank_features(names, importances) -> list[tuple[str, float]]:
    """``(name, importance)`` pairs sorted most-important first."""
    if len(names) != len(importances):
        raise ModelError(
            f"{len(names)} names but {len(importances)} importances"
        )
    order = np.argsort(importances)[::-1]
    return [(names[i], float(importances[i])) for i in order]
