"""Training-set construction for the reuse-bound regression model.

The paper trains on 300 samples with a 20 % test split.  Each sample is
one workload configuration: features are its measured data
characteristics, the label is the grid-searched optimal bound triple.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import MiccoConfig
from repro.ml.tuner import ReuseBoundTuner, TuningSample
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive
from repro.workloads.synth import WorkloadParams

#: Default sweep values mirroring the paper's evaluation ranges.
VECTOR_SIZES = (8, 16, 32, 64)
TENSOR_SIZES = (128, 256, 384, 768)
REPEATED_RATES = (0.25, 0.5, 0.75, 1.0)
DISTRIBUTIONS = ("uniform", "gaussian")


@dataclass
class TrainingSet:
    """Feature matrix, label matrix, and per-sample tuning records."""

    X: np.ndarray
    Y: np.ndarray
    gflops: np.ndarray
    samples: list[TuningSample] = field(default_factory=list)

    def __len__(self) -> int:
        return self.X.shape[0]

    def split(self, test_fraction: float = 0.2, seed=0):
        """Shuffled train/test split: ``(X_tr, Y_tr, X_te, Y_te)``."""
        if not 0 < test_fraction < 1:
            raise ValueError(f"test_fraction must be in (0,1), got {test_fraction}")
        rng = as_generator(seed)
        n = len(self)
        order = rng.permutation(n)
        n_test = max(1, int(round(test_fraction * n)))
        test = order[:n_test]
        train = order[n_test:]
        return self.X[train], self.Y[train], self.X[test], self.Y[test]


def sample_characteristics_grid(n: int, seed=0, *, num_vectors: int = 6, batch: int = 8) -> list[WorkloadParams]:
    """Draw ``n`` workload configurations from the evaluation grid.

    Sampling is over the paper's *discrete* evaluation values (128
    combinations), so a 300-sample set repeats configurations — exactly
    the regime in which the paper's 80/20 split measures how well a
    model interpolates the per-configuration optimum.

    ``batch`` defaults small: training labels depend on *relative*
    scheduler behaviour, which is batch-invariant (batch scales kernel
    and transfer cost together), so small batches keep tuning cheap.
    """
    check_positive("n", n)
    rng = as_generator(seed)
    out = []
    for _ in range(n):
        out.append(
            WorkloadParams(
                vector_size=int(rng.choice(VECTOR_SIZES)),
                tensor_size=int(rng.choice(TENSOR_SIZES)),
                repeated_rate=float(rng.choice(REPEATED_RATES)),
                distribution=str(rng.choice(DISTRIBUTIONS)),
                num_vectors=num_vectors,
                batch=batch,
            )
        )
    return out


def build_training_set(
    n: int = 300,
    config: MiccoConfig | None = None,
    seed=0,
    *,
    fractions=(0.0, 0.25, 0.5, 1.0),
    n_seeds: int = 3,
    num_vectors: int = 6,
    batch: int = 8,
) -> TrainingSet:
    """Tune ``n`` sampled workloads and assemble the training set.

    Stream seeds are derived from the workload configuration itself, so
    the optimal-bound label is a deterministic function of the feature
    setting (as it is when measuring a fixed dataset on real hardware);
    repeated configurations repeat their label, and tuned samples are
    cached per configuration.
    """
    tuner = ReuseBoundTuner(config, fractions=fractions, n_seeds=n_seeds)
    rng = as_generator(seed)
    params_list = sample_characteristics_grid(n, rng, num_vectors=num_vectors, batch=batch)
    cache: dict[WorkloadParams, TuningSample] = {}
    samples = []
    for params in params_list:
        sample = cache.get(params)
        if sample is None:
            # Stable across processes (unlike hash(), which salts str).
            key = (
                params.vector_size,
                params.tensor_size,
                params.repeated_rate,
                params.distribution,
                params.num_vectors,
                params.batch,
            )
            config_seed = zlib.crc32(repr(key).encode())
            sample = tuner.tune(params, seed=config_seed)
            cache[params] = sample
        samples.append(sample)
    X = np.stack([s.features for s in samples])
    Y = np.stack([s.label for s in samples])
    g = np.array([s.best_gflops for s in samples])
    return TrainingSet(X=X, Y=Y, gflops=g, samples=samples)
