"""Random-forest regressor: bagged CART trees with feature subsampling.

The paper's selected model (Table IV, R² ≈ 0.95, 150 trees).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError
from repro.ml.tree import DecisionTreeRegressor
from repro.utils.rng import as_generator, spawn_generators


class RandomForestRegressor:
    """Bootstrap-aggregated regression trees (multi-output).

    Parameters
    ----------
    n_estimators:
        Number of trees (paper uses 150).
    max_depth, min_samples_leaf:
        Per-tree limits.
    max_features:
        Features per split; default all — the feature space is tiny
        (4 features) and every one is load-bearing, so subsampling
        splits only injects noise; tree diversity comes from the
        bootstrap.
    seed:
        Reproducible bootstrap/feature sampling.
    """

    def __init__(
        self,
        n_estimators: int = 150,
        max_depth: int = 12,
        min_samples_leaf: int = 1,
        max_features=None,
        seed=0,
    ):
        if n_estimators < 1:
            raise ModelError(f"n_estimators must be >= 1, got {n_estimators}")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self.trees_: list[DecisionTreeRegressor] = []
        self.n_outputs_: int | None = None

    def fit(self, X, y) -> "RandomForestRegressor":
        X = np.asarray(X, dtype=np.float64)
        Y = np.asarray(y, dtype=np.float64)
        if Y.ndim == 1:
            Y = Y[:, None]
        if X.shape[0] != Y.shape[0]:
            raise ModelError(f"shape mismatch: X {X.shape}, y {Y.shape}")
        n = X.shape[0]
        self.n_outputs_ = Y.shape[1]
        self.trees_ = []
        rngs = spawn_generators(self.seed, self.n_estimators)
        for rng in rngs:
            rows = rng.integers(0, n, size=n)  # bootstrap sample
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                rng=rng,
            )
            tree.fit(X[rows], Y[rows])
            self.trees_.append(tree)
        return self

    def predict(self, X) -> np.ndarray:
        if not self.trees_:
            raise ModelError("predict called before fit")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[None, :]
        acc = self.trees_[0].predict(X).copy()
        for tree in self.trees_[1:]:
            acc += tree.predict(X)
        acc /= len(self.trees_)
        return acc
