"""Offline reuse-bound tuner: grid search via the simulator.

For one workload configuration, runs MICCO under every bound triple in
a grid and records the GFLOPS of each — the argmax becomes the
training label (the paper: "we measure GFLOPS of all possible values
of reuse bounds and set the optimal reuse bounds to be the response
labels", with bounds ranging "from 0 to numTensor − balanceNum").

The grid is *relative*: per-component fractions of the maximum slack
``numTensor − balanceNum``, converted to absolute slot counts per
workload.  Absolute micro-grids (0–4 slots) sit inside the simulator's
noise floor and produce unlearnable labels; the relative grid spans the
range where the reuse/balance trade genuinely moves throughput.

Label regularization beyond the paper's description, needed for stable
regression targets:

* each triple's GFLOPS is averaged over ``n_seeds`` independent streams
  of the same configuration,
* triples within ``tie_tolerance`` of the best are considered tied, and
  the *lexicographically smallest* tied triple is the label — slack
  that buys no throughput is never part of the target.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product

import numpy as np

from repro.core.config import MiccoConfig
from repro.core.framework import Micco
from repro.schedulers.bounds import ReuseBounds
from repro.tensor.spec import VectorSpec
from repro.utils.validation import check_fraction, check_positive
from repro.workloads.characteristics import CharacteristicsTracker
from repro.workloads.synth import SyntheticWorkload, WorkloadParams

#: Default per-component fractions of the maximum slack.  Chosen from
#: surface probes: the payoff region sits at small fractions; one large
#: value anchors the over-slack penalty.
DEFAULT_FRACTIONS = (0.0, 1.0 / 12.0, 1.0 / 3.0)


@dataclass
class TuningSample:
    """One tuning outcome: measured features, best bounds, full sweep."""

    features: np.ndarray
    best_bounds: ReuseBounds
    best_gflops: float
    sweep: dict[tuple[float, float, float], float] = field(default_factory=dict)

    @property
    def label(self) -> np.ndarray:
        return np.asarray(self.best_bounds.as_tuple(), dtype=np.float64)


def measured_features(vectors: list[VectorSpec]) -> np.ndarray:
    """Mean measured characteristics over the stream (first vector
    excluded when possible — it has no history, so its repeated rate is
    trivially zero)."""
    tracker = CharacteristicsTracker()
    rows = [tracker.observe(v).to_features() for v in vectors]
    use = rows[1:] if len(rows) > 1 else rows
    return np.mean(use, axis=0)


def max_slack(num_tensors: int, num_devices: int) -> float:
    """The paper's bound ceiling: ``numTensor − balanceNum``."""
    return num_tensors - num_tensors / num_devices


def relative_grid(num_tensors: int, num_devices: int, fractions=DEFAULT_FRACTIONS) -> list[ReuseBounds]:
    """Bound triples at per-component ``fractions`` of the max slack.

    Values round *up* to even slot counts: pairs charge two slots, so
    odd slack collapses onto its even neighbour and only creates
    degenerate ties, and rounding up keeps small nonzero fractions
    distinct from zero.
    """
    ceiling = max_slack(num_tensors, num_devices)
    vals = sorted({0.0 if f == 0 else 2.0 * np.ceil(f * ceiling / 2.0) for f in fractions})
    return [ReuseBounds.from_sequence(t) for t in product(vals, repeat=3)]


def canonical_best(
    sweep: dict[tuple[float, float, float], float], tie_tolerance: float
) -> tuple[tuple[float, float, float], float]:
    """Best triple under near-tie canonicalization.

    Returns ``(triple, gflops_of_true_max)``; among triples within
    ``tie_tolerance`` (relative) of the maximum, the lexicographically
    smallest wins.
    """
    best_g = max(sweep.values())
    cutoff = best_g * (1.0 - tie_tolerance)
    tied = [k for k, v in sweep.items() if v >= cutoff]
    return min(tied), best_g


class ReuseBoundTuner:
    """Grid search over bound triples for a workload configuration.

    Parameters
    ----------
    config:
        Simulated cluster configuration shared by every trial.
    fractions:
        Per-component fractions of the maximum slack swept.
    n_seeds:
        Streams averaged per triple when tuning from
        :class:`WorkloadParams`.
    tie_tolerance:
        Relative GFLOPS band treated as a tie.
    subscription:
        When set, per-device memory is derived from the workload so
        that demand = ``subscription`` × aggregate capacity.  Tuning
        under (mild) pressure is essential: with unconstrained memory
        the eviction dimension of the trade-off is dormant and the
        bound surface is flat noise.
    """

    def __init__(
        self,
        config: MiccoConfig | None = None,
        fractions=DEFAULT_FRACTIONS,
        n_seeds: int = 3,
        tie_tolerance: float = 0.01,
        subscription: float | None = 0.9,
    ):
        check_positive("n_seeds", n_seeds)
        check_fraction("tie_tolerance", tie_tolerance)
        if subscription is not None:
            check_positive("subscription", subscription)
        self.config = config or MiccoConfig()
        self.fractions = tuple(fractions)
        self.n_seeds = n_seeds
        self.tie_tolerance = tie_tolerance
        self.subscription = subscription

    def _config_for(self, streams: list[list[VectorSpec]]) -> MiccoConfig:
        if self.subscription is None:
            return self.config
        from repro.workloads.oversub import capacity_for_oversubscription

        cap = max(
            capacity_for_oversubscription(vs, self.config.num_devices, self.subscription)
            for vs in streams
        )
        return self.config.with_(memory_bytes=cap)

    def _sweep(
        self, streams: list[list[VectorSpec]], grid, config: MiccoConfig
    ) -> dict[tuple[float, float, float], float]:
        sweep: dict[tuple[float, float, float], float] = {}
        for bounds in grid:
            total = 0.0
            for vectors in streams:
                total += Micco.with_bounds(bounds, config).run(vectors).gflops
            sweep[bounds.as_tuple()] = total / len(streams)
        return sweep

    def sweep_vectors(self, vectors: list[VectorSpec]) -> TuningSample:
        """Run every grid triple on one explicit stream."""
        grid = relative_grid(vectors[0].num_tensors, self.config.num_devices, self.fractions)
        cfg = self._config_for([vectors])
        return self._finish([vectors], self._sweep([vectors], grid, cfg))

    def tune(self, params: WorkloadParams, seed=0) -> TuningSample:
        """Tune ``params``: average the sweep over ``n_seeds`` streams.

        Training features are the *declared* characteristics of
        ``params`` (the paper trains on grid settings); per-vector
        measured features are what online inference later sees.
        """
        streams = [
            SyntheticWorkload(params, seed=int(seed) * 1000 + k).vectors()
            for k in range(self.n_seeds)
        ]
        grid = relative_grid(params.vector_size, self.config.num_devices, self.fractions)
        cfg = self._config_for(streams)
        feats = np.array(
            [
                params.vector_size,
                params.tensor_size,
                1.0 if params.distribution == "gaussian" else 0.0,
                params.repeated_rate,
            ],
            dtype=np.float64,
        )
        return self._finish(streams, self._sweep(streams, grid, cfg), features=feats)

    def _finish(self, streams, sweep, features=None) -> TuningSample:
        best_key, best_g = canonical_best(sweep, self.tie_tolerance)
        if features is None:
            features = np.mean([measured_features(v) for v in streams], axis=0)
        return TuningSample(
            features=features,
            best_bounds=ReuseBounds.from_sequence(best_key),
            best_gflops=best_g,
            sweep=sweep,
        )
