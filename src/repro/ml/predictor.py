"""Online reuse-bound predictor (the Fig. 6 "regression model" box).

Wraps any fitted multi-output regressor and converts raw predictions
into valid :class:`~repro.schedulers.bounds.ReuseBounds` (non-negative,
rounded to integers — bounds are slot counts).
"""

from __future__ import annotations

import numpy as np

from repro.core.config import MiccoConfig
from repro.errors import ModelError
from repro.ml.dataset import build_training_set, TrainingSet
from repro.ml.forest import RandomForestRegressor
from repro.schedulers.bounds import ReuseBounds
from repro.workloads.characteristics import DataCharacteristics


class ReuseBoundPredictor:
    """Characteristics → bounds inference wrapper.

    Parameters
    ----------
    model:
        Fitted regressor with ``predict(X) -> (n, 3)``.
    clip_max:
        Optional ceiling applied to predicted bounds (the training grid
        maximum; predictions outside it are extrapolation noise).
    """

    def __init__(self, model, clip_max: float | None = None):
        self.model = model
        self.clip_max = clip_max

    def predict_bounds(self, chars: DataCharacteristics) -> ReuseBounds:
        """Infer the bound triple for one vector's characteristics."""
        raw = np.asarray(self.model.predict(chars.to_features()[None, :]))
        if raw.ndim != 2 or raw.shape[1] != 3:
            raise ModelError(f"bound model must predict 3 outputs, got shape {raw.shape}")
        vals = np.rint(raw[0])
        vals = np.clip(vals, 0.0, self.clip_max if self.clip_max is not None else np.inf)
        return ReuseBounds.from_sequence(vals)


def train_default_predictor(
    config: MiccoConfig | None = None,
    *,
    n_samples: int = 300,
    seed=0,
    fractions=(0.0, 0.25, 0.5, 1.0),
    n_seeds: int = 3,
    num_vectors: int = 6,
    batch: int = 8,
    n_estimators: int = 150,
) -> tuple[ReuseBoundPredictor, TrainingSet]:
    """Offline training pipeline: tune → fit Random Forest → wrap.

    Returns the predictor and the training set (for R² reporting).
    """
    ts = build_training_set(
        n_samples,
        config,
        seed,
        fractions=fractions,
        n_seeds=n_seeds,
        num_vectors=num_vectors,
        batch=batch,
    )
    model = RandomForestRegressor(n_estimators=n_estimators, seed=seed)
    model.fit(ts.X, ts.Y)
    return ReuseBoundPredictor(model), ts
