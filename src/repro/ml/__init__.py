"""From-scratch regression models and the reuse-bound tuning pipeline.

The paper trains a regression model mapping data characteristics
(vector size, tensor size, distribution, repeated rate) to the optimal
reuse-bound triple, comparing Linear Regression, Gradient Boosting and
Random Forest (Table IV).  scikit-learn is unavailable offline, so the
models are implemented here directly on NumPy:

* :class:`DecisionTreeRegressor` — CART with variance-reduction splits,
* :class:`RandomForestRegressor` — bagged trees with feature subsampling,
* :class:`GradientBoostingRegressor` — boosted shallow trees, squared loss,
* :class:`LinearRegression` — least squares via ``numpy.linalg.lstsq``.

All are multi-output (the target is the 3-component bound triple).
"""

from repro.ml.tree import DecisionTreeRegressor
from repro.ml.forest import RandomForestRegressor
from repro.ml.gbm import GradientBoostingRegressor
from repro.ml.linear import LinearRegression
from repro.ml.metrics import r2_score, spearmanr, spearman_matrix
from repro.ml.online import SlidingWindowRegressor
from repro.ml.tuner import ReuseBoundTuner, TuningSample
from repro.ml.dataset import build_training_set, TrainingSet, sample_characteristics_grid
from repro.ml.predictor import ReuseBoundPredictor, train_default_predictor
from repro.ml.importance import permutation_importance, rank_features

__all__ = [
    "DecisionTreeRegressor",
    "RandomForestRegressor",
    "GradientBoostingRegressor",
    "LinearRegression",
    "SlidingWindowRegressor",
    "r2_score",
    "spearmanr",
    "spearman_matrix",
    "ReuseBoundTuner",
    "TuningSample",
    "build_training_set",
    "TrainingSet",
    "sample_characteristics_grid",
    "ReuseBoundPredictor",
    "train_default_predictor",
    "permutation_importance",
    "rank_features",
]
