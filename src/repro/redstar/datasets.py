"""Real-world correlator analogs (paper Table VI).

Three meson-system correlation functions, matching the published
structure (two-particle plus single-particle constructions), tensor
sizes (128 / 256), and total device-memory footprints (56 GB / 4.6 TB /
4.1 TB over sixteen time slices).  Batch sizes are calibrated so the
pipeline's input + intermediate bytes land on the published memory
cost; diagram counts land in the paper's thousands-of-graphs regime.
"""

from __future__ import annotations

from repro.redstar.correlator import CorrelatorSpec, Operator

GIB = 1024**3


def a1_rhopi(time_slices: int = 16, max_vector_size: int = 64) -> CorrelatorSpec:
    """The a1 system: a1 ↔ ρπ mixing (tensor size 128, ~56 GB)."""
    return CorrelatorSpec(
        name="a1_rhopi",
        operators=(
            Operator(name="a1", hadrons=(("u", "dbar"),)),
            Operator(name="rho_pi", hadrons=(("u", "ubar"), ("u", "dbar")), momenta=6),
        ),
        tensor_size=128,
        batch=292,
        time_slices=time_slices,
        max_vector_size=max_vector_size,
    )


def f0d2(time_slices: int = 16, max_vector_size: int = 64) -> CorrelatorSpec:
    """The f0 system, d2 basis: f0 ↔ ππ (tensor size 256, ~4.6 TB)."""
    return CorrelatorSpec(
        name="f0d2",
        operators=(
            Operator(name="f0", hadrons=(("u", "ubar"),)),
            Operator(name="pi_pi", hadrons=(("u", "dbar"), ("d", "ubar")), momenta=12),
        ),
        tensor_size=256,
        batch=1752,
        time_slices=time_slices,
        max_vector_size=max_vector_size,
    )


def f0d4(time_slices: int = 16, max_vector_size: int = 64) -> CorrelatorSpec:
    """The f0 system, d4 basis: fewer momenta, ~4.1 TB."""
    return CorrelatorSpec(
        name="f0d4",
        operators=(
            Operator(name="f0", hadrons=(("u", "ubar"),)),
            Operator(name="pi_pi", hadrons=(("u", "dbar"), ("d", "ubar")), momenta=11),
        ),
        tensor_size=256,
        batch=1799,
        time_slices=time_slices,
        max_vector_size=max_vector_size,
    )


def nucleon_nn(time_slices: int = 8, max_vector_size: int = 64) -> CorrelatorSpec:
    """A two-nucleon (NN) baryon system — beyond Table VI.

    The paper motivates MICCO with multi-baryon/multi-nucleon systems
    (rank-3 tensors, factorially more Wick contractions); this spec
    exercises that path: single-nucleon and NN two-particle operators,
    baryon (rank-3) hadron tensors, mixed-rank intermediates.
    """
    return CorrelatorSpec(
        name="nucleon_nn",
        operators=(
            Operator(name="N", hadrons=(("u", "u", "d"),)),
            Operator(name="NN", hadrons=(("u", "u", "d"), ("u", "d", "d")), momenta=3),
        ),
        tensor_size=48,
        batch=8,
        time_slices=time_slices,
        max_vector_size=max_vector_size,
        max_diagrams=32,
    )


#: Table VI rows: (spec factory, published tensor size, published memory, published speedup).
REAL_WORLD_SPECS = {
    "a1_rhopi": (a1_rhopi, 128, 56.05 * GIB, 1.49),
    "f0d2": (f0d2, 256, 4645.12 * GIB, 1.41),
    "f0d4": (f0d4, 256, 4064.48 * GIB, 1.36),
}
