"""Correlator specifications: operators, quark content, momenta.

A correlator is a matrix between *operator constructions*: each
operator is one or more hadrons (single-particle: one meson;
two-particle: two mesons sharing the total momentum).  Sink operators
are the conjugates of source operators (quark ↔ antiquark swapped).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import GraphError
from repro.utils.validation import check_positive

#: Flavor → conjugate flavor.
_CONJ = {"u": "ubar", "d": "dbar", "s": "sbar", "ubar": "u", "dbar": "d", "sbar": "s"}


def conjugate(quarks: tuple[str, ...]) -> tuple[str, ...]:
    """Conjugate hadron content (sink side of a correlator)."""
    try:
        return tuple(_CONJ[q] for q in quarks)
    except KeyError as e:
        raise GraphError(f"unknown flavor {e.args[0]!r}") from None


@dataclass(frozen=True)
class Operator:
    """One interpolating-operator construction.

    Parameters
    ----------
    name:
        e.g. ``"a1"`` or ``"rho_pi"``.
    hadrons:
        Quark content per hadron; one entry = single-particle, two =
        two-particle construction.
    momenta:
        Number of relative-momentum combinations summing to the total
        momentum.  Single-particle operators have exactly 1; each
        combination of a multi-particle operator yields distinct hadron
        tensors, multiplying the diagram count (the "thousands of
        graphs" regime).
    """

    name: str
    hadrons: tuple[tuple[str, ...], ...]
    momenta: int = 1

    def __post_init__(self):
        if not self.hadrons:
            raise GraphError(f"operator {self.name!r} needs at least one hadron")
        check_positive("momenta", self.momenta)
        if len(self.hadrons) == 1 and self.momenta != 1:
            raise GraphError(
                f"single-particle operator {self.name!r} has a fixed momentum (momenta=1)"
            )


@dataclass(frozen=True)
class CorrelatorSpec:
    """A full correlation function to compute.

    Parameters
    ----------
    name:
        Correlator id (e.g. ``"a1_rhopi"``).
    operators:
        Source operator constructions; the sink side uses their
        conjugates.  The correlator matrix spans all source × sink
        operator pairs.
    tensor_size:
        Dimension length N of every hadron tensor.
    batch:
        Batch dimension (spin/distillation blocks per kernel).
    time_slices:
        Number of sink time slices (source tensors are shared across
        all of them).
    max_vector_size:
        Tensor slots per scheduler vector.
    max_diagrams:
        Cap on diagrams per (source op, sink op, momenta) cell.
    """

    name: str
    operators: tuple[Operator, ...]
    tensor_size: int
    batch: int = 32
    time_slices: int = 16
    max_vector_size: int = 64
    max_diagrams: int = 64
    dtype_bytes: int = 8

    def __post_init__(self):
        if not self.operators:
            raise GraphError(f"correlator {self.name!r} needs at least one operator")
        check_positive("tensor_size", self.tensor_size)
        check_positive("batch", self.batch)
        check_positive("time_slices", self.time_slices)
        check_positive("max_vector_size", self.max_vector_size)
        check_positive("max_diagrams", self.max_diagrams)
