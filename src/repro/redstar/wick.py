"""Wick-style diagram enumeration.

A diagram is a flavor-conserving pairing of quark slots with antiquark
slots across the hadrons of a (source operator, sink operator) cell:
every ``u`` pairs with a ``ubar`` somewhere else, etc.  Each pairing
defines a contraction graph — hadrons as nodes, quark lines as edges.
Pairings that would connect a hadron to itself (internal traces) are
excluded, matching the connected-diagram construction; duplicate edge
multisets are deduplicated.
"""

from __future__ import annotations

import math
from itertools import permutations

from repro.errors import GraphError
from repro.graphs.hadron import HadronNode
from repro.graphs.contraction_graph import ContractionGraph
from repro.utils.rng import as_generator

#: Flavor base of a slot (``"ubar"`` → ``"u"``) and whether it is an antiquark.
def _slot(flavor: str) -> tuple[str, bool]:
    if flavor.endswith("bar"):
        return flavor[:-3], True
    return flavor, False


def enumerate_pairings(
    hadrons: list[tuple[str, tuple[str, ...]]],
    max_diagrams: int = 64,
    seed=0,
) -> list[list[tuple[int, int]]]:
    """All distinct connected quark-line pairings of ``hadrons``.

    Parameters
    ----------
    hadrons:
        ``(name, quark content)`` per hadron (order defines indices).
    max_diagrams:
        Cap on returned pairings; when the permutation space is larger,
        a seeded random subset of permutations is sampled instead of the
        full product.

    Returns
    -------
    list of edge lists; an edge ``(i, j)`` is one quark line between
    hadron ``i`` and hadron ``j``.  Empty if flavors cannot balance.
    """
    quarks: dict[str, list[int]] = {}
    antis: dict[str, list[int]] = {}
    for i, (_name, content) in enumerate(hadrons):
        for flavor in content:
            base, is_anti = _slot(flavor)
            (antis if is_anti else quarks).setdefault(base, []).append(i)
    if set(quarks) != set(antis):
        return []
    flavors = sorted(quarks)
    for f in flavors:
        if len(quarks[f]) != len(antis[f]):
            return []

    space = 1
    for f in flavors:
        space *= math.factorial(len(quarks[f]))

    rng = as_generator(seed)
    seen: set[tuple] = set()
    out: list[list[tuple[int, int]]] = []

    def pairing_from(perm_by_flavor: dict[str, tuple[int, ...]]):
        edges: list[tuple[int, int]] = []
        for f in flavors:
            q_sites = quarks[f]
            a_sites = antis[f]
            for qi, pi in enumerate(perm_by_flavor[f]):
                a, b = q_sites[qi], a_sites[pi]
                if a == b:
                    return None  # internal trace: not a connected diagram
                edges.append((a, b) if a <= b else (b, a))
        return edges

    def consider(perm_by_flavor) -> None:
        edges = pairing_from(perm_by_flavor)
        if edges is None:
            return
        key = tuple(sorted(edges))
        if key in seen:
            return
        seen.add(key)
        out.append(edges)

    if space <= 4 * max_diagrams:
        # Full enumeration over the product of per-flavor permutations.
        def rec(idx: int, acc: dict):
            if len(out) >= max_diagrams:
                return
            if idx == len(flavors):
                consider(acc)
                return
            f = flavors[idx]
            for perm in permutations(range(len(quarks[f]))):
                acc[f] = perm
                rec(idx + 1, acc)
                if len(out) >= max_diagrams:
                    return

        rec(0, {})
    else:
        # Seeded random sampling of the huge permutation space.
        attempts = 0
        while len(out) < max_diagrams and attempts < 50 * max_diagrams:
            attempts += 1
            acc = {f: tuple(rng.permutation(len(quarks[f]))) for f in flavors}
            consider(acc)
    return out


def diagrams_for(
    hadron_nodes: list[HadronNode],
    max_diagrams: int = 64,
    seed=0,
    graph_id_base: int = 0,
) -> list[ContractionGraph]:
    """Contraction graphs for one cell's hadron nodes.

    Node tensors come from the supplied :class:`HadronNode` objects, so
    the same node reused across cells shares its tensor (the reuse the
    scheduler exploits).
    """
    contents = [(h.name, h.quarks) for h in hadron_nodes]
    pairings = enumerate_pairings(contents, max_diagrams=max_diagrams, seed=seed)
    graphs = []
    for k, edges in enumerate(pairings):
        nodes = {h.name: h.tensor for h in hadron_nodes}
        named_edges = [(hadron_nodes[a].name, hadron_nodes[b].name) for a, b in edges]
        try:
            graphs.append(
                ContractionGraph(nodes=nodes, edges=named_edges, graph_id=graph_id_base + k)
            )
        except GraphError:
            continue
    return graphs
