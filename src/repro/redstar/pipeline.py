"""Redstar pipeline: correlator spec → per-time-slice vector stream.

For each sink time slice the pipeline instantiates the sink hadron
tensors (the source side is built once and shared across slices),
enumerates the Wick diagrams of every (source op, sink op, momentum
combination) cell, contracts every graph with a shared intern table,
deduplicates interned intermediates, stage-partitions the surviving
steps and chunks them into scheduler vectors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product

from repro.graphs.contraction_graph import ContractionGraph, InternTable, contract_graph
from repro.graphs.hadron import HadronNode
from repro.graphs.stages import build_stage_plan, stages_to_vectors
from repro.tensor.spec import TensorSpec, VectorSpec, next_uid
from repro.redstar.correlator import CorrelatorSpec, Operator, conjugate
from repro.redstar.wick import diagrams_for


@dataclass
class PipelineStats:
    """Bookkeeping for one materialized pipeline."""

    num_graphs: int = 0
    num_steps: int = 0
    num_hadron_tensors: int = 0
    num_intermediate_tensors: int = 0
    input_bytes: int = 0
    intermediate_bytes: int = 0

    @property
    def total_bytes(self) -> int:
        """Device footprint of all inputs and intermediates (Table VI's
        "total memory" column)."""
        return self.input_bytes + self.intermediate_bytes


class RedstarPipeline:
    """Generates the scheduler workload of one correlation function.

    Parameters
    ----------
    spec:
        The correlator to compute.
    seed:
        Seed for diagram sampling in oversized permutation spaces.
    """

    def __init__(self, spec: CorrelatorSpec, seed=0):
        self.spec = spec
        self.seed = seed
        self._hadron_registry: dict[tuple, HadronNode] = {}
        self._intern = InternTable()
        self._depths: dict[int, int] = {}
        self.stats = PipelineStats()

    # ------------------------------------------------------------ hadron pool
    def _hadron(self, side: str, op: Operator, h_idx: int, mom: int, t: int) -> HadronNode:
        """Interned hadron node; identical identity → identical tensor."""
        content = op.hadrons[h_idx] if side == "src" else conjugate(op.hadrons[h_idx])
        key = (side, op.name, h_idx, mom, t, content)
        node = self._hadron_registry.get(key)
        if node is None:
            spec = self.spec
            tensor = TensorSpec(
                uid=next_uid(),
                size=spec.tensor_size,
                batch=spec.batch,
                rank=len(content),
                dtype_bytes=spec.dtype_bytes,
                label=f"{side}:{op.name}.{h_idx}.p{mom}@t{t}",
            )
            node = HadronNode(name=tensor.label, quarks=content, tensor=tensor)
            self._hadron_registry[key] = node
            self.stats.num_hadron_tensors += 1
            self.stats.input_bytes += tensor.nbytes
        return node

    def _cell_hadrons(self, t: int) -> list[list[HadronNode]]:
        """Hadron-node lists for every (src op, snk op, momenta) cell.

        Source hadrons are pinned to time slice 0 (shared across all
        sink slices); sink hadrons live on slice ``t``.
        """
        cells = []
        for src_op, snk_op in product(self.spec.operators, repeat=2):
            for src_mom in range(src_op.momenta):
                for snk_mom in range(snk_op.momenta):
                    nodes = [
                        self._hadron("src", src_op, i, src_mom, 0)
                        for i in range(len(src_op.hadrons))
                    ]
                    nodes += [
                        self._hadron("snk", snk_op, i, snk_mom, t)
                        for i in range(len(snk_op.hadrons))
                    ]
                    cells.append(nodes)
        return cells

    # --------------------------------------------------------------- diagrams
    def diagrams(self, t: int) -> list[ContractionGraph]:
        """All Wick diagrams of time slice ``t``."""
        graphs: list[ContractionGraph] = []
        for c_idx, nodes in enumerate(self._cell_hadrons(t)):
            graphs.extend(
                diagrams_for(
                    nodes,
                    max_diagrams=self.spec.max_diagrams,
                    seed=(self.seed, t, c_idx).__hash__() & 0x7FFFFFFF,
                    graph_id_base=len(graphs),
                )
            )
        return graphs

    # ----------------------------------------------------------------- stream
    def vectors_for_slice(self, t: int, already_computed: set[int] | None = None) -> list[VectorSpec]:
        """Scheduler vectors of time slice ``t`` (stage order)."""
        graphs = self.diagrams(t)
        self.stats.num_graphs += len(graphs)
        steps = []
        for g in graphs:
            steps.extend(contract_graph(g, self._intern, self._depths))
        if already_computed is not None:
            fresh = [s for s in steps if s.out.uid not in already_computed]
        else:
            fresh = steps
        plan = build_stage_plan(fresh)
        for stage in plan.stages:
            for step in stage:
                self.stats.num_steps += 1
                self.stats.num_intermediate_tensors += 1
                self.stats.intermediate_bytes += step.out.nbytes
                if already_computed is not None:
                    already_computed.add(step.out.uid)
        vectors = stages_to_vectors(plan, max_vector_size=self.spec.max_vector_size, start_id=t * 10_000)
        for v in vectors:
            v.meta["time_slice"] = t
        return vectors

    def vectors(self) -> list[VectorSpec]:
        """The full stream: all time slices, slices in order."""
        computed: set[int] = set()
        out: list[VectorSpec] = []
        for t in range(self.spec.time_slices):
            out.extend(self.vectors_for_slice(t, already_computed=computed))
        return out
