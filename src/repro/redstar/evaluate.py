"""Correlator evaluation: from executed contractions to C(t).

After the scheduler has run a pipeline's vectors with a
:class:`~repro.tensor.storage.TensorStore` attached (real NumPy
kernels), this module finishes the job host-side: for each sink time
slice it takes the final-stage outputs, closes each with a batched
trace, and averages — producing the correlation function C(t) that
physicists actually fit.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.tensor.spec import VectorSpec
from repro.tensor.storage import TensorStore


def batched_trace(array: np.ndarray) -> complex:
    """Mean over the batch of the matrix trace of a rank-2 output."""
    if array.ndim != 3 or array.shape[1] != array.shape[2]:
        raise GraphError(f"trace needs (batch, N, N) arrays, got shape {array.shape}")
    return complex(np.trace(array, axis1=1, axis2=2).mean())


def final_outputs_by_slice(vectors: list[VectorSpec]) -> dict[int, list]:
    """Per time slice: the output specs of the deepest stage.

    Vectors must carry ``meta['time_slice']`` and ``meta['stage']``
    (the Redstar pipeline sets both).
    """
    by_slice: dict[int, dict[int, list]] = {}
    for v in vectors:
        t = v.meta.get("time_slice")
        stage = v.meta.get("stage")
        if t is None or stage is None:
            raise GraphError(
                "vector lacks time_slice/stage metadata; was it produced by RedstarPipeline?"
            )
        by_slice.setdefault(t, {}).setdefault(stage, []).extend(p.out for p in v.pairs)
    return {t: stages[max(stages)] for t, stages in by_slice.items()}


def correlator_values(vectors: list[VectorSpec], store: TensorStore) -> dict[int, complex]:
    """C(t) per sink time slice.

    Each slice's value is the average batched trace over its deepest
    stage's (rank-2) outputs — the host-side finishing step after the
    scheduled contractions.  Rank-3 outputs (mid-contraction baryon
    intermediates) are excluded; a slice whose deepest stage has no
    rank-2 output raises.
    """
    values: dict[int, complex] = {}
    for t, outputs in final_outputs_by_slice(vectors).items():
        traces = [batched_trace(store.get(o.uid)) for o in outputs if o.rank == 2]
        if not traces:
            raise GraphError(f"time slice {t} has no rank-2 final outputs to trace")
        values[t] = complex(np.mean(traces))
    return values


def effective_mass(values: dict[int, complex]) -> dict[int, float]:
    """Effective-mass curve ``m_eff(t) = log |C(t)/C(t+1)|``.

    The standard first diagnostic plotted from any correlator; defined
    for consecutive slices with non-zero magnitudes.
    """
    out: dict[int, float] = {}
    ts = sorted(values)
    for a, b in zip(ts, ts[1:]):
        ca, cb = abs(values[a]), abs(values[b])
        if ca > 0 and cb > 0 and b == a + 1:
            out[a] = float(np.log(ca / cb))
    return out
