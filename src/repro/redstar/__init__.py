"""Redstar-analog pipeline: correlator → Wick diagrams → vector stream.

Redstar (Chen/Edwards/Winter, Jefferson Lab) translates a correlation
function into thousands of unique contraction graphs and emits hadron
contractions stage by stage.  This package reproduces that front end:
correlator specs with single- and two-particle operator constructions,
a Wick-style diagram enumerator (flavor-conserving quark-line pairings
across momentum combinations), graph contraction with interned
intermediates, and stage partitioning into scheduler vectors.
"""

from repro.redstar.correlator import CorrelatorSpec, Operator, conjugate
from repro.redstar.wick import enumerate_pairings, diagrams_for
from repro.redstar.pipeline import RedstarPipeline
from repro.redstar.datasets import a1_rhopi, f0d2, f0d4, nucleon_nn, REAL_WORLD_SPECS
from repro.redstar.evaluate import correlator_values, effective_mass, batched_trace

__all__ = [
    "CorrelatorSpec",
    "Operator",
    "conjugate",
    "enumerate_pairings",
    "diagrams_for",
    "RedstarPipeline",
    "a1_rhopi",
    "f0d2",
    "f0d4",
    "nucleon_nn",
    "REAL_WORLD_SPECS",
    "correlator_values",
    "effective_mass",
    "batched_trace",
]
