"""Exception hierarchy for the MICCO reproduction.

Every error raised intentionally by this library derives from
:class:`ReproError`, so downstream users can catch one type.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(ReproError, ValueError):
    """An invalid configuration value was supplied.

    Also a :class:`ValueError`: bad values passed at construction time
    (negative reuse bounds, out-of-range fractions, ...) are caught by
    plain ``except ValueError`` in generic callers.
    """


class SchedulingError(ReproError):
    """A scheduler produced (or was handed) an inconsistent assignment."""


class CapacityError(ReproError, RuntimeError):
    """A tensor cannot fit on a device even after evicting everything else.

    Also a :class:`RuntimeError`: capacity exhaustion happens at run
    time, not construction time, so generic callers that wrap a whole
    run in ``except RuntimeError`` see it without importing repro.
    """


class FaultError(ReproError, RuntimeError):
    """Base class for injected-fault failures the runtime could not hide.

    Raised only after recovery was attempted (or is impossible):
    transient faults that exhausted their retries, or work placed on a
    device that no longer exists.  Also a :class:`RuntimeError` for the
    same reason as :class:`CapacityError`.
    """


class TransientFaultError(FaultError):
    """A transient kernel fault persisted past the retry budget."""


class DeviceLostError(FaultError):
    """Work referenced a device that has been lost (permanent failure).

    Attributes
    ----------
    device_id:
        The lost device.
    pair_index:
        Index of the pair within its vector, when raised from
        :meth:`~repro.gpusim.engine.ExecutionEngine.execute_vector`;
        ``None`` for single-pair execution.
    """

    def __init__(self, device_id: int, pair_index: int | None = None):
        self.device_id = device_id
        self.pair_index = pair_index
        where = f" (pair index {pair_index})" if pair_index is not None else ""
        super().__init__(f"device {device_id} has been lost{where}")


class ModelError(ReproError):
    """An ML model was used before fitting or with malformed inputs."""


class GraphError(ReproError):
    """A contraction graph is malformed or cannot be contracted."""


class WorkloadError(ReproError):
    """A workload generator was configured with impossible parameters."""
