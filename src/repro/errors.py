"""Exception hierarchy for the MICCO reproduction.

Every error raised intentionally by this library derives from
:class:`ReproError`, so downstream users can catch one type.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(ReproError, ValueError):
    """An invalid configuration value was supplied.

    Also a :class:`ValueError`: bad values passed at construction time
    (negative reuse bounds, out-of-range fractions, ...) are caught by
    plain ``except ValueError`` in generic callers.
    """


class SchedulingError(ReproError):
    """A scheduler produced (or was handed) an inconsistent assignment."""


class CapacityError(ReproError):
    """A tensor cannot fit on a device even after evicting everything else."""


class ModelError(ReproError):
    """An ML model was used before fitting or with malformed inputs."""


class GraphError(ReproError):
    """A contraction graph is malformed or cannot be contracted."""


class WorkloadError(ReproError):
    """A workload generator was configured with impossible parameters."""
