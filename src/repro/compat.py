"""Reference-core switch for golden-equivalence testing.

The vectorized simulator core (numpy batch scoring, lazy eviction
scans, columnar traces) must be *byte-identical* to the original
object-at-a-time implementation at a fixed seed.  The original code
paths are kept behind this module-level switch so the golden suite can
run the same workload through both and diff the serialized reports and
Chrome traces.

The switch is global and not thread-safe — it exists for tests, not
for production configuration.
"""

from __future__ import annotations

from contextlib import contextmanager

#: When True, hot paths take the original scalar/object implementation.
REFERENCE_CORE = False


@contextmanager
def reference_core():
    """Run the enclosed block through the original object-path core."""
    global REFERENCE_CORE
    prev = REFERENCE_CORE
    REFERENCE_CORE = True
    try:
        yield
    finally:
        REFERENCE_CORE = prev
