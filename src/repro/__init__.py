"""MICCO reproduction: data-reuse-aware multi-GPU scheduling for
many-body correlation functions (Wang et al., IPDPS 2022).

Public API highlights
---------------------
* :class:`repro.Micco` — the framework facade (naive / optimal / baselines).
* :class:`repro.MiccoConfig` — cluster + cost-model configuration.
* :class:`repro.WorkloadParams` / :class:`repro.SyntheticWorkload` —
  synthetic vector streams with the paper's data characteristics.
* :mod:`repro.schedulers` — MICCO heuristic and baseline schedulers.
* :mod:`repro.serve` — online serving simulator (:class:`repro.MiccoServer`):
  arrival processes, admission control, latency SLO metrics; multi-tenant
  mode (:class:`repro.MultiTenantServer`) with weighted-fair admission
  and a p99-driven device-pool autoscaler.
* :mod:`repro.faults` — seeded fault injection (:class:`repro.FaultPlan`)
  and recovery: chaos-hardened serving on a shrinking device pool.
* :mod:`repro.ml` — from-scratch regression models + reuse-bound tuner.
* :mod:`repro.redstar` — Redstar-analog contraction-graph pipeline.
* :mod:`repro.experiments` — one runner per paper table/figure.
"""

from repro.core import Micco, MiccoConfig, RunResult, compare, run_stream
from repro.faults import FaultEvent, FaultInjector, FaultKind, FaultPlan, FaultStats, RetryPolicy
from repro.gpusim import ClusterState, CostModel, ExecutionEngine, ExecutionMetrics
from repro.schedulers import (
    GrouteScheduler,
    MiccoScheduler,
    ReuseBounds,
    RoundRobinScheduler,
)
from repro.reporting import Report
from repro.serve import (
    AutoscalerConfig,
    BurstyArrivals,
    LatencyReport,
    MiccoServer,
    MultiTenantServer,
    PoissonArrivals,
    ServeConfig,
    ServeResult,
    SloTargets,
    TenantSpec,
    TraceArrivals,
    make_server,
    serve,
)
from repro.tensor import TensorPair, TensorSpec, VectorSpec
from repro.workloads import SyntheticWorkload, WorkloadParams

__version__ = "1.0.0"

__all__ = [
    "Micco",
    "MiccoConfig",
    "RunResult",
    "compare",
    "run_stream",
    "ClusterState",
    "CostModel",
    "ExecutionEngine",
    "ExecutionMetrics",
    "FaultKind",
    "FaultEvent",
    "FaultPlan",
    "FaultInjector",
    "FaultStats",
    "RetryPolicy",
    "GrouteScheduler",
    "MiccoScheduler",
    "ReuseBounds",
    "RoundRobinScheduler",
    "serve",
    "make_server",
    "MiccoServer",
    "MultiTenantServer",
    "ServeConfig",
    "ServeResult",
    "TenantSpec",
    "SloTargets",
    "AutoscalerConfig",
    "Report",
    "PoissonArrivals",
    "BurstyArrivals",
    "TraceArrivals",
    "LatencyReport",
    "TensorPair",
    "TensorSpec",
    "VectorSpec",
    "SyntheticWorkload",
    "WorkloadParams",
    "__version__",
]
